# Empty compiler generated dependencies file for engagement_study.
# This may be replaced when dependencies are built.
