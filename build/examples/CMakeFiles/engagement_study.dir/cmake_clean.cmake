file(REMOVE_RECURSE
  "CMakeFiles/engagement_study.dir/engagement_study.cpp.o"
  "CMakeFiles/engagement_study.dir/engagement_study.cpp.o.d"
  "engagement_study"
  "engagement_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engagement_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
