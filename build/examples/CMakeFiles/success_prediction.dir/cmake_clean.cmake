file(REMOVE_RECURSE
  "CMakeFiles/success_prediction.dir/success_prediction.cpp.o"
  "CMakeFiles/success_prediction.dir/success_prediction.cpp.o.d"
  "success_prediction"
  "success_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/success_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
