# Empty dependencies file for success_prediction.
# This may be replaced when dependencies are built.
