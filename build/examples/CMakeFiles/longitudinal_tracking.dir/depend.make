# Empty dependencies file for longitudinal_tracking.
# This may be replaced when dependencies are built.
