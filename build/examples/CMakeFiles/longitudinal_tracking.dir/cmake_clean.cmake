file(REMOVE_RECURSE
  "CMakeFiles/longitudinal_tracking.dir/longitudinal_tracking.cpp.o"
  "CMakeFiles/longitudinal_tracking.dir/longitudinal_tracking.cpp.o.d"
  "longitudinal_tracking"
  "longitudinal_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longitudinal_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
