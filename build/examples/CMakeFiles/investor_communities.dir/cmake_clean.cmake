file(REMOVE_RECURSE
  "CMakeFiles/investor_communities.dir/investor_communities.cpp.o"
  "CMakeFiles/investor_communities.dir/investor_communities.cpp.o.d"
  "investor_communities"
  "investor_communities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/investor_communities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
