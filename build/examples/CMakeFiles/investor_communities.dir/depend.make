# Empty dependencies file for investor_communities.
# This may be replaced when dependencies are built.
