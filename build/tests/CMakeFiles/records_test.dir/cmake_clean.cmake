file(REMOVE_RECURSE
  "CMakeFiles/records_test.dir/records_test.cc.o"
  "CMakeFiles/records_test.dir/records_test.cc.o.d"
  "records_test"
  "records_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/records_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
