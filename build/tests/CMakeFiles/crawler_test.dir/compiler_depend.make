# Empty compiler generated dependencies file for crawler_test.
# This may be replaced when dependencies are built.
