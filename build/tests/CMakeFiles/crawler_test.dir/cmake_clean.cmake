file(REMOVE_RECURSE
  "CMakeFiles/crawler_test.dir/crawler_test.cc.o"
  "CMakeFiles/crawler_test.dir/crawler_test.cc.o.d"
  "crawler_test"
  "crawler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crawler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
