file(REMOVE_RECURSE
  "CMakeFiles/community_quality_test.dir/community_quality_test.cc.o"
  "CMakeFiles/community_quality_test.dir/community_quality_test.cc.o.d"
  "community_quality_test"
  "community_quality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_quality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
