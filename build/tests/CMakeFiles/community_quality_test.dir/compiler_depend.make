# Empty compiler generated dependencies file for community_quality_test.
# This may be replaced when dependencies are built.
