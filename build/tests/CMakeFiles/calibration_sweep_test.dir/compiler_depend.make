# Empty compiler generated dependencies file for calibration_sweep_test.
# This may be replaced when dependencies are built.
