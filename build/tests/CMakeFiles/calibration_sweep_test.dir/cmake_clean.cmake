file(REMOVE_RECURSE
  "CMakeFiles/calibration_sweep_test.dir/calibration_sweep_test.cc.o"
  "CMakeFiles/calibration_sweep_test.dir/calibration_sweep_test.cc.o.d"
  "calibration_sweep_test"
  "calibration_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
