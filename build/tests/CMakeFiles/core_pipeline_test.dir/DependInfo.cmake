
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_pipeline_test.cc" "tests/CMakeFiles/core_pipeline_test.dir/core_pipeline_test.cc.o" "gcc" "tests/CMakeFiles/core_pipeline_test.dir/core_pipeline_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cfnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crawler/CMakeFiles/cfnet_crawler.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cfnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/cfnet_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/community/CMakeFiles/cfnet_community.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cfnet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/cfnet_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/cfnet_json.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cfnet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/cfnet_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cfnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
