file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sources.dir/bench_ablation_sources.cc.o"
  "CMakeFiles/bench_ablation_sources.dir/bench_ablation_sources.cc.o.d"
  "bench_ablation_sources"
  "bench_ablation_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
