# Empty dependencies file for bench_ablation_sources.
# This may be replaced when dependencies are built.
