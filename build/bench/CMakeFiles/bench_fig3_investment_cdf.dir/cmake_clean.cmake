file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_investment_cdf.dir/bench_fig3_investment_cdf.cc.o"
  "CMakeFiles/bench_fig3_investment_cdf.dir/bench_fig3_investment_cdf.cc.o.d"
  "bench_fig3_investment_cdf"
  "bench_fig3_investment_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_investment_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
