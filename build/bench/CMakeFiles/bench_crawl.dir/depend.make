# Empty dependencies file for bench_crawl.
# This may be replaced when dependencies are built.
