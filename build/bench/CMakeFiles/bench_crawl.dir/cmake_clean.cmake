file(REMOVE_RECURSE
  "CMakeFiles/bench_crawl.dir/bench_crawl.cc.o"
  "CMakeFiles/bench_crawl.dir/bench_crawl.cc.o.d"
  "bench_crawl"
  "bench_crawl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crawl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
