file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_social_engagement.dir/bench_fig6_social_engagement.cc.o"
  "CMakeFiles/bench_fig6_social_engagement.dir/bench_fig6_social_engagement.cc.o.d"
  "bench_fig6_social_engagement"
  "bench_fig6_social_engagement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_social_engagement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
