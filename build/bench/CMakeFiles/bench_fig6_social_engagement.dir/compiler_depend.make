# Empty compiler generated dependencies file for bench_fig6_social_engagement.
# This may be replaced when dependencies are built.
