file(REMOVE_RECURSE
  "libcfnet_bench_util.a"
)
