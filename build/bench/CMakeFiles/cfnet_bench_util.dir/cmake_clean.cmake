file(REMOVE_RECURSE
  "CMakeFiles/cfnet_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/cfnet_bench_util.dir/bench_util.cc.o.d"
  "libcfnet_bench_util.a"
  "libcfnet_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfnet_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
