# Empty dependencies file for cfnet_bench_util.
# This may be replaced when dependencies are built.
