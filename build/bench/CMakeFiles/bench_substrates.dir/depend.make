# Empty dependencies file for bench_substrates.
# This may be replaced when dependencies are built.
