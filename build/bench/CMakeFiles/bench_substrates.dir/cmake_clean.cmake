file(REMOVE_RECURSE
  "CMakeFiles/bench_substrates.dir/bench_substrates.cc.o"
  "CMakeFiles/bench_substrates.dir/bench_substrates.cc.o.d"
  "bench_substrates"
  "bench_substrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_substrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
