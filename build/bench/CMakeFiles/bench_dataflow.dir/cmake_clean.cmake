file(REMOVE_RECURSE
  "CMakeFiles/bench_dataflow.dir/bench_dataflow.cc.o"
  "CMakeFiles/bench_dataflow.dir/bench_dataflow.cc.o.d"
  "bench_dataflow"
  "bench_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
