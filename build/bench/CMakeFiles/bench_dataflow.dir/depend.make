# Empty dependencies file for bench_dataflow.
# This may be replaced when dependencies are built.
