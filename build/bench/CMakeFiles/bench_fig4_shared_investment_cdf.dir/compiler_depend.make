# Empty compiler generated dependencies file for bench_fig4_shared_investment_cdf.
# This may be replaced when dependencies are built.
