# Empty compiler generated dependencies file for bench_fig5_community_pdf.
# This may be replaced when dependencies are built.
