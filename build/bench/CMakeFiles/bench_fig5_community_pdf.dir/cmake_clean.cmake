file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_community_pdf.dir/bench_fig5_community_pdf.cc.o"
  "CMakeFiles/bench_fig5_community_pdf.dir/bench_fig5_community_pdf.cc.o.d"
  "bench_fig5_community_pdf"
  "bench_fig5_community_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_community_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
