# Empty dependencies file for bench_ablation_herding.
# This may be replaced when dependencies are built.
