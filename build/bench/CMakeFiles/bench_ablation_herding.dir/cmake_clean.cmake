file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_herding.dir/bench_ablation_herding.cc.o"
  "CMakeFiles/bench_ablation_herding.dir/bench_ablation_herding.cc.o.d"
  "bench_ablation_herding"
  "bench_ablation_herding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_herding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
