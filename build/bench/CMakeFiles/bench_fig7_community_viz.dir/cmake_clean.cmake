file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_community_viz.dir/bench_fig7_community_viz.cc.o"
  "CMakeFiles/bench_fig7_community_viz.dir/bench_fig7_community_viz.cc.o.d"
  "bench_fig7_community_viz"
  "bench_fig7_community_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_community_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
