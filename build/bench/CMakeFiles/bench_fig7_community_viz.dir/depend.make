# Empty dependencies file for bench_fig7_community_viz.
# This may be replaced when dependencies are built.
