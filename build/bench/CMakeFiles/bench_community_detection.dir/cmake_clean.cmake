file(REMOVE_RECURSE
  "CMakeFiles/bench_community_detection.dir/bench_community_detection.cc.o"
  "CMakeFiles/bench_community_detection.dir/bench_community_detection.cc.o.d"
  "bench_community_detection"
  "bench_community_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_community_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
