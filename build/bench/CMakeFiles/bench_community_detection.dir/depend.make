# Empty dependencies file for bench_community_detection.
# This may be replaced when dependencies are built.
