file(REMOVE_RECURSE
  "CMakeFiles/bench_longitudinal.dir/bench_longitudinal.cc.o"
  "CMakeFiles/bench_longitudinal.dir/bench_longitudinal.cc.o.d"
  "bench_longitudinal"
  "bench_longitudinal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_longitudinal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
