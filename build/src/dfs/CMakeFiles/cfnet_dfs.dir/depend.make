# Empty dependencies file for cfnet_dfs.
# This may be replaced when dependencies are built.
