file(REMOVE_RECURSE
  "libcfnet_dfs.a"
)
