file(REMOVE_RECURSE
  "CMakeFiles/cfnet_dfs.dir/dfs.cc.o"
  "CMakeFiles/cfnet_dfs.dir/dfs.cc.o.d"
  "CMakeFiles/cfnet_dfs.dir/jsonl.cc.o"
  "CMakeFiles/cfnet_dfs.dir/jsonl.cc.o.d"
  "libcfnet_dfs.a"
  "libcfnet_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfnet_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
