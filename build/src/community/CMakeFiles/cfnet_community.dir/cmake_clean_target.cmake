file(REMOVE_RECURSE
  "libcfnet_community.a"
)
