file(REMOVE_RECURSE
  "CMakeFiles/cfnet_community.dir/coda.cc.o"
  "CMakeFiles/cfnet_community.dir/coda.cc.o.d"
  "CMakeFiles/cfnet_community.dir/compare.cc.o"
  "CMakeFiles/cfnet_community.dir/compare.cc.o.d"
  "CMakeFiles/cfnet_community.dir/label_propagation.cc.o"
  "CMakeFiles/cfnet_community.dir/label_propagation.cc.o.d"
  "CMakeFiles/cfnet_community.dir/louvain.cc.o"
  "CMakeFiles/cfnet_community.dir/louvain.cc.o.d"
  "CMakeFiles/cfnet_community.dir/model_selection.cc.o"
  "CMakeFiles/cfnet_community.dir/model_selection.cc.o.d"
  "CMakeFiles/cfnet_community.dir/quality.cc.o"
  "CMakeFiles/cfnet_community.dir/quality.cc.o.d"
  "CMakeFiles/cfnet_community.dir/random_baseline.cc.o"
  "CMakeFiles/cfnet_community.dir/random_baseline.cc.o.d"
  "CMakeFiles/cfnet_community.dir/sbm.cc.o"
  "CMakeFiles/cfnet_community.dir/sbm.cc.o.d"
  "libcfnet_community.a"
  "libcfnet_community.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfnet_community.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
