
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/community/coda.cc" "src/community/CMakeFiles/cfnet_community.dir/coda.cc.o" "gcc" "src/community/CMakeFiles/cfnet_community.dir/coda.cc.o.d"
  "/root/repo/src/community/compare.cc" "src/community/CMakeFiles/cfnet_community.dir/compare.cc.o" "gcc" "src/community/CMakeFiles/cfnet_community.dir/compare.cc.o.d"
  "/root/repo/src/community/label_propagation.cc" "src/community/CMakeFiles/cfnet_community.dir/label_propagation.cc.o" "gcc" "src/community/CMakeFiles/cfnet_community.dir/label_propagation.cc.o.d"
  "/root/repo/src/community/louvain.cc" "src/community/CMakeFiles/cfnet_community.dir/louvain.cc.o" "gcc" "src/community/CMakeFiles/cfnet_community.dir/louvain.cc.o.d"
  "/root/repo/src/community/model_selection.cc" "src/community/CMakeFiles/cfnet_community.dir/model_selection.cc.o" "gcc" "src/community/CMakeFiles/cfnet_community.dir/model_selection.cc.o.d"
  "/root/repo/src/community/quality.cc" "src/community/CMakeFiles/cfnet_community.dir/quality.cc.o" "gcc" "src/community/CMakeFiles/cfnet_community.dir/quality.cc.o.d"
  "/root/repo/src/community/random_baseline.cc" "src/community/CMakeFiles/cfnet_community.dir/random_baseline.cc.o" "gcc" "src/community/CMakeFiles/cfnet_community.dir/random_baseline.cc.o.d"
  "/root/repo/src/community/sbm.cc" "src/community/CMakeFiles/cfnet_community.dir/sbm.cc.o" "gcc" "src/community/CMakeFiles/cfnet_community.dir/sbm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/cfnet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cfnet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/cfnet_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/cfnet_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
