# Empty dependencies file for cfnet_community.
# This may be replaced when dependencies are built.
