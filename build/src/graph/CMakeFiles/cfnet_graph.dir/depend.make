# Empty dependencies file for cfnet_graph.
# This may be replaced when dependencies are built.
