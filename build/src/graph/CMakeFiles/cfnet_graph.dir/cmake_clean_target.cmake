file(REMOVE_RECURSE
  "libcfnet_graph.a"
)
