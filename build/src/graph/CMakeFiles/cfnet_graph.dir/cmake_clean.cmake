file(REMOVE_RECURSE
  "CMakeFiles/cfnet_graph.dir/bipartite_graph.cc.o"
  "CMakeFiles/cfnet_graph.dir/bipartite_graph.cc.o.d"
  "CMakeFiles/cfnet_graph.dir/centrality.cc.o"
  "CMakeFiles/cfnet_graph.dir/centrality.cc.o.d"
  "CMakeFiles/cfnet_graph.dir/graph_io.cc.o"
  "CMakeFiles/cfnet_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/cfnet_graph.dir/weighted_graph.cc.o"
  "CMakeFiles/cfnet_graph.dir/weighted_graph.cc.o.d"
  "libcfnet_graph.a"
  "libcfnet_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfnet_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
