file(REMOVE_RECURSE
  "CMakeFiles/cfnet_json.dir/json.cc.o"
  "CMakeFiles/cfnet_json.dir/json.cc.o.d"
  "libcfnet_json.a"
  "libcfnet_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfnet_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
