# Empty dependencies file for cfnet_json.
# This may be replaced when dependencies are built.
