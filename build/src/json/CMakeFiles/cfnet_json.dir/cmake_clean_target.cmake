file(REMOVE_RECURSE
  "libcfnet_json.a"
)
