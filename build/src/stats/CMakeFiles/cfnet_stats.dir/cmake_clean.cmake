file(REMOVE_RECURSE
  "CMakeFiles/cfnet_stats.dir/inference.cc.o"
  "CMakeFiles/cfnet_stats.dir/inference.cc.o.d"
  "CMakeFiles/cfnet_stats.dir/stats.cc.o"
  "CMakeFiles/cfnet_stats.dir/stats.cc.o.d"
  "libcfnet_stats.a"
  "libcfnet_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfnet_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
