# Empty dependencies file for cfnet_stats.
# This may be replaced when dependencies are built.
