file(REMOVE_RECURSE
  "libcfnet_stats.a"
)
