# Empty dependencies file for cfnet_crawler.
# This may be replaced when dependencies are built.
