file(REMOVE_RECURSE
  "CMakeFiles/cfnet_crawler.dir/crawler.cc.o"
  "CMakeFiles/cfnet_crawler.dir/crawler.cc.o.d"
  "CMakeFiles/cfnet_crawler.dir/fetch.cc.o"
  "CMakeFiles/cfnet_crawler.dir/fetch.cc.o.d"
  "CMakeFiles/cfnet_crawler.dir/periodic.cc.o"
  "CMakeFiles/cfnet_crawler.dir/periodic.cc.o.d"
  "libcfnet_crawler.a"
  "libcfnet_crawler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfnet_crawler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
