file(REMOVE_RECURSE
  "libcfnet_crawler.a"
)
