
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crawler/crawler.cc" "src/crawler/CMakeFiles/cfnet_crawler.dir/crawler.cc.o" "gcc" "src/crawler/CMakeFiles/cfnet_crawler.dir/crawler.cc.o.d"
  "/root/repo/src/crawler/fetch.cc" "src/crawler/CMakeFiles/cfnet_crawler.dir/fetch.cc.o" "gcc" "src/crawler/CMakeFiles/cfnet_crawler.dir/fetch.cc.o.d"
  "/root/repo/src/crawler/periodic.cc" "src/crawler/CMakeFiles/cfnet_crawler.dir/periodic.cc.o" "gcc" "src/crawler/CMakeFiles/cfnet_crawler.dir/periodic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cfnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/cfnet_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/cfnet_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/cfnet_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cfnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
