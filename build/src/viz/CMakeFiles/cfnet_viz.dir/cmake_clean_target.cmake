file(REMOVE_RECURSE
  "libcfnet_viz.a"
)
