file(REMOVE_RECURSE
  "CMakeFiles/cfnet_viz.dir/layout.cc.o"
  "CMakeFiles/cfnet_viz.dir/layout.cc.o.d"
  "CMakeFiles/cfnet_viz.dir/render.cc.o"
  "CMakeFiles/cfnet_viz.dir/render.cc.o.d"
  "libcfnet_viz.a"
  "libcfnet_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfnet_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
