# Empty compiler generated dependencies file for cfnet_viz.
# This may be replaced when dependencies are built.
