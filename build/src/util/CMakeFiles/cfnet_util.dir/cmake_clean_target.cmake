file(REMOVE_RECURSE
  "libcfnet_util.a"
)
