# Empty dependencies file for cfnet_util.
# This may be replaced when dependencies are built.
