file(REMOVE_RECURSE
  "CMakeFiles/cfnet_util.dir/crc32.cc.o"
  "CMakeFiles/cfnet_util.dir/crc32.cc.o.d"
  "CMakeFiles/cfnet_util.dir/flags.cc.o"
  "CMakeFiles/cfnet_util.dir/flags.cc.o.d"
  "CMakeFiles/cfnet_util.dir/logging.cc.o"
  "CMakeFiles/cfnet_util.dir/logging.cc.o.d"
  "CMakeFiles/cfnet_util.dir/rng.cc.o"
  "CMakeFiles/cfnet_util.dir/rng.cc.o.d"
  "CMakeFiles/cfnet_util.dir/status.cc.o"
  "CMakeFiles/cfnet_util.dir/status.cc.o.d"
  "CMakeFiles/cfnet_util.dir/string_util.cc.o"
  "CMakeFiles/cfnet_util.dir/string_util.cc.o.d"
  "CMakeFiles/cfnet_util.dir/table.cc.o"
  "CMakeFiles/cfnet_util.dir/table.cc.o.d"
  "CMakeFiles/cfnet_util.dir/thread_pool.cc.o"
  "CMakeFiles/cfnet_util.dir/thread_pool.cc.o.d"
  "libcfnet_util.a"
  "libcfnet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfnet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
