file(REMOVE_RECURSE
  "CMakeFiles/cfnet_net.dir/angellist.cc.o"
  "CMakeFiles/cfnet_net.dir/angellist.cc.o.d"
  "CMakeFiles/cfnet_net.dir/crunchbase.cc.o"
  "CMakeFiles/cfnet_net.dir/crunchbase.cc.o.d"
  "CMakeFiles/cfnet_net.dir/facebook.cc.o"
  "CMakeFiles/cfnet_net.dir/facebook.cc.o.d"
  "CMakeFiles/cfnet_net.dir/rate_limiter.cc.o"
  "CMakeFiles/cfnet_net.dir/rate_limiter.cc.o.d"
  "CMakeFiles/cfnet_net.dir/service.cc.o"
  "CMakeFiles/cfnet_net.dir/service.cc.o.d"
  "CMakeFiles/cfnet_net.dir/tokens.cc.o"
  "CMakeFiles/cfnet_net.dir/tokens.cc.o.d"
  "CMakeFiles/cfnet_net.dir/twitter.cc.o"
  "CMakeFiles/cfnet_net.dir/twitter.cc.o.d"
  "CMakeFiles/cfnet_net.dir/urls.cc.o"
  "CMakeFiles/cfnet_net.dir/urls.cc.o.d"
  "libcfnet_net.a"
  "libcfnet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfnet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
