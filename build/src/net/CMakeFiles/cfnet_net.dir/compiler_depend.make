# Empty compiler generated dependencies file for cfnet_net.
# This may be replaced when dependencies are built.
