file(REMOVE_RECURSE
  "libcfnet_net.a"
)
