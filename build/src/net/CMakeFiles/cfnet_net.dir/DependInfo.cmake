
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/angellist.cc" "src/net/CMakeFiles/cfnet_net.dir/angellist.cc.o" "gcc" "src/net/CMakeFiles/cfnet_net.dir/angellist.cc.o.d"
  "/root/repo/src/net/crunchbase.cc" "src/net/CMakeFiles/cfnet_net.dir/crunchbase.cc.o" "gcc" "src/net/CMakeFiles/cfnet_net.dir/crunchbase.cc.o.d"
  "/root/repo/src/net/facebook.cc" "src/net/CMakeFiles/cfnet_net.dir/facebook.cc.o" "gcc" "src/net/CMakeFiles/cfnet_net.dir/facebook.cc.o.d"
  "/root/repo/src/net/rate_limiter.cc" "src/net/CMakeFiles/cfnet_net.dir/rate_limiter.cc.o" "gcc" "src/net/CMakeFiles/cfnet_net.dir/rate_limiter.cc.o.d"
  "/root/repo/src/net/service.cc" "src/net/CMakeFiles/cfnet_net.dir/service.cc.o" "gcc" "src/net/CMakeFiles/cfnet_net.dir/service.cc.o.d"
  "/root/repo/src/net/tokens.cc" "src/net/CMakeFiles/cfnet_net.dir/tokens.cc.o" "gcc" "src/net/CMakeFiles/cfnet_net.dir/tokens.cc.o.d"
  "/root/repo/src/net/twitter.cc" "src/net/CMakeFiles/cfnet_net.dir/twitter.cc.o" "gcc" "src/net/CMakeFiles/cfnet_net.dir/twitter.cc.o.d"
  "/root/repo/src/net/urls.cc" "src/net/CMakeFiles/cfnet_net.dir/urls.cc.o" "gcc" "src/net/CMakeFiles/cfnet_net.dir/urls.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cfnet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/cfnet_json.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/cfnet_synth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
