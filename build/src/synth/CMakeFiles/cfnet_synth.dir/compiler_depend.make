# Empty compiler generated dependencies file for cfnet_synth.
# This may be replaced when dependencies are built.
