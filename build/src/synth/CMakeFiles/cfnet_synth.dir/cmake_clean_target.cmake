file(REMOVE_RECURSE
  "libcfnet_synth.a"
)
