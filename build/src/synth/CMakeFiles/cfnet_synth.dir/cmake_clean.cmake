file(REMOVE_RECURSE
  "CMakeFiles/cfnet_synth.dir/world.cc.o"
  "CMakeFiles/cfnet_synth.dir/world.cc.o.d"
  "libcfnet_synth.a"
  "libcfnet_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfnet_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
