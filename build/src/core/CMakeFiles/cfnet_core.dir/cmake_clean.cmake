file(REMOVE_RECURSE
  "CMakeFiles/cfnet_core.dir/community_metrics.cc.o"
  "CMakeFiles/cfnet_core.dir/community_metrics.cc.o.d"
  "CMakeFiles/cfnet_core.dir/engagement_analysis.cc.o"
  "CMakeFiles/cfnet_core.dir/engagement_analysis.cc.o.d"
  "CMakeFiles/cfnet_core.dir/experiments.cc.o"
  "CMakeFiles/cfnet_core.dir/experiments.cc.o.d"
  "CMakeFiles/cfnet_core.dir/investor_graph.cc.o"
  "CMakeFiles/cfnet_core.dir/investor_graph.cc.o.d"
  "CMakeFiles/cfnet_core.dir/platform.cc.o"
  "CMakeFiles/cfnet_core.dir/platform.cc.o.d"
  "CMakeFiles/cfnet_core.dir/prediction.cc.o"
  "CMakeFiles/cfnet_core.dir/prediction.cc.o.d"
  "CMakeFiles/cfnet_core.dir/records.cc.o"
  "CMakeFiles/cfnet_core.dir/records.cc.o.d"
  "libcfnet_core.a"
  "libcfnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
