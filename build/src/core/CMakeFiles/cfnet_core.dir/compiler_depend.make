# Empty compiler generated dependencies file for cfnet_core.
# This may be replaced when dependencies are built.
