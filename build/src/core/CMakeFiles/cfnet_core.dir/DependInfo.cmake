
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/community_metrics.cc" "src/core/CMakeFiles/cfnet_core.dir/community_metrics.cc.o" "gcc" "src/core/CMakeFiles/cfnet_core.dir/community_metrics.cc.o.d"
  "/root/repo/src/core/engagement_analysis.cc" "src/core/CMakeFiles/cfnet_core.dir/engagement_analysis.cc.o" "gcc" "src/core/CMakeFiles/cfnet_core.dir/engagement_analysis.cc.o.d"
  "/root/repo/src/core/experiments.cc" "src/core/CMakeFiles/cfnet_core.dir/experiments.cc.o" "gcc" "src/core/CMakeFiles/cfnet_core.dir/experiments.cc.o.d"
  "/root/repo/src/core/investor_graph.cc" "src/core/CMakeFiles/cfnet_core.dir/investor_graph.cc.o" "gcc" "src/core/CMakeFiles/cfnet_core.dir/investor_graph.cc.o.d"
  "/root/repo/src/core/platform.cc" "src/core/CMakeFiles/cfnet_core.dir/platform.cc.o" "gcc" "src/core/CMakeFiles/cfnet_core.dir/platform.cc.o.d"
  "/root/repo/src/core/prediction.cc" "src/core/CMakeFiles/cfnet_core.dir/prediction.cc.o" "gcc" "src/core/CMakeFiles/cfnet_core.dir/prediction.cc.o.d"
  "/root/repo/src/core/records.cc" "src/core/CMakeFiles/cfnet_core.dir/records.cc.o" "gcc" "src/core/CMakeFiles/cfnet_core.dir/records.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cfnet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/cfnet_json.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/cfnet_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/cfnet_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cfnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crawler/CMakeFiles/cfnet_crawler.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cfnet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/community/CMakeFiles/cfnet_community.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cfnet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/cfnet_viz.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
