file(REMOVE_RECURSE
  "libcfnet_core.a"
)
