#ifndef CFNET_SERVE_EPOCH_STORE_H_
#define CFNET_SERVE_EPOCH_STORE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "util/logging.h"

namespace cfnet::serve {

/// Epoch-pinned snapshot hot-swap: the publisher (crawler/compaction side)
/// installs new immutable snapshots; readers (query workers) pin the current
/// one for the duration of a request. In-flight queries keep reading the
/// pinned old epoch while new queries pin the new one; an old epoch is
/// reclaimed once its pin count drains to zero (at the next Publish/Sweep).
///
/// The read path is lock-free: Acquire() is one fetch_add, a validation
/// load, and (on release) one fetch_sub — no mutex, no allocation. Readers
/// use the pin-then-validate protocol: increment the slot's pin count first,
/// then re-check that the slot is still current; a reader that lost the race
/// unpins and retries, and crucially never dereferences the snapshot of a
/// slot it failed to validate. Reclamation runs only on the publisher side,
/// under the publish mutex, and only for retired slots whose pin count is
/// zero — so a validated pin is always protecting a live snapshot.
///
/// At most kSlots epochs can be live (current + still-pinned retired) at
/// once; Publish spins politely when every slot is held, which only happens
/// when readers pin snapshots for as long as kSlots publish intervals.
template <typename T>
class EpochStore {
 public:
  static constexpr size_t kSlots = 16;
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  EpochStore() = default;
  EpochStore(const EpochStore&) = delete;
  EpochStore& operator=(const EpochStore&) = delete;

  ~EpochStore() {
    for (Slot& s : slots_) {
      const T* p = s.snap.exchange(nullptr, std::memory_order_acq_rel);
      delete p;
    }
  }

  /// RAII pin on one published snapshot. Move-only; empty (operator bool
  /// false) when nothing has been published yet.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& o) noexcept
        : store_(o.store_), slot_(o.slot_), snap_(o.snap_), epoch_(o.epoch_) {
      o.store_ = nullptr;
      o.snap_ = nullptr;
    }
    Pin& operator=(Pin&& o) noexcept {
      if (this != &o) {
        Release();
        store_ = o.store_;
        slot_ = o.slot_;
        snap_ = o.snap_;
        epoch_ = o.epoch_;
        o.store_ = nullptr;
        o.snap_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

    explicit operator bool() const { return snap_ != nullptr; }
    const T& operator*() const { return *snap_; }
    const T* operator->() const { return snap_; }
    const T* get() const { return snap_; }
    uint64_t epoch() const { return epoch_; }

   private:
    friend class EpochStore;
    Pin(EpochStore* store, size_t slot, const T* snap, uint64_t epoch)
        : store_(store), slot_(slot), snap_(snap), epoch_(epoch) {}

    void Release() {
      if (store_ != nullptr && snap_ != nullptr) {
        store_->slots_[slot_].pins.fetch_sub(1, std::memory_order_acq_rel);
      }
      store_ = nullptr;
      snap_ = nullptr;
    }

    EpochStore* store_ = nullptr;
    size_t slot_ = 0;
    const T* snap_ = nullptr;
    uint64_t epoch_ = 0;
  };

  /// Publishes `snap` as the new current epoch and returns its epoch number
  /// (monotone from 1). Retires the previous epoch; retired epochs whose
  /// pins have drained are reclaimed here.
  uint64_t Publish(std::unique_ptr<const T> snap) {
    CFNET_CHECK(snap != nullptr);
    std::lock_guard<std::mutex> lock(publish_mu_);
    const size_t slot = ClaimFreeSlotLocked();
    Slot& s = slots_[slot];
    const uint64_t epoch = published_.fetch_add(1, std::memory_order_relaxed) + 1;
    s.retired.store(false, std::memory_order_relaxed);
    s.epoch.store(epoch, std::memory_order_relaxed);
    s.snap.store(snap.release(), std::memory_order_release);
    const size_t prev = current_.exchange(slot, std::memory_order_seq_cst);
    if (prev != kNoSlot) {
      slots_[prev].retired.store(true, std::memory_order_release);
    }
    ReclaimLocked();
    return epoch;
  }

  /// Pins the current snapshot (lock-free). Empty before the first Publish.
  Pin Acquire() {
    for (;;) {
      const size_t i = current_.load(std::memory_order_acquire);
      if (i == kNoSlot) return Pin{};
      Slot& s = slots_[i];
      // seq_cst pin + validation: if the validation load still sees `i`
      // current, it precedes the publisher's current_ swap in the single
      // total order, so the publisher's later pins read observes this pin.
      s.pins.fetch_add(1, std::memory_order_seq_cst);
      if (current_.load(std::memory_order_seq_cst) == i) {
        // Validated: the slot was current after our pin was visible, so the
        // publisher-side reclaim (which requires retired && pins == 0) can
        // not free it until we release.
        const T* p = s.snap.load(std::memory_order_acquire);
        return Pin{this, i, p, s.epoch.load(std::memory_order_relaxed)};
      }
      // Lost the race against a swap: never dereference, unpin and retry.
      s.pins.fetch_sub(1, std::memory_order_acq_rel);
      pin_retries_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Reclaims retired epochs whose pins have drained (also runs on every
  /// Publish). Returns the number of snapshots freed by this call.
  size_t Sweep() {
    std::lock_guard<std::mutex> lock(publish_mu_);
    return ReclaimLocked();
  }

  uint64_t current_epoch() const {
    const size_t i = current_.load(std::memory_order_acquire);
    return i == kNoSlot ? 0 : slots_[i].epoch.load(std::memory_order_relaxed);
  }
  /// Epochs published / reclaimed so far, and diagnostic counters.
  uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }
  uint64_t retired() const { return retired_.load(std::memory_order_relaxed); }
  uint64_t pin_retries() const {
    return pin_retries_.load(std::memory_order_relaxed);
  }
  /// Pins currently held across all live epochs (racy snapshot, tests only).
  int64_t live_pins() const {
    int64_t total = 0;
    for (const Slot& s : slots_) {
      total += s.pins.load(std::memory_order_relaxed);
    }
    return total;
  }
  /// Live (unreclaimed) epochs: the current one plus still-pinned retirees.
  size_t live_epochs() const {
    size_t n = 0;
    for (const Slot& s : slots_) {
      n += s.snap.load(std::memory_order_acquire) != nullptr ? 1 : 0;
    }
    return n;
  }

 private:
  struct Slot {
    std::atomic<const T*> snap{nullptr};
    std::atomic<uint64_t> epoch{0};
    std::atomic<int64_t> pins{0};
    std::atomic<bool> retired{false};
  };

  /// Frees every retired slot whose pins drained. Readers may still be in
  /// the pin-then-validate window (pins transiently > 0 after we read 0),
  /// but such readers fail validation — the slot is retired, so current_
  /// moved on — and never touch the snapshot pointer.
  size_t ReclaimLocked() {
    size_t freed = 0;
    for (Slot& s : slots_) {
      if (s.retired.load(std::memory_order_acquire) &&
          s.pins.load(std::memory_order_seq_cst) == 0) {
        const T* p = s.snap.exchange(nullptr, std::memory_order_acq_rel);
        if (p != nullptr) {
          delete p;
          s.retired.store(false, std::memory_order_relaxed);
          retired_.fetch_add(1, std::memory_order_relaxed);
          ++freed;
        }
      }
    }
    return freed;
  }

  size_t ClaimFreeSlotLocked() {
    for (;;) {
      for (size_t i = 0; i < kSlots; ++i) {
        if (slots_[i].snap.load(std::memory_order_acquire) == nullptr &&
            i != current_.load(std::memory_order_acquire)) {
          return i;
        }
      }
      // Every slot holds a live epoch: wait for pins to drain. Only
      // possible when readers outlive kSlots consecutive publishes.
      ReclaimLocked();
      std::this_thread::yield();
    }
  }

  Slot slots_[kSlots];
  std::atomic<size_t> current_{kNoSlot};
  std::mutex publish_mu_;  // serializes Publish/Sweep, never the read path
  std::atomic<uint64_t> published_{0};
  std::atomic<uint64_t> retired_{0};
  mutable std::atomic<uint64_t> pin_retries_{0};
};

}  // namespace cfnet::serve

#endif  // CFNET_SERVE_EPOCH_STORE_H_
