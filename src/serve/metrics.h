#ifndef CFNET_SERVE_METRICS_H_
#define CFNET_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace cfnet::serve {

/// Lock-free log-bucketed latency histogram (microseconds). Bucket b holds
/// samples in [2^b, 2^(b+1)); percentiles are read from bucket upper edges,
/// so they are conservative (never under-report) within a factor of 2.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 40;

  void Record(int64_t micros) {
    size_t b = 0;
    uint64_t v = micros <= 0 ? 0 : static_cast<uint64_t>(micros);
    while (v > 1 && b + 1 < kBuckets) {
      v >>= 1;
      ++b;
    }
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_micros_.fetch_add(micros > 0 ? micros : 0, std::memory_order_relaxed);
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double mean_micros() const {
    const int64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(
                        sum_micros_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  /// Upper edge of the bucket containing the p-th percentile (p in [0,1]).
  int64_t PercentileMicros(double p) const {
    const int64_t n = count();
    if (n == 0) return 0;
    int64_t rank = static_cast<int64_t>(p * static_cast<double>(n - 1)) + 1;
    for (size_t b = 0; b < kBuckets; ++b) {
      rank -= buckets_[b].load(std::memory_order_relaxed);
      if (rank <= 0) return static_cast<int64_t>(uint64_t{1} << (b + 1)) - 1;
    }
    return static_cast<int64_t>(uint64_t{1} << kBuckets);
  }

  std::vector<int64_t> Snapshot() const {
    std::vector<int64_t> out(kBuckets);
    for (size_t b = 0; b < kBuckets; ++b) {
      out[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_micros_{0};
};

/// First-class per-query-class accounting: every request ends in exactly
/// one of served / shed / timeout / failed, with degradations and cache
/// hits as orthogonal markers on served requests.
struct ClassStats {
  std::atomic<int64_t> submitted{0};
  std::atomic<int64_t> served{0};            // completed within deadline
  std::atomic<int64_t> degraded{0};          // served via the degraded path
  std::atomic<int64_t> cache_hits{0};
  std::atomic<int64_t> shed_queue_full{0};   // rejected at admission
  std::atomic<int64_t> shed_deadline{0};     // expired before execution
  /// Of shed_deadline: rejected at admission by the predictive check (the
  /// cheap kind) rather than discovered expired at dequeue (the wasteful
  /// kind). The gap between the two is the predictor's miss rate.
  std::atomic<int64_t> shed_predicted{0};
  std::atomic<int64_t> timeouts{0};          // executed but finished late
  std::atomic<int64_t> errors{0};            // 4xx/5xx from the query itself
  LatencyHistogram served_latency;           // submit -> completion, served only
  LatencyHistogram queue_latency;            // submit -> dequeue, executed only
};

}  // namespace cfnet::serve

#endif  // CFNET_SERVE_METRICS_H_
