#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

namespace cfnet::serve {
namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

json::Json ShedBody(const char* reason) {
  json::Json body = json::Json::MakeObject();
  body.Set("error", json::Json(reason));
  return body;
}

// Shed reasons are a small fixed set; interning their bodies keeps the
// admission path allocation-free — under overload the service sheds far more
// requests than it serves, so a per-shed JSON build would dominate.
constexpr char kReasonShutdown[] = "service shutting down";
constexpr char kReasonQueueFull[] = "admission queue full";
constexpr char kReasonDeadlineExpired[] = "deadline expired";
constexpr char kReasonDeadlineUnreachable[] = "deadline unreachable at admission";

std::shared_ptr<const json::Json> SharedShedBody(const char* reason) {
  static const auto shutdown =
      std::make_shared<const json::Json>(ShedBody(kReasonShutdown));
  static const auto queue_full =
      std::make_shared<const json::Json>(ShedBody(kReasonQueueFull));
  static const auto expired =
      std::make_shared<const json::Json>(ShedBody(kReasonDeadlineExpired));
  static const auto unreachable =
      std::make_shared<const json::Json>(ShedBody(kReasonDeadlineUnreachable));
  if (reason == kReasonQueueFull) return queue_full;
  if (reason == kReasonDeadlineExpired) return expired;
  if (reason == kReasonDeadlineUnreachable) return unreachable;
  if (reason == kReasonShutdown) return shutdown;
  return std::make_shared<const json::Json>(ShedBody(reason));
}

}  // namespace

QueryService::QueryService(EpochStore<ServingSnapshot>* store,
                           QueryServiceConfig config)
    : store_(store),
      config_(std::move(config)),
      now_(config_.now_fn ? config_.now_fn : SteadyNowMicros),
      cache_(config_.cache_capacity, config_.cache_ttl_micros) {
  breakers_[static_cast<size_t>(QueryClass::kSearch)] =
      std::make_unique<util::CircuitBreaker>(config_.search.breaker);
  breakers_[static_cast<size_t>(QueryClass::kRecommend)] =
      std::make_unique<util::CircuitBreaker>(config_.recommend.breaker);
  breakers_[static_cast<size_t>(QueryClass::kFacet)] =
      std::make_unique<util::CircuitBreaker>(config_.facet.breaker);
  const int threads = config_.worker_threads > 0 ? config_.worker_threads : 1;
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

const ClassPolicy& QueryService::policy(QueryClass c) const {
  switch (c) {
    case QueryClass::kSearch:
      return config_.search;
    case QueryClass::kRecommend:
      return config_.recommend;
    case QueryClass::kFacet:
      return config_.facet;
  }
  return config_.search;  // unreachable
}

QueryResponse QueryService::MakeShedResponse(const Pending& pending,
                                             QueryResponse::Outcome outcome,
                                             const char* reason) const {
  QueryResponse resp;
  resp.status = 503;
  resp.outcome = outcome;
  resp.query_class = pending.query_class;
  resp.body = SharedShedBody(reason);
  const int64_t now = now_();
  resp.queue_micros = now - pending.submit_micros;
  resp.total_micros = resp.queue_micros;
  return resp;
}

void QueryService::SubmitAsync(QueryRequest request,
                               std::function<void(QueryResponse)> done) {
  Pending pending;
  pending.query_class = ClassifyEndpoint(request.endpoint);
  pending.submit_micros = now_();
  const ClassPolicy& pol = policy(pending.query_class);
  pending.deadline_micros = request.deadline_micros > 0
                                ? request.deadline_micros
                                : pending.submit_micros +
                                      pol.default_deadline_micros;
  pending.request = std::move(request);
  pending.done = std::move(done);

  ClassStats& cs = stats_[static_cast<size_t>(pending.query_class)];
  cs.submitted.fetch_add(1, std::memory_order_relaxed);

  // Lock-free admission sheds. The depth mirror is approximate (relaxed,
  // racing the workers), which only matters within one request of the
  // boundary; the authoritative capacity check under the lock still bounds
  // the queue. Under overload the sheds far outnumber the admissions, and
  // deciding them without mu_ is what keeps the workers fed.
  const auto ci = static_cast<size_t>(pending.query_class);
  const size_t depth = queue_depth_[ci].load(std::memory_order_relaxed);
  if (depth >= pol.queue_capacity) {
    cs.shed_queue_full.fetch_add(1, std::memory_order_relaxed);
    pending.done(MakeShedResponse(
        pending, QueryResponse::Outcome::kShedQueueFull, kReasonQueueFull));
    return;
  }
  // Predictive deadline check: a submission that would reach the head of
  // its queue only after its deadline is shed now instead of rotting in the
  // backlog (bufferbloat). Round-robin gives each backlogged class one
  // dequeue per rotation, so this class drains one item per
  // (active classes x drain gap); over-shedding only keeps the queue
  // shallow, which is exactly the point.
  const int64_t gap = drain_gap_ewma_micros_.load(std::memory_order_relaxed);
  if (gap > 0) {
    int64_t active = 1;
    for (size_t k = 0; k < kNumClasses; ++k) {
      if (k != ci && queue_depth_[k].load(std::memory_order_relaxed) > 0) {
        ++active;
      }
    }
    const int64_t wait = static_cast<int64_t>(depth + 1) * active * gap;
    if (pending.submit_micros + wait > pending.deadline_micros) {
      cs.shed_deadline.fetch_add(1, std::memory_order_relaxed);
      cs.shed_predicted.fetch_add(1, std::memory_order_relaxed);
      pending.done(MakeShedResponse(pending,
                                    QueryResponse::Outcome::kShedDeadline,
                                    kReasonDeadlineUnreachable));
      return;
    }
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!accepting_) {
      lock.unlock();
      pending.done(MakeShedResponse(
          pending, QueryResponse::Outcome::kShedShutdown, kReasonShutdown));
      return;
    }
    auto& queue = queues_[ci];
    if (queue.size() >= pol.queue_capacity) {
      lock.unlock();
      cs.shed_queue_full.fetch_add(1, std::memory_order_relaxed);
      pending.done(MakeShedResponse(
          pending, QueryResponse::Outcome::kShedQueueFull, kReasonQueueFull));
      return;
    }
    queue.push_back(std::move(pending));
    queue_depth_[ci].store(queue.size(), std::memory_order_relaxed);
  }
  cv_.notify_one();
}

QueryResponse QueryService::Call(QueryRequest request) {
  std::promise<QueryResponse> promise;
  std::future<QueryResponse> future = promise.get_future();
  SubmitAsync(std::move(request), [&promise](QueryResponse resp) {
    promise.set_value(std::move(resp));
  });
  return future.get();
}

void QueryService::WorkerLoop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        if (stopping_) return true;
        for (const auto& q : queues_) {
          if (!q.empty()) return true;
        }
        return false;
      });
      bool found = false;
      for (size_t probe = 0; probe < kNumClasses; ++probe) {
        const size_t ci = (rr_next_ + probe) % kNumClasses;
        auto& queue = queues_[ci];
        if (!queue.empty()) {
          rr_next_ = (ci + 1) % kNumClasses;
          pending = std::move(queue.front());
          queue.pop_front();
          queue_depth_[ci].store(queue.size(), std::memory_order_relaxed);
          found = true;
          break;
        }
      }
      if (!found) {
        if (stopping_) return;
        continue;
      }
    }
    Process(std::move(pending));
  }
}

void QueryService::Process(Pending pending) {
  ClassStats& cs = stats_[static_cast<size_t>(pending.query_class)];
  const int64_t dequeue = now_();
  const int64_t queue_micros = dequeue - pending.submit_micros;

  // Feed the admission predictor: every dequeue — including ones that end
  // in a deadline shed — consumes a worker slot, so the mean gap between
  // dequeues over the last window is the service's real per-item drain
  // cost. Per-window means are clamped so an idle stretch cannot poison
  // the estimate for long; the unfenced read-modify-write between workers
  // is fine for an EWMA.
  if ((dequeue_seq_.fetch_add(1, std::memory_order_relaxed) + 1) %
          kDrainWindow ==
      0) {
    const int64_t prev = drain_window_start_micros_.exchange(
        dequeue, std::memory_order_relaxed);
    if (prev > 0 && dequeue > prev) {
      const int64_t sample = std::min<int64_t>(
          (dequeue - prev) / static_cast<int64_t>(kDrainWindow), 100'000);
      const int64_t ewma =
          drain_gap_ewma_micros_.load(std::memory_order_relaxed);
      drain_gap_ewma_micros_.store(
          ewma == 0 ? sample : (7 * ewma + sample) / 8,
          std::memory_order_relaxed);
    }
  }

  // Deadline-aware shedding: expired queued work is dropped before it can
  // occupy a worker — under overload this is what keeps the backlog from
  // turning every answer into wasted effort.
  if (dequeue >= pending.deadline_micros) {
    cs.shed_deadline.fetch_add(1, std::memory_order_relaxed);
    pending.done(MakeShedResponse(pending,
                                  QueryResponse::Outcome::kShedDeadline,
                                  kReasonDeadlineExpired));
    return;
  }
  cs.queue_latency.Record(queue_micros);

  QueryResponse resp;
  resp.query_class = pending.query_class;
  resp.queue_micros = queue_micros;

  auto pin = store_->Acquire();
  if (!pin) {
    cs.errors.fetch_add(1, std::memory_order_relaxed);
    resp.status = 503;
    resp.outcome = QueryResponse::Outcome::kServed;  // answered, just empty
    resp.body =
        std::make_shared<const json::Json>(ShedBody("no snapshot published"));
    const int64_t finish = now_();
    resp.total_micros = finish - pending.submit_micros;
    if (finish > pending.deadline_micros) {
      resp.outcome = QueryResponse::Outcome::kTimeout;
      resp.status = 504;
      cs.timeouts.fetch_add(1, std::memory_order_relaxed);
    } else {
      cs.served.fetch_add(1, std::memory_order_relaxed);
      cs.served_latency.Record(resp.total_micros);
    }
    pending.done(std::move(resp));
    return;
  }
  resp.epoch = pin.epoch();

  // A new epoch on the read path triggers eager cleanup of the cache's dead
  // entries. The CAS loop only ever moves the watermark forward, so a worker
  // still holding an older pin during a swap cannot roll it back.
  uint64_t seen = last_seen_epoch_.load(std::memory_order_relaxed);
  while (pin.epoch() > seen) {
    if (last_seen_epoch_.compare_exchange_weak(seen, pin.epoch(),
                                               std::memory_order_relaxed)) {
      cache_.EvictEpochsBefore(pin.epoch());
      break;
    }
  }

  const uint64_t fingerprint =
      FingerprintQuery(pending.request.endpoint, pending.request.params);
  std::shared_ptr<const json::Json> cached =
      cache_.Lookup(fingerprint, pin.epoch(), dequeue);
  const int64_t exec_start = now_();
  if (cached) {
    resp.status = 200;
    resp.body = std::move(cached);
    resp.cache_hit = true;
    cs.cache_hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    util::CircuitBreaker& breaker =
        *breakers_[static_cast<size_t>(pending.query_class)];
    const bool full = breaker.AllowRequest(exec_start);
    if (config_.execution_hook) {
      config_.execution_hook(pending.query_class, !full);
    }
    QueryOutcome outcome = ExecuteQuery(*pin, pending.request.endpoint,
                                        pending.request.params,
                                        full ? QueryLimits{} : DegradedLimits());
    const int64_t exec_end = now_();
    resp.exec_micros = exec_end - exec_start;
    resp.status = outcome.status;
    resp.truncated = outcome.truncated;
    resp.degraded = !full;
    if (!full) outcome.body.Set("degraded", json::Json(true));
    resp.body =
        std::make_shared<const json::Json>(std::move(outcome.body));
    if (full) {
      const ClassPolicy& pol = policy(pending.query_class);
      if (resp.exec_micros > pol.latency_budget_micros) {
        breaker.RecordFailure(exec_end);
      } else {
        breaker.RecordSuccess();
      }
      if (outcome.status == 200 && !outcome.truncated) {
        cache_.Insert(fingerprint, pin.epoch(), exec_end, resp.body);
      }
    }
  }

  const int64_t finish = now_();
  resp.total_micros = finish - pending.submit_micros;
  if (resp.status >= 400) {
    cs.errors.fetch_add(1, std::memory_order_relaxed);
  }
  if (finish > pending.deadline_micros) {
    // Executed but finished late: a timeout, not a served request. This is
    // what makes "p99 of served responses is within deadline" structural.
    resp.outcome = QueryResponse::Outcome::kTimeout;
    resp.status = 504;
    cs.timeouts.fetch_add(1, std::memory_order_relaxed);
  } else {
    resp.outcome = QueryResponse::Outcome::kServed;
    cs.served.fetch_add(1, std::memory_order_relaxed);
    if (resp.degraded) cs.degraded.fetch_add(1, std::memory_order_relaxed);
    cs.served_latency.Record(resp.total_micros);
  }
  pending.done(std::move(resp));
}

void QueryService::Shutdown() {
  std::vector<Pending> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;
    shut_down_ = true;
    accepting_ = false;
    stopping_ = true;
    for (size_t ci = 0; ci < kNumClasses; ++ci) {
      for (auto& pending : queues_[ci]) {
        drained.push_back(std::move(pending));
      }
      queues_[ci].clear();
      queue_depth_[ci].store(0, std::memory_order_relaxed);
    }
  }
  cv_.notify_all();
  for (auto& pending : drained) {
    pending.done(MakeShedResponse(
        pending, QueryResponse::Outcome::kShedShutdown, kReasonShutdown));
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void QueryService::RecordEpochBuild(double build_ms, bool incremental) {
  const int64_t micros = static_cast<int64_t>(build_ms * 1000.0);
  if (incremental) {
    epochs_incremental_.fetch_add(1, std::memory_order_relaxed);
  } else {
    epochs_full_.fetch_add(1, std::memory_order_relaxed);
  }
  last_epoch_build_micros_.store(micros, std::memory_order_relaxed);
  epoch_build_micros_total_.fetch_add(micros, std::memory_order_relaxed);
}

json::Json QueryService::StatsJson() const {
  json::Json doc = json::Json::MakeObject();
  json::Json classes = json::Json::MakeObject();
  for (size_t i = 0; i < kNumClasses; ++i) {
    const ClassStats& cs = stats_[i];
    json::Json c = json::Json::MakeObject();
    c.Set("submitted", json::Json(cs.submitted.load()));
    c.Set("served", json::Json(cs.served.load()));
    c.Set("degraded", json::Json(cs.degraded.load()));
    c.Set("cache_hits", json::Json(cs.cache_hits.load()));
    c.Set("shed_queue_full", json::Json(cs.shed_queue_full.load()));
    c.Set("shed_deadline", json::Json(cs.shed_deadline.load()));
    c.Set("shed_predicted", json::Json(cs.shed_predicted.load()));
    c.Set("timeouts", json::Json(cs.timeouts.load()));
    c.Set("errors", json::Json(cs.errors.load()));
    c.Set("latency_p50_micros",
          json::Json(cs.served_latency.PercentileMicros(0.50)));
    c.Set("latency_p99_micros",
          json::Json(cs.served_latency.PercentileMicros(0.99)));
    c.Set("latency_mean_micros", json::Json(cs.served_latency.mean_micros()));
    c.Set("queue_p99_micros",
          json::Json(cs.queue_latency.PercentileMicros(0.99)));
    classes.Set(QueryClassName(static_cast<QueryClass>(i)), std::move(c));
  }
  doc.Set("classes", std::move(classes));
  doc.Set("drain_gap_ewma_micros",
          json::Json(drain_gap_ewma_micros_.load(std::memory_order_relaxed)));

  json::Json cache = json::Json::MakeObject();
  const ResultCache::Stats& cstats = cache_.stats();
  cache.Set("size", json::Json(static_cast<int64_t>(cache_.size())));
  cache.Set("hits", json::Json(cstats.hits.load()));
  cache.Set("misses", json::Json(cstats.misses.load()));
  cache.Set("inserts", json::Json(cstats.inserts.load()));
  cache.Set("lru_evictions", json::Json(cstats.lru_evictions.load()));
  cache.Set("ttl_expirations", json::Json(cstats.ttl_expirations.load()));
  cache.Set("epoch_evictions", json::Json(cstats.epoch_evictions.load()));
  doc.Set("cache", std::move(cache));

  json::Json epochs = json::Json::MakeObject();
  epochs.Set("current", json::Json(static_cast<int64_t>(store_->current_epoch())));
  epochs.Set("published", json::Json(static_cast<int64_t>(store_->published())));
  epochs.Set("retired", json::Json(static_cast<int64_t>(store_->retired())));
  epochs.Set("live", json::Json(static_cast<int64_t>(store_->live_epochs())));
  epochs.Set("pin_retries",
             json::Json(static_cast<int64_t>(store_->pin_retries())));
  epochs.Set("epochs_incremental",
             json::Json(static_cast<int64_t>(
                 epochs_incremental_.load(std::memory_order_relaxed))));
  epochs.Set("epochs_full",
             json::Json(static_cast<int64_t>(
                 epochs_full_.load(std::memory_order_relaxed))));
  epochs.Set("last_epoch_build_ms",
             json::Json(static_cast<double>(last_epoch_build_micros_.load(
                            std::memory_order_relaxed)) /
                        1000.0));
  epochs.Set("epoch_build_ms_total",
             json::Json(static_cast<double>(epoch_build_micros_total_.load(
                            std::memory_order_relaxed)) /
                        1000.0));
  doc.Set("epochs", std::move(epochs));
  return doc;
}

}  // namespace cfnet::serve
