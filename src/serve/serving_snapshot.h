#ifndef CFNET_SERVE_SERVING_SNAPSHOT_H_
#define CFNET_SERVE_SERVING_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "community/community_set.h"
#include "graph/bipartite_graph.h"
#include "graph/weighted_graph.h"
#include "json/json.h"

namespace cfnet::serve {

/// Everything one query epoch needs, precomputed and immutable: the investor
/// graph, its co-investment projection, community labels, centrality scores,
/// a name index for search, and the facet payloads. Built once per crawl
/// epoch (by the epoch-publication hook) and published into an EpochStore —
/// queries only ever read it, so no locking is needed on the query path.
struct ServingSnapshot {
  /// Per-investor serving entry, indexed by the graph's dense left index.
  struct Investor {
    uint64_t id = 0;
    std::string name;
    std::string name_lower;  // search key
    int community = -1;      // disjoint (Louvain) community id, -1 isolated
    double centrality = 0;   // PageRank on the co-investment projection
  };

  uint64_t epoch = 0;
  /// Mixed from the graph shape + epoch; every response carries it so a
  /// torn epoch view (fields from two snapshots) is detectable.
  uint64_t content_fingerprint = 0;

  graph::BipartiteGraph graph;       // investor -> company
  graph::WeightedGraph projection;   // co-investment (left nodes)
  std::vector<int> community_labels; // per left index, -1 = isolated
  community::CommunitySet communities;
  std::vector<Investor> investors;   // by dense left index
  std::vector<uint32_t> by_name;     // left indices sorted by name_lower
  std::vector<uint32_t> by_centrality;  // left indices, centrality desc
  std::vector<std::string> company_names;  // by dense right index

  json::Json facet_communities;  // precomputed facets.communities payload
  json::Json facet_centrality;   // precomputed facets.centrality payload
};

/// Knobs for BuildServingSnapshot.
struct SnapshotBuildOptions {
  /// §5.2 cleaning: drop investors with fewer investments before serving
  /// (1 = keep everyone).
  size_t min_investments = 1;
  /// Projection popularity cap (companies with more investors are skipped).
  size_t max_right_degree = 500;
  /// Display names; defaults derive "investor-<id>" / "company-<id>".
  std::function<std::string(uint64_t id)> investor_name;
  std::function<std::string(uint64_t id)> company_name;
  /// Members listed per community in the facets payload.
  size_t facet_top_members = 5;
};

/// Builds a serving snapshot for `epoch` from the merged investor graph.
/// Deterministic per (graph, options): Louvain communities, PageRank
/// centrality, sorted name index, facet payloads.
std::unique_ptr<const ServingSnapshot> BuildServingSnapshot(
    uint64_t epoch, const graph::BipartiteGraph& g,
    const SnapshotBuildOptions& options = {});

/// Assembles a serving snapshot from analytics computed elsewhere (the
/// incremental path: core::EpochMaintainer maintains graph/projection/
/// partition across epochs at delta cost, and this finishes the serving
/// side — PageRank, investor entries, search/centrality indexes, facet
/// payloads, fingerprint). `projection`/`community_labels`/`communities`
/// must describe exactly `g`; `options.min_investments` is NOT applied
/// here (the caller owns graph hygiene). BuildServingSnapshot is
/// equivalent to filtering + projecting + Louvain + this call.
std::unique_ptr<const ServingSnapshot> AssembleServingSnapshot(
    uint64_t epoch, const graph::BipartiteGraph& g,
    const graph::WeightedGraph& projection,
    const std::vector<int>& community_labels,
    const community::CommunitySet& communities,
    const SnapshotBuildOptions& options = {});

}  // namespace cfnet::serve

#endif  // CFNET_SERVE_SERVING_SNAPSHOT_H_
