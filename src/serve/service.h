#ifndef CFNET_SERVE_SERVICE_H_
#define CFNET_SERVE_SERVICE_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "json/json.h"
#include "serve/cache.h"
#include "serve/epoch_store.h"
#include "serve/metrics.h"
#include "serve/queries.h"
#include "serve/serving_snapshot.h"
#include "util/circuit_breaker.h"

namespace cfnet::serve {

/// One query against the serving tier. Same request/response shape as
/// `net::ApiService` (endpoint + params, HTTP-ish status + JSON body), but
/// every request additionally carries a deadline — the overload contract is
/// built around it.
struct QueryRequest {
  std::string endpoint;
  std::map<std::string, std::string> params;
  /// Absolute deadline in the service clock domain; 0 = the class default
  /// (relative to submit time) is applied at admission.
  int64_t deadline_micros = 0;

  QueryRequest() = default;
  QueryRequest(std::string ep, std::map<std::string, std::string> p = {})
      : endpoint(std::move(ep)), params(std::move(p)) {}
};

struct QueryResponse {
  /// How the request left the system — exactly one of these per request.
  enum class Outcome {
    kServed,         // executed and completed within the deadline
    kShedQueueFull,  // rejected at admission (bounded queue full)
    kShedDeadline,   // expired in the queue, shed before execution
    kShedShutdown,   // service shutting down
    kTimeout,        // executed, but completed after the deadline
  };

  int status = 200;  // 200/400/404 from the query, 503 shed, 504 timeout
  std::shared_ptr<const json::Json> body;  // never null
  Outcome outcome = Outcome::kServed;
  QueryClass query_class = QueryClass::kSearch;
  bool degraded = false;   // served via the breaker's degraded path
  bool truncated = false;  // degraded limits actually clipped the answer
  bool cache_hit = false;
  uint64_t epoch = 0;      // snapshot epoch the answer was computed against
  int64_t queue_micros = 0;
  int64_t exec_micros = 0;
  int64_t total_micros = 0;

  bool served() const { return outcome == Outcome::kServed; }
};

/// Per-query-class admission policy.
struct ClassPolicy {
  /// Bounded admission queue; submissions beyond this are shed immediately.
  size_t queue_capacity = 512;
  /// Applied when a request carries no explicit deadline.
  int64_t default_deadline_micros = 50'000;
  /// Full executions slower than this count as breaker failures; enough
  /// consecutive ones trip the class into degraded mode.
  int64_t latency_budget_micros = 10'000;
  util::CircuitBreakerConfig breaker{/*failure_threshold=*/8,
                                     /*cooldown_micros=*/250'000,
                                     /*half_open_probes=*/2};
};

struct QueryServiceConfig {
  int worker_threads = 2;
  ClassPolicy search{/*queue_capacity=*/1024,
                     /*default_deadline_micros=*/25'000,
                     /*latency_budget_micros=*/5'000};
  ClassPolicy recommend{/*queue_capacity=*/256,
                        /*default_deadline_micros=*/100'000,
                        /*latency_budget_micros=*/25'000};
  ClassPolicy facet{/*queue_capacity=*/512,
                    /*default_deadline_micros=*/25'000,
                    /*latency_budget_micros=*/5'000};
  size_t cache_capacity = 8192;
  int64_t cache_ttl_micros = 5'000'000;
  /// Service clock; defaults to steady_clock microseconds. Tests install a
  /// manual clock to drive deadlines and breaker cooldowns deterministically.
  std::function<int64_t()> now_fn;
  /// Test hook, invoked on every execution with (class, degraded) before
  /// the query runs — lets tests simulate slow query classes.
  std::function<void(QueryClass, bool)> execution_hook;
};

/// Overload-hardened in-process query service over the published snapshot
/// epochs. The robustness spine:
///
///  * bounded admission queues with deadline-aware shedding — work whose
///    deadline already expired is shed before execution, so a backlog never
///    wastes workers on answers nobody is waiting for;
///  * per-class circuit breakers: a class whose full executions keep
///    blowing their latency budget degrades to a cheaper answer (cached, or
///    truncated top-K marked `degraded`) instead of starving the others;
///  * epoch-pinned reads: each execution pins the current snapshot, so a
///    concurrent hot-swap never tears a response;
///  * an LRU/TTL result cache keyed on (fingerprint, epoch) — a swap
///    naturally invalidates it.
///
/// Shed / timeout / served / degraded are first-class per-class metrics.
class QueryService {
 public:
  QueryService(EpochStore<ServingSnapshot>* store, QueryServiceConfig config);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Blocking call: submits and waits for the response.
  QueryResponse Call(QueryRequest request);

  /// Asynchronous submit. `done` runs inline when the request is shed at
  /// admission, otherwise on a worker thread. Always invoked exactly once.
  void SubmitAsync(QueryRequest request,
                   std::function<void(QueryResponse)> done);

  /// Stops accepting work, sheds everything still queued (Outcome
  /// kShedShutdown) and joins the workers. Idempotent; also run by the
  /// destructor.
  void Shutdown();

  const ClassStats& stats(QueryClass c) const {
    return stats_[static_cast<size_t>(c)];
  }
  const ResultCache& cache() const { return cache_; }
  util::CircuitBreaker& breaker(QueryClass c) {
    return *breakers_[static_cast<size_t>(c)];
  }
  int64_t now_micros() const { return now_(); }

  /// Records how the last published epoch was built, for StatsJson's
  /// `epochs` block (`epochs_incremental` / `epochs_full` counters,
  /// `epoch_build_ms` gauges). Called by whatever drives epoch production
  /// (e.g. the platform's epoch_published_hook subscriber).
  void RecordEpochBuild(double build_ms, bool incremental);

  /// Point-in-time metrics document (per class + cache + epochs).
  json::Json StatsJson() const;

 private:
  struct Pending {
    QueryRequest request;
    QueryClass query_class;
    int64_t submit_micros = 0;
    int64_t deadline_micros = 0;
    std::function<void(QueryResponse)> done;
  };

  static constexpr size_t kNumClasses = 3;

  const ClassPolicy& policy(QueryClass c) const;
  void WorkerLoop();
  void Process(Pending pending);
  QueryResponse MakeShedResponse(const Pending& pending,
                                 QueryResponse::Outcome outcome,
                                 const char* reason) const;

  EpochStore<ServingSnapshot>* store_;
  QueryServiceConfig config_;
  std::function<int64_t()> now_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::array<std::deque<Pending>, kNumClasses> queues_;
  /// Mirror of each queue's size, readable without mu_. Admission sheds
  /// (queue full / deadline unreachable) decide on this and never take the
  /// lock — under overload sheds outnumber admissions several times over,
  /// and keeping them off the mutex keeps the workers fed.
  std::array<std::atomic<size_t>, kNumClasses> queue_depth_{};
  size_t rr_next_ = 0;  // round-robin dequeue cursor across classes
  bool accepting_ = true;
  bool stopping_ = false;

  std::array<std::unique_ptr<util::CircuitBreaker>, kNumClasses> breakers_;
  /// EWMA of the mean gap between dequeues across all workers — the
  /// observed whole-service drain interval, which prices in everything a
  /// queued request actually waits behind (execution, locking, scheduler
  /// stalls), not just query compute. Measured over windows of
  /// kDrainWindow dequeues rather than per-sample: dequeues arrive in
  /// sub-microsecond bursts separated by multi-millisecond stalls, and a
  /// per-sample EWMA would track the burst mode instead of the true rate.
  /// Admission control uses it to predict whether a submission could still
  /// meet its deadline behind the current backlog; 0 = no samples yet.
  static constexpr uint64_t kDrainWindow = 64;
  std::atomic<int64_t> drain_gap_ewma_micros_{0};
  std::atomic<uint64_t> dequeue_seq_{0};
  std::atomic<int64_t> drain_window_start_micros_{0};
  mutable std::array<ClassStats, kNumClasses> stats_;
  ResultCache cache_;
  std::atomic<uint64_t> last_seen_epoch_{0};
  /// Epoch-build accounting (RecordEpochBuild). Durations are stored as
  /// integer microseconds so they stay plain atomics.
  std::atomic<uint64_t> epochs_incremental_{0};
  std::atomic<uint64_t> epochs_full_{0};
  std::atomic<int64_t> last_epoch_build_micros_{0};
  std::atomic<int64_t> epoch_build_micros_total_{0};
  std::vector<std::thread> workers_;
  bool shut_down_ = false;
};

}  // namespace cfnet::serve

#endif  // CFNET_SERVE_SERVICE_H_
