#include "serve/serving_snapshot.h"

#include <algorithm>
#include <cctype>

#include "community/louvain.h"
#include "graph/centrality.h"
#include "util/rng.h"

namespace cfnet::serve {
namespace {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string DefaultName(const char* prefix, uint64_t id) {
  return std::string(prefix) + "-" + std::to_string(id);
}

}  // namespace

std::unique_ptr<const ServingSnapshot> BuildServingSnapshot(
    uint64_t epoch, const graph::BipartiteGraph& g,
    const SnapshotBuildOptions& options) {
  const graph::BipartiteGraph* graph = &g;
  graph::BipartiteGraph filtered;
  if (options.min_investments > 1) {
    filtered = g.FilterLeftByMinDegree(options.min_investments);
    graph = &filtered;
  }
  graph::WeightedGraph projection =
      graph::WeightedGraph::ProjectLeft(*graph, options.max_right_degree);
  community::LouvainResult louvain = community::RunLouvain(projection);
  return AssembleServingSnapshot(epoch, *graph, projection, louvain.labels,
                                 louvain.communities, options);
}

std::unique_ptr<const ServingSnapshot> AssembleServingSnapshot(
    uint64_t epoch, const graph::BipartiteGraph& g,
    const graph::WeightedGraph& projection,
    const std::vector<int>& community_labels,
    const community::CommunitySet& communities,
    const SnapshotBuildOptions& options) {
  auto snap = std::make_unique<ServingSnapshot>();
  snap->epoch = epoch;
  snap->graph = g;
  const graph::BipartiteGraph& graph = snap->graph;
  const size_t n = graph.num_left();

  snap->projection = projection;
  snap->community_labels = community_labels;
  snap->communities = communities;
  std::vector<double> centrality = graph::PageRank(snap->projection);

  snap->investors.resize(n);
  for (uint32_t l = 0; l < n; ++l) {
    ServingSnapshot::Investor& inv = snap->investors[l];
    inv.id = graph.LeftId(l);
    inv.name = options.investor_name ? options.investor_name(inv.id)
                                     : DefaultName("investor", inv.id);
    inv.name_lower = ToLower(inv.name);
    inv.community = l < snap->community_labels.size()
                        ? snap->community_labels[l]
                        : -1;
    inv.centrality = l < centrality.size() ? centrality[l] : 0.0;
  }

  snap->by_name.resize(n);
  for (uint32_t l = 0; l < n; ++l) snap->by_name[l] = l;
  std::sort(snap->by_name.begin(), snap->by_name.end(),
            [&](uint32_t a, uint32_t b) {
              const auto& ia = snap->investors[a];
              const auto& ib = snap->investors[b];
              if (ia.name_lower != ib.name_lower) {
                return ia.name_lower < ib.name_lower;
              }
              return ia.id < ib.id;
            });
  snap->by_centrality = snap->by_name;  // any permutation works as input
  std::sort(snap->by_centrality.begin(), snap->by_centrality.end(),
            [&](uint32_t a, uint32_t b) {
              const auto& ia = snap->investors[a];
              const auto& ib = snap->investors[b];
              if (ia.centrality != ib.centrality) {
                return ia.centrality > ib.centrality;
              }
              return ia.id < ib.id;
            });

  snap->company_names.resize(graph.num_right());
  for (uint32_t r = 0; r < graph.num_right(); ++r) {
    const uint64_t id = graph.RightId(r);
    snap->company_names[r] = options.company_name
                                 ? options.company_name(id)
                                 : DefaultName("company", id);
  }

  // Facet payloads, precomputed so facet queries are pure JSON assembly.
  {
    json::Json communities = json::Json::MakeArray();
    for (size_t c = 0; c < snap->communities.communities.size(); ++c) {
      const std::vector<uint32_t>& members = snap->communities.communities[c];
      json::Json entry = json::Json::MakeObject();
      entry.Set("community", static_cast<int64_t>(c));
      entry.Set("size", static_cast<int64_t>(members.size()));
      double degree_sum = 0;
      for (uint32_t m : members) {
        degree_sum += static_cast<double>(graph.OutDegree(m));
      }
      entry.Set("mean_investments",
                members.empty()
                    ? 0.0
                    : degree_sum / static_cast<double>(members.size()));
      // Top members by centrality.
      std::vector<uint32_t> top(members.begin(), members.end());
      std::sort(top.begin(), top.end(), [&](uint32_t a, uint32_t b) {
        const auto& ia = snap->investors[a];
        const auto& ib = snap->investors[b];
        if (ia.centrality != ib.centrality) {
          return ia.centrality > ib.centrality;
        }
        return ia.id < ib.id;
      });
      if (top.size() > options.facet_top_members) {
        top.resize(options.facet_top_members);
      }
      json::Json names = json::Json::MakeArray();
      for (uint32_t m : top) names.Append(json::Json(snap->investors[m].name));
      entry.Set("top_members", std::move(names));
      communities.Append(std::move(entry));
    }
    json::Json payload = json::Json::MakeObject();
    payload.Set("num_communities",
                static_cast<int64_t>(snap->communities.communities.size()));
    payload.Set("avg_size", snap->communities.AverageSize());
    payload.Set("communities", std::move(communities));
    snap->facet_communities = std::move(payload);
  }
  {
    // Log-spaced investment-degree histogram: bucket k holds investors with
    // out-degree in [2^k, 2^(k+1)).
    std::vector<int64_t> buckets;
    for (uint32_t l = 0; l < n; ++l) {
      size_t d = graph.OutDegree(l);
      size_t b = 0;
      while ((size_t{1} << (b + 1)) <= d) ++b;
      if (buckets.size() <= b) buckets.resize(b + 1, 0);
      ++buckets[b];
    }
    json::Json rows = json::Json::MakeArray();
    for (size_t b = 0; b < buckets.size(); ++b) {
      json::Json row = json::Json::MakeObject();
      row.Set("min_degree", static_cast<int64_t>(size_t{1} << b));
      row.Set("investors", buckets[b]);
      rows.Append(std::move(row));
    }
    json::Json payload = json::Json::MakeObject();
    payload.Set("num_investors", static_cast<int64_t>(n));
    payload.Set("degree_histogram", std::move(rows));
    json::Json central = json::Json::MakeArray();
    for (size_t i = 0; i < snap->by_centrality.size() && i < 10; ++i) {
      const auto& inv = snap->investors[snap->by_centrality[i]];
      json::Json row = json::Json::MakeObject();
      row.Set("name", inv.name);
      row.Set("centrality", inv.centrality);
      central.Append(std::move(row));
    }
    payload.Set("most_central", std::move(central));
    snap->facet_centrality = std::move(payload);
  }

  uint64_t fp = Mix64(epoch);
  fp ^= Mix64(fp ^ graph.num_left());
  fp ^= Mix64(fp ^ graph.num_right());
  fp ^= Mix64(fp ^ graph.num_edges());
  fp ^= Mix64(fp ^ snap->communities.communities.size());
  snap->content_fingerprint = fp;
  return snap;
}

}  // namespace cfnet::serve
