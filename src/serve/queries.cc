#include "serve/queries.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace cfnet::serve {
namespace {

std::string GetParam(const std::map<std::string, std::string>& params,
                     const std::string& key, const std::string& dflt = "") {
  auto it = params.find(key);
  return it == params.end() ? dflt : it->second;
}

int64_t GetIntParam(const std::map<std::string, std::string>& params,
                    const std::string& key, int64_t dflt) {
  auto it = params.find(key);
  if (it == params.end() || it->second.empty()) return dflt;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  return (end == nullptr || *end != '\0') ? dflt : static_cast<int64_t>(v);
}

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

json::Json InvestorRow(const ServingSnapshot& snap, uint32_t l) {
  const ServingSnapshot::Investor& inv = snap.investors[l];
  json::Json row = json::Json::MakeObject();
  row.Set("id", static_cast<int64_t>(inv.id));
  row.Set("name", inv.name);
  row.Set("community", static_cast<int64_t>(inv.community));
  row.Set("centrality", inv.centrality);
  row.Set("investments", static_cast<int64_t>(snap.graph.OutDegree(l)));
  return row;
}

bool PassesFilters(const ServingSnapshot& snap, uint32_t l, int64_t community,
                   int64_t min_investments) {
  if (community >= 0 &&
      snap.investors[l].community != static_cast<int>(community)) {
    return false;
  }
  return snap.graph.OutDegree(l) >=
         static_cast<size_t>(min_investments < 1 ? 1 : min_investments);
}

QueryOutcome SearchInvestors(const ServingSnapshot& snap,
                             const std::map<std::string, std::string>& params,
                             const QueryLimits& limits) {
  QueryOutcome out;
  const std::string q = ToLower(GetParam(params, "q"));
  const size_t k =
      static_cast<size_t>(std::max<int64_t>(1, GetIntParam(params, "k", 10)));
  const int64_t community = GetIntParam(params, "community", -1);
  const int64_t min_inv = GetIntParam(params, "min_investments", 1);

  std::vector<uint32_t> matches;
  size_t scanned = 0;
  if (q.empty()) {
    // No query: the most central investors passing the filters.
    for (uint32_t l : snap.by_centrality) {
      if (++scanned > limits.max_scan) {
        out.truncated = true;
        break;
      }
      if (PassesFilters(snap, l, community, min_inv)) {
        matches.push_back(l);
        if (matches.size() >= k) break;
      }
    }
  } else {
    // Prefix hits first via the sorted name index...
    auto begin = std::lower_bound(
        snap.by_name.begin(), snap.by_name.end(), q,
        [&](uint32_t l, const std::string& needle) {
          return snap.investors[l].name_lower < needle;
        });
    for (auto it = begin; it != snap.by_name.end(); ++it) {
      const std::string& name = snap.investors[*it].name_lower;
      if (name.compare(0, q.size(), q) != 0) break;
      if (++scanned > limits.max_scan) {
        out.truncated = true;
        break;
      }
      if (PassesFilters(snap, *it, community, min_inv)) {
        matches.push_back(*it);
      }
    }
    // ...then substring hits (full path only; the degraded path stays
    // prefix-only, which is the expensive-scan part of search).
    if (limits.allow_substring && !out.truncated) {
      for (uint32_t l : snap.by_name) {
        if (++scanned > limits.max_scan) {
          out.truncated = true;
          break;
        }
        const std::string& name = snap.investors[l].name_lower;
        const size_t pos = name.find(q);
        if (pos == std::string::npos || pos == 0) continue;  // prefix done
        if (PassesFilters(snap, l, community, min_inv)) matches.push_back(l);
      }
    }
  }

  std::sort(matches.begin(), matches.end(), [&](uint32_t a, uint32_t b) {
    const auto& ia = snap.investors[a];
    const auto& ib = snap.investors[b];
    if (ia.centrality != ib.centrality) return ia.centrality > ib.centrality;
    return ia.id < ib.id;
  });
  matches.erase(std::unique(matches.begin(), matches.end()), matches.end());
  if (matches.size() > k) matches.resize(k);

  json::Json rows = json::Json::MakeArray();
  for (uint32_t l : matches) rows.Append(InvestorRow(snap, l));
  out.body.Set("query", q);
  out.body.Set("results", std::move(rows));
  return out;
}

QueryOutcome InvestorProfile(const ServingSnapshot& snap,
                             const std::map<std::string, std::string>& params) {
  QueryOutcome out;
  const uint64_t id = static_cast<uint64_t>(GetIntParam(params, "id", 0));
  const uint32_t l = snap.graph.LeftIndexOf(id);
  if (l == graph::BipartiteGraph::kInvalidIndex) {
    out.status = 404;
    out.body.Set("error", "unknown investor id");
    return out;
  }
  out.body = InvestorRow(snap, l);
  json::Json portfolio = json::Json::MakeArray();
  size_t listed = 0;
  for (uint32_t r : snap.graph.OutNeighbors(l)) {
    if (++listed > 20) break;
    portfolio.Append(json::Json(snap.company_names[r]));
  }
  out.body.Set("portfolio", std::move(portfolio));
  return out;
}

/// Shared scorer for both recommendation endpoints: expands the seeds'
/// co-investment neighborhoods (optionally a damped second hop) and adds a
/// community-overlap bonus, then returns the top-k scored candidates.
QueryOutcome RecommendFromSeeds(const ServingSnapshot& snap,
                                std::vector<uint32_t> seeds,
                                const std::vector<uint32_t>& exclude_sorted,
                                size_t k, const QueryLimits& limits) {
  QueryOutcome out;
  // Heaviest seeds first so degraded truncation keeps the strongest signal.
  std::sort(seeds.begin(), seeds.end(), [&](uint32_t a, uint32_t b) {
    const double da = snap.projection.WeightedDegree(a);
    const double db = snap.projection.WeightedDegree(b);
    if (da != db) return da > db;
    return a < b;
  });
  if (seeds.size() > limits.max_seeds) {
    seeds.resize(limits.max_seeds);
    out.truncated = true;
  }

  auto excluded = [&](uint32_t v) {
    return std::binary_search(exclude_sorted.begin(), exclude_sorted.end(), v);
  };

  // Seed-community histogram for the overlap bonus.
  std::unordered_map<int, size_t> seed_communities;
  for (uint32_t s : seeds) {
    const int c = snap.investors[s].community;
    if (c >= 0) ++seed_communities[c];
  }

  std::unordered_map<uint32_t, double> score;
  std::vector<std::pair<double, uint32_t>> first_hop;  // for 2-hop expansion
  for (uint32_t s : seeds) {
    auto nbrs = snap.projection.Neighbors(s);
    auto ws = snap.projection.Weights(s);
    const size_t limit = std::min(nbrs.size(), limits.max_neighbors);
    if (limit < nbrs.size()) out.truncated = true;
    for (size_t i = 0; i < limit; ++i) {
      const uint32_t v = nbrs[i];
      if (excluded(v)) continue;
      score[v] += ws[i];
      first_hop.emplace_back(ws[i], v);
    }
  }

  if (limits.second_hop && !first_hop.empty()) {
    // Damped second hop from the strongest first-hop candidates: investors
    // two co-investments away still count, at a quarter of the weight.
    std::sort(first_hop.rbegin(), first_hop.rend());
    constexpr size_t kSecondHopSources = 32;
    constexpr double kDamping = 0.25;
    const size_t sources = std::min(first_hop.size(), kSecondHopSources);
    for (size_t i = 0; i < sources; ++i) {
      const auto [w1, u] = first_hop[i];
      auto nbrs = snap.projection.Neighbors(u);
      auto ws = snap.projection.Weights(u);
      const size_t limit = std::min(nbrs.size(), limits.max_neighbors);
      for (size_t j = 0; j < limit; ++j) {
        const uint32_t v = nbrs[j];
        if (excluded(v)) continue;
        score[v] += kDamping * std::min(w1, ws[j]);
      }
    }
  }

  if (!seeds.empty() && !seed_communities.empty()) {
    constexpr double kCommunityBonus = 1.0;
    for (auto& [v, sc] : score) {
      const int c = snap.investors[v].community;
      auto it = c >= 0 ? seed_communities.find(c) : seed_communities.end();
      if (it != seed_communities.end()) {
        sc += kCommunityBonus * static_cast<double>(it->second) /
              static_cast<double>(seeds.size());
      }
    }
  }

  std::vector<std::pair<double, uint32_t>> ranked;
  ranked.reserve(score.size());
  for (const auto& [v, sc] : score) ranked.emplace_back(sc, v);
  std::sort(ranked.begin(), ranked.end(),
            [&](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return snap.investors[a.second].id < snap.investors[b.second].id;
            });
  if (ranked.size() > k) ranked.resize(k);

  json::Json rows = json::Json::MakeArray();
  for (const auto& [sc, v] : ranked) {
    json::Json row = InvestorRow(snap, v);
    row.Set("score", sc);
    rows.Append(std::move(row));
  }
  out.body.Set("seeds_used", static_cast<int64_t>(seeds.size()));
  out.body.Set("candidates_scored", static_cast<int64_t>(score.size()));
  out.body.Set("recommendations", std::move(rows));
  return out;
}

QueryOutcome RecommendForStartup(
    const ServingSnapshot& snap,
    const std::map<std::string, std::string>& params,
    const QueryLimits& limits) {
  const uint64_t startup_id =
      static_cast<uint64_t>(GetIntParam(params, "startup_id", 0));
  const size_t k =
      static_cast<size_t>(std::max<int64_t>(1, GetIntParam(params, "k", 10)));
  const uint32_t r = snap.graph.RightIndexOf(startup_id);
  if (r == graph::BipartiteGraph::kInvalidIndex) {
    QueryOutcome out;
    out.status = 404;
    out.body.Set("error", "unknown startup id");
    return out;
  }
  auto investors = snap.graph.InNeighbors(r);
  std::vector<uint32_t> seeds(investors.begin(), investors.end());
  std::vector<uint32_t> exclude = seeds;  // already invested: don't recommend
  std::sort(exclude.begin(), exclude.end());
  QueryOutcome out = RecommendFromSeeds(snap, std::move(seeds), exclude, k,
                                        limits);
  out.body.Set("startup", snap.company_names[r]);
  out.body.Set("existing_investors", static_cast<int64_t>(investors.size()));
  return out;
}

QueryOutcome SimilarInvestors(const ServingSnapshot& snap,
                              const std::map<std::string, std::string>& params,
                              const QueryLimits& limits) {
  const uint64_t id =
      static_cast<uint64_t>(GetIntParam(params, "investor_id", 0));
  const size_t k =
      static_cast<size_t>(std::max<int64_t>(1, GetIntParam(params, "k", 10)));
  const uint32_t l = snap.graph.LeftIndexOf(id);
  if (l == graph::BipartiteGraph::kInvalidIndex) {
    QueryOutcome out;
    out.status = 404;
    out.body.Set("error", "unknown investor id");
    return out;
  }
  QueryOutcome out = RecommendFromSeeds(snap, {l}, {l}, k, limits);
  out.body.Set("investor", snap.investors[l].name);
  return out;
}

}  // namespace

const char* QueryClassName(QueryClass c) {
  switch (c) {
    case QueryClass::kSearch:
      return "search";
    case QueryClass::kRecommend:
      return "recommend";
    case QueryClass::kFacet:
      return "facet";
  }
  return "unknown";
}

QueryLimits DegradedLimits() {
  QueryLimits limits;
  limits.max_scan = 512;
  limits.allow_substring = false;
  limits.max_seeds = 8;
  limits.max_neighbors = 64;
  limits.second_hop = false;
  return limits;
}

QueryClass ClassifyEndpoint(const std::string& endpoint) {
  if (endpoint == "investors.recommend" || endpoint == "investors.similar") {
    return QueryClass::kRecommend;
  }
  if (endpoint == "facets.communities" || endpoint == "facets.centrality") {
    return QueryClass::kFacet;
  }
  return QueryClass::kSearch;
}

uint64_t FingerprintQuery(const std::string& endpoint,
                          const std::map<std::string, std::string>& params) {
  auto mix_string = [](uint64_t h, const std::string& s) {
    for (char c : s) h = Mix64(h ^ static_cast<uint8_t>(c));
    return Mix64(h ^ s.size());
  };
  uint64_t h = mix_string(0x9e3779b97f4a7c15ull, endpoint);
  for (const auto& [key, value] : params) {  // std::map: sorted, stable
    h = mix_string(h, key);
    h = mix_string(h, value);
  }
  return h;
}

QueryOutcome ExecuteQuery(const ServingSnapshot& snap,
                          const std::string& endpoint,
                          const std::map<std::string, std::string>& params,
                          const QueryLimits& limits) {
  QueryOutcome out;
  if (endpoint == "investors.search") {
    out = SearchInvestors(snap, params, limits);
  } else if (endpoint == "investors.profile") {
    out = InvestorProfile(snap, params);
  } else if (endpoint == "investors.recommend") {
    out = RecommendForStartup(snap, params, limits);
  } else if (endpoint == "investors.similar") {
    out = SimilarInvestors(snap, params, limits);
  } else if (endpoint == "facets.communities") {
    out.body = snap.facet_communities;
  } else if (endpoint == "facets.centrality") {
    out.body = snap.facet_centrality;
  } else {
    out.status = 404;
    out.body.Set("error", "unknown endpoint: " + endpoint);
  }
  // Every body carries the epoch + content fingerprint: a torn epoch view
  // (fields from two snapshots in one response) becomes detectable.
  out.body.Set("epoch", static_cast<int64_t>(snap.epoch));
  out.body.Set("fingerprint", static_cast<int64_t>(snap.content_fingerprint));
  return out;
}

}  // namespace cfnet::serve
