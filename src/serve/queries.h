#ifndef CFNET_SERVE_QUERIES_H_
#define CFNET_SERVE_QUERIES_H_

#include <cstdint>
#include <map>
#include <string>

#include "json/json.h"
#include "serve/serving_snapshot.h"

namespace cfnet::serve {

/// The serving tier's query classes. Search and facet queries are cheap
/// (index lookups / precomputed payloads); recommendation walks the
/// co-investment projection and is the class that degrades under load.
enum class QueryClass { kSearch, kRecommend, kFacet };

const char* QueryClassName(QueryClass c);

/// Execution limits for one query. The full path uses the generous
/// defaults; the degraded path (breaker open) swaps in hard caps and skips
/// the expensive second hop, trading answer quality for bounded cost.
struct QueryLimits {
  size_t max_scan = SIZE_MAX;        // search: name-index entries examined
  bool allow_substring = true;       // search: contains-scan permitted
  size_t max_seeds = SIZE_MAX;       // recommend: seed investors expanded
  size_t max_neighbors = SIZE_MAX;   // recommend: neighbors per seed
  bool second_hop = true;            // recommend: 2-hop expansion
};

/// Limits used when a query class is degraded.
QueryLimits DegradedLimits();

/// Outcome of one query execution: an HTTP-ish status plus a JSON body.
/// `truncated` reports that degraded limits actually clipped the answer.
struct QueryOutcome {
  int status = 200;  // 200, 400 bad params, 404 unknown id/endpoint
  json::Json body;
  bool truncated = false;
};

/// Executes `endpoint` with `params` against one pinned snapshot. Pure and
/// read-only: safe from any number of workers concurrently.
///
/// Endpoints:
///   investors.search     q=<prefix/substring> k= community= min_investments=
///   investors.profile    id=<investor id>
///   investors.recommend  startup_id=<company id> k=
///   investors.similar    investor_id=<investor id> k=
///   facets.communities   (precomputed)
///   facets.centrality    (precomputed)
QueryOutcome ExecuteQuery(const ServingSnapshot& snap,
                          const std::string& endpoint,
                          const std::map<std::string, std::string>& params,
                          const QueryLimits& limits = {});

/// Maps an endpoint to its admission class (kSearch for unknown endpoints —
/// they fail fast with a 404 in ExecuteQuery).
QueryClass ClassifyEndpoint(const std::string& endpoint);

/// Stable 64-bit fingerprint of (endpoint, params) — the result-cache key
/// component; parameter order does not matter (std::map iterates sorted).
uint64_t FingerprintQuery(const std::string& endpoint,
                          const std::map<std::string, std::string>& params);

}  // namespace cfnet::serve

#endif  // CFNET_SERVE_QUERIES_H_
