#include "serve/load_gen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

namespace cfnet::serve {
namespace {

/// Thread-safe sink for responses of one load phase. Tearing detection:
/// every 200 body carries the snapshot's (epoch, content fingerprint); two
/// responses claiming the same epoch but different fingerprints — or a body
/// epoch disagreeing with the transport epoch — mean a torn view.
class Collector {
 public:
  void Record(const QueryResponse& resp) {
    switch (resp.outcome) {
      case QueryResponse::Outcome::kServed:
        served_.fetch_add(1, std::memory_order_relaxed);
        if (resp.degraded) degraded_.fetch_add(1, std::memory_order_relaxed);
        if (resp.cache_hit) cache_hits_.fetch_add(1, std::memory_order_relaxed);
        if (resp.status >= 400) errors_.fetch_add(1, std::memory_order_relaxed);
        latency_.Record(resp.total_micros);
        break;
      case QueryResponse::Outcome::kShedQueueFull:
        shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
        break;
      case QueryResponse::Outcome::kShedDeadline:
        shed_deadline_.fetch_add(1, std::memory_order_relaxed);
        break;
      case QueryResponse::Outcome::kShedShutdown:
        shed_shutdown_.fetch_add(1, std::memory_order_relaxed);
        break;
      case QueryResponse::Outcome::kTimeout:
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    if (resp.status == 200 && resp.body) {
      const uint64_t body_epoch =
          static_cast<uint64_t>(resp.body->Get("epoch").AsInt());
      const uint64_t body_fp =
          static_cast<uint64_t>(resp.body->Get("fingerprint").AsInt());
      std::lock_guard<std::mutex> lock(mu_);
      if (body_epoch != resp.epoch) {
        ++torn_;
      } else {
        auto [it, inserted] = epoch_fp_.emplace(body_epoch, body_fp);
        if (!inserted && it->second != body_fp) ++torn_;
      }
    }
    const int64_t done = completed_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (done == issued_target_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_cv_.notify_all();
    }
  }

  /// Blocks until `issued` responses arrived (open-loop drain).
  void AwaitCompleted(int64_t issued) {
    issued_target_.store(issued, std::memory_order_release);
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [this, issued] {
      return completed_.load(std::memory_order_acquire) >= issued;
    });
  }

  LoadResult Finalize(int64_t issued, int64_t wall_micros) const {
    LoadResult r;
    r.issued = issued;
    r.served = served_.load();
    r.degraded = degraded_.load();
    r.cache_hits = cache_hits_.load();
    r.shed_queue_full = shed_queue_full_.load();
    r.shed_deadline = shed_deadline_.load();
    r.shed_shutdown = shed_shutdown_.load();
    r.timeouts = timeouts_.load();
    r.errors = errors_.load();
    r.wall_micros = wall_micros;
    r.latency_p50_micros = latency_.PercentileMicros(0.50);
    r.latency_p99_micros = latency_.PercentileMicros(0.99);
    r.latency_mean_micros = latency_.mean_micros();
    {
      std::lock_guard<std::mutex> lock(mu_);
      r.torn_responses = torn_;
      r.epochs_seen = static_cast<int64_t>(epoch_fp_.size());
    }
    const double wall_s =
        wall_micros > 0 ? static_cast<double>(wall_micros) / 1e6 : 1e-9;
    r.offered_rps = static_cast<double>(issued) / wall_s;
    r.goodput_rps = static_cast<double>(r.served) / wall_s;
    return r;
  }

 private:
  std::atomic<int64_t> served_{0};
  std::atomic<int64_t> degraded_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> shed_queue_full_{0};
  std::atomic<int64_t> shed_deadline_{0};
  std::atomic<int64_t> shed_shutdown_{0};
  std::atomic<int64_t> timeouts_{0};
  std::atomic<int64_t> errors_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> issued_target_{INT64_MAX};
  LatencyHistogram latency_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, uint64_t> epoch_fp_;
  int64_t torn_ = 0;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
};

}  // namespace

WorkloadGenerator::WorkloadGenerator(const ServingSnapshot& snap,
                                     PersonaMix mix) {
  double total = mix.founder + mix.investor + mix.job_seeker;
  if (total <= 0) {
    total = 1;
    mix = PersonaMix{1, 0, 0};
  }
  founder_cut_ = mix.founder / total;
  investor_cut_ = founder_cut_ + mix.investor / total;

  investor_ids_.reserve(snap.graph.num_left());
  for (uint32_t l = 0; l < snap.graph.num_left(); ++l) {
    investor_ids_.push_back(snap.graph.LeftId(l));
  }
  company_ids_.reserve(snap.graph.num_right());
  for (uint32_t r = 0; r < snap.graph.num_right(); ++r) {
    company_ids_.push_back(snap.graph.RightId(r));
  }
  // Search seeds: short prefixes of real investor names, deduplicated, so
  // prefix queries hit populated regions of the name index.
  std::unordered_set<std::string> seen;
  for (size_t i = 0; i < snap.investors.size() && prefixes_.size() < 256;
       i += 7) {
    const std::string& name = snap.investors[i].name_lower;
    if (name.size() < 2) continue;
    std::string prefix = name.substr(0, 2 + (i % 3));
    if (seen.insert(prefix).second) prefixes_.push_back(std::move(prefix));
  }
  if (prefixes_.empty()) prefixes_.push_back("a");
}

QueryRequest WorkloadGenerator::FounderRequest(std::mt19937_64& rng) const {
  if (!company_ids_.empty() && rng() % 10 < 7) {
    QueryRequest req("investors.recommend");
    req.params["startup_id"] =
        std::to_string(company_ids_[rng() % company_ids_.size()]);
    req.params["k"] = "10";
    return req;
  }
  QueryRequest req("investors.search");
  req.params["q"] = prefixes_[rng() % prefixes_.size()];
  req.params["k"] = "10";
  return req;
}

QueryRequest WorkloadGenerator::InvestorRequest(std::mt19937_64& rng) const {
  const uint64_t roll = rng() % 100;
  if (roll < 50 && !investor_ids_.empty()) {
    QueryRequest req("investors.similar");
    req.params["investor_id"] =
        std::to_string(investor_ids_[rng() % investor_ids_.size()]);
    req.params["k"] = "10";
    return req;
  }
  if (roll < 75) return QueryRequest("facets.communities");
  QueryRequest req("investors.profile");
  if (!investor_ids_.empty()) {
    req.params["id"] =
        std::to_string(investor_ids_[rng() % investor_ids_.size()]);
  }
  return req;
}

QueryRequest WorkloadGenerator::JobSeekerRequest(std::mt19937_64& rng) const {
  const uint64_t roll = rng() % 100;
  if (roll < 60) {
    QueryRequest req("investors.search");
    req.params["q"] = prefixes_[rng() % prefixes_.size()];
    req.params["k"] = "10";
    if (roll < 15) req.params["min_investments"] = "2";
    return req;
  }
  if (roll < 85) return QueryRequest("facets.centrality");
  QueryRequest req("investors.profile");
  if (!investor_ids_.empty()) {
    req.params["id"] =
        std::to_string(investor_ids_[rng() % investor_ids_.size()]);
  }
  return req;
}

QueryRequest WorkloadGenerator::Next(std::mt19937_64& rng) const {
  const double roll =
      static_cast<double>(rng() % 1'000'000) / 1'000'000.0;
  if (roll < founder_cut_) return FounderRequest(rng);
  if (roll < investor_cut_) return InvestorRequest(rng);
  return JobSeekerRequest(rng);
}

json::Json LoadResult::ToJson() const {
  json::Json doc = json::Json::MakeObject();
  doc.Set("issued", json::Json(issued));
  doc.Set("served", json::Json(served));
  doc.Set("degraded", json::Json(degraded));
  doc.Set("cache_hits", json::Json(cache_hits));
  doc.Set("shed_queue_full", json::Json(shed_queue_full));
  doc.Set("shed_deadline", json::Json(shed_deadline));
  doc.Set("shed_shutdown", json::Json(shed_shutdown));
  doc.Set("timeouts", json::Json(timeouts));
  doc.Set("errors", json::Json(errors));
  doc.Set("torn_responses", json::Json(torn_responses));
  doc.Set("epochs_seen", json::Json(epochs_seen));
  doc.Set("wall_micros", json::Json(wall_micros));
  doc.Set("latency_p50_micros", json::Json(latency_p50_micros));
  doc.Set("latency_p99_micros", json::Json(latency_p99_micros));
  doc.Set("latency_mean_micros", json::Json(latency_mean_micros));
  doc.Set("offered_rps", json::Json(offered_rps));
  doc.Set("goodput_rps", json::Json(goodput_rps));
  return doc;
}

LoadResult RunClosedLoop(QueryService& service, const WorkloadGenerator& gen,
                         const ClosedLoopConfig& config) {
  Collector collector;
  std::atomic<int64_t> issued{0};
  const int64_t start = service.now_micros();
  const int64_t stop_at = start + config.duration_micros;

  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(config.clients));
  for (int c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(config.seed * 0x9e3779b97f4a7c15ull +
                          static_cast<uint64_t>(c));
      int sent = 0;
      for (;;) {
        if (config.requests_per_client > 0) {
          if (sent >= config.requests_per_client) break;
        } else if (service.now_micros() >= stop_at) {
          break;
        }
        QueryRequest req = gen.Next(rng);
        if (config.deadline_micros > 0) {
          req.deadline_micros = service.now_micros() + config.deadline_micros;
        }
        QueryResponse resp = service.Call(std::move(req));
        collector.Record(resp);
        issued.fetch_add(1, std::memory_order_relaxed);
        ++sent;
      }
    });
  }
  for (auto& t : clients) t.join();
  return collector.Finalize(issued.load(), service.now_micros() - start);
}

LoadResult RunOpenLoop(QueryService& service, const WorkloadGenerator& gen,
                       const OpenLoopConfig& config) {
  Collector collector;
  std::mt19937_64 rng(config.seed);
  // Dispatch in 1 ms ticks instead of one sleep per request: at overload
  // rates (1e5+ rps) a per-request sleep_until spends more CPU waking the
  // scheduler than the service under test gets, which turns the generator
  // into the bottleneck it is supposed to create.
  constexpr int64_t kTickMicros = 1000;
  const double per_tick =
      std::max(config.offered_rps, 1.0) * kTickMicros / 1e6;
  double carry = 0;

  // Pre-generate the request trace so the timed loop only moves requests
  // out of a vector. Generating inline (rng + param-map allocations) at
  // overload rates makes the generator compete with the service for CPU —
  // on a small host that caps offered load well below the configured rate.
  const auto expected = static_cast<size_t>(
      std::max(config.offered_rps, 1.0) * config.duration_micros / 1e6 *
          1.25 +
      16);
  std::vector<QueryRequest> trace;
  trace.reserve(expected);
  for (size_t i = 0; i < expected; ++i) trace.push_back(gen.Next(rng));

  int64_t issued = 0;
  const auto wall_start = std::chrono::steady_clock::now();
  const int64_t start = service.now_micros();
  const int64_t stop_at = start + config.duration_micros;
  auto next_fire = wall_start;
  while (service.now_micros() < stop_at) {
    carry += per_tick;
    auto batch = static_cast<int64_t>(carry);
    carry -= static_cast<double>(batch);
    for (int64_t i = 0; i < batch; ++i) {
      const auto slot = static_cast<size_t>(issued);
      QueryRequest req = slot < trace.size() ? std::move(trace[slot])
                                             : gen.Next(rng);  // trace ran dry
      if (config.deadline_micros > 0) {
        req.deadline_micros = service.now_micros() + config.deadline_micros;
      }
      service.SubmitAsync(std::move(req), [&collector](QueryResponse resp) {
        collector.Record(resp);
      });
      ++issued;
    }
    next_fire += std::chrono::microseconds(kTickMicros);
    std::this_thread::sleep_until(next_fire);
  }
  collector.AwaitCompleted(issued);
  return collector.Finalize(issued, service.now_micros() - start);
}

}  // namespace cfnet::serve
