#ifndef CFNET_SERVE_LOAD_GEN_H_
#define CFNET_SERVE_LOAD_GEN_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "json/json.h"
#include "serve/metrics.h"
#include "serve/service.h"
#include "serve/serving_snapshot.h"

namespace cfnet::serve {

/// Traffic mix over the three user personas of the crowdfunding network:
/// founders looking for investors for their startup (recommendation-heavy),
/// investors scouting co-investors (similarity + facets) and job seekers
/// researching well-connected investors (search-heavy). Weights are
/// normalized internally.
struct PersonaMix {
  double founder = 0.25;
  double investor = 0.30;
  double job_seeker = 0.45;
};

/// Samples persona-shaped QueryRequests against one snapshot's universe
/// (its investor ids, company ids and name prefixes). Deterministic per
/// (snapshot, seed stream); safe to share across client threads — each
/// caller brings its own RNG.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const ServingSnapshot& snap, PersonaMix mix);

  QueryRequest Next(std::mt19937_64& rng) const;

 private:
  QueryRequest FounderRequest(std::mt19937_64& rng) const;
  QueryRequest InvestorRequest(std::mt19937_64& rng) const;
  QueryRequest JobSeekerRequest(std::mt19937_64& rng) const;

  double founder_cut_ = 0;   // cumulative mix thresholds in [0,1]
  double investor_cut_ = 0;
  std::vector<uint64_t> investor_ids_;
  std::vector<uint64_t> company_ids_;
  std::vector<std::string> prefixes_;  // search seeds from real names
};

/// Aggregated outcome of one load phase. `torn_responses` counts responses
/// whose (epoch, content fingerprint) pair disagrees with every other
/// response of the same epoch — the detector for a torn snapshot view; it
/// must stay zero.
struct LoadResult {
  int64_t issued = 0;
  int64_t served = 0;
  int64_t degraded = 0;
  int64_t cache_hits = 0;
  int64_t shed_queue_full = 0;
  int64_t shed_deadline = 0;
  int64_t shed_shutdown = 0;
  int64_t timeouts = 0;
  int64_t errors = 0;          // 4xx from the queries themselves
  int64_t torn_responses = 0;
  int64_t epochs_seen = 0;
  int64_t wall_micros = 0;
  int64_t latency_p50_micros = 0;  // served responses only
  int64_t latency_p99_micros = 0;
  double latency_mean_micros = 0;
  double offered_rps = 0;   // issued / wall
  double goodput_rps = 0;   // served within deadline / wall

  json::Json ToJson() const;
};

struct ClosedLoopConfig {
  int clients = 4;
  /// Stop after this many requests per client (0 = use duration).
  int requests_per_client = 0;
  /// Stop after this much wall time (service clock), if requests_per_client
  /// is 0.
  int64_t duration_micros = 1'000'000;
  int64_t deadline_micros = 0;  // relative per-request deadline; 0 = class default
  PersonaMix mix;
  uint64_t seed = 1;
};

struct OpenLoopConfig {
  /// Target offered load; the dispatcher fires SubmitAsync on this schedule
  /// regardless of completions — this is what pushes the service past
  /// saturation.
  double offered_rps = 1000;
  int64_t duration_micros = 1'000'000;
  int64_t deadline_micros = 0;
  PersonaMix mix;
  uint64_t seed = 1;
};

/// Closed loop: `clients` threads, each issuing the next request only after
/// the previous response arrives. Measures sustainable throughput.
LoadResult RunClosedLoop(QueryService& service, const WorkloadGenerator& gen,
                         const ClosedLoopConfig& config);

/// Open loop: fires requests at `offered_rps` without waiting, then drains.
/// Measures behavior under overload (shed/degraded/goodput at N× capacity).
LoadResult RunOpenLoop(QueryService& service, const WorkloadGenerator& gen,
                       const OpenLoopConfig& config);

}  // namespace cfnet::serve

#endif  // CFNET_SERVE_LOAD_GEN_H_
