#include "serve/cache.h"

namespace cfnet::serve {

std::shared_ptr<const json::Json> ResultCache::Lookup(uint64_t fingerprint,
                                                      uint64_t epoch,
                                                      int64_t now_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(Key{fingerprint, epoch});
  if (it == index_.end()) {
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (ttl_micros_ > 0 && now_micros - it->second->inserted_micros >= ttl_micros_) {
    lru_.erase(it->second);
    index_.erase(it);
    stats_.ttl_expirations.fetch_add(1, std::memory_order_relaxed);
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  stats_.hits.fetch_add(1, std::memory_order_relaxed);
  return it->second->body;
}

void ResultCache::Insert(uint64_t fingerprint, uint64_t epoch,
                         int64_t now_micros,
                         std::shared_ptr<const json::Json> body) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{fingerprint, epoch};
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->inserted_micros = now_micros;
    it->second->body = std::move(body);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, now_micros, std::move(body)});
  index_[key] = lru_.begin();
  stats_.inserts.fetch_add(1, std::memory_order_relaxed);
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    stats_.lru_evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

size_t ResultCache::EvictEpochsBefore(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t evicted = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.epoch < epoch) {
      index_.erase(it->key);
      it = lru_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  stats_.epoch_evictions.fetch_add(static_cast<int64_t>(evicted),
                                   std::memory_order_relaxed);
  return evicted;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace cfnet::serve
