#ifndef CFNET_SERVE_CACHE_H_
#define CFNET_SERVE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "json/json.h"

namespace cfnet::serve {

/// LRU + TTL result cache keyed on (query fingerprint, snapshot epoch).
/// Because the epoch is part of the key, a snapshot hot-swap naturally
/// invalidates every cached answer — a query against the new epoch can
/// never be served bytes computed from the old one. `EvictEpochsBefore`
/// additionally drops the dead entries eagerly so they stop occupying LRU
/// capacity.
///
/// Bodies are held behind shared_ptr so a hit hands out a reference without
/// copying the JSON under the lock.
class ResultCache {
 public:
  struct Stats {
    std::atomic<int64_t> hits{0};
    std::atomic<int64_t> misses{0};
    std::atomic<int64_t> inserts{0};
    std::atomic<int64_t> lru_evictions{0};
    std::atomic<int64_t> ttl_expirations{0};
    std::atomic<int64_t> epoch_evictions{0};
  };

  /// `capacity` entries; entries older than `ttl_micros` (by the caller's
  /// clock) expire lazily at lookup. ttl_micros <= 0 disables expiry.
  ResultCache(size_t capacity, int64_t ttl_micros)
      : capacity_(capacity), ttl_micros_(ttl_micros) {}

  /// Returns the cached body for (fingerprint, epoch), refreshing its LRU
  /// position, or nullptr on miss/expiry.
  std::shared_ptr<const json::Json> Lookup(uint64_t fingerprint,
                                           uint64_t epoch, int64_t now_micros);

  void Insert(uint64_t fingerprint, uint64_t epoch, int64_t now_micros,
              std::shared_ptr<const json::Json> body);

  /// Drops every entry whose epoch predates `epoch` (hot-swap cleanup).
  size_t EvictEpochsBefore(uint64_t epoch);

  size_t size() const;
  const Stats& stats() const { return stats_; }

 private:
  struct Key {
    uint64_t fingerprint;
    uint64_t epoch;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.fingerprint ^ (k.epoch * 0x9e3779b97f4a7c15ull));
    }
  };
  struct Entry {
    Key key;
    int64_t inserted_micros;
    std::shared_ptr<const json::Json> body;
  };

  size_t capacity_;
  int64_t ttl_micros_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  Stats stats_;
};

}  // namespace cfnet::serve

#endif  // CFNET_SERVE_CACHE_H_
