#include "crawler/periodic.h"

#include "dfs/jsonl.h"
#include "util/string_util.h"

namespace cfnet::crawler {

PeriodicCohortCrawler::PeriodicCohortCrawler(dfs::MiniDfs* dfs,
                                             PeriodicCrawlConfig config)
    : dfs_(dfs), config_(std::move(config)) {}

std::string PeriodicCohortCrawler::DayPath(int day) const {
  return config_.snapshot_dir + "/day-" + std::to_string(day) + ".jsonl";
}

Result<DaySnapshotReport> PeriodicCohortCrawler::CrawlDay(net::SocialWeb* web,
                                                          int day) {
  DaySnapshotReport report;
  report.day = day;
  // The daily task starts at local midnight of its day in virtual time.
  int64_t clock = static_cast<int64_t>(day) * 86400ll * 1000000;

  // One Twitter token for the day's (small) cohort.
  TokenPool tokens;
  if (config_.fetch_twitter) {
    net::ApiResponse reg = FetchWithRetry(
        &web->twitter(),
        net::ApiRequest("apps.register", {{"owner", "periodic"}}), nullptr,
        config_.fetch, &clock, &report.fetch);
    if (!reg.ok()) {
      return Status::Unavailable("twitter app registration failed");
    }
    tokens = TokenPool({reg.body.Get("access_token").AsString()});
  }

  std::vector<uint64_t> raising;
  net::ApiResponse listing = FetchAllPages(
      &web->angellist(),
      [](int64_t page) {
        return net::ApiRequest("startups.raising",
                               {{"page", std::to_string(page)}});
      },
      nullptr, config_.fetch, &clock, &report.fetch,
      [&](const json::Json& body) {
        for (const json::Json& s : body.Get("startups").array()) {
          raising.push_back(static_cast<uint64_t>(s.Get("id").AsInt()));
        }
      });
  if (!listing.ok()) {
    return Status::Unavailable("raising listing failed on day " +
                               std::to_string(day));
  }
  report.raising_companies = static_cast<int64_t>(raising.size());

  dfs::JsonLinesWriter snapshot(dfs_, DayPath(day));
  for (uint64_t id : raising) {
    net::ApiResponse profile = FetchWithRetry(
        &web->angellist(),
        net::ApiRequest("startups.get", {{"id", std::to_string(id)}}), nullptr,
        config_.fetch, &clock, &report.fetch);
    if (!profile.ok()) continue;
    json::Json record = profile.body;
    record.Set("day", day);

    if (config_.fetch_twitter) {
      const std::string twitter_url =
          profile.body.Get("twitter_url").AsString();
      if (!twitter_url.empty()) {
        net::ApiResponse tw = FetchWithRetry(
            &web->twitter(),
            net::ApiRequest(
                "users.show",
                {{"screen_name", std::string(LastUrlSegment(twitter_url))}}),
            &tokens, config_.fetch, &clock, &report.fetch);
        if (tw.ok()) {
          if (!tw.body.Get("followers_count").is_null()) {
            record.Set("twitter_followers",
                       tw.body.Get("followers_count").AsInt());
          }
          record.Set("twitter_tweets", tw.body.Get("statuses_count").AsInt());
          ++report.twitter_profiles;
        }
      }
    }
    CFNET_RETURN_IF_ERROR(snapshot.Write(record));
    ++report.profiles_stored;
  }
  CFNET_RETURN_IF_ERROR(snapshot.Flush());
  return report;
}

Result<std::vector<json::Json>> PeriodicCohortCrawler::ReadDay(int day) const {
  return dfs::ReadJsonLines(*dfs_, DayPath(day));
}

}  // namespace cfnet::crawler
