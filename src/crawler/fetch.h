#ifndef CFNET_CRAWLER_FETCH_H_
#define CFNET_CRAWLER_FETCH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/service.h"
#include "util/result.h"

namespace cfnet::crawler {

/// Retry/backoff and rate-limit-handling policy for one crawler worker.
struct FetchPolicy {
  int max_retries = 4;
  int64_t backoff_base_micros = 500000;  // 0.5 s, doubled per attempt
  /// When rate limited: rotate through the token pool before waiting; if
  /// every token is exhausted, advance the worker clock to the earliest
  /// retry time (waiting out the window).
  bool rotate_tokens_on_rate_limit = true;
};

/// A worker's set of access tokens for one service, with rotation state —
/// the paper's "distribute the crawling job to several machines, using
/// different access tokens".
class TokenPool {
 public:
  TokenPool() = default;
  explicit TokenPool(std::vector<std::string> tokens, size_t start = 0)
      : tokens_(std::move(tokens)), current_(start % std::max<size_t>(1, tokens_.size())) {}

  bool empty() const { return tokens_.empty(); }
  size_t size() const { return tokens_.size(); }
  const std::string& current() const { return tokens_[current_]; }
  void Rotate() { current_ = (current_ + 1) % tokens_.size(); }

 private:
  std::vector<std::string> tokens_;
  size_t current_ = 0;
};

/// Per-worker fetch counters.
struct FetchCounters {
  int64_t requests = 0;
  int64_t retries = 0;
  int64_t rate_limit_waits = 0;
  int64_t token_rotations = 0;
  int64_t failures = 0;
};

/// Issues `request` against `service`, handling transient 503s (retry with
/// exponential backoff in virtual time) and 429s (token rotation and/or
/// waiting). Advances `*worker_time` accordingly. Non-retryable statuses
/// (404, 401, 400) are returned to the caller as-is.
net::ApiResponse FetchWithRetry(net::ApiService* service,
                                net::ApiRequest request, TokenPool* tokens,
                                const FetchPolicy& policy,
                                int64_t* worker_time, FetchCounters* counters);

/// Fetches every page of a paginated endpoint (pages are 1-based; the
/// response carries "last_page") and invokes `on_page` for each 200 body.
/// Stops and returns the first non-retryable error.
///
/// `make_request` receives the page number and returns the request.
net::ApiResponse FetchAllPages(
    net::ApiService* service,
    const std::function<net::ApiRequest(int64_t page)>& make_request,
    TokenPool* tokens, const FetchPolicy& policy, int64_t* worker_time,
    FetchCounters* counters,
    const std::function<void(const json::Json& body)>& on_page);

}  // namespace cfnet::crawler

#endif  // CFNET_CRAWLER_FETCH_H_
