#ifndef CFNET_CRAWLER_FETCH_H_
#define CFNET_CRAWLER_FETCH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "net/service.h"
#include "util/backoff.h"
#include "util/circuit_breaker.h"
#include "util/result.h"

namespace cfnet::crawler {

/// Retry/backoff and rate-limit-handling policy for one crawler worker.
/// Delays come from util::ExponentialBackoff; the defaults (multiplier 2,
/// no cap, no jitter) reproduce the historical `base << attempt` schedule
/// bit-for-bit, which the virtual-time tests rely on.
struct FetchPolicy {
  int max_retries = 4;
  int64_t backoff_base_micros = 500000;  // 0.5 s, doubled per attempt
  double backoff_multiplier = 2.0;
  int64_t backoff_max_micros = 0;  // per-delay cap; 0 = uncapped
  /// Jitter fraction in [0, 1] (see BackoffPolicy::jitter); deterministic
  /// draws keyed on `backoff_seed`, so a given worker replays exactly.
  double backoff_jitter = 0.0;
  uint64_t backoff_seed = 0;
  /// When rate limited: rotate through the token pool before waiting; if
  /// every token is exhausted, advance the worker clock to the earliest
  /// retry time (waiting out the window).
  bool rotate_tokens_on_rate_limit = true;
  /// When the circuit breaker is open: wait out the cooldown (advancing the
  /// worker clock) and contend for a half-open probe slot. Workers that
  /// lose the probe race — or policies that disable waiting — fail fast
  /// without touching the service.
  bool wait_for_breaker_probe = true;
};

/// A worker's set of access tokens for one service, with rotation state —
/// the paper's "distribute the crawling job to several machines, using
/// different access tokens".
class TokenPool {
 public:
  TokenPool() = default;
  explicit TokenPool(std::vector<std::string> tokens, size_t start = 0)
      : tokens_(std::move(tokens)),
        current_(tokens_.empty() ? 0 : start % tokens_.size()) {}

  bool empty() const { return tokens_.empty(); }
  size_t size() const { return tokens_.size(); }
  /// Empty pools yield the empty token (services answer it with a 401)
  /// instead of indexing out of bounds.
  const std::string& current() const {
    static const std::string* no_token = new std::string;
    return tokens_.empty() ? *no_token : tokens_[current_];
  }
  void Rotate() {
    if (!tokens_.empty()) current_ = (current_ + 1) % tokens_.size();
  }

 private:
  std::vector<std::string> tokens_;
  size_t current_ = 0;
};

/// Per-worker fetch counters.
struct FetchCounters {
  int64_t requests = 0;
  int64_t retries = 0;
  int64_t rate_limit_waits = 0;
  int64_t token_rotations = 0;
  int64_t failures = 0;
  int64_t malformed_retries = 0;    // truncated-body responses retried
  int64_t breaker_fast_fails = 0;   // requests short-circuited while open
  int64_t breaker_waits = 0;        // cooldowns waited out before a probe

  FetchCounters& operator+=(const FetchCounters& o) {
    requests += o.requests;
    retries += o.retries;
    rate_limit_waits += o.rate_limit_waits;
    token_rotations += o.token_rotations;
    failures += o.failures;
    malformed_retries += o.malformed_retries;
    breaker_fast_fails += o.breaker_fast_fails;
    breaker_waits += o.breaker_waits;
    return *this;
  }
};

/// The per-service circuit breaker shared by all crawler workers now lives
/// in util/circuit_breaker.h (the serving tier reuses it for per-query-class
/// admission control); these aliases keep every crawler call site unchanged.
/// Crawler semantics are unchanged: closed -> open after `failure_threshold`
/// consecutive failures, open -> half-open once the virtual-time cooldown
/// elapses, half-open -> closed after `half_open_probes` successful probes.
/// While open, FetchWithRetry fails fast without touching the service.
using CircuitBreakerConfig = util::CircuitBreakerConfig;
using CircuitBreaker = util::CircuitBreaker;

/// Issues `request` against `service`, handling transient 503s and
/// malformed 200 bodies (retry with exponential backoff in virtual time)
/// and 429s (token rotation and/or waiting). Advances `*worker_time`
/// accordingly. Non-retryable statuses (404, 401, 400) are returned to the
/// caller as-is; a malformed body that survives every retry comes back as a
/// 502. With a `breaker`, a request arriving while it is open waits out the
/// cooldown and contends for a half-open probe (policy permitting); losers
/// fail fast (503). Every attempt outcome feeds the breaker state machine.
net::ApiResponse FetchWithRetry(net::ApiService* service,
                                net::ApiRequest request, TokenPool* tokens,
                                const FetchPolicy& policy,
                                int64_t* worker_time, FetchCounters* counters,
                                CircuitBreaker* breaker = nullptr);

/// Fetches every page of a paginated endpoint (pages are 1-based; the
/// response carries "last_page") and invokes `on_page` for each 200 body.
/// Stops and returns the first non-retryable error.
///
/// `make_request` receives the page number and returns the request.
net::ApiResponse FetchAllPages(
    net::ApiService* service,
    const std::function<net::ApiRequest(int64_t page)>& make_request,
    TokenPool* tokens, const FetchPolicy& policy, int64_t* worker_time,
    FetchCounters* counters,
    const std::function<void(const json::Json& body)>& on_page,
    CircuitBreaker* breaker = nullptr);

}  // namespace cfnet::crawler

#endif  // CFNET_CRAWLER_FETCH_H_
