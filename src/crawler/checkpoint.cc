#include "crawler/checkpoint.h"

#include <algorithm>
#include <cstdlib>

#include "dfs/commit.h"
#include "json/json.h"
#include "util/crc32.h"
#include "util/string_util.h"

namespace cfnet::crawler {
namespace {

constexpr std::string_view kMagic = "CFNETCKPT1";

json::Json IdsToJson(const std::vector<uint64_t>& ids) {
  json::Json a = json::Json::MakeArray();
  for (uint64_t id : ids) a.Append(static_cast<int64_t>(id));
  return a;
}

std::vector<uint64_t> IdsFromJson(const json::Json& a) {
  std::vector<uint64_t> out;
  out.reserve(a.size());
  for (const json::Json& v : a.array()) {
    out.push_back(static_cast<uint64_t>(v.AsInt()));
  }
  return out;
}

json::Json ClocksToJson(const std::vector<int64_t>& clocks) {
  json::Json a = json::Json::MakeArray();
  for (int64_t c : clocks) a.Append(c);
  return a;
}

json::Json FetchToJson(const FetchCounters& f) {
  json::Json o = json::Json::MakeObject();
  o.Set("requests", f.requests);
  o.Set("retries", f.retries);
  o.Set("rate_limit_waits", f.rate_limit_waits);
  o.Set("token_rotations", f.token_rotations);
  o.Set("failures", f.failures);
  o.Set("malformed_retries", f.malformed_retries);
  o.Set("breaker_fast_fails", f.breaker_fast_fails);
  return o;
}

FetchCounters FetchFromJson(const json::Json& o) {
  FetchCounters f;
  f.requests = o.Get("requests").AsInt();
  f.retries = o.Get("retries").AsInt();
  f.rate_limit_waits = o.Get("rate_limit_waits").AsInt();
  f.token_rotations = o.Get("token_rotations").AsInt();
  f.failures = o.Get("failures").AsInt();
  f.malformed_retries = o.Get("malformed_retries").AsInt();
  f.breaker_fast_fails = o.Get("breaker_fast_fails").AsInt();
  return f;
}

json::Json ReportToJson(const CrawlReport& r) {
  json::Json o = json::Json::MakeObject();
  o.Set("companies_crawled", r.companies_crawled);
  o.Set("users_crawled", r.users_crawled);
  o.Set("bfs_rounds", r.bfs_rounds);
  o.Set("crunchbase_profiles", r.crunchbase_profiles);
  o.Set("crunchbase_matched_by_url", r.crunchbase_matched_by_url);
  o.Set("crunchbase_matched_by_search", r.crunchbase_matched_by_search);
  o.Set("crunchbase_ambiguous_skipped", r.crunchbase_ambiguous_skipped);
  o.Set("crunchbase_backlink_mismatches", r.crunchbase_backlink_mismatches);
  o.Set("crunchbase_misses", r.crunchbase_misses);
  o.Set("facebook_profiles", r.facebook_profiles);
  o.Set("twitter_profiles", r.twitter_profiles);
  o.Set("twitter_tokens", r.twitter_tokens);
  o.Set("fetch", FetchToJson(r.fetch));
  o.Set("makespan_micros", r.makespan_micros);
  o.Set("breaker_trips", r.breaker_trips);
  o.Set("checkpoint_writes", r.checkpoint_writes);
  o.Set("checkpoint_restores", r.checkpoint_restores);
  o.Set("dead_lettered_ids", r.dead_lettered_ids);
  o.Set("dead_letters_replayed", r.dead_letters_replayed);
  o.Set("storage_temps_removed", r.storage_temps_removed);
  o.Set("storage_quarantined", r.storage_quarantined);
  json::Json degraded = json::Json::MakeArray();
  for (const DegradedReport& d : r.degraded_phases) {
    json::Json e = json::Json::MakeObject();
    e.Set("phase", d.phase);
    e.Set("breaker_trips", d.breaker_trips);
    e.Set("dead_lettered", d.dead_lettered);
    e.Set("reason", d.reason);
    degraded.Append(std::move(e));
  }
  o.Set("degraded_phases", std::move(degraded));
  return o;
}

CrawlReport ReportFromJson(const json::Json& o) {
  CrawlReport r;
  r.companies_crawled = o.Get("companies_crawled").AsInt();
  r.users_crawled = o.Get("users_crawled").AsInt();
  r.bfs_rounds = o.Get("bfs_rounds").AsInt();
  r.crunchbase_profiles = o.Get("crunchbase_profiles").AsInt();
  r.crunchbase_matched_by_url = o.Get("crunchbase_matched_by_url").AsInt();
  r.crunchbase_matched_by_search = o.Get("crunchbase_matched_by_search").AsInt();
  r.crunchbase_ambiguous_skipped = o.Get("crunchbase_ambiguous_skipped").AsInt();
  r.crunchbase_backlink_mismatches =
      o.Get("crunchbase_backlink_mismatches").AsInt();
  r.crunchbase_misses = o.Get("crunchbase_misses").AsInt();
  r.facebook_profiles = o.Get("facebook_profiles").AsInt();
  r.twitter_profiles = o.Get("twitter_profiles").AsInt();
  r.twitter_tokens = o.Get("twitter_tokens").AsInt();
  r.fetch = FetchFromJson(o.Get("fetch"));
  r.makespan_micros = o.Get("makespan_micros").AsInt();
  r.breaker_trips = o.Get("breaker_trips").AsInt();
  r.checkpoint_writes = o.Get("checkpoint_writes").AsInt();
  r.checkpoint_restores = o.Get("checkpoint_restores").AsInt();
  r.dead_lettered_ids = o.Get("dead_lettered_ids").AsInt();
  r.dead_letters_replayed = o.Get("dead_letters_replayed").AsInt();
  // Absent in pre-durability checkpoints; Get() falls back to 0.
  r.storage_temps_removed = o.Get("storage_temps_removed").AsInt();
  r.storage_quarantined = o.Get("storage_quarantined").AsInt();
  for (const json::Json& e : o.Get("degraded_phases").array()) {
    DegradedReport d;
    d.phase = e.Get("phase").AsString();
    d.breaker_trips = e.Get("breaker_trips").AsInt();
    d.dead_lettered = e.Get("dead_lettered").AsInt();
    d.reason = e.Get("reason").AsString();
    r.degraded_phases.push_back(std::move(d));
  }
  return r;
}

json::Json CompanyToJson(const CrawledCompany& c) {
  json::Json o = json::Json::MakeObject();
  o.Set("id", static_cast<int64_t>(c.id));
  o.Set("name", c.name);
  o.Set("twitter_url", c.twitter_url);
  o.Set("facebook_url", c.facebook_url);
  o.Set("crunchbase_url", c.crunchbase_url);
  return o;
}

CrawledCompany CompanyFromJson(const json::Json& o) {
  CrawledCompany c;
  c.id = static_cast<uint64_t>(o.Get("id").AsInt());
  c.name = o.Get("name").AsString();
  c.twitter_url = o.Get("twitter_url").AsString();
  c.facebook_url = o.Get("facebook_url").AsString();
  c.crunchbase_url = o.Get("crunchbase_url").AsString();
  return c;
}

std::string FileName(int64_t seq) {
  return StrFormat("ckpt-%010lld", static_cast<long long>(seq));
}

}  // namespace

std::string CheckpointStore::Serialize(const CheckpointState& st) {
  json::Json root = json::Json::MakeObject();
  root.Set("version", 1);
  root.Set("seq", st.seq);
  root.Set("phase", st.phase);
  root.Set("phase_cursor", st.phase_cursor);
  root.Set("bfs_round", st.bfs_round);
  root.Set("company_frontier", IdsToJson(st.company_frontier));
  root.Set("user_frontier", IdsToJson(st.user_frontier));
  root.Set("seen_companies", IdsToJson(st.seen_companies));
  root.Set("seen_users", IdsToJson(st.seen_users));
  json::Json companies = json::Json::MakeArray();
  for (const CrawledCompany& c : st.companies) {
    companies.Append(CompanyToJson(c));
  }
  root.Set("companies", std::move(companies));
  json::Json tokens = json::Json::MakeArray();
  for (const std::string& t : st.twitter_tokens) tokens.Append(t);
  root.Set("twitter_tokens", std::move(tokens));
  root.Set("facebook_token", st.facebook_token);
  root.Set("worker_clocks", ClocksToJson(st.worker_clocks));
  json::Json counts = json::Json::MakeObject();
  for (const auto& [path, n] : st.snapshot_counts) counts.Set(path, n);
  root.Set("snapshot_counts", std::move(counts));
  root.Set("report", ReportToJson(st.report));

  std::string payload = root.Dump();
  std::string out = StrFormat("%s %08x %zu\n", std::string(kMagic).c_str(),
                              Crc32(payload), payload.size());
  out += payload;
  return out;
}

Result<CheckpointState> CheckpointStore::Deserialize(
    std::string_view contents) {
  size_t nl = contents.find('\n');
  if (nl == std::string_view::npos) {
    return Status::Corruption("checkpoint: missing header line");
  }
  std::vector<std::string> header =
      StrSplit(std::string_view(contents.data(), nl), ' ');
  if (header.size() != 3 || header[0] != kMagic) {
    return Status::Corruption("checkpoint: bad header");
  }
  uint32_t want_crc =
      static_cast<uint32_t>(std::strtoul(header[1].c_str(), nullptr, 16));
  size_t want_len =
      static_cast<size_t>(std::strtoull(header[2].c_str(), nullptr, 10));
  std::string_view payload = contents.substr(nl + 1);
  if (payload.size() != want_len) {
    return Status::Corruption("checkpoint: truncated payload");
  }
  if (Crc32(payload) != want_crc) {
    return Status::Corruption("checkpoint: CRC mismatch");
  }
  auto parsed = json::Parse(payload);
  if (!parsed.ok()) {
    return Status::Corruption("checkpoint: " + parsed.status().message());
  }
  const json::Json& root = *parsed;
  if (root.Get("version").AsInt() != 1) {
    return Status::Corruption("checkpoint: unsupported version");
  }
  CheckpointState st;
  st.seq = root.Get("seq").AsInt();
  st.phase = root.Get("phase").AsString();
  st.phase_cursor = root.Get("phase_cursor").AsInt();
  st.bfs_round = root.Get("bfs_round").AsInt();
  st.company_frontier = IdsFromJson(root.Get("company_frontier"));
  st.user_frontier = IdsFromJson(root.Get("user_frontier"));
  st.seen_companies = IdsFromJson(root.Get("seen_companies"));
  st.seen_users = IdsFromJson(root.Get("seen_users"));
  for (const json::Json& c : root.Get("companies").array()) {
    st.companies.push_back(CompanyFromJson(c));
  }
  for (const json::Json& t : root.Get("twitter_tokens").array()) {
    st.twitter_tokens.push_back(t.AsString());
  }
  st.facebook_token = root.Get("facebook_token").AsString();
  for (const json::Json& c : root.Get("worker_clocks").array()) {
    st.worker_clocks.push_back(c.AsInt());
  }
  for (const auto& [path, n] : root.Get("snapshot_counts").object()) {
    st.snapshot_counts[path] = n.AsInt();
  }
  st.report = ReportFromJson(root.Get("report"));
  return st;
}

CheckpointStore::CheckpointStore(dfs::MiniDfs* dfs, std::string dir, int keep)
    : dfs_(dfs), dir_(std::move(dir)), keep_(std::max(1, keep)) {
  if (dir_.empty() || dir_.back() != '/') dir_ += '/';
  // A previous incarnation may have died mid-commit: GC its orphaned temp
  // file and quarantine anything with a broken footer before trusting the
  // directory listing.
  dfs::SweepDir(dfs_, dir_);
  // Continue the sequence of any checkpoints already on disk (a resumed
  // crawler keeps checkpointing into the same directory).
  for (const std::string& path : ListFiles()) {
    std::string_view name(path);
    name.remove_prefix(dir_.size() + 5);  // "ckpt-"
    int64_t seq = std::strtoll(std::string(name).c_str(), nullptr, 10);
    next_seq_ = std::max(next_seq_, seq + 1);
  }
}

std::vector<std::string> CheckpointStore::ListFiles() const {
  std::vector<std::string> out;
  for (const std::string& path : dfs_->List(dir_)) {
    if (StartsWith(path, dir_ + "ckpt-") && !dfs::IsTempPath(path)) {
      out.push_back(path);
    }
  }
  return out;  // List() is sorted; zero-padded names sort by sequence
}

Status CheckpointStore::Save(CheckpointState* state) {
  state->seq = next_seq_++;
  // Atomic commit: a crash anywhere in here leaves either the previous
  // checkpoint set or the previous set plus a fully verified new file —
  // never a half-written ckpt that LoadLatestValid must CRC-reject.
  CFNET_RETURN_IF_ERROR(
      dfs::CommitFile(dfs_, dir_ + FileName(state->seq), Serialize(*state)));
  std::vector<std::string> files = ListFiles();
  for (size_t i = 0; i + keep_ < files.size(); ++i) {
    CFNET_RETURN_IF_ERROR(dfs_->Delete(files[i]));
  }
  return Status::OK();
}

Result<CheckpointState> CheckpointStore::LoadLatestValid() const {
  std::vector<std::string> files = ListFiles();
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    auto contents = dfs_->ReadFile(*it);
    if (!contents.ok()) continue;  // lost replicas: fall back to older
    // Strip a valid commit footer; a corrupt one disqualifies the file
    // (fall back to the previous checkpoint, same as a torn payload).
    uint64_t payload_len = 0;
    switch (dfs::InspectFooter(*contents, &payload_len)) {
      case dfs::FooterState::kValid:
        contents->resize(payload_len);
        break;
      case dfs::FooterState::kAbsent:
        break;  // legacy raw checkpoint: the CFNETCKPT1 header still guards it
      case dfs::FooterState::kCorrupt:
        continue;
    }
    auto state = Deserialize(*contents);
    if (state.ok()) return state;
  }
  return Status::NotFound("no valid checkpoint under " + dir_);
}

}  // namespace cfnet::crawler
