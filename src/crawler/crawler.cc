#include "crawler/crawler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <unordered_map>

#include "crawler/checkpoint.h"
#include "dfs/commit.h"
#include "dfs/jsonl.h"
#include "json/reader.h"
#include "net/urls.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace cfnet::crawler {

namespace {
/// Canonical phase order; RunFrom indexes into this.
constexpr std::string_view kPhaseOrder[] = {kPhaseBfs, kPhaseCrunchBase,
                                            kPhaseFacebook, kPhaseTwitter,
                                            kPhaseDone};
constexpr size_t kNumRunPhases = 4;  // all but kPhaseDone

size_t PhaseIndex(std::string_view phase) {
  for (size_t i = 0; i < std::size(kPhaseOrder); ++i) {
    if (kPhaseOrder[i] == phase) return i;
  }
  return 0;  // unknown phase in a checkpoint: restart the pipeline safely
}
}  // namespace

/// Per-worker state: virtual clock, fetch counters, token rotation state and
/// snapshot writers. Workers never share mutable state during a stage.
class Crawler::Shard {
 public:
  Shard(int worker_id, dfs::MiniDfs* dfs, const CrawlConfig& config)
      : worker_id_(worker_id), dfs_(dfs), config_(config) {}

  int worker_id() const { return worker_id_; }
  int64_t& clock() { return clock_micros_; }
  int64_t clock() const { return clock_micros_; }
  FetchCounters& counters() { return counters_; }
  const FetchCounters& counters() const { return counters_; }
  TokenPool& twitter_tokens() { return twitter_tokens_; }
  std::string& facebook_token() { return facebook_token_; }

  void SetTwitterTokens(const std::vector<std::string>& tokens) {
    twitter_tokens_ = TokenPool(tokens, static_cast<size_t>(worker_id_));
  }

  /// Appends a record to `<dir>part-<worker>.jsonl` (lazily opened).
  Status Snapshot(const std::string& dir, const json::Json& record) {
    if (!config_.store_snapshots) return Status::OK();
    auto it = writers_.find(dir);
    if (it == writers_.end()) {
      auto writer = std::make_unique<dfs::JsonLinesWriter>(
          dfs_, dir + "part-" + std::to_string(worker_id_) + ".jsonl");
      it = writers_.emplace(dir, std::move(writer)).first;
    }
    return it->second->Write(record);
  }

  Status FlushSnapshots() {
    for (auto& [dir, writer] : writers_) {
      CFNET_RETURN_IF_ERROR(writer->Flush());
    }
    return Status::OK();
  }

  const std::unordered_map<std::string, std::unique_ptr<dfs::JsonLinesWriter>>&
  writers() const {
    return writers_;
  }

  /// Per-stage discovery buffers (merged by the coordinator).
  std::vector<uint64_t> found_companies;
  std::vector<uint64_t> found_users;

 private:
  int worker_id_;
  dfs::MiniDfs* dfs_;
  const CrawlConfig& config_;
  int64_t clock_micros_ = 0;
  FetchCounters counters_;
  TokenPool twitter_tokens_;
  std::string facebook_token_;
  std::unordered_map<std::string, std::unique_ptr<dfs::JsonLinesWriter>>
      writers_;
};

Crawler::~Crawler() = default;

Crawler::Crawler(net::SocialWeb* web, dfs::MiniDfs* dfs, CrawlConfig config)
    : web_(web), dfs_(dfs), config_(std::move(config)) {
  config_.num_workers = std::max(1, config_.num_workers);
  for (int w = 0; w < config_.num_workers; ++w) {
    shards_.push_back(std::make_unique<Shard>(w, dfs_, config_));
  }
  crunchbase_breaker_ = std::make_unique<CircuitBreaker>(config_.breaker);
  facebook_breaker_ = std::make_unique<CircuitBreaker>(config_.breaker);
  twitter_breaker_ = std::make_unique<CircuitBreaker>(config_.breaker);
  if (config_.checkpointing) {
    checkpoints_ = std::make_unique<CheckpointStore>(
        dfs_, config_.checkpoint_dir, config_.checkpoints_to_keep);
  }
}

void Crawler::RunStriped(size_t n,
                         const std::function<void(size_t, Shard&)>& fn) {
  if (n == 0) return;
  const size_t num_workers = shards_.size();
  ThreadPool pool(std::min(num_workers, n));
  std::vector<std::future<void>> futures;
  for (size_t w = 0; w < num_workers; ++w) {
    futures.push_back(pool.Submit([this, w, n, num_workers, &fn]() {
      Shard& shard = *shards_[w];
      for (size_t i = w; i < n; i += num_workers) fn(i, shard);
    }));
  }
  for (auto& f : futures) f.get();
}

FetchCounters Crawler::SumShardCounters() const {
  FetchCounters total = fetch_base_;
  for (const auto& shard : shards_) {
    total += static_cast<const Shard&>(*shard).counters();
  }
  return total;
}

int64_t Crawler::MaxShardClock() const {
  int64_t makespan = 0;
  for (const auto& shard : shards_) {
    makespan = std::max(makespan, static_cast<const Shard&>(*shard).clock());
  }
  return makespan;
}

int64_t Crawler::SumBreakerTrips() const {
  return breaker_trips_base_ + crunchbase_breaker_->trips() +
         facebook_breaker_->trips() + twitter_breaker_->trips();
}

void Crawler::MergeCounters() {
  report_.fetch = SumShardCounters();
  report_.makespan_micros = MaxShardClock();
  report_.breaker_trips = SumBreakerTrips();
  web_->clock().AdvanceTo(report_.makespan_micros);
}

Status Crawler::FlushAllShards() {
  for (auto& shard : shards_) {
    CFNET_RETURN_IF_ERROR(shard->FlushSnapshots());
  }
  return Status::OK();
}

Status Crawler::SetUpTokens() {
  // Twitter: register apps from several simulated machines. The per-owner
  // cap (5) is enforced by the service; requesting one too many exercises
  // the 403 path.
  Shard& shard = *shards_[0];
  for (int m = 0; m < config_.num_twitter_machines; ++m) {
    // App registration is not idempotent: an incarnation that died before
    // its first checkpoint left its owners at the app cap with the tokens
    // lost. Such a restart provisions fresh owners (generation suffix)
    // instead of failing — the operator move of registering new apps.
    for (int gen = 0; gen < 16; ++gen) {
      std::string owner = "machine-" + std::to_string(m) +
                          (gen == 0 ? "" : "-r" + std::to_string(gen));
      const size_t before = twitter_tokens_.size();
      for (int a = 0; a < config_.twitter_apps_per_machine; ++a) {
        net::ApiResponse resp = FetchWithRetry(
            &web_->twitter(),
            net::ApiRequest("apps.register", {{"owner", owner}}), nullptr,
            config_.fetch, &shard.clock(), &shard.counters());
        if (resp.status == 403) break;  // owner hit the app cap
        if (!resp.ok()) {
          return Status::Unavailable("twitter app registration failed: " +
                                     resp.body.Get("error").AsString());
        }
        twitter_tokens_.push_back(resp.body.Get("access_token").AsString());
      }
      if (twitter_tokens_.size() > before) break;  // owner yielded tokens
    }
  }
  if (twitter_tokens_.empty()) {
    return Status::FailedPrecondition("no twitter tokens registered");
  }
  report_.twitter_tokens = static_cast<int64_t>(twitter_tokens_.size());

  // Facebook: short-lived login token, exchanged for a long-lived one.
  net::ApiResponse short_tok = FetchWithRetry(
      &web_->facebook(), net::ApiRequest("oauth.token", {{"user", "crawler"}}),
      nullptr, config_.fetch, &shard.clock(), &shard.counters());
  if (!short_tok.ok()) {
    return Status::Unavailable("facebook oauth.token failed");
  }
  net::ApiResponse long_tok = FetchWithRetry(
      &web_->facebook(),
      net::ApiRequest("oauth.exchange",
                      {{"token", short_tok.body.Get("access_token").AsString()}}),
      nullptr, config_.fetch, &shard.clock(), &shard.counters());
  if (!long_tok.ok()) {
    return Status::Unavailable("facebook oauth.exchange failed");
  }
  facebook_token_ = long_tok.body.Get("access_token").AsString();

  for (auto& s : shards_) {
    s->SetTwitterTokens(twitter_tokens_);
    s->facebook_token() = facebook_token_;
  }
  return Status::OK();
}

// --- checkpointing ----------------------------------------------------------

Status Crawler::SaveCheckpoint(std::string_view phase, size_t cursor) {
  if (checkpoints_ == nullptr) return Status::OK();
  // Flush first so the recorded snapshot watermarks are durable: a crash
  // after this point loses at most records *beyond* the counts, which
  // Resume() rolls back.
  CFNET_RETURN_IF_ERROR(FlushAllShards());

  CheckpointState st;
  st.phase = std::string(phase);
  st.phase_cursor = static_cast<int64_t>(cursor);
  st.bfs_round = bfs_round_;
  st.company_frontier = company_frontier_;
  st.user_frontier = user_frontier_;
  st.seen_companies.assign(seen_companies_.begin(), seen_companies_.end());
  std::sort(st.seen_companies.begin(), st.seen_companies.end());
  st.seen_users.assign(seen_users_.begin(), seen_users_.end());
  std::sort(st.seen_users.begin(), st.seen_users.end());
  st.companies = companies_;
  st.twitter_tokens = twitter_tokens_;
  st.facebook_token = facebook_token_;
  for (const auto& shard : shards_) {
    st.worker_clocks.push_back(static_cast<const Shard&>(*shard).clock());
  }
  st.snapshot_counts = snapshot_base_counts_;
  for (const auto& shard : shards_) {
    for (const auto& [dir, writer] :
         static_cast<const Shard&>(*shard).writers()) {
      auto base = snapshot_base_counts_.find(writer->path());
      st.snapshot_counts[writer->path()] =
          (base == snapshot_base_counts_.end() ? 0 : base->second) +
          static_cast<int64_t>(writer->records_written());
    }
  }
  st.report = report_;
  st.report.fetch = SumShardCounters();
  st.report.makespan_micros = MaxShardClock();
  st.report.breaker_trips = SumBreakerTrips();
  st.report.checkpoint_writes = report_.checkpoint_writes + 1;

  CFNET_RETURN_IF_ERROR(checkpoints_->Save(&st));
  ++report_.checkpoint_writes;
  return Status::OK();
}

Status Crawler::RestoreFromCheckpoint(const CheckpointState& st) {
  seen_companies_.clear();
  seen_companies_.insert(st.seen_companies.begin(), st.seen_companies.end());
  seen_users_.clear();
  seen_users_.insert(st.seen_users.begin(), st.seen_users.end());
  companies_ = st.companies;
  company_frontier_ = st.company_frontier;
  user_frontier_ = st.user_frontier;
  bfs_round_ = st.bfs_round;
  bfs_seeded_ = true;
  twitter_tokens_ = st.twitter_tokens;
  facebook_token_ = st.facebook_token;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    if (!twitter_tokens_.empty()) shard.SetTwitterTokens(twitter_tokens_);
    shard.facebook_token() = facebook_token_;
    // A resumed crawl with a different worker count continues everyone from
    // the crawl's frontier time instead of replaying per-worker clocks.
    if (st.worker_clocks.size() == shards_.size()) {
      shard.clock() = st.worker_clocks[i];
    } else if (!st.worker_clocks.empty()) {
      shard.clock() =
          *std::max_element(st.worker_clocks.begin(), st.worker_clocks.end());
    }
  }
  report_ = st.report;
  report_.wall_seconds = 0;
  fetch_base_ = st.report.fetch;
  breaker_trips_base_ = st.report.breaker_trips;
  snapshot_base_counts_ = st.snapshot_counts;

  // Exactly-once snapshot records: roll every shard file back to its
  // checkpointed watermark and drop files born after the checkpoint.
  for (const std::string& path : dfs_->List(config_.snapshot_dir)) {
    if (StartsWith(path, checkpoints_->dir())) continue;
    auto it = snapshot_base_counts_.find(path);
    if (it == snapshot_base_counts_.end()) {
      CFNET_RETURN_IF_ERROR(dfs_->Delete(path));
    } else {
      CFNET_RETURN_IF_ERROR(dfs::TruncateJsonLines(dfs_, path, it->second));
    }
  }
  ++report_.checkpoint_restores;
  return Status::OK();
}

// --- pipeline drivers -------------------------------------------------------

Status Crawler::Run() {
  CFNET_RETURN_IF_ERROR(SetUpTokens());
  return RunFrom(0, 0);
}

Status Crawler::Resume() {
  if (checkpoints_ == nullptr) return Run();
  // Repair the snapshot tree before trusting it: GC temp files the dying
  // incarnation orphaned mid-commit and quarantine bad-footer files. (The
  // checkpoint dir was already swept when the store was constructed.)
  dfs::RecoveryReport swept = dfs::SweepDir(dfs_, config_.snapshot_dir);
  auto loaded = checkpoints_->LoadLatestValid();
  if (!loaded.ok()) {
    // The previous incarnation died before its first checkpoint, so any
    // snapshot records it left have no watermark to roll back to. Run()
    // re-crawls from scratch; keeping the stale shards would duplicate
    // every record they hold.
    for (const std::string& path : dfs_->List(config_.snapshot_dir)) {
      if (StartsWith(path, checkpoints_->dir())) continue;
      CFNET_RETURN_IF_ERROR(dfs_->Delete(path));
    }
    report_.storage_temps_removed += swept.temp_files_removed;
    report_.storage_quarantined += swept.files_quarantined;
    return Run();
  }
  CheckpointState st = std::move(loaded).value();
  CFNET_RETURN_IF_ERROR(RestoreFromCheckpoint(st));
  // After the restore: RestoreFromCheckpoint replaces report_ with the
  // checkpointed one, and this incarnation's sweep happened on top of that.
  report_.storage_temps_removed += swept.temp_files_removed;
  report_.storage_quarantined += swept.files_quarantined;
  return RunFrom(PhaseIndex(st.phase), static_cast<size_t>(st.phase_cursor));
}

Status Crawler::AfterPhase(std::string_view completed, std::string_view next) {
  CFNET_RETURN_IF_ERROR(SaveCheckpoint(next, 0));
  if (!config_.crash_after_phase.empty() &&
      config_.crash_after_phase == completed) {
    return Status::Aborted("simulated crash after phase " +
                           std::string(completed));
  }
  return Status::OK();
}

Status Crawler::RunFrom(size_t phase_idx, size_t cursor) {
  auto start = std::chrono::steady_clock::now();
  for (size_t idx = phase_idx; idx < kNumRunPhases; ++idx) {
    std::string_view phase = kPhaseOrder[idx];
    if (phase == kPhaseBfs) {
      CFNET_RETURN_IF_ERROR(RunAngelListBfs());
    } else {
      CFNET_RETURN_IF_ERROR(RunPhase(phase, cursor));
    }
    cursor = 0;
    CFNET_RETURN_IF_ERROR(AfterPhase(phase, kPhaseOrder[idx + 1]));
  }
  CFNET_RETURN_IF_ERROR(FlushAllShards());
  if (config_.post_flush_hook) {
    CFNET_RETURN_IF_ERROR(config_.post_flush_hook());
  }
  MergeCounters();
  report_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return Status::OK();
}

Status Crawler::RunAngelListBfs() {
  net::AngelListService* al = &web_->angellist();

  // Seed: every page of the "currently raising" listing (skipped when a
  // checkpoint already restored a live frontier).
  if (!bfs_seeded_) {
    bfs_seeded_ = true;
    Shard& shard = *shards_[0];
    net::ApiResponse resp = FetchAllPages(
        al,
        [](int64_t page) {
          return net::ApiRequest("startups.raising",
                                 {{"page", std::to_string(page)}});
        },
        nullptr, config_.fetch, &shard.clock(), &shard.counters(),
        [&](const json::Json& body) {
          for (const json::Json& s : body.Get("startups").array()) {
            uint64_t id = static_cast<uint64_t>(s.Get("id").AsInt());
            if (seen_companies_.insert(id).second) {
              company_frontier_.push_back(id);
            }
          }
        });
    if (!resp.ok()) {
      return Status::Unavailable("raising listing failed: " +
                                 resp.body.Get("error").AsString());
    }
  }

  std::mutex companies_mu;

  while (!company_frontier_.empty() || !user_frontier_.empty()) {
    if (config_.max_bfs_rounds > 0 && bfs_round_ >= config_.max_bfs_rounds) {
      break;
    }
    ++bfs_round_;

    // --- Stage A: fetch company profiles + their followers. -------------
    RunStriped(company_frontier_.size(), [&](size_t i, Shard& shard) {
      uint64_t cid = company_frontier_[i];
      net::ApiResponse profile = FetchWithRetry(
          al,
          net::ApiRequest("startups.get", {{"id", std::to_string(cid)}}),
          nullptr, config_.fetch, &shard.clock(), &shard.counters());
      if (!profile.ok()) return;  // counted via counters.failures on 503s

      CrawledCompany cc;
      cc.id = cid;
      cc.name = profile.body.Get("name").AsString();
      cc.twitter_url = profile.body.Get("twitter_url").AsString();
      cc.facebook_url = profile.body.Get("facebook_url").AsString();
      cc.crunchbase_url = profile.body.Get("crunchbase_url").AsString();
      {
        std::lock_guard<std::mutex> lock(companies_mu);
        companies_.push_back(std::move(cc));
      }
      shard.Snapshot(StartupSnapshotDir(), profile.body).ok();

      FetchAllPages(
          al,
          [cid](int64_t page) {
            return net::ApiRequest("startups.followers",
                                   {{"id", std::to_string(cid)},
                                    {"page", std::to_string(page)}});
          },
          nullptr, config_.fetch, &shard.clock(), &shard.counters(),
          [&](const json::Json& body) {
            for (const json::Json& f : body.Get("follower_ids").array()) {
              shard.found_users.push_back(static_cast<uint64_t>(f.AsInt()));
            }
          });
    });

    // --- Stage B: fetch user profiles + everything they follow. ----------
    RunStriped(user_frontier_.size(), [&](size_t i, Shard& shard) {
      uint64_t uid = user_frontier_[i];
      net::ApiResponse profile = FetchWithRetry(
          al, net::ApiRequest("users.get", {{"id", std::to_string(uid)}}),
          nullptr, config_.fetch, &shard.clock(), &shard.counters());
      if (!profile.ok()) return;

      int64_t following_startups = 0;
      int64_t following_users = 0;
      FetchAllPages(
          al,
          [uid](int64_t page) {
            return net::ApiRequest("users.following.startups",
                                   {{"id", std::to_string(uid)},
                                    {"page", std::to_string(page)}});
          },
          nullptr, config_.fetch, &shard.clock(), &shard.counters(),
          [&](const json::Json& body) {
            following_startups = body.Get("total").AsInt();
            for (const json::Json& s : body.Get("startup_ids").array()) {
              shard.found_companies.push_back(static_cast<uint64_t>(s.AsInt()));
            }
          });
      FetchAllPages(
          al,
          [uid](int64_t page) {
            return net::ApiRequest("users.following.users",
                                   {{"id", std::to_string(uid)},
                                    {"page", std::to_string(page)}});
          },
          nullptr, config_.fetch, &shard.clock(), &shard.counters(),
          [&](const json::Json& body) {
            following_users = body.Get("total").AsInt();
            for (const json::Json& u : body.Get("user_ids").array()) {
              shard.found_users.push_back(static_cast<uint64_t>(u.AsInt()));
            }
          });

      json::Json record = profile.body;
      record.Set("following_startup_count", following_startups);
      record.Set("following_user_count", following_users);
      shard.Snapshot(UserSnapshotDir(), record).ok();
    });

    // --- Merge discoveries into the next frontiers. ----------------------
    company_frontier_.clear();
    user_frontier_.clear();
    for (auto& shard : shards_) {
      for (uint64_t cid : shard->found_companies) {
        if (seen_companies_.insert(cid).second) {
          company_frontier_.push_back(cid);
        }
      }
      for (uint64_t uid : shard->found_users) {
        if (seen_users_.insert(uid).second) user_frontier_.push_back(uid);
      }
      shard->found_companies.clear();
      shard->found_users.clear();
    }
    // Deterministic processing order regardless of worker interleaving.
    std::sort(company_frontier_.begin(), company_frontier_.end());
    std::sort(user_frontier_.begin(), user_frontier_.end());

    if (config_.checkpoint_every_rounds > 0 &&
        bfs_round_ % config_.checkpoint_every_rounds == 0) {
      CFNET_RETURN_IF_ERROR(SaveCheckpoint(kPhaseBfs, 0));
    }
    if (config_.crash_after_bfs_rounds > 0 &&
        bfs_round_ >= config_.crash_after_bfs_rounds) {
      return Status::Aborted("simulated crash after BFS round " +
                             std::to_string(bfs_round_));
    }
  }

  report_.bfs_rounds = bfs_round_;
  report_.companies_crawled = static_cast<int64_t>(companies_.size());
  report_.users_crawled = static_cast<int64_t>(seen_users_.size());
  // Stable order for the augmentation phases.
  std::sort(companies_.begin(), companies_.end(),
            [](const CrawledCompany& a, const CrawledCompany& b) {
              return a.id < b.id;
            });
  return Status::OK();
}

// --- augmentation phases ----------------------------------------------------

CircuitBreaker* Crawler::BreakerFor(std::string_view phase) {
  if (phase == kPhaseCrunchBase) return crunchbase_breaker_.get();
  if (phase == kPhaseFacebook) return facebook_breaker_.get();
  if (phase == kPhaseTwitter) return twitter_breaker_.get();
  return nullptr;
}

Crawler::ProcessFn Crawler::ProcessFor(std::string_view phase) const {
  if (phase == kPhaseCrunchBase) return &Crawler::ProcessCrunchBase;
  if (phase == kPhaseFacebook) return &Crawler::ProcessFacebook;
  if (phase == kPhaseTwitter) return &Crawler::ProcessTwitter;
  return nullptr;
}

Status Crawler::DeadLetter(Shard& shard, std::string_view phase, uint64_t id,
                           std::string_view reason) {
  json::Json record = json::Json::MakeObject();
  record.Set("id", static_cast<int64_t>(id));
  record.Set("phase", phase);
  record.Set("reason", reason);
  return shard.Snapshot(DeadLetterDir(phase), record);
}

Status Crawler::RunPhase(std::string_view phase, size_t start_cursor) {
  CircuitBreaker* breaker = BreakerFor(phase);
  ProcessFn process = ProcessFor(phase);
  if (breaker == nullptr || process == nullptr) {
    return Status::InvalidArgument("unknown phase: " + std::string(phase));
  }
  const size_t n = companies_.size();
  const size_t chunk =
      config_.checkpoint_chunk > 0 ? static_cast<size_t>(config_.checkpoint_chunk) : n;
  const int64_t trips_before = breaker->trips();
  std::atomic<int64_t> dead{0};

  size_t cursor = std::min(start_cursor, n);
  while (cursor < n) {
    const size_t end = std::min(n, cursor + std::max<size_t>(1, chunk));
    RunStriped(end - cursor, [&](size_t i, Shard& shard) {
      const CrawledCompany& cc = companies_[cursor + i];
      // Degraded: the source burned through its breaker budget — stop
      // hammering it and queue the remainder for later replay.
      if (breaker->trips() - trips_before > config_.breaker_trip_budget) {
        DeadLetter(shard, phase, cc.id, "degraded").ok();
        dead.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if ((this->*process)(cc, shard) == ItemOutcome::kFailed) {
        DeadLetter(shard, phase, cc.id, "failed").ok();
        dead.fetch_add(1, std::memory_order_relaxed);
      }
    });
    cursor = end;
    if (cursor < n) {
      CFNET_RETURN_IF_ERROR(SaveCheckpoint(phase, cursor));
    }
  }

  const int64_t trips = breaker->trips() - trips_before;
  report_.dead_lettered_ids += dead.load();
  if (trips > config_.breaker_trip_budget) {
    report_.degraded_phases.push_back(
        {std::string(phase), trips, dead.load(),
         "circuit breaker trip budget exceeded"});
  }
  return Status::OK();
}

Crawler::ItemOutcome Crawler::ProcessCrunchBase(const CrawledCompany& cc,
                                                Shard& shard) {
  net::CrunchBaseService* cb = &web_->crunchbase();
  std::string permalink;
  bool via_url = false;
  if (!cc.crunchbase_url.empty()) {
    permalink = std::string(LastUrlSegment(cc.crunchbase_url));
    via_url = true;
  } else {
    // Name search; only a unique hit may be associated (§3).
    net::ApiResponse search = FetchWithRetry(
        cb, net::ApiRequest("organizations.search", {{"name", cc.name}}),
        nullptr, config_.fetch, &shard.clock(), &shard.counters(),
        crunchbase_breaker_.get());
    if (!search.ok()) return ItemOutcome::kFailed;
    const auto& results = search.body.Get("results").array();
    if (results.empty()) {
      std::lock_guard<std::mutex> lock(report_mu_);
      ++report_.crunchbase_misses;
      return ItemOutcome::kSkipped;
    }
    if (results.size() > 1) {
      std::lock_guard<std::mutex> lock(report_mu_);
      ++report_.crunchbase_ambiguous_skipped;
      return ItemOutcome::kSkipped;
    }
    permalink = results[0].Get("permalink").AsString();
  }
  net::ApiResponse org = FetchWithRetry(
      cb, net::ApiRequest("organizations.get", {{"permalink", permalink}}),
      nullptr, config_.fetch, &shard.clock(), &shard.counters(),
      crunchbase_breaker_.get());
  if (org.status == 404) {
    std::lock_guard<std::mutex> lock(report_mu_);
    ++report_.crunchbase_misses;
    return ItemOutcome::kSkipped;
  }
  if (!org.ok()) return ItemOutcome::kFailed;
  // CrunchBase links back to AngelList for every dual-listed company
  // (§2); a name-search hit whose backlink points at a different startup
  // is a false match (shared names) and must be dropped.
  const std::string& backlink = org.body.Get("angellist_url").AsString();
  if (!backlink.empty() && backlink != net::AngelListCompanyUrl(cc.id)) {
    std::lock_guard<std::mutex> lock(report_mu_);
    ++report_.crunchbase_backlink_mismatches;
    return ItemOutcome::kSkipped;
  }
  {
    std::lock_guard<std::mutex> lock(report_mu_);
    ++(via_url ? report_.crunchbase_matched_by_url
               : report_.crunchbase_matched_by_search);
    ++report_.crunchbase_profiles;
  }
  json::Json record = org.body;
  record.Set("angellist_id", static_cast<int64_t>(cc.id));
  shard.Snapshot(CrunchBaseSnapshotDir(), record).ok();
  return ItemOutcome::kOk;
}

Crawler::ItemOutcome Crawler::ProcessFacebook(const CrawledCompany& cc,
                                              Shard& shard) {
  if (cc.facebook_url.empty()) return ItemOutcome::kSkipped;
  std::string page_id(LastUrlSegment(cc.facebook_url));
  net::ApiRequest req("page.get", {{"page_id", page_id}});
  req.access_token = shard.facebook_token();
  net::ApiResponse resp = FetchWithRetry(
      &web_->facebook(), std::move(req), nullptr, config_.fetch,
      &shard.clock(), &shard.counters(), facebook_breaker_.get());
  if (resp.status == 404) return ItemOutcome::kSkipped;
  if (!resp.ok()) return ItemOutcome::kFailed;
  {
    std::lock_guard<std::mutex> lock(report_mu_);
    ++report_.facebook_profiles;
  }
  json::Json record = resp.body;
  record.Set("angellist_id", static_cast<int64_t>(cc.id));
  shard.Snapshot(FacebookSnapshotDir(), record).ok();
  return ItemOutcome::kOk;
}

Crawler::ItemOutcome Crawler::ProcessTwitter(const CrawledCompany& cc,
                                             Shard& shard) {
  if (cc.twitter_url.empty()) return ItemOutcome::kSkipped;
  std::string screen_name(LastUrlSegment(cc.twitter_url));
  net::ApiResponse resp = FetchWithRetry(
      &web_->twitter(),
      net::ApiRequest("users.show", {{"screen_name", screen_name}}),
      &shard.twitter_tokens(), config_.fetch, &shard.clock(),
      &shard.counters(), twitter_breaker_.get());
  if (resp.status == 404) return ItemOutcome::kSkipped;
  if (!resp.ok()) return ItemOutcome::kFailed;
  {
    std::lock_guard<std::mutex> lock(report_mu_);
    ++report_.twitter_profiles;
  }
  json::Json record = resp.body;
  record.Set("angellist_id", static_cast<int64_t>(cc.id));
  shard.Snapshot(TwitterSnapshotDir(), record).ok();
  return ItemOutcome::kOk;
}

Status Crawler::RunCrunchBaseAugmentation() {
  return RunPhase(kPhaseCrunchBase, 0);
}

Status Crawler::RunFacebookCrawl() { return RunPhase(kPhaseFacebook, 0); }

Status Crawler::RunTwitterCrawl() { return RunPhase(kPhaseTwitter, 0); }

// --- dead-letter replay -----------------------------------------------------

Status Crawler::ReplayDeadLetters() {
  std::unordered_map<uint64_t, size_t> index;
  for (size_t i = 0; i < companies_.size(); ++i) {
    index.emplace(companies_[i].id, i);
  }
  for (std::string_view phase :
       {kPhaseCrunchBase, kPhaseFacebook, kPhaseTwitter}) {
    const std::string dir = DeadLetterDir(phase);
    std::vector<std::string> files = dfs_->List(dir);
    if (files.empty()) continue;
    std::set<uint64_t> ids;  // dedup + deterministic replay order
    // Streaming id extraction: dead-letter lines carry several fields, but
    // only "id" matters here — no DOM per line.
    auto decode_id = [](std::string_view line) -> Result<uint64_t> {
      json::JsonReader reader(line);
      uint64_t id = 0;
      CFNET_RETURN_IF_ERROR(
          reader.ForEachMember([&](std::string_view key) -> Status {
            if (key != "id") return reader.SkipValue();
            CFNET_ASSIGN_OR_RETURN(json::JsonReader::Scalar v,
                                   reader.ReadScalar());
            id = static_cast<uint64_t>(v.AsInt());
            return Status::OK();
          }));
      CFNET_RETURN_IF_ERROR(reader.Finish());
      return id;
    };
    CFNET_ASSIGN_OR_RETURN(auto id_parts,
                           dfs::ScanJsonLines<uint64_t>(*dfs_, files, decode_id));
    for (const auto& part : id_parts) ids.insert(part.begin(), part.end());
    for (const std::string& f : files) {
      CFNET_RETURN_IF_ERROR(dfs_->Delete(f));
      snapshot_base_counts_.erase(f);
    }
    std::vector<size_t> targets;
    for (uint64_t id : ids) {
      auto it = index.find(id);
      if (it != index.end()) targets.push_back(it->second);
    }
    // The incident this log accumulated under is presumed over.
    BreakerFor(phase)->Reset();
    ProcessFn process = ProcessFor(phase);
    std::atomic<int64_t> replayed{0};
    std::atomic<int64_t> re_dead{0};
    RunStriped(targets.size(), [&](size_t i, Shard& shard) {
      const CrawledCompany& cc = companies_[targets[i]];
      if ((this->*process)(cc, shard) == ItemOutcome::kFailed) {
        DeadLetter(shard, phase, cc.id, "replay-failed").ok();
        re_dead.fetch_add(1, std::memory_order_relaxed);
      } else {
        replayed.fetch_add(1, std::memory_order_relaxed);
      }
    });
    report_.dead_letters_replayed += replayed.load();
    report_.dead_lettered_ids += re_dead.load();
  }
  CFNET_RETURN_IF_ERROR(FlushAllShards());
  CFNET_RETURN_IF_ERROR(SaveCheckpoint(kPhaseDone, 0));
  if (config_.post_flush_hook) {
    // Replays append to snapshot dirs, so any columnar compaction of them
    // is stale now — re-run the hook to refresh it.
    CFNET_RETURN_IF_ERROR(config_.post_flush_hook());
  }
  MergeCounters();
  return Status::OK();
}

}  // namespace cfnet::crawler
