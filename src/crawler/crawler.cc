#include "crawler/crawler.h"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "dfs/jsonl.h"
#include "net/urls.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace cfnet::crawler {

/// Per-worker state: virtual clock, fetch counters, token rotation state and
/// snapshot writers. Workers never share mutable state during a stage.
class Crawler::Shard {
 public:
  Shard(int worker_id, dfs::MiniDfs* dfs, const CrawlConfig& config)
      : worker_id_(worker_id), dfs_(dfs), config_(config) {}

  int worker_id() const { return worker_id_; }
  int64_t& clock() { return clock_micros_; }
  FetchCounters& counters() { return counters_; }
  TokenPool& twitter_tokens() { return twitter_tokens_; }
  std::string& facebook_token() { return facebook_token_; }

  void SetTwitterTokens(const std::vector<std::string>& tokens) {
    twitter_tokens_ = TokenPool(tokens, static_cast<size_t>(worker_id_));
  }

  /// Appends a record to `<dir>part-<worker>.jsonl` (lazily opened).
  Status Snapshot(const std::string& dir, const json::Json& record) {
    if (!config_.store_snapshots) return Status::OK();
    auto it = writers_.find(dir);
    if (it == writers_.end()) {
      auto writer = std::make_unique<dfs::JsonLinesWriter>(
          dfs_, dir + "part-" + std::to_string(worker_id_) + ".jsonl");
      it = writers_.emplace(dir, std::move(writer)).first;
    }
    return it->second->Write(record);
  }

  Status FlushSnapshots() {
    for (auto& [dir, writer] : writers_) {
      CFNET_RETURN_IF_ERROR(writer->Flush());
    }
    return Status::OK();
  }

  /// Per-stage discovery buffers (merged by the coordinator).
  std::vector<uint64_t> found_companies;
  std::vector<uint64_t> found_users;

 private:
  int worker_id_;
  dfs::MiniDfs* dfs_;
  const CrawlConfig& config_;
  int64_t clock_micros_ = 0;
  FetchCounters counters_;
  TokenPool twitter_tokens_;
  std::string facebook_token_;
  std::unordered_map<std::string, std::unique_ptr<dfs::JsonLinesWriter>>
      writers_;
};

Crawler::~Crawler() = default;

Crawler::Crawler(net::SocialWeb* web, dfs::MiniDfs* dfs, CrawlConfig config)
    : web_(web), dfs_(dfs), config_(config) {
  config_.num_workers = std::max(1, config_.num_workers);
  for (int w = 0; w < config_.num_workers; ++w) {
    shards_.push_back(std::make_unique<Shard>(w, dfs_, config_));
  }
}

void Crawler::RunStriped(size_t n,
                         const std::function<void(size_t, Shard&)>& fn) {
  if (n == 0) return;
  const size_t num_workers = shards_.size();
  ThreadPool pool(std::min(num_workers, n));
  std::vector<std::future<void>> futures;
  for (size_t w = 0; w < num_workers; ++w) {
    futures.push_back(pool.Submit([this, w, n, num_workers, &fn]() {
      Shard& shard = *shards_[w];
      for (size_t i = w; i < n; i += num_workers) fn(i, shard);
    }));
  }
  for (auto& f : futures) f.get();
}

void Crawler::MergeCounters() {
  FetchCounters total;
  int64_t makespan = 0;
  for (auto& shard : shards_) {
    total.requests += shard->counters().requests;
    total.retries += shard->counters().retries;
    total.rate_limit_waits += shard->counters().rate_limit_waits;
    total.token_rotations += shard->counters().token_rotations;
    total.failures += shard->counters().failures;
    makespan = std::max(makespan, shard->clock());
  }
  report_.fetch = total;
  report_.makespan_micros = makespan;
  web_->clock().AdvanceTo(makespan);
}

Status Crawler::SetUpTokens() {
  // Twitter: register apps from several simulated machines. The per-owner
  // cap (5) is enforced by the service; requesting one too many exercises
  // the 403 path.
  Shard& shard = *shards_[0];
  for (int m = 0; m < config_.num_twitter_machines; ++m) {
    std::string owner = "machine-" + std::to_string(m);
    for (int a = 0; a < config_.twitter_apps_per_machine; ++a) {
      net::ApiResponse resp = FetchWithRetry(
          &web_->twitter(),
          net::ApiRequest("apps.register", {{"owner", owner}}), nullptr,
          config_.fetch, &shard.clock(), &shard.counters());
      if (resp.status == 403) break;  // owner hit the app cap
      if (!resp.ok()) {
        return Status::Unavailable("twitter app registration failed: " +
                                   resp.body.Get("error").AsString());
      }
      twitter_tokens_.push_back(resp.body.Get("access_token").AsString());
    }
  }
  if (twitter_tokens_.empty()) {
    return Status::FailedPrecondition("no twitter tokens registered");
  }
  report_.twitter_tokens = static_cast<int64_t>(twitter_tokens_.size());

  // Facebook: short-lived login token, exchanged for a long-lived one.
  net::ApiResponse short_tok = FetchWithRetry(
      &web_->facebook(), net::ApiRequest("oauth.token", {{"user", "crawler"}}),
      nullptr, config_.fetch, &shard.clock(), &shard.counters());
  if (!short_tok.ok()) {
    return Status::Unavailable("facebook oauth.token failed");
  }
  net::ApiResponse long_tok = FetchWithRetry(
      &web_->facebook(),
      net::ApiRequest("oauth.exchange",
                      {{"token", short_tok.body.Get("access_token").AsString()}}),
      nullptr, config_.fetch, &shard.clock(), &shard.counters());
  if (!long_tok.ok()) {
    return Status::Unavailable("facebook oauth.exchange failed");
  }
  facebook_token_ = long_tok.body.Get("access_token").AsString();

  for (auto& s : shards_) {
    s->SetTwitterTokens(twitter_tokens_);
    s->facebook_token() = facebook_token_;
  }
  return Status::OK();
}

Status Crawler::Run() {
  auto start = std::chrono::steady_clock::now();
  CFNET_RETURN_IF_ERROR(SetUpTokens());
  CFNET_RETURN_IF_ERROR(RunAngelListBfs());
  CFNET_RETURN_IF_ERROR(RunCrunchBaseAugmentation());
  CFNET_RETURN_IF_ERROR(RunFacebookCrawl());
  CFNET_RETURN_IF_ERROR(RunTwitterCrawl());
  for (auto& shard : shards_) {
    CFNET_RETURN_IF_ERROR(shard->FlushSnapshots());
  }
  MergeCounters();
  report_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return Status::OK();
}

Status Crawler::RunAngelListBfs() {
  net::AngelListService* al = &web_->angellist();

  // Seed: every page of the "currently raising" listing.
  std::vector<uint64_t> company_frontier;
  {
    Shard& shard = *shards_[0];
    net::ApiResponse resp = FetchAllPages(
        al,
        [](int64_t page) {
          return net::ApiRequest("startups.raising",
                                 {{"page", std::to_string(page)}});
        },
        nullptr, config_.fetch, &shard.clock(), &shard.counters(),
        [&](const json::Json& body) {
          for (const json::Json& s : body.Get("startups").array()) {
            uint64_t id = static_cast<uint64_t>(s.Get("id").AsInt());
            if (seen_companies_.insert(id).second) {
              company_frontier.push_back(id);
            }
          }
        });
    if (!resp.ok()) {
      return Status::Unavailable("raising listing failed: " +
                                 resp.body.Get("error").AsString());
    }
  }

  std::vector<uint64_t> user_frontier;
  std::mutex companies_mu;

  int round = 0;
  while (!company_frontier.empty() || !user_frontier.empty()) {
    if (config_.max_bfs_rounds > 0 && round >= config_.max_bfs_rounds) break;
    ++round;

    // --- Stage A: fetch company profiles + their followers. -------------
    RunStriped(company_frontier.size(), [&](size_t i, Shard& shard) {
      uint64_t cid = company_frontier[i];
      net::ApiResponse profile = FetchWithRetry(
          al,
          net::ApiRequest("startups.get", {{"id", std::to_string(cid)}}),
          nullptr, config_.fetch, &shard.clock(), &shard.counters());
      if (!profile.ok()) return;  // counted via counters.failures on 503s

      CrawledCompany cc;
      cc.id = cid;
      cc.name = profile.body.Get("name").AsString();
      cc.twitter_url = profile.body.Get("twitter_url").AsString();
      cc.facebook_url = profile.body.Get("facebook_url").AsString();
      cc.crunchbase_url = profile.body.Get("crunchbase_url").AsString();
      {
        std::lock_guard<std::mutex> lock(companies_mu);
        companies_.push_back(std::move(cc));
      }
      shard.Snapshot(StartupSnapshotDir(), profile.body).ok();

      FetchAllPages(
          al,
          [cid](int64_t page) {
            return net::ApiRequest("startups.followers",
                                   {{"id", std::to_string(cid)},
                                    {"page", std::to_string(page)}});
          },
          nullptr, config_.fetch, &shard.clock(), &shard.counters(),
          [&](const json::Json& body) {
            for (const json::Json& f : body.Get("follower_ids").array()) {
              shard.found_users.push_back(static_cast<uint64_t>(f.AsInt()));
            }
          });
    });

    // --- Stage B: fetch user profiles + everything they follow. ----------
    RunStriped(user_frontier.size(), [&](size_t i, Shard& shard) {
      uint64_t uid = user_frontier[i];
      net::ApiResponse profile = FetchWithRetry(
          al, net::ApiRequest("users.get", {{"id", std::to_string(uid)}}),
          nullptr, config_.fetch, &shard.clock(), &shard.counters());
      if (!profile.ok()) return;

      int64_t following_startups = 0;
      int64_t following_users = 0;
      FetchAllPages(
          al,
          [uid](int64_t page) {
            return net::ApiRequest("users.following.startups",
                                   {{"id", std::to_string(uid)},
                                    {"page", std::to_string(page)}});
          },
          nullptr, config_.fetch, &shard.clock(), &shard.counters(),
          [&](const json::Json& body) {
            following_startups = body.Get("total").AsInt();
            for (const json::Json& s : body.Get("startup_ids").array()) {
              shard.found_companies.push_back(static_cast<uint64_t>(s.AsInt()));
            }
          });
      FetchAllPages(
          al,
          [uid](int64_t page) {
            return net::ApiRequest("users.following.users",
                                   {{"id", std::to_string(uid)},
                                    {"page", std::to_string(page)}});
          },
          nullptr, config_.fetch, &shard.clock(), &shard.counters(),
          [&](const json::Json& body) {
            following_users = body.Get("total").AsInt();
            for (const json::Json& u : body.Get("user_ids").array()) {
              shard.found_users.push_back(static_cast<uint64_t>(u.AsInt()));
            }
          });

      json::Json record = profile.body;
      record.Set("following_startup_count", following_startups);
      record.Set("following_user_count", following_users);
      shard.Snapshot(UserSnapshotDir(), record).ok();
    });

    // --- Merge discoveries into the next frontiers. ----------------------
    company_frontier.clear();
    user_frontier.clear();
    for (auto& shard : shards_) {
      for (uint64_t cid : shard->found_companies) {
        if (seen_companies_.insert(cid).second) company_frontier.push_back(cid);
      }
      for (uint64_t uid : shard->found_users) {
        if (seen_users_.insert(uid).second) user_frontier.push_back(uid);
      }
      shard->found_companies.clear();
      shard->found_users.clear();
    }
    // Deterministic processing order regardless of worker interleaving.
    std::sort(company_frontier.begin(), company_frontier.end());
    std::sort(user_frontier.begin(), user_frontier.end());
  }

  report_.bfs_rounds = round;
  report_.companies_crawled = static_cast<int64_t>(companies_.size());
  report_.users_crawled = static_cast<int64_t>(seen_users_.size());
  // Stable order for the augmentation phases.
  std::sort(companies_.begin(), companies_.end(),
            [](const CrawledCompany& a, const CrawledCompany& b) {
              return a.id < b.id;
            });
  return Status::OK();
}

Status Crawler::RunCrunchBaseAugmentation() {
  net::CrunchBaseService* cb = &web_->crunchbase();
  std::atomic<int64_t> by_url{0};
  std::atomic<int64_t> by_search{0};
  std::atomic<int64_t> ambiguous{0};
  std::atomic<int64_t> backlink_mismatch{0};
  std::atomic<int64_t> misses{0};
  std::atomic<int64_t> found{0};

  RunStriped(companies_.size(), [&](size_t i, Shard& shard) {
    const CrawledCompany& cc = companies_[i];
    std::string permalink;
    bool via_url = false;
    if (!cc.crunchbase_url.empty()) {
      permalink = std::string(LastUrlSegment(cc.crunchbase_url));
      via_url = true;
    } else {
      // Name search; only a unique hit may be associated (§3).
      net::ApiResponse search = FetchWithRetry(
          cb, net::ApiRequest("organizations.search", {{"name", cc.name}}),
          nullptr, config_.fetch, &shard.clock(), &shard.counters());
      if (!search.ok()) return;
      const auto& results = search.body.Get("results").array();
      if (results.empty()) {
        misses.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (results.size() > 1) {
        ambiguous.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      permalink = results[0].Get("permalink").AsString();
    }
    net::ApiResponse org = FetchWithRetry(
        cb, net::ApiRequest("organizations.get", {{"permalink", permalink}}),
        nullptr, config_.fetch, &shard.clock(), &shard.counters());
    if (org.status == 404) {
      misses.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (!org.ok()) return;
    // CrunchBase links back to AngelList for every dual-listed company
    // (§2); a name-search hit whose backlink points at a different startup
    // is a false match (shared names) and must be dropped.
    const std::string& backlink = org.body.Get("angellist_url").AsString();
    if (!backlink.empty() &&
        backlink != net::AngelListCompanyUrl(cc.id)) {
      backlink_mismatch.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    (via_url ? by_url : by_search).fetch_add(1, std::memory_order_relaxed);
    found.fetch_add(1, std::memory_order_relaxed);
    json::Json record = org.body;
    record.Set("angellist_id", static_cast<int64_t>(cc.id));
    shard.Snapshot(CrunchBaseSnapshotDir(), record).ok();
  });

  report_.crunchbase_profiles = found.load();
  report_.crunchbase_matched_by_url = by_url.load();
  report_.crunchbase_matched_by_search = by_search.load();
  report_.crunchbase_ambiguous_skipped = ambiguous.load();
  report_.crunchbase_backlink_mismatches = backlink_mismatch.load();
  report_.crunchbase_misses = misses.load();
  return Status::OK();
}

Status Crawler::RunFacebookCrawl() {
  net::FacebookService* fb = &web_->facebook();
  std::atomic<int64_t> found{0};
  RunStriped(companies_.size(), [&](size_t i, Shard& shard) {
    const CrawledCompany& cc = companies_[i];
    if (cc.facebook_url.empty()) return;
    std::string page_id(LastUrlSegment(cc.facebook_url));
    net::ApiRequest req("page.get", {{"page_id", page_id}});
    req.access_token = shard.facebook_token();
    net::ApiResponse resp = FetchWithRetry(fb, std::move(req), nullptr,
                                           config_.fetch, &shard.clock(),
                                           &shard.counters());
    if (!resp.ok()) return;
    found.fetch_add(1, std::memory_order_relaxed);
    json::Json record = resp.body;
    record.Set("angellist_id", static_cast<int64_t>(cc.id));
    shard.Snapshot(FacebookSnapshotDir(), record).ok();
  });
  report_.facebook_profiles = found.load();
  return Status::OK();
}

Status Crawler::RunTwitterCrawl() {
  net::TwitterService* tw = &web_->twitter();
  std::atomic<int64_t> found{0};
  RunStriped(companies_.size(), [&](size_t i, Shard& shard) {
    const CrawledCompany& cc = companies_[i];
    if (cc.twitter_url.empty()) return;
    std::string screen_name(LastUrlSegment(cc.twitter_url));
    net::ApiResponse resp = FetchWithRetry(
        tw, net::ApiRequest("users.show", {{"screen_name", screen_name}}),
        &shard.twitter_tokens(), config_.fetch, &shard.clock(),
        &shard.counters());
    if (!resp.ok()) return;
    found.fetch_add(1, std::memory_order_relaxed);
    json::Json record = resp.body;
    record.Set("angellist_id", static_cast<int64_t>(cc.id));
    shard.Snapshot(TwitterSnapshotDir(), record).ok();
  });
  report_.twitter_profiles = found.load();
  return Status::OK();
}

}  // namespace cfnet::crawler
