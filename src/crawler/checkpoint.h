#ifndef CFNET_CRAWLER_CHECKPOINT_H_
#define CFNET_CRAWLER_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "crawler/crawler.h"
#include "dfs/dfs.h"
#include "util/result.h"
#include "util/status.h"

namespace cfnet::crawler {

/// Everything a crawler needs to continue after a crash: BFS frontier and
/// seen sets, per-phase progress cursor, token-pool state, worker clocks,
/// accumulated report counters, and the per-shard snapshot watermarks used
/// to roll uncheckpointed appends back (exactly-once records).
struct CheckpointState {
  int64_t seq = 0;            // stamped by CheckpointStore::Save
  std::string phase;          // phase to run / continue (kPhase* constants)
  int64_t phase_cursor = 0;   // companies already processed within `phase`
  int64_t bfs_round = 0;
  std::vector<uint64_t> company_frontier;
  std::vector<uint64_t> user_frontier;
  std::vector<uint64_t> seen_companies;  // sorted
  std::vector<uint64_t> seen_users;      // sorted
  std::vector<CrawledCompany> companies;
  std::vector<std::string> twitter_tokens;
  std::string facebook_token;
  std::vector<int64_t> worker_clocks;
  /// Durable record count per snapshot file at checkpoint time.
  std::map<std::string, int64_t> snapshot_counts;
  /// Report counters so far (fetch/makespan folded across incarnations).
  CrawlReport report;
};

/// Versioned, CRC-validated checkpoint files in MiniDFS. Files are named
/// `ckpt-<seq>` with monotonically increasing sequence numbers; `Save`
/// prunes all but the newest `keep`, and `LoadLatestValid` skips files
/// whose CRC or payload fails validation (a torn write surfaces as a
/// fallback to the previous checkpoint, not a crash).
class CheckpointStore {
 public:
  CheckpointStore(dfs::MiniDfs* dfs, std::string dir, int keep = 2);

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  /// Stamps `state->seq`, writes the checkpoint, prunes old ones.
  Status Save(CheckpointState* state);

  /// Newest checkpoint that passes CRC + parse validation; NotFound when
  /// none exists (or none is valid).
  Result<CheckpointState> LoadLatestValid() const;

  /// Checkpoint file paths, oldest first.
  std::vector<std::string> ListFiles() const;

  const std::string& dir() const { return dir_; }

  /// Wire format: "CFNETCKPT1 <crc32-hex> <payload-bytes>\n<payload JSON>".
  static std::string Serialize(const CheckpointState& state);
  static Result<CheckpointState> Deserialize(std::string_view file_contents);

 private:
  dfs::MiniDfs* dfs_;
  std::string dir_;  // normalized to end with '/'
  int keep_;
  int64_t next_seq_ = 1;
};

}  // namespace cfnet::crawler

#endif  // CFNET_CRAWLER_CHECKPOINT_H_
