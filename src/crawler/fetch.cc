#include "crawler/fetch.h"

#include <algorithm>

namespace cfnet::crawler {

net::ApiResponse FetchWithRetry(net::ApiService* service,
                                net::ApiRequest request, TokenPool* tokens,
                                const FetchPolicy& policy,
                                int64_t* worker_time, FetchCounters* counters) {
  if (tokens != nullptr && !tokens->empty()) {
    request.access_token = tokens->current();
  }
  int attempt = 0;
  size_t rotations_this_window = 0;
  for (;;) {
    ++counters->requests;
    net::ApiResponse resp = service->Handle(request, worker_time);
    if (resp.status == 503) {
      if (attempt >= policy.max_retries) {
        ++counters->failures;
        return resp;
      }
      // Exponential backoff in virtual time.
      *worker_time += policy.backoff_base_micros << attempt;
      ++attempt;
      ++counters->retries;
      continue;
    }
    if (resp.status == 429) {
      int64_t retry_at = resp.body.Get("retry_at_micros").AsInt();
      if (tokens != nullptr && tokens->size() > 1 &&
          policy.rotate_tokens_on_rate_limit &&
          rotations_this_window + 1 < tokens->size()) {
        tokens->Rotate();
        request.access_token = tokens->current();
        ++rotations_this_window;
        ++counters->token_rotations;
        continue;
      }
      // All tokens exhausted (or rotation disabled): wait out the window.
      *worker_time = std::max(*worker_time + 1000, retry_at);
      rotations_this_window = 0;
      ++counters->rate_limit_waits;
      continue;
    }
    return resp;
  }
}

net::ApiResponse FetchAllPages(
    net::ApiService* service,
    const std::function<net::ApiRequest(int64_t page)>& make_request,
    TokenPool* tokens, const FetchPolicy& policy, int64_t* worker_time,
    FetchCounters* counters,
    const std::function<void(const json::Json& body)>& on_page) {
  int64_t page = 1;
  for (;;) {
    net::ApiResponse resp = FetchWithRetry(service, make_request(page), tokens,
                                           policy, worker_time, counters);
    if (!resp.ok()) return resp;
    on_page(resp.body);
    int64_t last_page = resp.body.Get("last_page").AsInt(1);
    if (page >= last_page) return resp;
    ++page;
  }
}

}  // namespace cfnet::crawler
