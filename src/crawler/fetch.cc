#include "crawler/fetch.h"

#include <algorithm>

namespace cfnet::crawler {

net::ApiResponse FetchWithRetry(net::ApiService* service,
                                net::ApiRequest request, TokenPool* tokens,
                                const FetchPolicy& policy,
                                int64_t* worker_time, FetchCounters* counters,
                                CircuitBreaker* breaker) {
  if (tokens != nullptr && !tokens->empty()) {
    request.access_token = tokens->current();
  }
  int attempt = 0;
  ExponentialBackoff backoff(
      BackoffPolicy{policy.backoff_base_micros, policy.backoff_multiplier,
                    policy.backoff_max_micros, policy.backoff_jitter},
      policy.backoff_seed);
  size_t rotations_this_window = 0;
  for (;;) {
    if (breaker != nullptr && !breaker->AllowRequest(*worker_time)) {
      // Wait out the cooldown in virtual time and contend for a half-open
      // probe slot; losers of the probe race (and impatient policies) fail
      // fast without touching the service.
      bool admitted = false;
      if (policy.wait_for_breaker_probe) {
        int64_t until = breaker->open_until_micros();
        if (until > *worker_time) {
          *worker_time = until;
          ++counters->breaker_waits;
        }
        admitted = breaker->AllowRequest(*worker_time);
      }
      if (!admitted) {
        ++counters->breaker_fast_fails;
        ++counters->failures;
        return net::ApiResponse::Error(
            503, "circuit breaker open: " + service->name());
      }
    }
    ++counters->requests;
    net::ApiResponse resp = service->Handle(request, worker_time);
    const bool malformed = resp.status == 200 && resp.malformed;
    if (resp.status == 503 || malformed) {
      if (breaker != nullptr) breaker->RecordFailure(*worker_time);
      if (malformed) ++counters->malformed_retries;
      if (attempt >= policy.max_retries) {
        ++counters->failures;
        if (malformed) {
          return net::ApiResponse::Error(502, "malformed response body");
        }
        return resp;
      }
      // Exponential backoff in virtual time.
      *worker_time += backoff.NextDelayMicros();
      ++attempt;
      ++counters->retries;
      continue;
    }
    if (resp.status == 429) {
      int64_t retry_at = resp.body.Get("retry_at_micros").AsInt();
      if (tokens != nullptr && tokens->size() > 1 &&
          policy.rotate_tokens_on_rate_limit &&
          rotations_this_window + 1 < tokens->size()) {
        tokens->Rotate();
        request.access_token = tokens->current();
        ++rotations_this_window;
        ++counters->token_rotations;
        continue;
      }
      // All tokens exhausted (or rotation disabled): wait out the window.
      *worker_time = std::max(*worker_time + 1000, retry_at);
      rotations_this_window = 0;
      ++counters->rate_limit_waits;
      continue;
    }
    if (breaker != nullptr) {
      // 401s feed the breaker (token-revocation storms are a service-side
      // incident); 404/400 are healthy answers about unhealthy questions.
      if (resp.status == 401) {
        breaker->RecordFailure(*worker_time);
      } else {
        breaker->RecordSuccess();
      }
    }
    return resp;
  }
}

net::ApiResponse FetchAllPages(
    net::ApiService* service,
    const std::function<net::ApiRequest(int64_t page)>& make_request,
    TokenPool* tokens, const FetchPolicy& policy, int64_t* worker_time,
    FetchCounters* counters,
    const std::function<void(const json::Json& body)>& on_page,
    CircuitBreaker* breaker) {
  int64_t page = 1;
  for (;;) {
    net::ApiResponse resp = FetchWithRetry(service, make_request(page), tokens,
                                           policy, worker_time, counters,
                                           breaker);
    if (!resp.ok()) return resp;
    on_page(resp.body);
    int64_t last_page = resp.body.Get("last_page").AsInt(1);
    if (page >= last_page) return resp;
    ++page;
  }
}

}  // namespace cfnet::crawler
