#ifndef CFNET_CRAWLER_CRAWLER_H_
#define CFNET_CRAWLER_CRAWLER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "crawler/fetch.h"
#include "dfs/dfs.h"
#include "net/social_web.h"
#include "util/result.h"
#include "util/status.h"

namespace cfnet::crawler {

/// Crawl pipeline configuration.
struct CrawlConfig {
  /// Parallel crawler workers (each carries its own virtual clock).
  int num_workers = 8;
  /// Simulated machines for the Twitter crawl; each registers up to
  /// `twitter_apps_per_machine` apps (Twitter caps apps per user at 5), and
  /// the resulting token pool is shared round-robin by the workers.
  int num_twitter_machines = 2;
  int twitter_apps_per_machine = 5;
  FetchPolicy fetch;
  /// DFS directory snapshots are written under.
  std::string snapshot_dir = "/crawl";
  bool store_snapshots = true;
  /// Safety valve for tests: stop the BFS after this many rounds (0 = run
  /// until the frontier is exhausted, as the paper does).
  int max_bfs_rounds = 0;
};

/// Aggregated crawl outcome.
struct CrawlReport {
  int64_t companies_crawled = 0;
  int64_t users_crawled = 0;
  int64_t bfs_rounds = 0;

  int64_t crunchbase_profiles = 0;
  int64_t crunchbase_matched_by_url = 0;
  int64_t crunchbase_matched_by_search = 0;
  int64_t crunchbase_ambiguous_skipped = 0;
  int64_t crunchbase_backlink_mismatches = 0;
  int64_t crunchbase_misses = 0;

  int64_t facebook_profiles = 0;
  int64_t twitter_profiles = 0;
  int64_t twitter_tokens = 0;

  FetchCounters fetch;           // summed over workers
  int64_t makespan_micros = 0;   // simulated (max worker clock)
  double wall_seconds = 0;       // real time spent crawling
};

/// Minimal in-memory record kept per crawled company, feeding the
/// augmentation phases (everything else lives in the DFS snapshots).
struct CrawledCompany {
  uint64_t id = 0;
  std::string name;
  std::string twitter_url;
  std::string facebook_url;
  std::string crunchbase_url;
};

/// High-throughput parallel crawler over the simulated web, reproducing the
/// paper's collection pipeline (§3):
///
///  1. AngelList frontier BFS seeded by the "currently raising" listing:
///     startups -> their followers -> everything those users follow -> ...
///  2. One-time CrunchBase augmentation per discovered startup (URL join
///     when AngelList lists it, unique-name search otherwise).
///  3. Facebook Graph crawl of startups with Facebook links (long-lived
///     token obtained via the OAuth exchange).
///  4. Twitter crawl of startups with Twitter links (token pool sharded
///     across simulated machines to beat the 180-calls/15-min limit).
///
/// Snapshots are written to MiniDFS as JSON-lines, one directory per
/// source, sharded per worker.
class Crawler {
 public:
  Crawler(net::SocialWeb* web, dfs::MiniDfs* dfs, CrawlConfig config);
  ~Crawler();  // out of line: Shard is incomplete here

  Crawler(const Crawler&) = delete;
  Crawler& operator=(const Crawler&) = delete;

  /// Runs all four phases.
  Status Run();

  /// Individual phases (Run calls these in order; exposed for tests and
  /// partial pipelines). RunAngelListBfs must come first.
  Status RunAngelListBfs();
  Status RunCrunchBaseAugmentation();
  Status RunFacebookCrawl();
  Status RunTwitterCrawl();

  const CrawlReport& report() const { return report_; }
  const std::vector<CrawledCompany>& crawled_companies() const {
    return companies_;
  }

  /// Snapshot locations (JSON-lines file sets under snapshot_dir).
  std::string StartupSnapshotDir() const { return config_.snapshot_dir + "/angellist/startups/"; }
  std::string UserSnapshotDir() const { return config_.snapshot_dir + "/angellist/users/"; }
  std::string CrunchBaseSnapshotDir() const { return config_.snapshot_dir + "/crunchbase/"; }
  std::string FacebookSnapshotDir() const { return config_.snapshot_dir + "/facebook/"; }
  std::string TwitterSnapshotDir() const { return config_.snapshot_dir + "/twitter/"; }

 private:
  class Shard;  // per-worker state (clock, counters, snapshot writers)

  /// Runs `fn(item_index, shard)` for every index in [0, n) striped across
  /// workers; merges shard counters afterwards.
  void RunStriped(size_t n, const std::function<void(size_t, Shard&)>& fn);

  Status SetUpTokens();
  void MergeCounters();

  net::SocialWeb* web_;
  dfs::MiniDfs* dfs_;
  CrawlConfig config_;
  CrawlReport report_;

  std::vector<std::unique_ptr<Shard>> shards_;

  // Discovered-entity state (BFS bookkeeping).
  std::unordered_set<uint64_t> seen_companies_;
  std::unordered_set<uint64_t> seen_users_;
  std::vector<CrawledCompany> companies_;

  // Tokens.
  std::vector<std::string> twitter_tokens_;
  std::string facebook_token_;
};

}  // namespace cfnet::crawler

#endif  // CFNET_CRAWLER_CRAWLER_H_
