#ifndef CFNET_CRAWLER_CRAWLER_H_
#define CFNET_CRAWLER_CRAWLER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "crawler/fetch.h"
#include "dfs/dfs.h"
#include "net/social_web.h"
#include "util/result.h"
#include "util/status.h"

namespace cfnet::crawler {

struct CheckpointState;
class CheckpointStore;

/// Pipeline phase names, in execution order. They key checkpoints,
/// dead-letter directories and degradation reports.
inline constexpr std::string_view kPhaseBfs = "bfs";
inline constexpr std::string_view kPhaseCrunchBase = "crunchbase";
inline constexpr std::string_view kPhaseFacebook = "facebook";
inline constexpr std::string_view kPhaseTwitter = "twitter";
inline constexpr std::string_view kPhaseDone = "done";

/// Crawl pipeline configuration.
struct CrawlConfig {
  /// Parallel crawler workers (each carries its own virtual clock).
  int num_workers = 8;
  /// Simulated machines for the Twitter crawl; each registers up to
  /// `twitter_apps_per_machine` apps (Twitter caps apps per user at 5), and
  /// the resulting token pool is shared round-robin by the workers.
  int num_twitter_machines = 2;
  int twitter_apps_per_machine = 5;
  FetchPolicy fetch;
  /// DFS directory snapshots are written under.
  std::string snapshot_dir = "/crawl";
  bool store_snapshots = true;
  /// Safety valve for tests: stop the BFS after this many rounds (0 = run
  /// until the frontier is exhausted, as the paper does).
  int max_bfs_rounds = 0;
  /// Invoked after a successful crawl (or dead-letter replay) has flushed
  /// every snapshot shard. The platform installs snapshot compaction here
  /// (JSON shards -> columnar files); the crawler itself stays
  /// record-agnostic. A failing hook fails the crawl it rode on.
  std::function<Status()> post_flush_hook;

  // --- fault tolerance ----------------------------------------------------
  /// Per-service circuit breaker tuning (one breaker per augmentation
  /// source, shared by all workers).
  CircuitBreakerConfig breaker;
  /// Breaker trips an augmentation phase may absorb before the phase
  /// degrades: remaining entities go straight to the dead-letter log and
  /// the crawl continues without the source.
  int breaker_trip_budget = 2;

  // --- crash-safe checkpointing -------------------------------------------
  /// Periodically persist crawl state (frontier, seen sets, cursors, token
  /// pool, snapshot watermarks) to versioned CRC-validated files so
  /// `Resume()` can continue after a crash without re-fetching done work.
  bool checkpointing = true;
  /// Kept outside `snapshot_dir` so disabling snapshots does not disable
  /// durability metadata.
  std::string checkpoint_dir = "/checkpoints";
  int checkpoint_every_rounds = 1;  // BFS rounds between checkpoints
  int checkpoint_chunk = 1024;      // augmentation items between checkpoints
  int checkpoints_to_keep = 2;

  // --- crash simulation (fault-injection tests) ---------------------------
  /// Abort the crawl mid-BFS after this many rounds (0 = never).
  int crash_after_bfs_rounds = 0;
  /// Abort right after this phase completes (and checkpoints), e.g.
  /// "crunchbase"; empty = never.
  std::string crash_after_phase;
};

/// One augmentation source that was given up on: its circuit breaker
/// exceeded the trip budget, so the phase was skipped past that point
/// instead of failing the whole crawl.
struct DegradedReport {
  std::string phase;
  int64_t breaker_trips = 0;
  int64_t dead_lettered = 0;
  std::string reason;
};

/// Aggregated crawl outcome.
struct CrawlReport {
  int64_t companies_crawled = 0;
  int64_t users_crawled = 0;
  int64_t bfs_rounds = 0;

  int64_t crunchbase_profiles = 0;
  int64_t crunchbase_matched_by_url = 0;
  int64_t crunchbase_matched_by_search = 0;
  int64_t crunchbase_ambiguous_skipped = 0;
  int64_t crunchbase_backlink_mismatches = 0;
  int64_t crunchbase_misses = 0;

  int64_t facebook_profiles = 0;
  int64_t twitter_profiles = 0;
  int64_t twitter_tokens = 0;

  FetchCounters fetch;           // summed over workers
  int64_t makespan_micros = 0;   // simulated (max worker clock)
  double wall_seconds = 0;       // real time spent crawling

  // Fault-tolerance counters.
  int64_t breaker_trips = 0;
  int64_t checkpoint_writes = 0;
  int64_t checkpoint_restores = 0;
  int64_t dead_lettered_ids = 0;
  int64_t dead_letters_replayed = 0;
  /// Storage recovery: orphaned temp files GC'd and corrupt-footer files
  /// quarantined by the sweeps Resume() runs before trusting the snapshot
  /// tree (see dfs/commit.h).
  int64_t storage_temps_removed = 0;
  int64_t storage_quarantined = 0;
  std::vector<DegradedReport> degraded_phases;
};

/// Minimal in-memory record kept per crawled company, feeding the
/// augmentation phases (everything else lives in the DFS snapshots).
struct CrawledCompany {
  uint64_t id = 0;
  std::string name;
  std::string twitter_url;
  std::string facebook_url;
  std::string crunchbase_url;
};

/// High-throughput parallel crawler over the simulated web, reproducing the
/// paper's collection pipeline (§3):
///
///  1. AngelList frontier BFS seeded by the "currently raising" listing:
///     startups -> their followers -> everything those users follow -> ...
///  2. One-time CrunchBase augmentation per discovered startup (URL join
///     when AngelList lists it, unique-name search otherwise).
///  3. Facebook Graph crawl of startups with Facebook links (long-lived
///     token obtained via the OAuth exchange).
///  4. Twitter crawl of startups with Twitter links (token pool sharded
///     across simulated machines to beat the 180-calls/15-min limit).
///
/// Snapshots are written to MiniDFS as JSON-lines, one directory per
/// source, sharded per worker.
///
/// Fault tolerance: the crawler checkpoints its full state to MiniDFS at
/// BFS-round and augmentation-chunk boundaries; `Resume()` restores the
/// latest CRC-valid checkpoint, truncates snapshot shards back to the
/// checkpointed watermarks (exactly-once records), and continues. Each
/// augmentation source sits behind a circuit breaker; a source that trips
/// past `breaker_trip_budget` degrades gracefully — its remaining entities
/// are dead-lettered for later `ReplayDeadLetters()` instead of failing the
/// crawl.
class Crawler {
 public:
  Crawler(net::SocialWeb* web, dfs::MiniDfs* dfs, CrawlConfig config);
  ~Crawler();  // out of line: Shard is incomplete here

  Crawler(const Crawler&) = delete;
  Crawler& operator=(const Crawler&) = delete;

  /// Runs all four phases from scratch.
  Status Run();

  /// Restores the latest valid checkpoint and continues the crawl from
  /// there (falling back to a fresh `Run()` when no checkpoint exists).
  /// Records written after the restored checkpoint are discarded before
  /// re-crawling, so snapshot shards never carry duplicates.
  Status Resume();

  /// Re-attempts every dead-lettered entity (after the faults that caused
  /// them cleared), removing replayed entries from the log. Safe to call
  /// repeatedly until the log drains.
  Status ReplayDeadLetters();

  /// Individual phases (Run calls these in order; exposed for tests and
  /// partial pipelines). RunAngelListBfs must come first.
  Status RunAngelListBfs();
  Status RunCrunchBaseAugmentation();
  Status RunFacebookCrawl();
  Status RunTwitterCrawl();

  const CrawlReport& report() const { return report_; }
  const std::vector<CrawledCompany>& crawled_companies() const {
    return companies_;
  }

  /// Snapshot locations (JSON-lines file sets under snapshot_dir).
  std::string StartupSnapshotDir() const { return config_.snapshot_dir + "/angellist/startups/"; }
  std::string UserSnapshotDir() const { return config_.snapshot_dir + "/angellist/users/"; }
  std::string CrunchBaseSnapshotDir() const { return config_.snapshot_dir + "/crunchbase/"; }
  std::string FacebookSnapshotDir() const { return config_.snapshot_dir + "/facebook/"; }
  std::string TwitterSnapshotDir() const { return config_.snapshot_dir + "/twitter/"; }
  /// Dead-letter log for one augmentation phase (JSON-lines of
  /// {id, phase, reason}, sharded per worker).
  std::string DeadLetterDir(std::string_view phase) const {
    return config_.snapshot_dir + "/deadletter/" + std::string(phase) + "/";
  }

  /// Per-service circuit breakers (for tests and operators).
  const CircuitBreaker& crunchbase_breaker() const { return *crunchbase_breaker_; }
  const CircuitBreaker& facebook_breaker() const { return *facebook_breaker_; }
  const CircuitBreaker& twitter_breaker() const { return *twitter_breaker_; }

 private:
  class Shard;  // per-worker state (clock, counters, snapshot writers)
  enum class ItemOutcome { kOk, kSkipped, kFailed };
  using ProcessFn = ItemOutcome (Crawler::*)(const CrawledCompany&, Shard&);

  /// Runs `fn(item_index, shard)` for every index in [0, n) striped across
  /// workers; merges shard counters afterwards.
  void RunStriped(size_t n, const std::function<void(size_t, Shard&)>& fn);

  Status SetUpTokens();
  void MergeCounters();
  FetchCounters SumShardCounters() const;
  int64_t MaxShardClock() const;
  int64_t SumBreakerTrips() const;

  /// Phase driver starting at `phase_idx` into the canonical phase order,
  /// with `cursor` companies of that phase already done (resume path).
  Status RunFrom(size_t phase_idx, size_t cursor);
  /// Checkpoints the transition to `next` and fires the crash hook.
  Status AfterPhase(std::string_view completed, std::string_view next);

  /// Chunked, breaker-guarded, checkpointed augmentation phase loop.
  Status RunPhase(std::string_view phase, size_t start_cursor);
  ItemOutcome ProcessCrunchBase(const CrawledCompany& cc, Shard& shard);
  ItemOutcome ProcessFacebook(const CrawledCompany& cc, Shard& shard);
  ItemOutcome ProcessTwitter(const CrawledCompany& cc, Shard& shard);
  CircuitBreaker* BreakerFor(std::string_view phase);
  ProcessFn ProcessFor(std::string_view phase) const;

  Status DeadLetter(Shard& shard, std::string_view phase, uint64_t id,
                    std::string_view reason);

  Status SaveCheckpoint(std::string_view phase, size_t cursor);
  Status RestoreFromCheckpoint(const CheckpointState& state);
  Status FlushAllShards();

  net::SocialWeb* web_;
  dfs::MiniDfs* dfs_;
  CrawlConfig config_;
  CrawlReport report_;
  std::mutex report_mu_;  // guards phase counters updated from workers

  std::vector<std::unique_ptr<Shard>> shards_;

  // Discovered-entity state (BFS bookkeeping). The frontiers and round
  // counter live here so checkpoints can capture mid-BFS progress.
  std::unordered_set<uint64_t> seen_companies_;
  std::unordered_set<uint64_t> seen_users_;
  std::vector<CrawledCompany> companies_;
  std::vector<uint64_t> company_frontier_;
  std::vector<uint64_t> user_frontier_;
  int64_t bfs_round_ = 0;
  bool bfs_seeded_ = false;

  // Tokens.
  std::vector<std::string> twitter_tokens_;
  std::string facebook_token_;

  // Fault tolerance.
  std::unique_ptr<CircuitBreaker> crunchbase_breaker_;
  std::unique_ptr<CircuitBreaker> facebook_breaker_;
  std::unique_ptr<CircuitBreaker> twitter_breaker_;
  std::unique_ptr<CheckpointStore> checkpoints_;
  /// Records per snapshot file at restore time; checkpointed counts are
  /// base + records written by this incarnation's writers.
  std::map<std::string, int64_t> snapshot_base_counts_;
  /// Counters carried over from the incarnation(s) before a resume.
  FetchCounters fetch_base_;
  int64_t breaker_trips_base_ = 0;
};

}  // namespace cfnet::crawler

#endif  // CFNET_CRAWLER_CRAWLER_H_
