#ifndef CFNET_CRAWLER_PERIODIC_H_
#define CFNET_CRAWLER_PERIODIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crawler/fetch.h"
#include "dfs/dfs.h"
#include "json/json.h"
#include "net/social_web.h"
#include "util/result.h"

namespace cfnet::crawler {

/// Configuration of the daily cohort crawl.
struct PeriodicCrawlConfig {
  std::string snapshot_dir = "/longitudinal";
  FetchPolicy fetch;
  /// Also fetch each raising company's Twitter profile (follower growth is
  /// the longitudinal signal §7 cares about).
  bool fetch_twitter = true;
};

/// One day's collection summary.
struct DaySnapshotReport {
  int day = 0;
  int64_t raising_companies = 0;
  int64_t profiles_stored = 0;
  int64_t twitter_profiles = 0;
  FetchCounters fetch;
};

/// §3's "mechanisms to crawl these sources periodically and track them over
/// time", §7's "daily data collection task": each CrawlDay call lists the
/// currently-fundraising startups, fetches their AngelList profiles (plus
/// Twitter engagement), and appends a dated JSON-lines snapshot to MiniDFS
/// (`<snapshot_dir>/day-<d>.jsonl`, records tagged with "day").
///
/// The caller passes a fresh SocialWeb each day (services cache pieces of
/// the world at construction, and the world may have evolved in between) —
/// exactly like re-hitting the live APIs.
class PeriodicCohortCrawler {
 public:
  PeriodicCohortCrawler(dfs::MiniDfs* dfs, PeriodicCrawlConfig config = {});

  /// Crawls day `day`'s raising cohort.
  Result<DaySnapshotReport> CrawlDay(net::SocialWeb* web, int day);

  /// Reads back one day's snapshot records.
  Result<std::vector<json::Json>> ReadDay(int day) const;

  /// Path of a day's snapshot file.
  std::string DayPath(int day) const;

 private:
  dfs::MiniDfs* dfs_;
  PeriodicCrawlConfig config_;
};

}  // namespace cfnet::crawler

#endif  // CFNET_CRAWLER_PERIODIC_H_
