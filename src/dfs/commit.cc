#include "dfs/commit.h"

#include <cinttypes>
#include <cstdio>

#include "util/crc32.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cfnet::dfs {
namespace {

/// Parses exactly `len` hex/decimal digits; returns false on any non-digit.
bool ParseHex32(std::string_view s, uint32_t* out) {
  uint32_t v = 0;
  if (s.size() != 8) return false;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<uint32_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

bool ParseDec64(std::string_view s, uint64_t* out) {
  uint64_t v = 0;
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

void ChargeDelay(ExponentialBackoff* backoff, const CommitOptions& opts) {
  int64_t delay = backoff->NextDelayMicros();
  if (opts.clock_micros != nullptr) *opts.clock_micros += delay;
}

}  // namespace

std::string MakeCommitFooter(uint32_t payload_crc, uint64_t payload_len) {
  char buf[kCommitFooterSize + 1];
  int n = std::snprintf(buf, sizeof(buf), "%s %08x %020" PRIu64 "\n",
                        std::string(kCommitFooterMagic).c_str(), payload_crc,
                        payload_len);
  (void)n;
  return std::string(buf, kCommitFooterSize);
}

FooterState InspectFooter(std::string_view file, uint64_t* payload_len) {
  if (file.size() < kCommitFooterSize) return FooterState::kAbsent;
  std::string_view footer = file.substr(file.size() - kCommitFooterSize);
  if (footer.substr(0, kCommitFooterMagic.size()) != kCommitFooterMagic ||
      footer[kCommitFooterMagic.size()] != ' ') {
    return FooterState::kAbsent;
  }
  // Layout: "CFNETFTR1 " + 8 hex + " " + 20 dec + "\n".
  std::string_view crc_field = footer.substr(kCommitFooterMagic.size() + 1, 8);
  std::string_view len_field = footer.substr(kCommitFooterMagic.size() + 10, 20);
  uint32_t crc = 0;
  uint64_t len = 0;
  if (footer[kCommitFooterMagic.size() + 9] != ' ' || footer.back() != '\n' ||
      !ParseHex32(crc_field, &crc) || !ParseDec64(len_field, &len)) {
    return FooterState::kCorrupt;
  }
  std::string_view payload = file.substr(0, file.size() - kCommitFooterSize);
  if (len != payload.size() || Crc32(payload) != crc) {
    return FooterState::kCorrupt;
  }
  if (payload_len != nullptr) *payload_len = payload.size();
  return FooterState::kValid;
}

std::string TempPath(const std::string& path) {
  return path + std::string(kTempSuffix);
}

bool IsTempPath(std::string_view path) {
  return path.size() >= kTempSuffix.size() &&
         path.substr(path.size() - kTempSuffix.size()) == kTempSuffix;
}

std::string QuarantinePath(const std::string& path) {
  return std::string(kQuarantineRoot) + path;
}

Status CommitFile(MiniDfs* dfs, const std::string& path,
                  std::string_view payload, const CommitOptions& opts) {
  const std::string tmp = TempPath(path);
  std::string framed;
  framed.reserve(payload.size() + kCommitFooterSize);
  framed.append(payload.data(), payload.size());
  framed += MakeCommitFooter(Crc32(payload), payload.size());

  ExponentialBackoff backoff(opts.backoff, opts.backoff_seed);
  Status last = Status::Internal("commit never attempted");
  for (int attempt = 0; attempt < opts.max_attempts; ++attempt) {
    if (attempt > 0) ChargeDelay(&backoff, opts);
    last = dfs->WriteFile(tmp, framed);
    if (!last.ok()) continue;
    if (opts.verify_after_write) {
      // The read-back is the only step that catches silent fsync loss and
      // write-buffer bit flips: the write reported OK, but did the bytes
      // actually land?
      auto back = dfs->ReadFile(tmp);
      if (!back.ok()) {
        last = back.status();
        continue;
      }
      if (InspectFooter(*back, nullptr) != FooterState::kValid) {
        last = Status::Corruption("commit verification failed for " + tmp);
        continue;
      }
    }
    last = dfs->Rename(tmp, path);
    if (last.ok()) return Status::OK();
  }
  dfs->Delete(tmp).ok();  // best-effort GC; the startup sweep also catches it
  return last;
}

Status CommitAppend(MiniDfs* dfs, const std::string& path,
                    std::string_view payload, const CommitOptions& opts) {
  std::string combined;
  if (dfs->Exists(path)) {
    auto prior = ReadCommitted(dfs, path, opts);
    if (!prior.ok()) return prior.status();
    combined = std::move(*prior);
  }
  combined.append(payload.data(), payload.size());
  return CommitFile(dfs, path, combined, opts);
}

Result<std::string> ReadCommitted(MiniDfs* dfs, const std::string& path,
                                  const CommitOptions& opts) {
  ExponentialBackoff backoff(opts.backoff, opts.backoff_seed);
  Status last = Status::Internal("read never attempted");
  for (int attempt = 0; attempt < opts.max_attempts; ++attempt) {
    if (attempt > 0) ChargeDelay(&backoff, opts);
    auto content = dfs->ReadFile(path);
    if (!content.ok()) {
      last = content.status();
      if (last.code() == StatusCode::kNotFound) return last;
      continue;
    }
    uint64_t payload_len = 0;
    switch (InspectFooter(*content, &payload_len)) {
      case FooterState::kValid:
        content->resize(payload_len);
        return std::move(*content);
      case FooterState::kAbsent:
        // Legacy raw artifact: no end-to-end guarantee, but also no claim
        // of one — hand back the bytes as stored.
        return std::move(*content);
      case FooterState::kCorrupt:
        // Could be a transient in-flight flip; a retry reads the intact
        // replicas again.
        last = Status::Corruption("corrupt commit footer on " + path);
        continue;
    }
  }
  return last;
}

void RecoveryReport::Merge(const RecoveryReport& other) {
  temp_files_removed += other.temp_files_removed;
  files_quarantined += other.files_quarantined;
  quarantined_paths.insert(quarantined_paths.end(),
                           other.quarantined_paths.begin(),
                           other.quarantined_paths.end());
}

RecoveryReport SweepDir(MiniDfs* dfs, const std::string& dir_prefix) {
  RecoveryReport report;
  for (const std::string& path : dfs->List(dir_prefix)) {
    if (IsTempPath(path)) {
      // The rename never happened, so this file is not part of any commit
      // history — deleting it cannot lose acknowledged data.
      if (dfs->Delete(path).ok()) ++report.temp_files_removed;
      continue;
    }
    auto content = dfs->ReadFile(path);
    if (!content.ok()) continue;  // unreadable files are the scrubber's job
    if (InspectFooter(*content, nullptr) == FooterState::kCorrupt) {
      if (dfs->Rename(path, QuarantinePath(path)).ok()) {
        ++report.files_quarantined;
        report.quarantined_paths.push_back(QuarantinePath(path));
      }
    }
  }
  if (!report.clean()) {
    CFNET_LOG(Info) << "storage recovery sweep of " << dir_prefix
                    << ": removed " << report.temp_files_removed
                    << " orphaned temp file(s), quarantined "
                    << report.files_quarantined << " corrupt file(s)";
  }
  return report;
}

}  // namespace cfnet::dfs
