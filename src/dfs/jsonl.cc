#include "dfs/jsonl.h"

#include "util/string_util.h"

namespace cfnet::dfs {
namespace {

/// Reads a file and strips a *valid* commit footer. Footer-less files read
/// as stored (legacy artifacts); a corrupt footer is a hard error here —
/// strict readers must not hand back bytes the footer disowns.
Result<std::string> ReadPayloadStrict(const MiniDfs& dfs,
                                      const std::string& path) {
  CFNET_ASSIGN_OR_RETURN(std::string content, dfs.ReadFile(path));
  uint64_t payload_len = 0;
  switch (InspectFooter(content, &payload_len)) {
    case FooterState::kValid:
      content.resize(payload_len);
      return content;
    case FooterState::kAbsent:
      return content;
    case FooterState::kCorrupt:
      break;
  }
  return Status::Corruption("corrupt commit footer on " + path);
}

}  // namespace

void ScanReport::Merge(const ScanReport& other) {
  files_scanned += other.files_scanned;
  footer_verified_files += other.footer_verified_files;
  raw_files += other.raw_files;
  bytes_scanned += other.bytes_scanned;
  records_dropped += other.records_dropped;
  quarantined_paths.insert(quarantined_paths.end(),
                           other.quarantined_paths.begin(),
                           other.quarantined_paths.end());
  columnar_files += other.columnar_files;
  columnar_blocks_scanned += other.columnar_blocks_scanned;
  columnar_blocks_failed += other.columnar_blocks_failed;
  columnar_dictionary_bytes += other.columnar_dictionary_bytes;
  columnar_encoded_bytes += other.columnar_encoded_bytes;
  columnar_decoded_bytes += other.columnar_decoded_bytes;
}

JsonLinesWriter::JsonLinesWriter(MiniDfs* dfs, std::string path,
                                 size_t flush_bytes, bool durable)
    : dfs_(dfs),
      path_(std::move(path)),
      flush_bytes_(flush_bytes),
      durable_(durable) {}

JsonLinesWriter::~JsonLinesWriter() { Flush().ok(); }

Status JsonLinesWriter::Write(const json::Json& record) {
  record.AppendTo(buffer_);
  buffer_ += '\n';
  ++records_written_;
  if (buffer_.size() >= flush_bytes_) return Flush();
  return Status::OK();
}

Status JsonLinesWriter::Flush() {
  if (buffer_.empty()) return Status::OK();
  Status s = durable_ ? CommitAppend(dfs_, path_, buffer_)
                      : dfs_->Append(path_, buffer_);
  if (s.ok()) buffer_.clear();
  return s;
}

Result<std::vector<json::Json>> ReadJsonLines(const MiniDfs& dfs,
                                              const std::string& path) {
  CFNET_ASSIGN_OR_RETURN(std::string content, ReadPayloadStrict(dfs, path));
  std::vector<json::Json> out;
  size_t start = 0;
  size_t line_no = 0;
  while (start < content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    ++line_no;
    std::string_view line(content.data() + start, end - start);
    if (!StrTrim(line).empty()) {
      auto parsed = json::Parse(line);
      if (!parsed.ok()) {
        return Status::Corruption(path + ":" + std::to_string(line_no) + ": " +
                                  parsed.status().message());
      }
      out.push_back(std::move(parsed).value());
    }
    start = end + 1;
  }
  return out;
}

Result<int64_t> CountJsonLines(const MiniDfs& dfs, const std::string& path) {
  CFNET_ASSIGN_OR_RETURN(std::string content, ReadPayloadStrict(dfs, path));
  int64_t records = 0;
  size_t start = 0;
  while (start < content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    if (!StrTrim(std::string_view(content.data() + start, end - start))
             .empty()) {
      ++records;
    }
    start = end + 1;
  }
  return records;
}

Status TruncateJsonLines(MiniDfs* dfs, const std::string& path,
                         int64_t keep_records) {
  if (keep_records <= 0) return dfs->Delete(path);
  CFNET_ASSIGN_OR_RETURN(std::string raw, dfs->ReadFile(path));
  uint64_t payload_len = 0;
  const FooterState footer = InspectFooter(raw, &payload_len);
  if (footer == FooterState::kCorrupt) {
    return Status::Corruption("corrupt commit footer on " + path);
  }
  std::string content = std::move(raw);
  if (footer == FooterState::kValid) content.resize(payload_len);
  int64_t records = 0;
  size_t start = 0;
  while (start < content.size() && records < keep_records) {
    size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    if (!StrTrim(std::string_view(content.data() + start, end - start))
             .empty()) {
      ++records;
    }
    start = end + 1;
  }
  if (start >= content.size()) return Status::OK();  // already short enough
  content.resize(start);
  // A committed file stays committed: the truncated content gets a fresh
  // footer so the recovery invariant (every snapshot artifact verifies)
  // survives the rollback.
  if (footer == FooterState::kValid) return CommitFile(dfs, path, content);
  return dfs->WriteFile(path, content);
}

namespace internal_scan {

Result<ShardLoad> LoadShardContents(const MiniDfs& dfs,
                                    const std::vector<std::string>& paths,
                                    bool salvage, ScanReport* report) {
  ShardLoad load;
  load.contents.reserve(paths.size());
  load.lenient.reserve(paths.size());
  for (const std::string& path : paths) {
    CFNET_ASSIGN_OR_RETURN(std::string content, dfs.ReadFile(path));
    ++report->files_scanned;
    uint64_t payload_len = 0;
    bool lenient = false;
    switch (InspectFooter(content, &payload_len)) {
      case FooterState::kValid:
        content.resize(payload_len);
        ++report->footer_verified_files;
        break;
      case FooterState::kAbsent:
        // No integrity claim either way. Salvage mode treats the bytes as
        // suspect (a torn raw write looks exactly like this).
        ++report->raw_files;
        lenient = salvage;
        break;
      case FooterState::kCorrupt:
        if (!salvage) {
          return Status::Corruption("corrupt commit footer on " + path);
        }
        // The footer bytes are provably metadata (the magic matched), so
        // strip them and salvage whatever lines still decode.
        content.resize(content.size() - kCommitFooterSize);
        report->quarantined_paths.push_back(path);
        lenient = true;
        break;
    }
    report->bytes_scanned += content.size();
    load.contents.push_back(std::move(content));
    load.lenient.push_back(lenient ? 1 : 0);
  }
  return load;
}

std::vector<LineRange> SplitLineRanges(const std::vector<std::string>& contents,
                                       size_t target_ranges,
                                       size_t min_range_bytes) {
  uint64_t total_bytes = 0;
  for (const std::string& c : contents) total_bytes += c.size();
  std::vector<LineRange> ranges;
  if (total_bytes == 0) {
    // Degenerate but non-empty result so ScanJsonLines always yields at
    // least one (possibly empty) partition.
    ranges.push_back(LineRange{});
    return ranges;
  }
  // Each file gets a proportional share of the target, then chunk boundaries
  // advance to the next line start so every range is line-aligned.
  const uint64_t chunk_bytes = std::max<uint64_t>(
      min_range_bytes, (total_bytes + target_ranges - 1) / target_ranges);
  for (size_t f = 0; f < contents.size(); ++f) {
    const std::string& content = contents[f];
    if (content.empty()) continue;
    size_t begin = 0;
    int64_t first_line = 1;
    while (begin < content.size()) {
      size_t end = begin + chunk_bytes;
      if (end >= content.size()) {
        end = content.size();
      } else {
        size_t nl = content.find('\n', end - 1);
        end = (nl == std::string::npos) ? content.size() : nl + 1;
      }
      ranges.push_back(LineRange{f, begin, end, first_line});
      // Line numbers count every line (blank included), matching
      // ReadJsonLines error reporting.
      first_line +=
          std::count(content.begin() + static_cast<long>(begin),
                     content.begin() + static_cast<long>(end), '\n');
      begin = end;
    }
  }
  if (ranges.empty()) ranges.push_back(LineRange{});
  return ranges;
}

}  // namespace internal_scan

Result<std::vector<std::vector<json::Json>>> ScanJsonLinesDom(
    const MiniDfs& dfs, const std::vector<std::string>& paths,
    const ScanOptions& options) {
  return ScanJsonLines<json::Json>(
      dfs, paths, [](std::string_view line) { return json::Parse(line); },
      options);
}

}  // namespace cfnet::dfs
