#include "dfs/jsonl.h"

#include "util/string_util.h"

namespace cfnet::dfs {

JsonLinesWriter::JsonLinesWriter(MiniDfs* dfs, std::string path,
                                 size_t flush_bytes)
    : dfs_(dfs), path_(std::move(path)), flush_bytes_(flush_bytes) {}

JsonLinesWriter::~JsonLinesWriter() { Flush().ok(); }

Status JsonLinesWriter::Write(const json::Json& record) {
  buffer_ += record.Dump();
  buffer_ += '\n';
  ++records_written_;
  if (buffer_.size() >= flush_bytes_) return Flush();
  return Status::OK();
}

Status JsonLinesWriter::Flush() {
  if (buffer_.empty()) return Status::OK();
  Status s = dfs_->Append(path_, buffer_);
  if (s.ok()) buffer_.clear();
  return s;
}

Result<std::vector<json::Json>> ReadJsonLines(const MiniDfs& dfs,
                                              const std::string& path) {
  CFNET_ASSIGN_OR_RETURN(std::string content, dfs.ReadFile(path));
  std::vector<json::Json> out;
  size_t start = 0;
  size_t line_no = 0;
  while (start < content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    ++line_no;
    std::string_view line(content.data() + start, end - start);
    if (!StrTrim(line).empty()) {
      auto parsed = json::Parse(line);
      if (!parsed.ok()) {
        return Status::Corruption(path + ":" + std::to_string(line_no) + ": " +
                                  parsed.status().message());
      }
      out.push_back(std::move(parsed).value());
    }
    start = end + 1;
  }
  return out;
}

Result<int64_t> CountJsonLines(const MiniDfs& dfs, const std::string& path) {
  CFNET_ASSIGN_OR_RETURN(std::string content, dfs.ReadFile(path));
  int64_t records = 0;
  size_t start = 0;
  while (start < content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    if (!StrTrim(std::string_view(content.data() + start, end - start))
             .empty()) {
      ++records;
    }
    start = end + 1;
  }
  return records;
}

Status TruncateJsonLines(MiniDfs* dfs, const std::string& path,
                         int64_t keep_records) {
  if (keep_records <= 0) return dfs->Delete(path);
  CFNET_ASSIGN_OR_RETURN(std::string content, dfs->ReadFile(path));
  int64_t records = 0;
  size_t start = 0;
  while (start < content.size() && records < keep_records) {
    size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    if (!StrTrim(std::string_view(content.data() + start, end - start))
             .empty()) {
      ++records;
    }
    start = end + 1;
  }
  if (start >= content.size()) return Status::OK();  // already short enough
  content.resize(start);
  return dfs->WriteFile(path, content);
}

}  // namespace cfnet::dfs
