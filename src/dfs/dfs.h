#ifndef CFNET_DFS_DFS_H_
#define CFNET_DFS_DFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dfs/fault_fs.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"

namespace cfnet::dfs {

using BlockId = uint64_t;

/// Placement + health info for one block of a file.
struct BlockInfo {
  BlockId id = 0;
  uint64_t length = 0;
  uint32_t checksum = 0;      // CRC-32 of the block contents
  std::vector<int> replicas;  // datanode ids holding a copy
};

/// MiniDFS configuration.
struct DfsConfig {
  int num_datanodes = 4;
  uint64_t block_size = 4 * 1024 * 1024;  // 4 MiB
  int replication = 3;                    // clamped to num_datanodes
  uint64_t seed = 42;                     // placement randomization
};

/// Aggregate cluster statistics.
struct DfsStats {
  uint64_t num_files = 0;
  uint64_t num_blocks = 0;
  uint64_t logical_bytes = 0;   // sum of file lengths
  uint64_t physical_bytes = 0;  // including replicas
  uint64_t under_replicated_blocks = 0;
  uint64_t corruption_events_detected = 0;
  int live_datanodes = 0;
  /// Mutation ops (WriteFile/Append/Rename/Delete) and whole-file reads
  /// issued so far — the op serials IoFaultWindows and the kill switch are
  /// scripted against.
  uint64_t mutation_ops = 0;
  uint64_t read_ops = 0;
  uint64_t storage_faults_injected = 0;
};

/// Single-process reproduction of the HDFS storage substrate the paper's
/// platform writes crawl snapshots into: a namenode namespace over
/// fixed-size blocks replicated across simulated datanodes.
///
/// Supports the failure modes that matter for replication invariants:
/// datanodes can be killed/revived, reads fail over to surviving replicas,
/// and `RunReplicationMonitor` restores the target replication factor.
/// All operations are thread-safe (the crawler appends concurrently).
class MiniDfs {
 public:
  explicit MiniDfs(const DfsConfig& config = DfsConfig());

  MiniDfs(const MiniDfs&) = delete;
  MiniDfs& operator=(const MiniDfs&) = delete;

  /// Creates or truncates `path` with `data`. Parent directories are
  /// implicit (the namespace is a flat map of absolute paths, like HDFS
  /// semantics for our purposes). Paths must start with '/'.
  Status WriteFile(const std::string& path, std::string_view data);

  /// Appends to an existing file (creates it when absent).
  Status Append(const std::string& path, std::string_view data);

  /// Reads a whole file. Fails with IOError if any block lost all replicas.
  Result<std::string> ReadFile(const std::string& path) const;

  /// Removes a file and frees its blocks.
  Status Delete(const std::string& path);

  /// Atomically moves `from` to `to`, replacing any existing `to` — the
  /// namespace-level commit point of the durable-write protocol (HDFS
  /// rename semantics: it either fully happens or not at all; no fault can
  /// leave a half-renamed file).
  Status Rename(const std::string& from, const std::string& to);

  bool Exists(const std::string& path) const;

  /// Length of a file in bytes.
  Result<uint64_t> FileSize(const std::string& path) const;

  /// All file paths under `dir_prefix` (e.g. "/crawl/"), sorted.
  std::vector<std::string> List(const std::string& dir_prefix) const;

  /// Block layout of a file (for tests and the replication monitor).
  Result<std::vector<BlockInfo>> GetBlockLocations(const std::string& path) const;

  /// --- failure injection -------------------------------------------------

  /// Installs a scripted storage-fault plan (see dfs/fault_fs.h): torn
  /// writes, silent fsync loss, ENOSPC, short reads and bit flips keyed on
  /// deterministic op serials. An empty plan clears the injector.
  void InstallFaultPlan(IoFaultPlan plan);

  /// Arms the kill switch: the mutation op with serial `kill_at_op`
  /// persists only a seeded prefix of its bytes (renames/deletes fail
  /// without applying), and every subsequent read or mutation fails
  /// Unavailable — the storage-side equivalent of `kill -9` mid-write.
  /// `DisarmKill` models the restart: the "disk" contents survive as the
  /// dying process left them, and a fresh crawler incarnation recovers.
  void ArmKill(uint64_t kill_at_op, uint64_t seed);
  void DisarmKill();
  bool killed() const;

  Status KillDataNode(int node);
  Status ReviveDataNode(int node);
  bool IsDataNodeAlive(int node) const;

  /// Re-replicates every under-replicated block onto live datanodes.
  /// Returns the number of new replicas created.
  size_t RunReplicationMonitor();

  /// --- data integrity ------------------------------------------------------
  /// Every block carries a CRC-32; reads verify it per replica and fail
  /// over to an intact copy when a replica is corrupt.

  /// Test/chaos hook: flips a byte in one replica of one block.
  Status CorruptReplica(const std::string& path, size_t block_index, int node);

  /// Verifies every replica against its block checksum and drops corrupt
  /// copies (a follow-up RunReplicationMonitor restores replication).
  /// Returns the number of corrupt replicas removed.
  size_t ScrubBlocks();

  DfsStats GetStats() const;
  const DfsConfig& config() const { return config_; }

 private:
  struct DataNode {
    bool alive = true;
    std::unordered_map<BlockId, std::string> blocks;
    uint64_t used_bytes = 0;
  };

  struct FileEntry {
    std::vector<BlockInfo> blocks;
    uint64_t length = 0;
  };

  // All private helpers assume mu_ is held.
  Status WriteLocked(const std::string& path, std::string_view data);
  /// Fault-aware write entry point: consumes a mutation-op serial, applies
  /// the kill switch and any scripted write fault, then delegates to
  /// WriteLocked with whatever bytes "reached the disk".
  Status WriteWithFaultsLocked(const std::string& path, std::string_view data);
  /// Consumes a mutation-op serial for a metadata op (rename/delete);
  /// returns non-OK when the kill switch fires or has fired.
  Status AdmitMutationLocked(const char* what);
  Status ValidatePath(const std::string& path) const;
  std::vector<int> PickReplicaNodes(int count);
  void FreeBlocksLocked(const FileEntry& entry);
  Result<std::string> ReadBlockLocked(const BlockInfo& info) const;

  DfsConfig config_;
  mutable std::mutex mu_;
  std::map<std::string, FileEntry> namespace_;  // sorted for List()
  std::vector<DataNode> datanodes_;
  BlockId next_block_id_ = 1;
  mutable uint64_t corruption_events_ = 0;
  Rng rng_;

  // Storage fault injection (fault_fs.h). The injector is mutable because
  // reads draw fault decisions; its internals are thread-safe.
  mutable std::unique_ptr<IoFaultInjector> injector_;
  mutable uint64_t mutation_ops_ = 0;
  mutable uint64_t read_ops_ = 0;
  mutable uint64_t faults_injected_ = 0;
  uint64_t kill_at_op_ = 0;  // 0 = disarmed
  uint64_t kill_seed_ = 0;
  bool killed_ = false;
};

}  // namespace cfnet::dfs

#endif  // CFNET_DFS_DFS_H_
