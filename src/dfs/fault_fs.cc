#include "dfs/fault_fs.h"

#include "util/rng.h"

namespace cfnet::dfs {
namespace {

double UnitFromHash(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

bool IoFaultInjector::Hit(const std::vector<IoFaultWindow>& windows,
                          uint64_t op, uint64_t category) {
  for (const IoFaultWindow& w : windows) {
    if (!w.Contains(op)) continue;
    if (w.rate >= 1.0) return true;
    if (w.rate <= 0.0) continue;
    uint64_t serial = draw_serial_.fetch_add(1, std::memory_order_relaxed);
    double u = UnitFromHash(Mix64(plan_.seed * 0x9e3779b97f4a7c15ull +
                                  category * 0x2545f4914f6cdd1dull + serial));
    if (u < w.rate) return true;
  }
  return false;
}

double IoFaultInjector::Draw(uint64_t category) {
  uint64_t serial = draw_serial_.fetch_add(1, std::memory_order_relaxed);
  return UnitFromHash(Mix64(plan_.seed * 0xd1342543de82ef95ull +
                            category * 0x9e3779b97f4a7c15ull + serial));
}

WriteFaultDecision IoFaultInjector::EvaluateWrite(uint64_t op) {
  WriteFaultDecision d;
  if (Hit(plan_.enospc, op, 1)) {
    d.enospc = true;
    return d;
  }
  if (Hit(plan_.torn_writes, op, 2)) {
    d.torn = true;
    d.fraction = Draw(2);
    return d;
  }
  if (Hit(plan_.silent_loss, op, 3)) {
    d.silent_loss = true;
    d.fraction = Draw(3);
    return d;
  }
  if (Hit(plan_.write_bit_flips, op, 4)) {
    d.bit_flip = true;
    d.fraction = Draw(4);
  }
  return d;
}

ReadFaultDecision IoFaultInjector::EvaluateRead(uint64_t op) {
  ReadFaultDecision d;
  if (Hit(plan_.short_reads, op, 5)) {
    d.short_read = true;
    d.fraction = Draw(5);
    return d;
  }
  if (Hit(plan_.read_bit_flips, op, 6)) {
    d.bit_flip = true;
    d.fraction = Draw(6);
  }
  return d;
}

}  // namespace cfnet::dfs
