#include "dfs/dfs.h"

#include <algorithm>

#include "util/crc32.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cfnet::dfs {
namespace {

double UnitFromHash(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Prefix length a torn/silently-lost write leaves behind: always strictly
/// shorter than the payload (the fault must lose at least one byte).
size_t TornPrefix(double fraction, size_t size) {
  if (size == 0) return 0;
  size_t keep = static_cast<size_t>(fraction * static_cast<double>(size));
  return keep >= size ? size - 1 : keep;
}

}  // namespace

MiniDfs::MiniDfs(const DfsConfig& config) : config_(config), rng_(config.seed) {
  config_.num_datanodes = std::max(1, config_.num_datanodes);
  config_.replication =
      std::clamp(config_.replication, 1, config_.num_datanodes);
  if (config_.block_size == 0) config_.block_size = 4 * 1024 * 1024;
  datanodes_.resize(static_cast<size_t>(config_.num_datanodes));
}

Status MiniDfs::ValidatePath(const std::string& path) const {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("DFS path must be absolute: '" + path + "'");
  }
  if (path.back() == '/') {
    return Status::InvalidArgument("DFS file path must not end in '/': '" +
                                   path + "'");
  }
  return Status::OK();
}

std::vector<int> MiniDfs::PickReplicaNodes(int count) {
  // Prefer live nodes with the least used bytes (balances placement);
  // shuffle among ties via a random draw.
  std::vector<int> live;
  for (int i = 0; i < config_.num_datanodes; ++i) {
    if (datanodes_[static_cast<size_t>(i)].alive) live.push_back(i);
  }
  std::sort(live.begin(), live.end(), [this](int a, int b) {
    return datanodes_[static_cast<size_t>(a)].used_bytes <
           datanodes_[static_cast<size_t>(b)].used_bytes;
  });
  if (static_cast<int>(live.size()) > count) live.resize(static_cast<size_t>(count));
  return live;
}

void MiniDfs::FreeBlocksLocked(const FileEntry& entry) {
  for (const BlockInfo& b : entry.blocks) {
    for (int node : b.replicas) {
      auto& dn = datanodes_[static_cast<size_t>(node)];
      auto it = dn.blocks.find(b.id);
      if (it != dn.blocks.end()) {
        dn.used_bytes -= it->second.size();
        dn.blocks.erase(it);
      }
    }
  }
}

Status MiniDfs::WriteLocked(const std::string& path, std::string_view data) {
  auto existing = namespace_.find(path);
  if (existing != namespace_.end()) {
    FreeBlocksLocked(existing->second);
    namespace_.erase(existing);
  }
  FileEntry entry;
  entry.length = data.size();
  size_t offset = 0;
  while (offset < data.size() || (data.empty() && entry.blocks.empty())) {
    size_t len = std::min<size_t>(config_.block_size, data.size() - offset);
    BlockInfo info;
    info.id = next_block_id_++;
    info.length = len;
    info.checksum = Crc32(data.substr(offset, len));
    info.replicas = PickReplicaNodes(config_.replication);
    if (info.replicas.empty()) {
      return Status::Unavailable("no live datanodes for block placement");
    }
    std::string block(data.substr(offset, len));
    for (int node : info.replicas) {
      auto& dn = datanodes_[static_cast<size_t>(node)];
      dn.blocks[info.id] = block;
      dn.used_bytes += block.size();
    }
    entry.blocks.push_back(std::move(info));
    offset += len;
    if (data.empty()) break;  // zero-length file: single empty block
  }
  namespace_[path] = std::move(entry);
  return Status::OK();
}

Status MiniDfs::WriteWithFaultsLocked(const std::string& path,
                                      std::string_view data) {
  if (killed_) return Status::Unavailable("storage layer killed");
  const uint64_t op = ++mutation_ops_;
  if (kill_at_op_ != 0 && op >= kill_at_op_) {
    killed_ = true;
    // The dying writer leaves an arbitrary prefix on disk — the worst case
    // a real crash mid-write produces. The caller never learns how much.
    size_t keep = TornPrefix(UnitFromHash(Mix64(kill_seed_ ^ op)), data.size());
    WriteLocked(path, data.substr(0, keep)).ok();
    return Status::Unavailable("storage layer killed mid-write: " + path);
  }
  if (injector_ != nullptr) {
    WriteFaultDecision d = injector_->EvaluateWrite(op);
    if (d.enospc) {
      ++faults_injected_;
      return Status::ResourceExhausted("injected ENOSPC writing " + path);
    }
    if (d.torn) {
      ++faults_injected_;
      size_t keep = TornPrefix(d.fraction, data.size());
      Status persisted = WriteLocked(path, data.substr(0, keep));
      if (!persisted.ok()) return persisted;
      return Status::IOError("injected torn write on " + path);
    }
    if (d.silent_loss) {
      // The lie at the heart of lost fsyncs: a prefix persists, OK returns.
      ++faults_injected_;
      size_t keep = TornPrefix(d.fraction, data.size());
      return WriteLocked(path, data.substr(0, keep)).ok()
                 ? Status::OK()
                 : Status::Unavailable("no live datanodes");
    }
    if (d.bit_flip && !data.empty()) {
      // Corruption above the replication layer: the flipped byte is what
      // gets checksummed and replicated, so block CRCs read back "clean".
      ++faults_injected_;
      std::string flipped(data);
      size_t at = TornPrefix(d.fraction, flipped.size());
      flipped[at] = static_cast<char>(flipped[at] ^ 0x20);
      return WriteLocked(path, flipped);
    }
  }
  return WriteLocked(path, data);
}

Status MiniDfs::AdmitMutationLocked(const char* what) {
  if (killed_) return Status::Unavailable("storage layer killed");
  const uint64_t op = ++mutation_ops_;
  if (kill_at_op_ != 0 && op >= kill_at_op_) {
    killed_ = true;
    // Metadata ops are atomic: the kill prevents them entirely rather than
    // leaving a half-applied state.
    return Status::Unavailable(std::string("storage layer killed before ") +
                               what);
  }
  return Status::OK();
}

Status MiniDfs::WriteFile(const std::string& path, std::string_view data) {
  CFNET_RETURN_IF_ERROR(ValidatePath(path));
  std::lock_guard<std::mutex> lock(mu_);
  return WriteWithFaultsLocked(path, data);
}

Status MiniDfs::Append(const std::string& path, std::string_view data) {
  CFNET_RETURN_IF_ERROR(ValidatePath(path));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = namespace_.find(path);
  if (it == namespace_.end()) {
    return WriteWithFaultsLocked(path, data);
  }
  // Read existing content, then rewrite. (A real DFS appends to the last
  // block; for the snapshot workload correctness matters more than the
  // rewrite cost, and tests cover block-boundary behaviour either way.)
  std::string content;
  content.reserve(it->second.length + data.size());
  for (const BlockInfo& b : it->second.blocks) {
    auto block = ReadBlockLocked(b);
    if (!block.ok()) return block.status();
    content += *block;
  }
  content.append(data.data(), data.size());
  return WriteWithFaultsLocked(path, content);
}

Result<std::string> MiniDfs::ReadBlockLocked(const BlockInfo& info) const {
  bool saw_corrupt = false;
  for (int node : info.replicas) {
    const auto& dn = datanodes_[static_cast<size_t>(node)];
    if (!dn.alive) continue;
    auto it = dn.blocks.find(info.id);
    if (it == dn.blocks.end()) continue;
    // Checksum verification with failover to an intact replica.
    if (Crc32(it->second) != info.checksum) {
      ++corruption_events_;
      saw_corrupt = true;
      continue;
    }
    return it->second;
  }
  return Status::IOError("block " + std::to_string(info.id) +
                         (saw_corrupt ? " has only corrupt live replicas"
                                      : " has no live replica"));
}

Result<std::string> MiniDfs::ReadFile(const std::string& path) const {
  CFNET_RETURN_IF_ERROR(ValidatePath(path));
  std::lock_guard<std::mutex> lock(mu_);
  if (killed_) return Status::Unavailable("storage layer killed");
  const uint64_t op = ++read_ops_;
  auto it = namespace_.find(path);
  if (it == namespace_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  std::string out;
  out.reserve(it->second.length);
  for (const BlockInfo& b : it->second.blocks) {
    auto block = ReadBlockLocked(b);
    if (!block.ok()) return block.status();
    out += *block;
  }
  if (injector_ != nullptr && !out.empty()) {
    ReadFaultDecision d = injector_->EvaluateRead(op);
    if (d.short_read) {
      ++faults_injected_;
      out.resize(TornPrefix(d.fraction, out.size()));
    } else if (d.bit_flip) {
      // Transient in-flight flip: the stored replicas stay intact, only
      // this returned copy is damaged.
      ++faults_injected_;
      size_t at = TornPrefix(d.fraction, out.size());
      out[at] = static_cast<char>(out[at] ^ 0x40);
    }
  }
  return out;
}

Status MiniDfs::Delete(const std::string& path) {
  CFNET_RETURN_IF_ERROR(ValidatePath(path));
  std::lock_guard<std::mutex> lock(mu_);
  CFNET_RETURN_IF_ERROR(AdmitMutationLocked("delete"));
  auto it = namespace_.find(path);
  if (it == namespace_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  FreeBlocksLocked(it->second);
  namespace_.erase(it);
  return Status::OK();
}

Status MiniDfs::Rename(const std::string& from, const std::string& to) {
  CFNET_RETURN_IF_ERROR(ValidatePath(from));
  CFNET_RETURN_IF_ERROR(ValidatePath(to));
  std::lock_guard<std::mutex> lock(mu_);
  CFNET_RETURN_IF_ERROR(AdmitMutationLocked("rename"));
  auto src = namespace_.find(from);
  if (src == namespace_.end()) {
    return Status::NotFound("no such file: " + from);
  }
  if (from == to) return Status::OK();
  auto dst = namespace_.find(to);
  if (dst != namespace_.end()) {
    FreeBlocksLocked(dst->second);
    namespace_.erase(dst);
  }
  // Blocks move with the entry; only the namespace key changes, which is
  // what makes rename the atomic commit point — no byte is ever rewritten.
  namespace_[to] = std::move(src->second);
  namespace_.erase(from);
  return Status::OK();
}

bool MiniDfs::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return namespace_.count(path) > 0;
}

Result<uint64_t> MiniDfs::FileSize(const std::string& path) const {
  CFNET_RETURN_IF_ERROR(ValidatePath(path));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = namespace_.find(path);
  if (it == namespace_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  return it->second.length;
}

std::vector<std::string> MiniDfs::List(const std::string& dir_prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = namespace_.lower_bound(dir_prefix); it != namespace_.end();
       ++it) {
    if (!StartsWith(it->first, dir_prefix)) break;
    out.push_back(it->first);
  }
  return out;
}

Result<std::vector<BlockInfo>> MiniDfs::GetBlockLocations(
    const std::string& path) const {
  CFNET_RETURN_IF_ERROR(ValidatePath(path));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = namespace_.find(path);
  if (it == namespace_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  return it->second.blocks;
}

void MiniDfs::InstallFaultPlan(IoFaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  if (plan.empty()) {
    injector_.reset();
  } else {
    injector_ = std::make_unique<IoFaultInjector>(std::move(plan));
  }
}

void MiniDfs::ArmKill(uint64_t kill_at_op, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  kill_at_op_ = kill_at_op;
  kill_seed_ = seed;
  killed_ = false;
}

void MiniDfs::DisarmKill() {
  std::lock_guard<std::mutex> lock(mu_);
  kill_at_op_ = 0;
  killed_ = false;
}

bool MiniDfs::killed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return killed_;
}

Status MiniDfs::KillDataNode(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  if (node < 0 || node >= config_.num_datanodes) {
    return Status::InvalidArgument("bad datanode id");
  }
  datanodes_[static_cast<size_t>(node)].alive = false;
  return Status::OK();
}

Status MiniDfs::ReviveDataNode(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  if (node < 0 || node >= config_.num_datanodes) {
    return Status::InvalidArgument("bad datanode id");
  }
  datanodes_[static_cast<size_t>(node)].alive = true;
  return Status::OK();
}

bool MiniDfs::IsDataNodeAlive(int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (node < 0 || node >= config_.num_datanodes) return false;
  return datanodes_[static_cast<size_t>(node)].alive;
}

size_t MiniDfs::RunReplicationMonitor() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t created = 0;
  for (auto& [path, entry] : namespace_) {
    for (BlockInfo& b : entry.blocks) {
      // Scan every live node: intact copies (listed or stale leftovers from
      // earlier incarnations of the replica set) are adopted as holders;
      // copy-less live nodes are re-replication candidates. Corrupt copies
      // are neither (ScrubBlocks reclaims them).
      std::vector<int> holders;
      std::vector<int> candidates;
      const std::string* content = nullptr;
      for (int node = 0; node < config_.num_datanodes; ++node) {
        auto& dn = datanodes_[static_cast<size_t>(node)];
        if (!dn.alive) continue;
        auto it = dn.blocks.find(b.id);
        if (it == dn.blocks.end()) {
          candidates.push_back(node);
          continue;
        }
        if (Crc32(it->second) != b.checksum) continue;
        holders.push_back(node);
        if (content == nullptr) content = &it->second;
      }
      if (content == nullptr) {
        // No live intact copy to replicate from; keep the old replica list
        // so a node revival can still restore the block.
        continue;
      }
      int deficit = config_.replication - static_cast<int>(holders.size());
      std::sort(candidates.begin(), candidates.end(), [this](int a, int c) {
        return datanodes_[static_cast<size_t>(a)].used_bytes <
               datanodes_[static_cast<size_t>(c)].used_bytes;
      });
      for (int i = 0; i < deficit && i < static_cast<int>(candidates.size());
           ++i) {
        int node = candidates[static_cast<size_t>(i)];
        auto& dn = datanodes_[static_cast<size_t>(node)];
        dn.blocks[b.id] = *content;
        dn.used_bytes += content->size();
        holders.push_back(node);
        ++created;
      }
      // New authoritative replica set: live intact copies (dead nodes are
      // forgotten, as HDFS does once the namenode declares them dead).
      b.replicas = holders;
    }
  }
  return created;
}

Status MiniDfs::CorruptReplica(const std::string& path, size_t block_index,
                               int node) {
  CFNET_RETURN_IF_ERROR(ValidatePath(path));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = namespace_.find(path);
  if (it == namespace_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  if (block_index >= it->second.blocks.size()) {
    return Status::OutOfRange("bad block index");
  }
  if (node < 0 || node >= config_.num_datanodes) {
    return Status::InvalidArgument("bad datanode id");
  }
  const BlockInfo& info = it->second.blocks[block_index];
  auto& dn = datanodes_[static_cast<size_t>(node)];
  auto block_it = dn.blocks.find(info.id);
  if (block_it == dn.blocks.end()) {
    return Status::NotFound("node holds no replica of that block");
  }
  if (block_it->second.empty()) {
    return Status::FailedPrecondition("cannot corrupt an empty block");
  }
  block_it->second[0] = static_cast<char>(block_it->second[0] ^ 0x5a);
  return Status::OK();
}

size_t MiniDfs::ScrubBlocks() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t removed = 0;
  for (auto& [path, entry] : namespace_) {
    for (BlockInfo& info : entry.blocks) {
      std::vector<int> intact;
      for (int node : info.replicas) {
        auto& dn = datanodes_[static_cast<size_t>(node)];
        auto it = dn.blocks.find(info.id);
        if (it == dn.blocks.end()) {
          intact.push_back(node);  // absence handled by the monitor
          continue;
        }
        if (Crc32(it->second) != info.checksum) {
          dn.used_bytes -= it->second.size();
          dn.blocks.erase(it);
          ++corruption_events_;
          ++removed;
        } else {
          intact.push_back(node);
        }
      }
      info.replicas = intact;
    }
  }
  return removed;
}

DfsStats MiniDfs::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DfsStats stats;
  stats.num_files = namespace_.size();
  for (const auto& [path, entry] : namespace_) {
    stats.num_blocks += entry.blocks.size();
    stats.logical_bytes += entry.length;
    for (const BlockInfo& b : entry.blocks) {
      size_t live = 0;
      for (int node : b.replicas) {
        const auto& dn = datanodes_[static_cast<size_t>(node)];
        if (dn.alive && dn.blocks.count(b.id)) ++live;
      }
      if (static_cast<int>(live) < config_.replication) {
        ++stats.under_replicated_blocks;
      }
    }
  }
  for (const auto& dn : datanodes_) {
    if (dn.alive) ++stats.live_datanodes;
    stats.physical_bytes += dn.used_bytes;
  }
  stats.corruption_events_detected = corruption_events_;
  stats.mutation_ops = mutation_ops_;
  stats.read_ops = read_ops_;
  stats.storage_faults_injected = faults_injected_;
  return stats;
}

}  // namespace cfnet::dfs
