#ifndef CFNET_DFS_FAULT_FS_H_
#define CFNET_DFS_FAULT_FS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cfnet::dfs {

/// One scripted storage-fault interval, expressed in *operation serials*
/// rather than virtual time: MiniDFS has no clock of its own, but every
/// write/read carries a monotonically increasing op number, so "ops 40-60
/// hit ENOSPC" replays deterministically the way net::FaultWindow scripts
/// "seconds 3-5 answer 503". An op inside [begin_op, end_op) is hit with
/// probability `rate` (1.0 = always; fractional rates draw from the plan's
/// seeded hash stream, so replays of a scenario make identical decisions).
/// `end_op == 0` means "until forever".
struct IoFaultWindow {
  uint64_t begin_op = 0;
  uint64_t end_op = 0;
  double rate = 1.0;

  bool Contains(uint64_t op) const {
    return op >= begin_op && (end_op == 0 || op < end_op);
  }
};

/// Scripted failure scenario for the storage substrate — the disk-side twin
/// of net::FaultPlan. Write faults (consulted once per WriteFile/Append):
///
///  - `enospc`: the write fails ResourceExhausted and persists nothing
///    (a full disk rejects the allocation up front).
///  - `torn_writes`: a seeded prefix of the bytes persists, then the write
///    fails IOError (power loss mid-write; the caller knows it failed).
///  - `silent_loss`: a seeded prefix persists but the write reports OK —
///    an acknowledged fsync whose pages never hit the platter. Only
///    read-back verification or a CRC footer can catch this.
///  - `write_bit_flips`: every byte persists but one of them flipped, and
///    the block checksums are computed from the flipped data — corruption
///    introduced *above* the replication layer (a rotten write buffer),
///    which per-replica block CRCs can never detect. File-level footers do.
///
/// Read faults (consulted once per ReadFile):
///
///  - `short_reads`: only a seeded prefix of the file comes back (the call
///    still reports success, as POSIX short reads do).
///  - `read_bit_flips`: one byte of the returned copy is flipped in flight;
///    the stored replicas stay intact, so a retry reads clean data.
struct IoFaultPlan {
  std::vector<IoFaultWindow> enospc;
  std::vector<IoFaultWindow> torn_writes;
  std::vector<IoFaultWindow> silent_loss;
  std::vector<IoFaultWindow> write_bit_flips;
  std::vector<IoFaultWindow> short_reads;
  std::vector<IoFaultWindow> read_bit_flips;
  /// Seed for fractional-rate and tear-point draws.
  uint64_t seed = 1;

  bool empty() const {
    return enospc.empty() && torn_writes.empty() && silent_loss.empty() &&
           write_bit_flips.empty() && short_reads.empty() &&
           read_bit_flips.empty();
  }
};

/// Per-write fault decision. At most one failure mode fires per op
/// (precedence: enospc > torn > silent loss > bit flip).
struct WriteFaultDecision {
  bool enospc = false;
  bool torn = false;
  bool silent_loss = false;
  bool bit_flip = false;
  /// Seeded draw in [0, 1): tear point for torn/silent-loss prefixes and
  /// flip-offset source for bit flips.
  double fraction = 0.0;
};

/// Per-read fault decision (precedence: short read > bit flip).
struct ReadFaultDecision {
  bool short_read = false;
  bool bit_flip = false;
  double fraction = 0.0;
};

/// Evaluates an IoFaultPlan against operation serials. Thread-safe; all
/// draws are counter-based Mix64 hashes of (seed, category, serial), so a
/// decision depends only on the plan and the op order, never on wall-clock
/// or thread interleaving sources.
class IoFaultInjector {
 public:
  explicit IoFaultInjector(IoFaultPlan plan) : plan_(std::move(plan)) {}

  IoFaultInjector(const IoFaultInjector&) = delete;
  IoFaultInjector& operator=(const IoFaultInjector&) = delete;

  WriteFaultDecision EvaluateWrite(uint64_t op);
  ReadFaultDecision EvaluateRead(uint64_t op);

  const IoFaultPlan& plan() const { return plan_; }

 private:
  bool Hit(const std::vector<IoFaultWindow>& windows, uint64_t op,
           uint64_t category);
  double Draw(uint64_t category);

  IoFaultPlan plan_;
  std::atomic<uint64_t> draw_serial_{0};
};

}  // namespace cfnet::dfs

#endif  // CFNET_DFS_FAULT_FS_H_
