#ifndef CFNET_DFS_JSONL_H_
#define CFNET_DFS_JSONL_H_

#include <string>
#include <vector>

#include "dfs/dfs.h"
#include "json/json.h"
#include "util/result.h"

namespace cfnet::dfs {

/// Buffered writer of JSON-lines snapshot files into MiniDFS — the format
/// the crawler stores records in (one JSON document per line, as the paper's
/// platform stores crawled documents in HDFS).
class JsonLinesWriter {
 public:
  /// Buffers up to `flush_bytes` before appending to `path`.
  JsonLinesWriter(MiniDfs* dfs, std::string path, size_t flush_bytes = 1 << 20);
  ~JsonLinesWriter();

  JsonLinesWriter(const JsonLinesWriter&) = delete;
  JsonLinesWriter& operator=(const JsonLinesWriter&) = delete;

  /// Serializes one record as a compact JSON line.
  Status Write(const json::Json& record);

  /// Flushes buffered lines to the DFS.
  Status Flush();

  size_t records_written() const { return records_written_; }
  const std::string& path() const { return path_; }

 private:
  MiniDfs* dfs_;
  std::string path_;
  size_t flush_bytes_;
  std::string buffer_;
  size_t records_written_ = 0;
};

/// Reads every record of a JSON-lines file. Malformed lines produce an error
/// (the crawler only writes well-formed lines; corruption means DFS trouble).
Result<std::vector<json::Json>> ReadJsonLines(const MiniDfs& dfs,
                                              const std::string& path);

/// Counts the records (non-empty lines) of a JSON-lines file without
/// parsing them.
Result<int64_t> CountJsonLines(const MiniDfs& dfs, const std::string& path);

/// Truncates a JSON-lines file to its first `keep_records` records — the
/// crash-recovery primitive that discards shard appends made after the last
/// checkpoint. Keeping at least the current record count is a no-op;
/// truncating to zero deletes the file.
Status TruncateJsonLines(MiniDfs* dfs, const std::string& path,
                         int64_t keep_records);

}  // namespace cfnet::dfs

#endif  // CFNET_DFS_JSONL_H_
