#ifndef CFNET_DFS_JSONL_H_
#define CFNET_DFS_JSONL_H_

#include <algorithm>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dfs/dfs.h"
#include "json/json.h"
#include "util/result.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace cfnet::dfs {

/// Buffered writer of JSON-lines snapshot files into MiniDFS — the format
/// the crawler stores records in (one JSON document per line, as the paper's
/// platform stores crawled documents in HDFS).
class JsonLinesWriter {
 public:
  /// Buffers up to `flush_bytes` before appending to `path`.
  JsonLinesWriter(MiniDfs* dfs, std::string path, size_t flush_bytes = 1 << 20);
  ~JsonLinesWriter();

  JsonLinesWriter(const JsonLinesWriter&) = delete;
  JsonLinesWriter& operator=(const JsonLinesWriter&) = delete;

  /// Serializes one record as a compact JSON line, appending directly into
  /// the writer's reusable buffer (no per-record string allocation).
  Status Write(const json::Json& record);

  /// Flushes buffered lines to the DFS.
  Status Flush();

  size_t records_written() const { return records_written_; }
  const std::string& path() const { return path_; }

 private:
  MiniDfs* dfs_;
  std::string path_;
  size_t flush_bytes_;
  std::string buffer_;
  size_t records_written_ = 0;
};

/// Reads every record of a JSON-lines file. Malformed lines produce an error
/// (the crawler only writes well-formed lines; corruption means DFS trouble).
Result<std::vector<json::Json>> ReadJsonLines(const MiniDfs& dfs,
                                              const std::string& path);

/// Counts the records (non-empty lines) of a JSON-lines file without
/// parsing them.
Result<int64_t> CountJsonLines(const MiniDfs& dfs, const std::string& path);

/// Truncates a JSON-lines file to its first `keep_records` records — the
/// crash-recovery primitive that discards shard appends made after the last
/// checkpoint. Keeping at least the current record count is a no-op;
/// truncating to zero deletes the file.
Status TruncateJsonLines(MiniDfs* dfs, const std::string& path,
                         int64_t keep_records);

/// --- parallel sharded scans ------------------------------------------------

/// Options for `ScanJsonLines`.
struct ScanOptions {
  /// Decode ranges in parallel on this pool (`ThreadPool::RunBulk`, caller
  /// participates); nullptr decodes sequentially on the caller.
  ThreadPool* pool = nullptr;
  /// Target number of output partitions (line-aligned byte ranges across all
  /// shards). 0 picks 4x the pool's thread count (1 when sequential) so the
  /// morsel scheduler can balance skewed shards.
  size_t target_partitions = 0;
  /// Ranges are not split below this many bytes.
  size_t min_range_bytes = 64 * 1024;
};

namespace internal_scan {

/// One line-aligned byte range of a loaded shard's contents: `begin` starts
/// a line, `end` is one past the terminating '\n' of the last line (or the
/// shard's last byte).
struct LineRange {
  size_t file = 0;
  size_t begin = 0;
  size_t end = 0;
  int64_t first_line = 1;  // 1-based line number at `begin`
};

/// Reads every shard's contents (whole files; MiniDFS is an in-memory
/// block store, so this is the only read granularity it offers).
Result<std::vector<std::string>> LoadShardContents(
    const MiniDfs& dfs, const std::vector<std::string>& paths);

/// Splits shard contents into roughly `target_ranges` line-aligned ranges,
/// none smaller than `min_range_bytes`, ordered by (file, begin).
std::vector<LineRange> SplitLineRanges(const std::vector<std::string>& contents,
                                       size_t target_ranges,
                                       size_t min_range_bytes);

}  // namespace internal_scan

/// Streaming scan over a set of JSON-lines shard files: splits the shards
/// into line-aligned byte ranges, decodes each range with
/// `decode(std::string_view line) -> Result<T>` (in parallel when
/// `options.pool` is set), and returns one output vector per range — already
/// partitioned for `Dataset::FromPartitions`, so no repartition pass is
/// needed downstream.
///
/// Record order across the flattened partitions equals sequential
/// `ReadJsonLines` order over `paths`; blank lines are skipped and a
/// malformed line yields the same "path:line:" Corruption verdict (the
/// earliest failing line wins when several ranges fail).
template <typename T, typename DecodeFn>
Result<std::vector<std::vector<T>>> ScanJsonLines(
    const MiniDfs& dfs, const std::vector<std::string>& paths,
    DecodeFn&& decode, const ScanOptions& options = ScanOptions()) {
  CFNET_ASSIGN_OR_RETURN(std::vector<std::string> contents,
                         internal_scan::LoadShardContents(dfs, paths));
  size_t target = options.target_partitions;
  if (target == 0) {
    target = options.pool != nullptr ? options.pool->num_threads() * 4 : 1;
  }
  std::vector<internal_scan::LineRange> ranges = internal_scan::SplitLineRanges(
      contents, std::max<size_t>(1, target), options.min_range_bytes);
  std::vector<std::vector<T>> parts(ranges.size());
  std::vector<Status> errors(ranges.size(), Status::OK());
  auto run_range = [&](size_t i) {
    const internal_scan::LineRange& range = ranges[i];
    if (range.begin >= range.end) return;  // degenerate empty-input range
    const std::string& content = contents[range.file];
    std::vector<T>& out = parts[i];
    size_t start = range.begin;
    int64_t line_no = range.first_line;
    while (start < range.end) {
      size_t nl = content.find('\n', start);
      size_t stop = (nl == std::string::npos || nl >= range.end) ? range.end : nl;
      std::string_view line(content.data() + start, stop - start);
      if (!StrTrim(line).empty()) {
        auto decoded = decode(line);
        if (!decoded.ok()) {
          errors[i] = Status::Corruption(paths[range.file] + ":" +
                                         std::to_string(line_no) + ": " +
                                         decoded.status().message());
          return;
        }
        out.push_back(std::move(decoded).value());
      }
      ++line_no;
      start = stop + 1;
    }
  };
  if (options.pool != nullptr && ranges.size() > 1) {
    options.pool->RunBulk(ranges.size(), run_range);
  } else {
    for (size_t i = 0; i < ranges.size(); ++i) run_range(i);
  }
  // Ranges are ordered by (file, line), so the first failing range holds the
  // globally earliest malformed line — the one ReadJsonLines would report.
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (!errors[i].ok()) return errors[i];
  }
  return parts;
}

/// DOM-decoding convenience scan: every line parsed with `json::Parse`.
/// Equivalent to concatenating `ReadJsonLines` over `paths`, but partitioned
/// (and parallel when `options.pool` is set).
Result<std::vector<std::vector<json::Json>>> ScanJsonLinesDom(
    const MiniDfs& dfs, const std::vector<std::string>& paths,
    const ScanOptions& options = ScanOptions());

}  // namespace cfnet::dfs

#endif  // CFNET_DFS_JSONL_H_
