#ifndef CFNET_DFS_JSONL_H_
#define CFNET_DFS_JSONL_H_

#include <algorithm>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dfs/commit.h"
#include "dfs/dfs.h"
#include "json/json.h"
#include "util/result.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace cfnet::dfs {

/// What a (set of) JSON-lines scans saw and salvaged. Accumulates across
/// calls when the same report is passed to several scans, so the platform
/// can surface one aggregate per load.
struct ScanReport {
  uint64_t files_scanned = 0;
  /// Files whose commit footer verified — end-to-end integrity guaranteed.
  uint64_t footer_verified_files = 0;
  /// Files without a footer (legacy raw artifacts): decoded as stored.
  uint64_t raw_files = 0;
  uint64_t bytes_scanned = 0;
  /// Salvage-mode lines dropped because they failed to decode (torn tails,
  /// embedded garbage). Zero in strict mode by construction.
  uint64_t records_dropped = 0;
  /// Bad-footer files encountered (salvage mode decodes them leniently and
  /// records them here; recovery sweeps move them under /.quarantine).
  std::vector<std::string> quarantined_paths;

  /// --- columnar counters (ScanColumnBlocks) --------------------------------
  /// Columnar (.cfc) files scanned.
  uint64_t columnar_files = 0;
  /// Blocks whose frame was walked (including blocks that failed CRC).
  uint64_t columnar_blocks_scanned = 0;
  /// Blocks dropped in salvage mode because their CRC or column decode
  /// disagreed with the frame (their rows count into records_dropped).
  uint64_t columnar_blocks_failed = 0;
  /// Bytes of per-block string dictionaries decoded.
  uint64_t columnar_dictionary_bytes = 0;
  /// On-disk block payload bytes successfully decoded...
  uint64_t columnar_encoded_bytes = 0;
  /// ...and the in-memory record bytes they expanded to. The ratio of the
  /// two is the effective compression of the columnar encodings.
  uint64_t columnar_decoded_bytes = 0;

  void Merge(const ScanReport& other);
};

/// Buffered writer of JSON-lines snapshot files into MiniDFS — the format
/// the crawler stores records in (one JSON document per line, as the paper's
/// platform stores crawled documents in HDFS).
class JsonLinesWriter {
 public:
  /// Buffers up to `flush_bytes` before appending to `path`. Durable mode
  /// (the default) flushes through the atomic commit protocol, so the file
  /// always carries a verified CRC footer and a crash mid-flush leaves the
  /// previous committed content intact; `durable = false` keeps the raw
  /// Append path for benchmarks and scratch output.
  JsonLinesWriter(MiniDfs* dfs, std::string path, size_t flush_bytes = 1 << 20,
                  bool durable = true);
  ~JsonLinesWriter();

  JsonLinesWriter(const JsonLinesWriter&) = delete;
  JsonLinesWriter& operator=(const JsonLinesWriter&) = delete;

  /// Serializes one record as a compact JSON line, appending directly into
  /// the writer's reusable buffer (no per-record string allocation).
  Status Write(const json::Json& record);

  /// Flushes buffered lines to the DFS.
  Status Flush();

  size_t records_written() const { return records_written_; }
  const std::string& path() const { return path_; }

 private:
  MiniDfs* dfs_;
  std::string path_;
  size_t flush_bytes_;
  bool durable_;
  std::string buffer_;
  size_t records_written_ = 0;
};

/// Reads every record of a JSON-lines file. A valid commit footer is
/// verified and stripped; a corrupt one fails Corruption; files without a
/// footer read as stored. Malformed lines produce an error (the crawler
/// only writes well-formed lines; corruption means DFS trouble).
Result<std::vector<json::Json>> ReadJsonLines(const MiniDfs& dfs,
                                              const std::string& path);

/// Counts the records (non-empty lines) of a JSON-lines file without
/// parsing them.
Result<int64_t> CountJsonLines(const MiniDfs& dfs, const std::string& path);

/// Truncates a JSON-lines file to its first `keep_records` records — the
/// crash-recovery primitive that discards shard appends made after the last
/// checkpoint. Keeping at least the current record count is a no-op;
/// truncating to zero deletes the file.
Status TruncateJsonLines(MiniDfs* dfs, const std::string& path,
                         int64_t keep_records);

/// --- parallel sharded scans ------------------------------------------------

/// Options for `ScanJsonLines`.
struct ScanOptions {
  /// Decode ranges in parallel on this pool (`ThreadPool::RunBulk`, caller
  /// participates); nullptr decodes sequentially on the caller.
  ThreadPool* pool = nullptr;
  /// Target number of output partitions (line-aligned byte ranges across all
  /// shards). 0 picks 4x the pool's thread count (1 when sequential) so the
  /// morsel scheduler can balance skewed shards.
  size_t target_partitions = 0;
  /// Ranges are not split below this many bytes.
  size_t min_range_bytes = 64 * 1024;
  /// Salvage mode: instead of failing the scan, a file with a corrupt
  /// commit footer or a line that fails to decode is skipped and counted
  /// in the report. Footer-*verified* files always decode strictly — their
  /// bytes are proven intact, so a decode failure there is a real bug, not
  /// storage damage. Strict mode (the default) preserves the historical
  /// fail-fast behaviour.
  bool salvage = false;
  /// When set, scan accounting accumulates here (see ScanReport).
  ScanReport* report = nullptr;
};

namespace internal_scan {

/// One line-aligned byte range of a loaded shard's contents: `begin` starts
/// a line, `end` is one past the terminating '\n' of the last line (or the
/// shard's last byte).
struct LineRange {
  size_t file = 0;
  size_t begin = 0;
  size_t end = 0;
  int64_t first_line = 1;  // 1-based line number at `begin`
};

/// Loaded shard payloads plus per-file decode policy.
struct ShardLoad {
  std::vector<std::string> contents;  // footer-stripped payloads
  /// Per-file: true when decode failures drop the line (salvaged raw or
  /// bad-footer files) instead of failing the scan.
  std::vector<char> lenient;
};

/// Reads every shard's contents (whole files; MiniDFS is an in-memory
/// block store, so this is the only read granularity it offers), verifying
/// and stripping commit footers. Strict mode fails on a corrupt footer;
/// salvage mode marks the file lenient and records it in `report`.
Result<ShardLoad> LoadShardContents(const MiniDfs& dfs,
                                    const std::vector<std::string>& paths,
                                    bool salvage, ScanReport* report);

/// Splits shard contents into roughly `target_ranges` line-aligned ranges,
/// none smaller than `min_range_bytes`, ordered by (file, begin).
std::vector<LineRange> SplitLineRanges(const std::vector<std::string>& contents,
                                       size_t target_ranges,
                                       size_t min_range_bytes);

}  // namespace internal_scan

/// Streaming scan over a set of JSON-lines shard files: splits the shards
/// into line-aligned byte ranges, decodes each range with
/// `decode(std::string_view line) -> Result<T>` (in parallel when
/// `options.pool` is set), and returns one output vector per range — already
/// partitioned for `Dataset::FromPartitions`, so no repartition pass is
/// needed downstream.
///
/// Record order across the flattened partitions equals sequential
/// `ReadJsonLines` order over `paths`; blank lines are skipped and a
/// malformed line yields the same "path:line:" Corruption verdict (the
/// earliest failing line wins when several ranges fail).
template <typename T, typename DecodeFn>
Result<std::vector<std::vector<T>>> ScanJsonLines(
    const MiniDfs& dfs, const std::vector<std::string>& paths,
    DecodeFn&& decode, const ScanOptions& options = ScanOptions()) {
  ScanReport scratch_report;
  ScanReport* report =
      options.report != nullptr ? options.report : &scratch_report;
  CFNET_ASSIGN_OR_RETURN(
      internal_scan::ShardLoad load,
      internal_scan::LoadShardContents(dfs, paths, options.salvage, report));
  const std::vector<std::string>& contents = load.contents;
  size_t target = options.target_partitions;
  if (target == 0) {
    target = options.pool != nullptr ? options.pool->num_threads() * 4 : 1;
  }
  std::vector<internal_scan::LineRange> ranges = internal_scan::SplitLineRanges(
      contents, std::max<size_t>(1, target), options.min_range_bytes);
  std::vector<std::vector<T>> parts(ranges.size());
  std::vector<Status> errors(ranges.size(), Status::OK());
  std::vector<uint64_t> dropped(ranges.size(), 0);
  auto run_range = [&](size_t i) {
    const internal_scan::LineRange& range = ranges[i];
    if (range.begin >= range.end) return;  // degenerate empty-input range
    const std::string& content = contents[range.file];
    const bool lenient = load.lenient[range.file] != 0;
    std::vector<T>& out = parts[i];
    size_t start = range.begin;
    int64_t line_no = range.first_line;
    while (start < range.end) {
      size_t nl = content.find('\n', start);
      size_t stop = (nl == std::string::npos || nl >= range.end) ? range.end : nl;
      std::string_view line(content.data() + start, stop - start);
      if (!StrTrim(line).empty()) {
        auto decoded = decode(line);
        if (decoded.ok()) {
          out.push_back(std::move(decoded).value());
        } else if (lenient) {
          // Salvaged file: the damage is expected — drop the line, keep
          // everything that still decodes.
          ++dropped[i];
        } else {
          errors[i] = Status::Corruption(paths[range.file] + ":" +
                                         std::to_string(line_no) + ": " +
                                         decoded.status().message());
          return;
        }
      }
      ++line_no;
      start = stop + 1;
    }
  };
  if (options.pool != nullptr && ranges.size() > 1) {
    options.pool->RunBulk(ranges.size(), run_range);
  } else {
    for (size_t i = 0; i < ranges.size(); ++i) run_range(i);
  }
  // Ranges are ordered by (file, line), so the first failing range holds the
  // globally earliest malformed line — the one ReadJsonLines would report.
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (!errors[i].ok()) return errors[i];
  }
  for (uint64_t d : dropped) report->records_dropped += d;
  return parts;
}

/// DOM-decoding convenience scan: every line parsed with `json::Parse`.
/// Equivalent to concatenating `ReadJsonLines` over `paths`, but partitioned
/// (and parallel when `options.pool` is set).
Result<std::vector<std::vector<json::Json>>> ScanJsonLinesDom(
    const MiniDfs& dfs, const std::vector<std::string>& paths,
    const ScanOptions& options = ScanOptions());

}  // namespace cfnet::dfs

#endif  // CFNET_DFS_JSONL_H_
