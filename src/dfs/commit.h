#ifndef CFNET_DFS_COMMIT_H_
#define CFNET_DFS_COMMIT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dfs/dfs.h"
#include "util/backoff.h"
#include "util/result.h"
#include "util/status.h"

namespace cfnet::dfs {

/// Durable-write protocol for snapshot/checkpoint artifacts.
///
/// Every committed file carries a fixed-width 40-byte trailer:
///
///     CFNETFTR1 <8-hex crc32> <20-digit payload length>\n
///
/// and is produced by write-to-temp -> footer -> read-back verify ->
/// atomic rename. The footer is the only defence that works against
/// corruption introduced *above* the replication layer (silent fsync loss,
/// rotten write buffers): block checksums are computed from whatever bytes
/// the write handed down, so they verify "clean" even when those bytes are
/// wrong. Readers that find a valid footer get an end-to-end integrity
/// guarantee; files without one (legacy raw writes) still read back as-is.

/// Fixed footer width in bytes.
inline constexpr size_t kCommitFooterSize = 40;

/// Footer magic (followed by one space in the serialized form).
inline constexpr std::string_view kCommitFooterMagic = "CFNETFTR1";

/// Suffix marking an uncommitted temp file. A crash between write and
/// rename orphans the temp; recovery sweeps delete it.
inline constexpr std::string_view kTempSuffix = ".tmp";

/// Namespace root that quarantined (bad-footer) files are renamed under.
/// Lives outside every data-dir prefix, so List()-driven consumers never
/// see quarantined files, but operators can inspect them.
inline constexpr std::string_view kQuarantineRoot = "/.quarantine";

/// Serializes the 40-byte footer for a payload with the given CRC/length.
std::string MakeCommitFooter(uint32_t payload_crc, uint64_t payload_len);

/// What the tail of a file looks like to the commit protocol.
enum class FooterState {
  kValid,    // well-formed footer, CRC and length match the payload
  kAbsent,   // no footer magic at the expected offset (legacy raw file)
  kCorrupt,  // footer magic present but CRC/length disagree with the bytes
};

/// Classifies `file` and, when the footer is valid, stores the payload
/// length (file size minus footer) in `*payload_len`.
FooterState InspectFooter(std::string_view file, uint64_t* payload_len);

/// `path` + ".tmp" — the uncommitted staging name.
std::string TempPath(const std::string& path);
bool IsTempPath(std::string_view path);

/// "/.quarantine" + `path` — where a bad-footer file is moved instead of
/// aborting the scan that found it.
std::string QuarantinePath(const std::string& path);

/// Knobs for CommitFile/CommitAppend/ReadCommitted retry behaviour.
struct CommitOptions {
  /// Total tries per operation (first attempt included).
  int max_attempts = 4;
  /// Delay schedule charged to `clock_micros` between attempts. Retries
  /// also consume fresh storage op serials, which is what lets a commit
  /// escape an op-indexed fault window deterministically.
  BackoffPolicy backoff{/*base_micros=*/10000, /*multiplier=*/2.0,
                        /*max_micros=*/0, /*jitter=*/0.0};
  uint64_t backoff_seed = 0;
  /// Virtual clock the backoff delays accrue to (nullptr = untracked).
  int64_t* clock_micros = nullptr;
  /// Read the temp file back and verify its footer before renaming.
  /// This is what catches silent fsync loss — a write that reports OK but
  /// persisted a prefix. Leave on unless benchmarking raw commit cost;
  /// exactly-once recovery relies on it.
  bool verify_after_write = true;
};

/// Atomically replaces `path` with `payload` + footer:
/// write `<path>.tmp` -> verify read-back -> rename over `path`.
/// On failure the target is never half-written: either the old content
/// survives intact or the new content is fully committed. Best-effort
/// deletes the temp on a failed commit.
Status CommitFile(MiniDfs* dfs, const std::string& path,
                  std::string_view payload, const CommitOptions& opts = {});

/// Appends `payload` to the committed content of `path` (creating it when
/// absent) and re-commits the whole file under a fresh footer. An existing
/// file without a footer is adopted leniently: its raw bytes become the
/// prior payload.
Status CommitAppend(MiniDfs* dfs, const std::string& path,
                    std::string_view payload, const CommitOptions& opts = {});

/// Reads `path` and strips/verifies the footer. A valid footer yields the
/// verified payload; an absent footer yields the raw bytes (legacy files);
/// a corrupt footer retries the read (in-flight bit flips are transient)
/// and fails Corruption once attempts are exhausted.
Result<std::string> ReadCommitted(MiniDfs* dfs, const std::string& path,
                                  const CommitOptions& opts = {});

/// What a recovery sweep found and did.
struct RecoveryReport {
  uint64_t temp_files_removed = 0;
  uint64_t files_quarantined = 0;
  std::vector<std::string> quarantined_paths;

  bool clean() const {
    return temp_files_removed == 0 && files_quarantined == 0;
  }
  void Merge(const RecoveryReport& other);
};

/// Startup/restart sweep over every file under `dir_prefix`:
///  - orphaned `.tmp` files (a writer died between write and rename) are
///    deleted — their rename never happened, so they are invisible to the
///    commit history by definition;
///  - files whose footer is present but corrupt are renamed under
///    /.quarantine for inspection instead of aborting startup;
///  - footer-less files are left alone (legacy raw artifacts).
/// Logs a one-line summary when anything was repaired.
RecoveryReport SweepDir(MiniDfs* dfs, const std::string& dir_prefix);

}  // namespace cfnet::dfs

#endif  // CFNET_DFS_COMMIT_H_
