#ifndef CFNET_DFS_COLUMNAR_H_
#define CFNET_DFS_COLUMNAR_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dfs/commit.h"
#include "dfs/dfs.h"
#include "dfs/jsonl.h"
#include "util/crc32.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace cfnet::dfs {

/// Blocked columnar snapshot format — the scan-optimised twin of the
/// JSON-lines shard files (which remain the crawl/ingest/dead-letter
/// boundary). One file holds one record type:
///
///     CFNETCOL1 <varint name_len> <type name> <u32 LE source fingerprint>
///     repeat:
///       "CBLK" <varint row_count> <varint payload_len> <payload> <u32 LE crc>
///
/// The per-block CRC32 covers the bytes from the row_count varint through
/// the end of the payload, so a rotted block is skippable without losing its
/// neighbours. Payloads are column-major: each field of the record struct is
/// one densely-encoded column (varint/zig-zag deltas for ids, bit-packed
/// bools, per-block dictionaries for strings — see ColumnarTraits). The whole
/// file is written through the dfs/commit rename protocol, so it also carries
/// the 40-byte CFNETFTR1 footer and participates in SweepDir recovery like
/// every other durable artifact.

inline constexpr std::string_view kColumnarMagic = "CFNETCOL1";
inline constexpr std::string_view kBlockMagic = "CBLK";
/// File suffix columnar snapshots are stored under; JSON loaders skip it.
inline constexpr std::string_view kColumnarSuffix = ".cfc";
/// Frame-walk sanity bound: a declared row count above this is treated as
/// frame damage rather than honoured with a giant allocation.
inline constexpr uint64_t kMaxBlockRows = uint64_t{1} << 26;

inline bool IsColumnarPath(std::string_view path) {
  return path.size() >= kColumnarSuffix.size() &&
         path.substr(path.size() - kColumnarSuffix.size()) == kColumnarSuffix;
}

/// --- primitive codecs -------------------------------------------------------

inline void AppendUVarint(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline void AppendU32LE(std::string& out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v);
  b[1] = static_cast<char>(v >> 8);
  b[2] = static_cast<char>(v >> 16);
  b[3] = static_cast<char>(v >> 24);
  out.append(b, 4);
}

inline void AppendF64LE(std::string& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(bits >> (8 * i));
  out.append(b, 8);
}

/// Bounds-checked cursor over an encoded region. Every Read* returns false
/// instead of walking past the end, so a decoder can never be driven out of
/// its block by damaged bytes.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data)
      : p_(data.data()), end_(data.data() + data.size()) {}

  bool ReadUVarint(uint64_t* out) {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (p_ == end_) return false;
      uint8_t byte = static_cast<uint8_t>(*p_++);
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        *out = v;
        return true;
      }
    }
    return false;  // varint longer than 10 bytes
  }

  bool ReadRaw(size_t n, std::string_view* out) {
    if (remaining() < n) return false;
    *out = std::string_view(p_, n);
    p_ += n;
    return true;
  }

  bool ReadU32LE(uint32_t* out) {
    std::string_view raw;
    if (!ReadRaw(4, &raw)) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(raw[i])) << (8 * i);
    }
    *out = v;
    return true;
  }

  bool ReadF64LE(double* out) {
    std::string_view raw;
    if (!ReadRaw(8, &raw)) return false;
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(static_cast<uint8_t>(raw[i])) << (8 * i);
    }
    std::memcpy(out, &bits, 8);
    return true;
  }

  bool done() const { return p_ == end_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

 private:
  const char* p_;
  const char* end_;
};

/// --- column codecs ----------------------------------------------------------
///
/// Encoders take `get(i)` accessors and append to a payload string; decoders
/// take `set(i, value)` sinks and pull from a ByteReader, returning false on
/// malformed bytes. Writing through accessors lets ColumnarTraits encode
/// struct fields column-by-column without transposing rows into scratch
/// arrays.

/// Unsigned ids / timestamps: zig-zag varint of the delta to the previous
/// row. Crawl snapshots append in roughly ascending id order, so deltas are
/// small and most rows take one byte.
template <typename GetFn>
void AppendDeltaU64Column(size_t n, GetFn get, std::string& out) {
  uint64_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = get(i);
    AppendUVarint(out, ZigZagEncode(static_cast<int64_t>(v - prev)));
    prev = v;
  }
}

template <typename SetFn>
bool DecodeDeltaU64Column(ByteReader& r, size_t n, SetFn set) {
  uint64_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t d;
    if (!r.ReadUVarint(&d)) return false;
    prev += static_cast<uint64_t>(ZigZagDecode(d));
    set(i, prev);
  }
  return true;
}

/// Signed counters: plain zig-zag varints (values cluster near zero but are
/// not monotone, so deltas would not help).
template <typename GetFn>
void AppendZigZagI64Column(size_t n, GetFn get, std::string& out) {
  for (size_t i = 0; i < n; ++i) {
    AppendUVarint(out, ZigZagEncode(get(i)));
  }
}

template <typename SetFn>
bool DecodeZigZagI64Column(ByteReader& r, size_t n, SetFn set) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t v;
    if (!r.ReadUVarint(&v)) return false;
    set(i, ZigZagDecode(v));
  }
  return true;
}

/// Bools: bit-packed, eight rows per byte, LSB first.
template <typename GetFn>
void AppendBoolColumn(size_t n, GetFn get, std::string& out) {
  for (size_t i = 0; i < n; i += 8) {
    uint8_t byte = 0;
    for (size_t j = 0; j < 8 && i + j < n; ++j) {
      if (get(i + j)) byte |= uint8_t{1} << j;
    }
    out.push_back(static_cast<char>(byte));
  }
}

template <typename SetFn>
bool DecodeBoolColumn(ByteReader& r, size_t n, SetFn set) {
  std::string_view bits;
  if (!r.ReadRaw((n + 7) / 8, &bits)) return false;
  for (size_t i = 0; i < n; ++i) {
    set(i, (static_cast<uint8_t>(bits[i >> 3]) >> (i & 7)) & 1);
  }
  return true;
}

/// Doubles: raw 8-byte little-endian (funding amounts do not compress well
/// and must round-trip bit-exactly).
template <typename GetFn>
void AppendF64Column(size_t n, GetFn get, std::string& out) {
  for (size_t i = 0; i < n; ++i) AppendF64LE(out, get(i));
}

template <typename SetFn>
bool DecodeF64Column(ByteReader& r, size_t n, SetFn set) {
  for (size_t i = 0; i < n; ++i) {
    double v;
    if (!r.ReadF64LE(&v)) return false;
    set(i, v);
  }
  return true;
}

/// Strings: per-block dictionary in first-seen order, then one varint code
/// per row. Returns the dictionary byte count (for the scan report).
template <typename GetFn>  // get(i) -> const std::string& (or string_view)
uint64_t AppendStringDictColumn(size_t n, GetFn get, std::string& out) {
  std::unordered_map<std::string_view, uint64_t> index;
  std::vector<std::string_view> entries;
  std::vector<uint64_t> codes(n);
  for (size_t i = 0; i < n; ++i) {
    std::string_view s = get(i);
    auto [it, added] = index.emplace(s, entries.size());
    if (added) entries.push_back(s);
    codes[i] = it->second;
  }
  AppendUVarint(out, entries.size());
  uint64_t dict_bytes = 0;
  for (std::string_view e : entries) {
    AppendUVarint(out, e.size());
    out.append(e);
    dict_bytes += e.size();
  }
  for (uint64_t c : codes) AppendUVarint(out, c);
  return dict_bytes;
}

template <typename SetFn>  // set(i, std::string_view)
bool DecodeStringDictColumn(ByteReader& r, size_t n, SetFn set,
                            uint64_t* dictionary_bytes) {
  uint64_t count;
  if (!r.ReadUVarint(&count)) return false;
  if (count > r.remaining()) return false;  // every entry needs >= 1 byte
  std::vector<std::string_view> entries(count);
  for (uint64_t k = 0; k < count; ++k) {
    uint64_t len;
    if (!r.ReadUVarint(&len) || !r.ReadRaw(len, &entries[k])) return false;
    *dictionary_bytes += len;
  }
  for (size_t i = 0; i < n; ++i) {
    uint64_t code;
    if (!r.ReadUVarint(&code) || code >= count) return false;
    set(i, entries[code]);
  }
  return true;
}

/// u64 lists (investment edges): varint lengths for all rows, then each
/// row's values as intra-list zig-zag deltas.
template <typename GetFn>  // get(i) -> const std::vector<uint64_t>&
void AppendU64ListColumn(size_t n, GetFn get, std::string& out) {
  for (size_t i = 0; i < n; ++i) AppendUVarint(out, get(i).size());
  for (size_t i = 0; i < n; ++i) {
    uint64_t prev = 0;
    for (uint64_t v : get(i)) {
      AppendUVarint(out, ZigZagEncode(static_cast<int64_t>(v - prev)));
      prev = v;
    }
  }
}

template <typename AtFn>  // at(i) -> std::vector<uint64_t>& (to fill)
bool DecodeU64ListColumn(ByteReader& r, size_t n, AtFn at) {
  std::vector<uint64_t> lens(n);
  for (size_t i = 0; i < n; ++i) {
    if (!r.ReadUVarint(&lens[i])) return false;
    if (lens[i] > r.remaining()) return false;  // every value needs >= 1 byte
  }
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint64_t>& vals = at(i);
    vals.resize(lens[i]);
    uint64_t prev = 0;
    for (uint64_t& v : vals) {
      uint64_t d;
      if (!r.ReadUVarint(&d)) return false;
      prev += static_cast<uint64_t>(ZigZagDecode(d));
      v = prev;
    }
  }
  return true;
}

/// --- record-type plumbing ---------------------------------------------------

/// Per-record-type columnar codec. Specialized for the five record structs in
/// core/columnar_records.h (the traits live with the types, not here, so the
/// dfs layer stays record-agnostic). Each specialization provides:
///
///   static constexpr std::string_view kTypeName;   // pinned in the header
///   static void EncodeBlock(const T* rows, size_t n, std::string& out);
///   static bool DecodeBlock(ByteReader& r, size_t n, T* rows,
///                           uint64_t* dictionary_bytes);
///   static uint64_t RowBytes(const T& row);  // decoded in-memory footprint
template <typename T>
struct ColumnarTraits;

/// File-header fields (views into the loaded file bytes).
struct ColumnarHeader {
  std::string_view type_name;
  /// CRC32 fingerprint of the JSON shards this file was compacted from;
  /// loaders fall back to JSON when the live shards no longer match (e.g.
  /// dead-letter replay appended records after compaction).
  uint32_t source_fingerprint = 0;
};

void AppendColumnarHeader(std::string& out, std::string_view type_name,
                          uint32_t source_fingerprint);

/// Parses the header, leaving `r` at the first block frame.
Status ParseColumnarHeader(ByteReader& r, std::string_view path,
                           ColumnarHeader* out);

/// One walked block frame (views into the loaded file bytes).
struct RawBlock {
  uint64_t row_count = 0;
  std::string_view payload;
  /// Bytes the stored CRC covers: row_count varint through payload end.
  std::string_view crc_region;
  uint32_t stored_crc = 0;
};

/// Walks block frames from `r` until end-of-file or damage. Frames walked
/// before any damage are always appended to `out`; damage (bad magic,
/// truncated frame, absurd row count) returns Corruption — there are no
/// sync markers, so nothing after a broken frame is recoverable and the
/// caller decides whether that is fatal (strict) or just truncates the file
/// at the damage point (salvage).
Status WalkBlocks(ByteReader& r, std::string_view path,
                  std::vector<RawBlock>* out);

/// Summary of a committed columnar file (no payload decode).
struct ColumnarFileInfo {
  std::string type_name;
  uint32_t source_fingerprint = 0;
  uint64_t blocks = 0;
  uint64_t rows = 0;
};

Result<ColumnarFileInfo> InspectColumnarFile(MiniDfs* dfs,
                                             const std::string& path);

/// Header-only read of the stored source fingerprint — the staleness check
/// loaders run before trusting a columnar file over the live JSON shards.
/// A corrupt commit footer or smashed header fails Corruption (callers fall
/// back to JSON).
Result<uint32_t> ReadColumnarFingerprint(const MiniDfs& dfs,
                                         const std::string& path);

/// --- writer -----------------------------------------------------------------

struct ColumnarWriteOptions {
  /// Rows buffered per block. Bigger blocks amortise frame overhead and give
  /// dictionaries more hits; smaller blocks parallelise and salvage at finer
  /// grain (bench_ingest sweeps 64k/256k/1M).
  size_t block_rows = 64 * 1024;
  /// Stored in the header; see ColumnarHeader::source_fingerprint.
  uint32_t source_fingerprint = 0;
  CommitOptions commit;
};

/// Buffers rows, encodes full blocks eagerly, and commits the whole file
/// atomically on Finish() — a crash at any point leaves either the previous
/// committed content or nothing, never a torn file.
template <typename T>
class ColumnarWriter {
 public:
  ColumnarWriter(MiniDfs* dfs, std::string path,
                 ColumnarWriteOptions options = {})
      : dfs_(dfs), path_(std::move(path)), options_(options) {
    if (options_.block_rows == 0) options_.block_rows = 64 * 1024;
    AppendColumnarHeader(encoded_, ColumnarTraits<T>::kTypeName,
                         options_.source_fingerprint);
  }

  void Add(const T& row) {
    buffer_.push_back(row);
    if (buffer_.size() >= options_.block_rows) EncodeBufferedBlock();
  }
  void Add(T&& row) {
    buffer_.push_back(std::move(row));
    if (buffer_.size() >= options_.block_rows) EncodeBufferedBlock();
  }

  /// Encodes any buffered tail block and commits the file.
  Status Finish() {
    if (!buffer_.empty()) EncodeBufferedBlock();
    return CommitFile(dfs_, path_, encoded_, options_.commit);
  }

  uint64_t rows_added() const { return rows_added_; }
  const std::string& path() const { return path_; }

 private:
  void EncodeBufferedBlock() {
    encoded_.append(kBlockMagic);
    const size_t crc_begin = encoded_.size();
    AppendUVarint(encoded_, buffer_.size());
    payload_.clear();
    ColumnarTraits<T>::EncodeBlock(buffer_.data(), buffer_.size(), payload_);
    AppendUVarint(encoded_, payload_.size());
    encoded_.append(payload_);
    const uint32_t crc =
        Crc32(std::string_view(encoded_).substr(crc_begin));
    AppendU32LE(encoded_, crc);
    rows_added_ += buffer_.size();
    buffer_.clear();
  }

  MiniDfs* dfs_;
  std::string path_;
  ColumnarWriteOptions options_;
  std::vector<T> buffer_;
  std::string payload_;  // reused per-block scratch
  std::string encoded_;
  uint64_t rows_added_ = 0;
};

/// --- scan -------------------------------------------------------------------

/// Block-parallel scan over committed columnar files: loads each file once
/// (footer verified/stripped by the shared shard loader), walks the block
/// frames, then CRC-checks and column-decodes every block as its own
/// partition on `options.pool` — blocks decode straight into pre-sized
/// record vectors ready for `Dataset::FromPartitions`, and block payloads
/// are string_views into the loaded file bytes (no re-buffering).
///
/// Flattened partition order equals write order. Strict mode fails on any
/// damage; salvage mode mirrors the JSON scan contract — footer-verified
/// files still decode strictly (their bytes are proven intact), while
/// quarantined/raw files drop CRC-failed blocks (and anything after a broken
/// frame) into the report instead of failing the scan.
template <typename T>
Result<std::vector<std::vector<T>>> ScanColumnBlocks(
    const MiniDfs& dfs, const std::vector<std::string>& paths,
    const ScanOptions& options = ScanOptions()) {
  ScanReport scratch_report;
  ScanReport* report =
      options.report != nullptr ? options.report : &scratch_report;
  CFNET_ASSIGN_OR_RETURN(
      internal_scan::ShardLoad load,
      internal_scan::LoadShardContents(dfs, paths, options.salvage, report));
  report->columnar_files += paths.size();

  struct BlockRef {
    size_t file;
    bool lenient;
    RawBlock raw;
  };
  std::vector<BlockRef> blocks;
  for (size_t f = 0; f < load.contents.size(); ++f) {
    const bool lenient = load.lenient[f] != 0;
    ByteReader r(load.contents[f]);
    ColumnarHeader header;
    Status hs = ParseColumnarHeader(r, paths[f], &header);
    if (hs.ok() && header.type_name != ColumnarTraits<T>::kTypeName) {
      hs = Status::Corruption(paths[f] + ": columnar type mismatch: file has '" +
                              std::string(header.type_name) + "', expected '" +
                              std::string(ColumnarTraits<T>::kTypeName) + "'");
    }
    if (!hs.ok()) {
      if (lenient) continue;  // salvaged file with a smashed header: skip it
      return hs;
    }
    std::vector<RawBlock> raws;
    Status ws = WalkBlocks(r, paths[f], &raws);
    if (!ws.ok() && !lenient) return ws;
    for (RawBlock& raw : raws) blocks.push_back({f, lenient, raw});
  }

  std::vector<std::vector<T>> parts(blocks.size());
  std::vector<Status> errors(blocks.size(), Status::OK());
  std::vector<uint64_t> dropped(blocks.size(), 0);
  std::vector<uint64_t> failed(blocks.size(), 0);
  std::vector<uint64_t> dict_bytes(blocks.size(), 0);
  std::vector<uint64_t> encoded_bytes(blocks.size(), 0);
  std::vector<uint64_t> decoded_bytes(blocks.size(), 0);
  auto run_block = [&](size_t i) {
    const BlockRef& b = blocks[i];
    if (Crc32(b.raw.crc_region) != b.raw.stored_crc) {
      if (b.lenient) {
        failed[i] = 1;
        dropped[i] = b.raw.row_count;
        return;
      }
      errors[i] = Status::Corruption(paths[b.file] + ": block " +
                                     std::to_string(i) + " CRC mismatch");
      return;
    }
    std::vector<T>& out = parts[i];
    out.resize(b.raw.row_count);
    ByteReader pr(b.raw.payload);
    uint64_t dict = 0;
    if (!ColumnarTraits<T>::DecodeBlock(pr, out.size(), out.data(), &dict) ||
        !pr.done()) {
      out.clear();
      if (b.lenient) {
        failed[i] = 1;
        dropped[i] = b.raw.row_count;
        return;
      }
      errors[i] = Status::Corruption(paths[b.file] + ": block " +
                                     std::to_string(i) +
                                     " column decode failed");
      return;
    }
    dict_bytes[i] = dict;
    encoded_bytes[i] = b.raw.payload.size();
    uint64_t decoded = 0;
    for (const T& row : out) decoded += ColumnarTraits<T>::RowBytes(row);
    decoded_bytes[i] = decoded;
  };
  if (options.pool != nullptr && blocks.size() > 1) {
    options.pool->RunBulk(blocks.size(), run_block);
  } else {
    for (size_t i = 0; i < blocks.size(); ++i) run_block(i);
  }
  for (size_t i = 0; i < blocks.size(); ++i) {
    if (!errors[i].ok()) return errors[i];
  }
  report->columnar_blocks_scanned += blocks.size();
  for (size_t i = 0; i < blocks.size(); ++i) {
    report->columnar_blocks_failed += failed[i];
    report->records_dropped += dropped[i];
    report->columnar_dictionary_bytes += dict_bytes[i];
    report->columnar_encoded_bytes += encoded_bytes[i];
    report->columnar_decoded_bytes += decoded_bytes[i];
  }
  return parts;
}

}  // namespace cfnet::dfs

#endif  // CFNET_DFS_COLUMNAR_H_
