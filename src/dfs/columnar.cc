#include "dfs/columnar.h"

namespace cfnet::dfs {

void AppendColumnarHeader(std::string& out, std::string_view type_name,
                          uint32_t source_fingerprint) {
  out.append(kColumnarMagic);
  AppendUVarint(out, type_name.size());
  out.append(type_name);
  AppendU32LE(out, source_fingerprint);
}

Status ParseColumnarHeader(ByteReader& r, std::string_view path,
                           ColumnarHeader* out) {
  std::string_view magic;
  if (!r.ReadRaw(kColumnarMagic.size(), &magic) || magic != kColumnarMagic) {
    return Status::Corruption(std::string(path) +
                              ": not a columnar file (bad magic)");
  }
  uint64_t name_len;
  if (!r.ReadUVarint(&name_len) || name_len > 256 ||
      !r.ReadRaw(name_len, &out->type_name)) {
    return Status::Corruption(std::string(path) +
                              ": columnar header type name damaged");
  }
  if (!r.ReadU32LE(&out->source_fingerprint)) {
    return Status::Corruption(std::string(path) +
                              ": columnar header fingerprint truncated");
  }
  return Status::OK();
}

Status WalkBlocks(ByteReader& r, std::string_view path,
                  std::vector<RawBlock>* out) {
  while (!r.done()) {
    std::string_view magic;
    if (!r.ReadRaw(kBlockMagic.size(), &magic) || magic != kBlockMagic) {
      return Status::Corruption(std::string(path) + ": block " +
                                std::to_string(out->size()) +
                                ": bad frame magic");
    }
    // The CRC region starts at the row_count varint; capture the remainder
    // now and trim it to the region width once the payload length is known.
    std::string_view frame_rest;
    const size_t rest_len = r.remaining();
    ByteReader peek = r;
    peek.ReadRaw(rest_len, &frame_rest);
    RawBlock block;
    uint64_t payload_len;
    if (!r.ReadUVarint(&block.row_count) || block.row_count > kMaxBlockRows ||
        !r.ReadUVarint(&payload_len) ||
        !r.ReadRaw(payload_len, &block.payload)) {
      return Status::Corruption(std::string(path) + ": block " +
                                std::to_string(out->size()) +
                                ": frame truncated or damaged");
    }
    block.crc_region = frame_rest.substr(0, rest_len - r.remaining());
    if (!r.ReadU32LE(&block.stored_crc)) {
      return Status::Corruption(std::string(path) + ": block " +
                                std::to_string(out->size()) +
                                ": frame CRC truncated");
    }
    out->push_back(block);
  }
  return Status::OK();
}

Result<uint32_t> ReadColumnarFingerprint(const MiniDfs& dfs,
                                         const std::string& path) {
  CFNET_ASSIGN_OR_RETURN(std::string content, dfs.ReadFile(path));
  uint64_t payload_len = content.size();
  switch (InspectFooter(content, &payload_len)) {
    case FooterState::kValid:
      content.resize(payload_len);
      break;
    case FooterState::kAbsent:
      break;  // legacy raw file: parse as stored
    case FooterState::kCorrupt:
      return Status::Corruption(path + ": corrupt commit footer");
  }
  ByteReader r(content);
  ColumnarHeader header;
  CFNET_RETURN_IF_ERROR(ParseColumnarHeader(r, path, &header));
  return header.source_fingerprint;
}

Result<ColumnarFileInfo> InspectColumnarFile(MiniDfs* dfs,
                                             const std::string& path) {
  CFNET_ASSIGN_OR_RETURN(std::string content, ReadCommitted(dfs, path));
  ByteReader r(content);
  ColumnarHeader header;
  CFNET_RETURN_IF_ERROR(ParseColumnarHeader(r, path, &header));
  std::vector<RawBlock> blocks;
  CFNET_RETURN_IF_ERROR(WalkBlocks(r, path, &blocks));
  ColumnarFileInfo info;
  info.type_name = std::string(header.type_name);
  info.source_fingerprint = header.source_fingerprint;
  info.blocks = blocks.size();
  for (const RawBlock& b : blocks) info.rows += b.row_count;
  return info;
}

}  // namespace cfnet::dfs
