#ifndef CFNET_CORE_EPOCH_MAINTAINER_H_
#define CFNET_CORE_EPOCH_MAINTAINER_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "community/coda.h"
#include "community/incremental.h"
#include "community/louvain.h"
#include "graph/bipartite_graph.h"
#include "graph/delta.h"
#include "graph/weighted_graph.h"

namespace cfnet::core {

/// The serving-ready analytics of one epoch: the merged investor graph,
/// its co-investment projection, the community partition, and (optionally)
/// the CoDA factors. Exactly what `serve::AssembleServingSnapshot` needs.
struct EpochArtifacts {
  graph::BipartiteGraph graph;
  graph::WeightedGraph projection;
  std::vector<int> community_labels;
  community::CommunitySet communities;
  double modularity = 0;
  community::CodaResult coda;  // num_factors == 0 when CoDA is disabled
};

/// How the last epoch was produced.
struct EpochBuildReport {
  bool incremental = false;       // delta path (vs full rebuild)
  bool fell_back_full = false;    // refinement guard rejected the partition
  double build_ms = 0;
  size_t delta_edges = 0;         // effective adds + removes applied
  size_t noop_deltas = 0;
  size_t frontier_size = 0;
  size_t rows_reused = 0;         // bipartite rows spliced through the merge
  size_t rows_rebuilt = 0;
};

/// Maintains epoch artifacts across crawl rounds at delta cost: merges an
/// edge-delta batch into the bipartite CSR, updates the projection only on
/// the changed-neighborhood frontier, refines the previous Louvain
/// partition (with a modularity-drop guard), and warm-starts CoDA from the
/// previous factors. `Advance` output is bit-identical to a full rebuild
/// for the graph and projection; the partition/CoDA quality is guarded
/// within the configured tolerances.
class EpochMaintainer {
 public:
  struct Config {
    /// Projection popularity cap; must match the serving tier's
    /// `SnapshotBuildOptions::max_right_degree`.
    size_t max_right_degree = 500;
    community::IncrementalCommunityConfig refine;
    /// Delta batches whose effective edge count exceeds this fraction of
    /// the merged edge count take the full-rebuild path outright (the
    /// frontier would cover most of the graph anyway).
    double full_rebuild_delta_fraction = 0.25;
    bool run_coda = false;
    community::CodaConfig coda;
  };

  EpochMaintainer() = default;
  explicit EpochMaintainer(Config config) : config_(std::move(config)) {}

  /// (Re)builds every artifact from a full edge set. The baseline epoch.
  const EpochArtifacts& FullBuild(
      const std::vector<std::pair<uint64_t, uint64_t>>& edges);

  /// Advances one epoch by an edge-delta batch. Requires a prior
  /// FullBuild/Advance. An empty batch is cheap (everything reused).
  const EpochArtifacts& Advance(const std::vector<graph::EdgeDelta>& deltas);

  bool has_epoch() const { return has_epoch_; }
  const EpochArtifacts& artifacts() const { return artifacts_; }
  const EpochBuildReport& last_report() const { return report_; }
  const Config& config() const { return config_; }

 private:
  void RunFullAnalytics();  // projection + Louvain (+ CoDA) from the graph

  Config config_;
  EpochArtifacts artifacts_;
  EpochBuildReport report_;
  bool has_epoch_ = false;
};

}  // namespace cfnet::core

#endif  // CFNET_CORE_EPOCH_MAINTAINER_H_
