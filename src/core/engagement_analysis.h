#ifndef CFNET_CORE_ENGAGEMENT_ANALYSIS_H_
#define CFNET_CORE_ENGAGEMENT_ANALYSIS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/platform.h"
#include "dataflow/context.h"

namespace cfnet::core {

/// One row of the Figure 6 table.
struct EngagementRow {
  std::string label;
  int64_t num_companies = 0;
  double pct_of_companies = 0;  // of all crawled companies
  double success_pct = 0;       // fundraising success within the category

  /// Category-vs-complement association with funding success (2x2
  /// chi-square with Yates correction; Haldane-corrected odds ratio) —
  /// quantifies the paper's qualitative "significant difference" claims.
  double chi_square_p_value = 1;
  double odds_ratio = 1;
};

/// The full Figure 6 reproduction: every category of social presence /
/// engagement with its company count and success rate, plus the data-driven
/// split points (the paper's 652 likes / 343 tweets / 339 followers are the
/// medians of its crawl; we compute ours the same way).
struct EngagementTable {
  int64_t total_companies = 0;
  int64_t funded_companies = 0;
  double fb_likes_median = 0;
  double tw_tweets_median = 0;
  double tw_followers_median = 0;
  int64_t twitter_nonnull_followers = 0;
  std::vector<EngagementRow> rows;

  /// Finds a row by label ("" when absent).
  const EngagementRow* FindRow(const std::string& label) const;
};

/// Computes the social-engagement-vs-funding table (§4) from the crawled
/// snapshots, as a MiniSpark pipeline: success is derived by joining
/// startups against CrunchBase funding records; engagement joins against
/// the Facebook/Twitter profile snapshots.
EngagementTable AnalyzeEngagement(
    std::shared_ptr<dataflow::ExecutionContext> ctx,
    const AnalysisInputs& inputs);

}  // namespace cfnet::core

#endif  // CFNET_CORE_ENGAGEMENT_ANALYSIS_H_
