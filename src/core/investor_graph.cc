#include "core/investor_graph.h"

#include <vector>

#include "dataflow/dataset.h"

namespace cfnet::core {
namespace {

using dataflow::Dataset;

/// Packs an (investor, company) edge into one key for Distinct().
uint64_t PackEdge(uint64_t investor, uint64_t company) {
  return (investor << 32) | (company & 0xffffffffull);
}

Dataset<uint64_t> AngelListEdges(std::shared_ptr<dataflow::ExecutionContext> ctx,
                                 const AnalysisInputs& inputs) {
  return Dataset<UserRecord>::FromVector(ctx, inputs.users)
      .FlatMap([](const UserRecord& u) {
        std::vector<uint64_t> edges;
        edges.reserve(u.investment_company_ids.size());
        for (uint64_t c : u.investment_company_ids) {
          edges.push_back(PackEdge(u.id, c));
        }
        return edges;
      });
}

Dataset<uint64_t> CrunchBaseEdges(std::shared_ptr<dataflow::ExecutionContext> ctx,
                                  const AnalysisInputs& inputs) {
  return Dataset<CrunchBaseRecord>::FromVector(ctx, inputs.crunchbase)
      .FlatMap([](const CrunchBaseRecord& r) {
        std::vector<uint64_t> edges;
        edges.reserve(r.round_investor_ids.size());
        for (uint64_t inv : r.round_investor_ids) {
          edges.push_back(PackEdge(inv, r.angellist_id));
        }
        return edges;
      });
}

}  // namespace

graph::BipartiteGraph BuildInvestorGraph(
    std::shared_ptr<dataflow::ExecutionContext> ctx,
    const AnalysisInputs& inputs) {
  auto merged = AngelListEdges(ctx, inputs)
                    .Union(CrunchBaseEdges(ctx, inputs))
                    .Distinct()
                    .Collect();
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  edges.reserve(merged.size());
  for (uint64_t packed : merged) {
    edges.emplace_back(packed >> 32, packed & 0xffffffffull);
  }
  return graph::BipartiteGraph::FromEdges(edges);
}

EdgeProvenance ComputeEdgeProvenance(
    std::shared_ptr<dataflow::ExecutionContext> ctx,
    const AnalysisInputs& inputs) {
  EdgeProvenance p;
  auto al = AngelListEdges(ctx, inputs).Distinct();
  auto cb = CrunchBaseEdges(ctx, inputs).Distinct();
  p.angellist_edges = al.Count();
  p.crunchbase_edges = cb.Count();
  p.merged_unique_edges = al.Union(cb).Distinct().Count();
  return p;
}

}  // namespace cfnet::core
