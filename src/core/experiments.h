#ifndef CFNET_CORE_EXPERIMENTS_H_
#define CFNET_CORE_EXPERIMENTS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "community/coda.h"
#include "core/community_metrics.h"
#include "core/engagement_analysis.h"
#include "core/investor_graph.h"
#include "core/platform.h"
#include "graph/bipartite_graph.h"
#include "stats/stats.h"

namespace cfnet::core {

/// Figure 8's toy communities (used to validate the strength metrics):
/// example 1 must yield mean shared size 5/3 and 100% shared-investor
/// companies at K=2; example 2 yields 1/3 and 25%.
graph::BipartiteGraph ToyCommunityExample1();
graph::BipartiteGraph ToyCommunityExample2();

/// §3 dataset statistics (crawl coverage and user roles).
struct DatasetStatsResult {
  int64_t companies = 0;
  int64_t users = 0;
  int64_t crunchbase_profiles = 0;
  int64_t facebook_profiles = 0;
  int64_t twitter_profiles = 0;
  int64_t investors = 0;
  int64_t founders = 0;
  int64_t employees = 0;
  double investor_pct = 0;
  double founder_pct = 0;
  double employee_pct = 0;
};

/// Figure 3 + §5.1 graph statistics.
struct Fig3Result {
  std::vector<stats::Ecdf::Point> investment_cdf;  // per-investor out-degree
  graph::DegreeSummary degrees;
  size_t num_investors = 0;
  size_t num_companies = 0;
  size_t num_edges = 0;
  double avg_investors_per_company = 0;
  double mean_investor_follows = 0;
  EdgeProvenance provenance;
};

/// Figure 4: shared-investment-size CDFs for the strongest communities vs
/// the global sampled estimate.
struct Fig4Result {
  struct CommunityCurve {
    size_t community_index = 0;
    size_t size = 0;
    double mean_shared = 0;
    double max_shared = 0;
    std::vector<stats::Ecdf::Point> curve;
  };
  std::vector<CommunityCurve> strongest;  // descending by mean shared size
  std::vector<stats::Ecdf::Point> global_curve;
  size_t global_pairs = 0;
  double dkw_epsilon = 0;   // at 99% confidence, paper: 0.0196 for n=800k
  size_t num_communities = 0;
  double avg_community_size = 0;
  int coda_iterations = 0;
  double coda_log_likelihood = 0;
};

/// Figure 5: distribution across communities of the percentage of
/// companies with >= K shared investors.
struct Fig5Result {
  std::vector<double> community_percents;
  double mean_percent = 0;            // paper: 23.1%
  double random_mean_percent = 0;     // paper: 5.8%
  std::vector<std::pair<double, double>> kde;  // smoothed PDF over [0,100]
};

/// Figure 7: visualization of one strong and one weak community.
struct Fig7Result {
  struct CommunityViz {
    size_t community_index = 0;
    size_t num_investors = 0;
    size_t num_companies = 0;
    double mean_shared = 0;
    double shared_investor_pct = 0;
    std::string svg;
    std::string dot;
  };
  CommunityViz strong;
  CommunityViz weak;
};

/// Shared experiment state: builds the merged investor graph, the >=4-
/// investment filtered graph, and the CoDA fit once, then derives every
/// §4/§5 figure from them. This mirrors the paper's pipeline order.
class ExperimentSuite {
 public:
  ExperimentSuite(std::shared_ptr<dataflow::ExecutionContext> ctx,
                  const AnalysisInputs& inputs,
                  community::CodaConfig coda_config = {});

  const graph::BipartiteGraph& investor_graph();
  /// Investors with >= 4 investments (the §5.2 cleaning step).
  const graph::BipartiteGraph& filtered_graph();
  const community::CodaResult& coda();

  DatasetStatsResult RunDatasetStats();
  EngagementTable RunEngagementTable();
  Fig3Result RunFig3(size_t cdf_points = 64);
  Fig4Result RunFig4(size_t num_strong = 3, size_t global_pairs = 800000,
                     size_t min_community_size_for_ranking = 8);
  Fig5Result RunFig5(size_t k = 2, uint64_t random_seed = 7);
  Fig7Result RunFig7(size_t min_community_size = 8,
                     size_t max_companies_in_viz = 160);

 private:
  std::shared_ptr<dataflow::ExecutionContext> ctx_;
  const AnalysisInputs& inputs_;
  community::CodaConfig coda_config_;
  std::optional<graph::BipartiteGraph> graph_;
  std::optional<graph::BipartiteGraph> filtered_;
  std::optional<community::CodaResult> coda_;

  /// Communities ranked by mean shared size (indices into coda() result),
  /// restricted to communities with at least `min_size` members.
  std::vector<std::pair<double, size_t>> RankCommunities(size_t min_size);
};

}  // namespace cfnet::core

#endif  // CFNET_CORE_EXPERIMENTS_H_
