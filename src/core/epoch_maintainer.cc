#include "core/epoch_maintainer.h"

#include <algorithm>
#include <chrono>

#include "util/logging.h"

namespace cfnet::core {
namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

void EpochMaintainer::RunFullAnalytics() {
  artifacts_.projection = graph::WeightedGraph::ProjectLeft(
      artifacts_.graph, config_.max_right_degree);
  community::LouvainResult louvain =
      community::RunLouvain(artifacts_.projection, config_.refine.full_louvain);
  artifacts_.community_labels = std::move(louvain.labels);
  artifacts_.communities = std::move(louvain.communities);
  artifacts_.modularity = louvain.modularity;
  if (config_.run_coda) {
    artifacts_.coda = community::Coda(config_.coda).Fit(artifacts_.graph);
  }
}

const EpochArtifacts& EpochMaintainer::FullBuild(
    const std::vector<std::pair<uint64_t, uint64_t>>& edges) {
  const auto t0 = std::chrono::steady_clock::now();
  report_ = EpochBuildReport{};
  artifacts_.graph = graph::BipartiteGraph::FromEdges(edges);
  RunFullAnalytics();
  report_.build_ms = MsSince(t0);
  has_epoch_ = true;
  return artifacts_;
}

const EpochArtifacts& EpochMaintainer::Advance(
    const std::vector<graph::EdgeDelta>& deltas) {
  CFNET_CHECK(has_epoch_) << "Advance() requires a FullBuild() baseline";
  const auto t0 = std::chrono::steady_clock::now();
  EpochBuildReport report;

  graph::DeltaMergeResult merge =
      graph::MergeBipartiteDelta(artifacts_.graph, deltas);
  report.delta_edges = merge.stats.edges_added + merge.stats.edges_removed;
  report.noop_deltas = merge.stats.noop_deltas;
  report.rows_reused = merge.stats.rows_reused;
  report.rows_rebuilt = merge.stats.rows_rebuilt;

  const size_t merged_edges = std::max<size_t>(1, merge.graph.num_edges());
  const bool too_big =
      static_cast<double>(report.delta_edges) >
      config_.full_rebuild_delta_fraction * static_cast<double>(merged_edges);

  if (too_big) {
    artifacts_.graph = std::move(merge.graph);
    RunFullAnalytics();
    report.incremental = false;
  } else {
    report.incremental = true;
    std::vector<uint32_t> frontier = graph::ProjectionFrontier(
        artifacts_.graph, merge, config_.max_right_degree);
    report.frontier_size = frontier.size();

    graph::WeightedGraph projection = graph::UpdateProjection(
        artifacts_.projection, artifacts_.graph, merge,
        config_.max_right_degree);
    std::vector<int> seeds =
        community::MapLabels(artifacts_.community_labels,
                             merge.old_to_new_left, merge.graph.num_left());
    community::RefineResult refined = community::RefineLouvain(
        projection, seeds, frontier, artifacts_.modularity, config_.refine);
    report.fell_back_full = refined.full_rebuild;

    if (config_.run_coda) {
      community::CodaWarmStart warm;
      warm.previous = &artifacts_.coda;
      warm.old_to_new_left = merge.old_to_new_left;
      warm.old_to_new_right = merge.old_to_new_right;
      warm.frontier_left = frontier;
      for (const graph::TouchedRight& tr : merge.touched_rights) {
        if (tr.new_index != graph::BipartiteGraph::kInvalidIndex) {
          warm.frontier_right.push_back(tr.new_index);
        }
      }
      std::sort(warm.frontier_right.begin(), warm.frontier_right.end());
      artifacts_.coda =
          community::Coda(config_.coda).FitWarm(merge.graph, warm);
    }

    artifacts_.graph = std::move(merge.graph);
    artifacts_.projection = std::move(projection);
    artifacts_.community_labels = std::move(refined.labels);
    artifacts_.communities = std::move(refined.communities);
    artifacts_.modularity = refined.modularity;
  }

  report.build_ms = MsSince(t0);
  report_ = report;
  return artifacts_;
}

}  // namespace cfnet::core
