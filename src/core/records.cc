#include "core/records.h"

namespace cfnet::core {

StartupRecord StartupRecord::FromJson(const json::Json& j) {
  StartupRecord r;
  r.id = static_cast<uint64_t>(j.Get("id").AsInt());
  r.name = j.Get("name").AsString();
  r.has_twitter_url = !j.Get("twitter_url").AsString().empty();
  r.has_facebook_url = !j.Get("facebook_url").AsString().empty();
  r.has_crunchbase_url = !j.Get("crunchbase_url").AsString().empty();
  r.has_video = !j.Get("video_url").AsString().empty();
  r.fundraising = j.Get("fundraising").AsBool();
  r.follower_count = j.Get("follower_count").AsInt();
  return r;
}

UserRecord UserRecord::FromJson(const json::Json& j) {
  UserRecord r;
  r.id = static_cast<uint64_t>(j.Get("id").AsInt());
  for (const json::Json& role : j.Get("roles").array()) {
    const std::string& s = role.AsString();
    if (s == "investor") r.is_investor = true;
    if (s == "founder") r.is_founder = true;
    if (s == "employee") r.is_employee = true;
  }
  for (const json::Json& c : j.Get("investment_company_ids").array()) {
    r.investment_company_ids.push_back(static_cast<uint64_t>(c.AsInt()));
  }
  r.following_startup_count = j.Get("following_startup_count").AsInt();
  r.following_user_count = j.Get("following_user_count").AsInt();
  return r;
}

CrunchBaseRecord CrunchBaseRecord::FromJson(const json::Json& j) {
  CrunchBaseRecord r;
  r.angellist_id = static_cast<uint64_t>(j.Get("angellist_id").AsInt());
  r.total_funding_usd = j.Get("total_funding_usd").AsDouble();
  const json::Json& rounds = j.Get("funding_rounds");
  r.num_rounds = static_cast<int64_t>(rounds.size());
  for (const json::Json& round : rounds.array()) {
    for (const json::Json& inv : round.Get("investor_ids").array()) {
      r.round_investor_ids.push_back(static_cast<uint64_t>(inv.AsInt()));
    }
  }
  return r;
}

FacebookRecord FacebookRecord::FromJson(const json::Json& j) {
  FacebookRecord r;
  r.angellist_id = static_cast<uint64_t>(j.Get("angellist_id").AsInt());
  r.fan_count = j.Get("fan_count").AsInt();
  return r;
}

TwitterRecord TwitterRecord::FromJson(const json::Json& j) {
  TwitterRecord r;
  r.angellist_id = static_cast<uint64_t>(j.Get("angellist_id").AsInt());
  r.statuses_count = j.Get("statuses_count").AsInt();
  r.followers_count_null = j.Get("followers_count").is_null();
  r.followers_count = j.Get("followers_count").AsInt();
  return r;
}

}  // namespace cfnet::core
