#include "core/records.h"

#include <algorithm>

namespace cfnet::core {

namespace {

using json::JsonReader;
using Scalar = json::JsonReader::Scalar;

}  // namespace

StartupRecord StartupRecord::FromJson(const json::Json& j) {
  StartupRecord r;
  r.id = static_cast<uint64_t>(j.Get("id").AsInt());
  r.name = j.Get("name").AsString();
  r.has_twitter_url = !j.Get("twitter_url").AsStringView().empty();
  r.has_facebook_url = !j.Get("facebook_url").AsStringView().empty();
  r.has_crunchbase_url = !j.Get("crunchbase_url").AsStringView().empty();
  r.has_video = !j.Get("video_url").AsStringView().empty();
  r.fundraising = j.Get("fundraising").AsBool();
  r.follower_count = j.Get("follower_count").AsInt();
  return r;
}

Result<StartupRecord> StartupRecord::Decode(JsonReader& reader) {
  StartupRecord r;
  CFNET_RETURN_IF_ERROR(reader.ForEachMember([&](std::string_view key) -> Status {
    CFNET_ASSIGN_OR_RETURN(Scalar v, reader.ReadScalar());
    if (key == "id") {
      r.id = static_cast<uint64_t>(v.AsInt());
    } else if (key == "name") {
      r.name = v.AsString();
    } else if (key == "twitter_url") {
      r.has_twitter_url = !v.AsString().empty();
    } else if (key == "facebook_url") {
      r.has_facebook_url = !v.AsString().empty();
    } else if (key == "crunchbase_url") {
      r.has_crunchbase_url = !v.AsString().empty();
    } else if (key == "video_url") {
      r.has_video = !v.AsString().empty();
    } else if (key == "fundraising") {
      r.fundraising = v.AsBool();
    } else if (key == "follower_count") {
      r.follower_count = v.AsInt();
    }
    return Status::OK();
  }));
  return r;
}

UserRecord UserRecord::FromJson(const json::Json& j) {
  UserRecord r;
  r.id = static_cast<uint64_t>(j.Get("id").AsInt());
  for (const json::Json& role : j.Get("roles").array()) {
    std::string_view s = role.AsStringView();
    if (s == "investor") r.is_investor = true;
    if (s == "founder") r.is_founder = true;
    if (s == "employee") r.is_employee = true;
  }
  for (const json::Json& c : j.Get("investment_company_ids").array()) {
    r.investment_company_ids.push_back(static_cast<uint64_t>(c.AsInt()));
  }
  r.following_startup_count = j.Get("following_startup_count").AsInt();
  r.following_user_count = j.Get("following_user_count").AsInt();
  return r;
}

Result<UserRecord> UserRecord::Decode(JsonReader& reader) {
  UserRecord r;
  CFNET_RETURN_IF_ERROR(reader.ForEachMember([&](std::string_view key) -> Status {
    if (key == "roles") {
      // Reset so a duplicate key replaces, matching DOM Set() last-wins.
      r.is_investor = r.is_founder = r.is_employee = false;
      return reader.ForEachElement([&]() -> Status {
        CFNET_ASSIGN_OR_RETURN(Scalar v, reader.ReadScalar());
        std::string_view s = v.AsString();
        if (s == "investor") r.is_investor = true;
        if (s == "founder") r.is_founder = true;
        if (s == "employee") r.is_employee = true;
        return Status::OK();
      });
    }
    if (key == "investment_company_ids") {
      r.investment_company_ids.clear();
      return reader.ForEachElement([&]() -> Status {
        CFNET_ASSIGN_OR_RETURN(Scalar v, reader.ReadScalar());
        r.investment_company_ids.push_back(static_cast<uint64_t>(v.AsInt()));
        return Status::OK();
      });
    }
    CFNET_ASSIGN_OR_RETURN(Scalar v, reader.ReadScalar());
    if (key == "id") {
      r.id = static_cast<uint64_t>(v.AsInt());
    } else if (key == "following_startup_count") {
      r.following_startup_count = v.AsInt();
    } else if (key == "following_user_count") {
      r.following_user_count = v.AsInt();
    }
    return Status::OK();
  }));
  return r;
}

CrunchBaseRecord CrunchBaseRecord::FromJson(const json::Json& j) {
  CrunchBaseRecord r;
  r.angellist_id = static_cast<uint64_t>(j.Get("angellist_id").AsInt());
  r.total_funding_usd = j.Get("total_funding_usd").AsDouble();
  const json::Json& rounds = j.Get("funding_rounds");
  r.num_rounds = static_cast<int64_t>(rounds.size());
  for (const json::Json& round : rounds.array()) {
    for (const json::Json& inv : round.Get("investor_ids").array()) {
      r.round_investor_ids.push_back(static_cast<uint64_t>(inv.AsInt()));
    }
  }
  return r;
}

Result<CrunchBaseRecord> CrunchBaseRecord::Decode(JsonReader& reader) {
  CrunchBaseRecord r;
  CFNET_RETURN_IF_ERROR(reader.ForEachMember([&](std::string_view key) -> Status {
    if (key == "funding_rounds") {
      r.num_rounds = 0;
      r.round_investor_ids.clear();
      CFNET_ASSIGN_OR_RETURN(bool is_array, reader.EnterArray());
      if (is_array) {
        for (;;) {
          CFNET_ASSIGN_OR_RETURN(bool more, reader.NextElement());
          if (!more) return Status::OK();
          ++r.num_rounds;
          // A duplicate investor_ids key within one round replaces that
          // round's contribution (DOM Set() last-wins); truncating back to
          // the round's start keeps earlier rounds intact.
          const size_t round_start = r.round_investor_ids.size();
          CFNET_RETURN_IF_ERROR(
              reader.ForEachMember([&](std::string_view rk) -> Status {
                if (rk != "investor_ids") return reader.SkipValue();
                r.round_investor_ids.resize(round_start);
                return reader.ForEachElement([&]() -> Status {
                  CFNET_ASSIGN_OR_RETURN(Scalar v, reader.ReadScalar());
                  r.round_investor_ids.push_back(
                      static_cast<uint64_t>(v.AsInt()));
                  return Status::OK();
                });
              }));
        }
      }
      CFNET_ASSIGN_OR_RETURN(bool is_object, reader.EnterObject());
      if (is_object) {
        // DOM size() of an object counts members after Set() collapses
        // duplicate keys, so count distinct keys only.
        std::vector<std::string> seen;
        std::string_view rk;
        for (;;) {
          CFNET_ASSIGN_OR_RETURN(bool more, reader.NextMember(rk));
          if (!more) break;
          if (std::find(seen.begin(), seen.end(), rk) == seen.end()) {
            seen.emplace_back(rk);
          }
          CFNET_RETURN_IF_ERROR(reader.SkipValue());
        }
        r.num_rounds = static_cast<int64_t>(seen.size());
        return Status::OK();
      }
      return reader.SkipValue();  // scalar: size()==0, no investor edges
    }
    CFNET_ASSIGN_OR_RETURN(Scalar v, reader.ReadScalar());
    if (key == "angellist_id") {
      r.angellist_id = static_cast<uint64_t>(v.AsInt());
    } else if (key == "total_funding_usd") {
      r.total_funding_usd = v.AsDouble();
    }
    return Status::OK();
  }));
  return r;
}

FacebookRecord FacebookRecord::FromJson(const json::Json& j) {
  FacebookRecord r;
  r.angellist_id = static_cast<uint64_t>(j.Get("angellist_id").AsInt());
  r.fan_count = j.Get("fan_count").AsInt();
  return r;
}

Result<FacebookRecord> FacebookRecord::Decode(JsonReader& reader) {
  FacebookRecord r;
  CFNET_RETURN_IF_ERROR(reader.ForEachMember([&](std::string_view key) -> Status {
    CFNET_ASSIGN_OR_RETURN(Scalar v, reader.ReadScalar());
    if (key == "angellist_id") {
      r.angellist_id = static_cast<uint64_t>(v.AsInt());
    } else if (key == "fan_count") {
      r.fan_count = v.AsInt();
    }
    return Status::OK();
  }));
  return r;
}

TwitterRecord TwitterRecord::FromJson(const json::Json& j) {
  TwitterRecord r;
  r.angellist_id = static_cast<uint64_t>(j.Get("angellist_id").AsInt());
  r.statuses_count = j.Get("statuses_count").AsInt();
  r.followers_count_null = j.Get("followers_count").is_null();
  r.followers_count = j.Get("followers_count").AsInt();
  return r;
}

Result<TwitterRecord> TwitterRecord::Decode(JsonReader& reader) {
  TwitterRecord r;
  // A missing followers_count reads as DOM Null, which counts as null too.
  r.followers_count_null = true;
  CFNET_RETURN_IF_ERROR(reader.ForEachMember([&](std::string_view key) -> Status {
    CFNET_ASSIGN_OR_RETURN(Scalar v, reader.ReadScalar());
    if (key == "angellist_id") {
      r.angellist_id = static_cast<uint64_t>(v.AsInt());
    } else if (key == "statuses_count") {
      r.statuses_count = v.AsInt();
    } else if (key == "followers_count") {
      r.followers_count_null = v.is_null();
      r.followers_count = v.AsInt();
    }
    return Status::OK();
  }));
  return r;
}

}  // namespace cfnet::core
