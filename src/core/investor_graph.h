#ifndef CFNET_CORE_INVESTOR_GRAPH_H_
#define CFNET_CORE_INVESTOR_GRAPH_H_

#include <memory>

#include "core/platform.h"
#include "dataflow/context.h"
#include "graph/bipartite_graph.h"

namespace cfnet::core {

/// §5.1 investor-graph generation: merges the AngelList-visible investment
/// edges (user profiles) with the CrunchBase round investors into a single
/// deduplicated edge set — "a parallel Spark query that merges AngelList
/// and CrunchBase data" — and builds the investor->company bipartite graph.
/// Investors with no investments never appear (by construction).
graph::BipartiteGraph BuildInvestorGraph(
    std::shared_ptr<dataflow::ExecutionContext> ctx,
    const AnalysisInputs& inputs);

/// How many edges each source contributed (for the merge's sanity stats).
struct EdgeProvenance {
  size_t angellist_edges = 0;
  size_t crunchbase_edges = 0;
  size_t merged_unique_edges = 0;
};

EdgeProvenance ComputeEdgeProvenance(
    std::shared_ptr<dataflow::ExecutionContext> ctx,
    const AnalysisInputs& inputs);

}  // namespace cfnet::core

#endif  // CFNET_CORE_INVESTOR_GRAPH_H_
