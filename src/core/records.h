#ifndef CFNET_CORE_RECORDS_H_
#define CFNET_CORE_RECORDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "json/json.h"
#include "json/reader.h"
#include "util/result.h"

namespace cfnet::core {

/// Typed views of the crawler's JSON-lines snapshots. These are what the
/// Spark-style analyses operate on after the cleaning/extraction stage.
///
/// Each record type offers two decoders with identical semantics (pinned by
/// the differential test in ingest_scan_test):
///   - `FromJson(const Json&)` — from an already-parsed DOM; total (bad or
///     missing fields coerce to neutral defaults, never fail).
///   - `Decode(JsonReader&)` — streaming, DOM-free; fails only on malformed
///     JSON, exactly when `json::Parse` would. The hot ingest path.

struct StartupRecord {
  uint64_t id = 0;
  std::string name;
  bool has_twitter_url = false;
  bool has_facebook_url = false;
  bool has_crunchbase_url = false;
  bool has_video = false;
  bool fundraising = false;
  int64_t follower_count = 0;

  bool operator==(const StartupRecord&) const = default;

  static StartupRecord FromJson(const json::Json& j);
  static Result<StartupRecord> Decode(json::JsonReader& reader);
};

struct UserRecord {
  uint64_t id = 0;
  bool is_investor = false;
  bool is_founder = false;
  bool is_employee = false;
  std::vector<uint64_t> investment_company_ids;  // AngelList-visible
  int64_t following_startup_count = 0;
  int64_t following_user_count = 0;

  bool operator==(const UserRecord&) const = default;

  static UserRecord FromJson(const json::Json& j);
  static Result<UserRecord> Decode(json::JsonReader& reader);
};

struct CrunchBaseRecord {
  uint64_t angellist_id = 0;
  double total_funding_usd = 0;
  int64_t num_rounds = 0;
  /// Flattened (investor, this company) edges from all rounds.
  std::vector<uint64_t> round_investor_ids;

  bool funded() const { return total_funding_usd > 0 || num_rounds > 0; }

  bool operator==(const CrunchBaseRecord&) const = default;

  static CrunchBaseRecord FromJson(const json::Json& j);
  static Result<CrunchBaseRecord> Decode(json::JsonReader& reader);
};

struct FacebookRecord {
  uint64_t angellist_id = 0;
  int64_t fan_count = 0;  // likes

  bool operator==(const FacebookRecord&) const = default;

  static FacebookRecord FromJson(const json::Json& j);
  static Result<FacebookRecord> Decode(json::JsonReader& reader);
};

struct TwitterRecord {
  uint64_t angellist_id = 0;
  int64_t statuses_count = 0;
  int64_t followers_count = 0;
  bool followers_count_null = false;

  bool operator==(const TwitterRecord&) const = default;

  static TwitterRecord FromJson(const json::Json& j);
  static Result<TwitterRecord> Decode(json::JsonReader& reader);
};

}  // namespace cfnet::core

#endif  // CFNET_CORE_RECORDS_H_
