#include "core/platform.h"

#include "dfs/jsonl.h"
#include "util/logging.h"

namespace cfnet::core {

ExploratoryPlatform::ExploratoryPlatform(const Options& options)
    : options_(options) {
  world_ = std::make_unique<synth::World>(synth::World::Generate(options.world));
  web_ = std::make_unique<net::SocialWeb>(world_.get());
  dfs_ = std::make_unique<dfs::MiniDfs>(options.dfs);
  crawler_ = std::make_unique<crawler::Crawler>(web_.get(), dfs_.get(),
                                                options.crawl);
  ctx_ = std::make_shared<dataflow::ExecutionContext>(
      options.analytics_parallelism == 0 ? ThreadPool::DefaultParallelism()
                                         : options.analytics_parallelism);
}

Status ExploratoryPlatform::CollectData() {
  CFNET_RETURN_IF_ERROR(crawler_->Run());
  collected_ = true;
  cached_inputs_.reset();
  return Status::OK();
}

Result<dataflow::Dataset<json::Json>> ExploratoryPlatform::LoadSnapshotDataset(
    const std::string& dir) {
  std::vector<std::string> files = dfs_->List(dir);
  // One partition per snapshot shard; each task parses its whole file.
  auto paths = dataflow::Dataset<std::string>::FromVector(
      ctx_, files, std::max<size_t>(1, files.size()));
  dfs::MiniDfs* dfs = dfs_.get();
  auto docs = paths.FlatMap([dfs](const std::string& path) {
    auto records = dfs::ReadJsonLines(*dfs, path);
    CFNET_CHECK(records.ok()) << "snapshot read failed: "
                              << records.status().ToString();
    return std::move(records).value();
  });
  return docs;
}

Result<AnalysisInputs> ExploratoryPlatform::LoadInputs() {
  if (!collected_) {
    return Status::FailedPrecondition("call CollectData() before LoadInputs()");
  }
  if (cached_inputs_ != nullptr) return *cached_inputs_;

  AnalysisInputs inputs;
  {
    CFNET_ASSIGN_OR_RETURN(auto docs,
                           LoadSnapshotDataset(crawler_->StartupSnapshotDir()));
    inputs.startups =
        docs.Map([](const json::Json& j) { return StartupRecord::FromJson(j); })
            .Collect();
  }
  {
    CFNET_ASSIGN_OR_RETURN(auto docs,
                           LoadSnapshotDataset(crawler_->UserSnapshotDir()));
    inputs.users =
        docs.Map([](const json::Json& j) { return UserRecord::FromJson(j); })
            .Collect();
  }
  {
    CFNET_ASSIGN_OR_RETURN(
        auto docs, LoadSnapshotDataset(crawler_->CrunchBaseSnapshotDir()));
    inputs.crunchbase =
        docs.Map([](const json::Json& j) { return CrunchBaseRecord::FromJson(j); })
            .Collect();
  }
  {
    CFNET_ASSIGN_OR_RETURN(auto docs,
                           LoadSnapshotDataset(crawler_->FacebookSnapshotDir()));
    inputs.facebook =
        docs.Map([](const json::Json& j) { return FacebookRecord::FromJson(j); })
            .Collect();
  }
  {
    CFNET_ASSIGN_OR_RETURN(auto docs,
                           LoadSnapshotDataset(crawler_->TwitterSnapshotDir()));
    inputs.twitter =
        docs.Map([](const json::Json& j) { return TwitterRecord::FromJson(j); })
            .Collect();
  }
  cached_inputs_ = std::make_unique<AnalysisInputs>(inputs);
  return inputs;
}

}  // namespace cfnet::core
