#include "core/platform.h"

#include "core/columnar_records.h"
#include "dfs/commit.h"
#include "dfs/jsonl.h"
#include "util/logging.h"

namespace cfnet::core {

ExploratoryPlatform::ExploratoryPlatform(const Options& options)
    : options_(options) {
  world_ = std::make_unique<synth::World>(synth::World::Generate(options.world));
  web_ = std::make_unique<net::SocialWeb>(world_.get());
  dfs_ = std::make_unique<dfs::MiniDfs>(options.dfs);
  crawler::CrawlConfig crawl = options.crawl;
  if (options.compact_snapshots || options.epoch_published_hook) {
    // Fires after every successful crawl/replay flush; the platform outlives
    // the crawler it hands this to. A flush defines a snapshot epoch: once
    // the (optionally compacted) snapshots are durable, the epoch counter
    // advances and any subscriber (the serving tier) is told to rebuild.
    crawl.post_flush_hook = [this]() -> Status {
      if (options_.compact_snapshots) {
        CFNET_RETURN_IF_ERROR(CompactSnapshots());
      }
      const uint64_t epoch =
          snapshot_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (options_.epoch_published_hook) {
        options_.epoch_published_hook(epoch);
      }
      return Status::OK();
    };
  }
  crawler_ = std::make_unique<crawler::Crawler>(web_.get(), dfs_.get(),
                                                std::move(crawl));
  ctx_ = std::make_shared<dataflow::ExecutionContext>(
      options.analytics_parallelism == 0 ? ThreadPool::DefaultParallelism()
                                         : options.analytics_parallelism);
}

Status ExploratoryPlatform::CollectData() {
  CFNET_RETURN_IF_ERROR(crawler_->Run());
  collected_ = true;
  cached_inputs_.reset();
  return Status::OK();
}

Status ExploratoryPlatform::CompactSnapshots() {
  ThreadPool* pool = &ctx_->pool();
  CFNET_RETURN_IF_ERROR(CompactSnapshotDir<StartupRecord>(
      dfs_.get(), crawler_->StartupSnapshotDir(), pool));
  CFNET_RETURN_IF_ERROR(CompactSnapshotDir<UserRecord>(
      dfs_.get(), crawler_->UserSnapshotDir(), pool));
  CFNET_RETURN_IF_ERROR(CompactSnapshotDir<CrunchBaseRecord>(
      dfs_.get(), crawler_->CrunchBaseSnapshotDir(), pool));
  CFNET_RETURN_IF_ERROR(CompactSnapshotDir<FacebookRecord>(
      dfs_.get(), crawler_->FacebookSnapshotDir(), pool));
  CFNET_RETURN_IF_ERROR(CompactSnapshotDir<TwitterRecord>(
      dfs_.get(), crawler_->TwitterSnapshotDir(), pool));
  return Status::OK();
}

Result<dataflow::Dataset<json::Json>> ExploratoryPlatform::LoadSnapshotDataset(
    const std::string& dir) {
  // Parallel scan over the snapshot shards; the pre-partitioned ranges feed
  // the dataset directly, so no repartition pass runs. This DOM pipeline is
  // JSON-only by contract (columnar files in the directory are skipped).
  dfs::ScanOptions scan;
  scan.pool = &ctx_->pool();
  scan.salvage = options_.salvage_loads;
  scan.report = &scan_report_;
  CFNET_ASSIGN_OR_RETURN(
      auto parts,
      dfs::ScanJsonLinesDom(*dfs_, SplitSnapshotFiles(dfs_->List(dir)).json,
                            scan));
  return dataflow::Dataset<json::Json>::FromPartitions(ctx_, std::move(parts));
}

Result<AnalysisInputs> ExploratoryPlatform::LoadInputs() {
  if (!collected_) {
    return Status::FailedPrecondition("call CollectData() before LoadInputs()");
  }
  if (cached_inputs_ != nullptr) return *cached_inputs_;

  const bool salvage = options_.salvage_loads;
  if (salvage) {
    // Repair before reading: orphaned temps vanish, bad-footer shards move
    // under /.quarantine (and out of the List() results below).
    dfs::RecoveryReport swept =
        dfs::SweepDir(dfs_.get(), options_.crawl.snapshot_dir);
    scan_report_.quarantined_paths.insert(scan_report_.quarantined_paths.end(),
                                          swept.quarantined_paths.begin(),
                                          swept.quarantined_paths.end());
  }
  // Each directory loads from its columnar compaction when one is fresh
  // (block-parallel, no JSON parse) and falls back to the JSON shards
  // otherwise — see core/columnar_records.h for the staleness contract.
  ThreadPool* pool = &ctx_->pool();
  AnalysisInputs inputs;
  CFNET_ASSIGN_OR_RETURN(
      inputs.startups,
      LoadSnapshotRecords<StartupRecord>(*dfs_, crawler_->StartupSnapshotDir(),
                                         pool, salvage, &scan_report_));
  CFNET_ASSIGN_OR_RETURN(
      inputs.users,
      LoadSnapshotRecords<UserRecord>(*dfs_, crawler_->UserSnapshotDir(), pool,
                                      salvage, &scan_report_));
  CFNET_ASSIGN_OR_RETURN(
      inputs.crunchbase,
      LoadSnapshotRecords<CrunchBaseRecord>(
          *dfs_, crawler_->CrunchBaseSnapshotDir(), pool, salvage,
          &scan_report_));
  CFNET_ASSIGN_OR_RETURN(
      inputs.facebook,
      LoadSnapshotRecords<FacebookRecord>(
          *dfs_, crawler_->FacebookSnapshotDir(), pool, salvage,
          &scan_report_));
  CFNET_ASSIGN_OR_RETURN(
      inputs.twitter,
      LoadSnapshotRecords<TwitterRecord>(*dfs_, crawler_->TwitterSnapshotDir(),
                                         pool, salvage, &scan_report_));
  cached_inputs_ = std::make_unique<AnalysisInputs>(inputs);
  return inputs;
}

}  // namespace cfnet::core
