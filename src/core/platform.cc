#include "core/platform.h"

#include <string_view>
#include <utility>

#include "core/columnar_records.h"
#include "dfs/commit.h"
#include "dfs/jsonl.h"
#include "json/reader.h"
#include "util/logging.h"

namespace cfnet::core {
namespace {

/// Mirrors investor_graph.cc's PackEdge truncation so the incremental edge
/// stream matches BuildInvestorGraph bit for bit.
constexpr uint64_t kEdgeIdMask = 0xffffffffull;

/// Decodes every JSON line of `payload` as a Record and feeds it to `fn`.
/// `payload` is the slice past the shard's watermark; CommitAppend writes
/// whole lines, so watermarks always land on line boundaries.
template <typename Record, typename RecordFn>
Status ParseNewLines(std::string_view payload, size_t* records_parsed,
                     RecordFn&& fn) {
  size_t pos = 0;
  while (pos < payload.size()) {
    const size_t nl = payload.find('\n', pos);
    const std::string_view line =
        payload.substr(pos, nl == std::string_view::npos ? std::string_view::npos
                                                         : nl - pos);
    pos = nl == std::string_view::npos ? payload.size() : nl + 1;
    if (line.empty()) continue;
    json::JsonReader reader(line);
    CFNET_ASSIGN_OR_RETURN(Record record, Record::Decode(reader));
    CFNET_RETURN_IF_ERROR(reader.Finish());
    ++*records_parsed;
    fn(record);
  }
  return Status::OK();
}

}  // namespace

ExploratoryPlatform::ExploratoryPlatform(const Options& options)
    : options_(options) {
  world_ = std::make_unique<synth::World>(synth::World::Generate(options.world));
  web_ = std::make_unique<net::SocialWeb>(world_.get());
  dfs_ = std::make_unique<dfs::MiniDfs>(options.dfs);
  crawler::CrawlConfig crawl = options.crawl;
  const bool auto_advance =
      options.incremental_epochs && options.auto_advance_epochs;
  if (options.compact_snapshots || options.epoch_published_hook ||
      auto_advance) {
    // Fires after every successful crawl/replay flush; the platform outlives
    // the crawler it hands this to. A flush defines a snapshot epoch: once
    // the (optionally compacted) snapshots are durable, the epoch counter
    // advances and any subscriber (the serving tier) is told to rebuild.
    crawl.post_flush_hook = [this, auto_advance]() -> Status {
      if (options_.compact_snapshots) {
        CFNET_RETURN_IF_ERROR(CompactSnapshots());
      }
      if (auto_advance) {
        // Delta-scan the freshly flushed shards and publish an incremental
        // epoch; AdvanceEpochLocked bumps the counter and fires the hook.
        std::lock_guard<std::mutex> lock(epoch_mu_);
        auto advanced = AdvanceEpochLocked();
        if (!advanced.ok()) return advanced.status();
        return Status::OK();
      }
      const uint64_t epoch =
          snapshot_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (options_.epoch_published_hook) {
        options_.epoch_published_hook(epoch);
      }
      return Status::OK();
    };
  }
  crawler_ = std::make_unique<crawler::Crawler>(web_.get(), dfs_.get(),
                                                std::move(crawl));
  ctx_ = std::make_shared<dataflow::ExecutionContext>(
      options.analytics_parallelism == 0 ? ThreadPool::DefaultParallelism()
                                         : options.analytics_parallelism);
}

Status ExploratoryPlatform::CollectData() {
  CFNET_RETURN_IF_ERROR(crawler_->Run());
  collected_ = true;
  cached_inputs_.reset();
  return Status::OK();
}

Status ExploratoryPlatform::CompactSnapshots() {
  ThreadPool* pool = &ctx_->pool();
  CFNET_RETURN_IF_ERROR(CompactSnapshotDir<StartupRecord>(
      dfs_.get(), crawler_->StartupSnapshotDir(), pool));
  CFNET_RETURN_IF_ERROR(CompactSnapshotDir<UserRecord>(
      dfs_.get(), crawler_->UserSnapshotDir(), pool));
  CFNET_RETURN_IF_ERROR(CompactSnapshotDir<CrunchBaseRecord>(
      dfs_.get(), crawler_->CrunchBaseSnapshotDir(), pool));
  CFNET_RETURN_IF_ERROR(CompactSnapshotDir<FacebookRecord>(
      dfs_.get(), crawler_->FacebookSnapshotDir(), pool));
  CFNET_RETURN_IF_ERROR(CompactSnapshotDir<TwitterRecord>(
      dfs_.get(), crawler_->TwitterSnapshotDir(), pool));
  return Status::OK();
}

Result<dataflow::Dataset<json::Json>> ExploratoryPlatform::LoadSnapshotDataset(
    const std::string& dir) {
  // Parallel scan over the snapshot shards; the pre-partitioned ranges feed
  // the dataset directly, so no repartition pass runs. This DOM pipeline is
  // JSON-only by contract (columnar files in the directory are skipped).
  dfs::ScanOptions scan;
  scan.pool = &ctx_->pool();
  scan.salvage = options_.salvage_loads;
  scan.report = &scan_report_;
  CFNET_ASSIGN_OR_RETURN(
      auto parts,
      dfs::ScanJsonLinesDom(*dfs_, SplitSnapshotFiles(dfs_->List(dir)).json,
                            scan));
  return dataflow::Dataset<json::Json>::FromPartitions(ctx_, std::move(parts));
}

Result<AnalysisInputs> ExploratoryPlatform::LoadInputs() {
  if (!collected_) {
    return Status::FailedPrecondition("call CollectData() before LoadInputs()");
  }
  if (cached_inputs_ != nullptr) return *cached_inputs_;

  const bool salvage = options_.salvage_loads;
  if (salvage) {
    // Repair before reading: orphaned temps vanish, bad-footer shards move
    // under /.quarantine (and out of the List() results below).
    dfs::RecoveryReport swept =
        dfs::SweepDir(dfs_.get(), options_.crawl.snapshot_dir);
    scan_report_.quarantined_paths.insert(scan_report_.quarantined_paths.end(),
                                          swept.quarantined_paths.begin(),
                                          swept.quarantined_paths.end());
  }
  // Each directory loads from its columnar compaction when one is fresh
  // (block-parallel, no JSON parse) and falls back to the JSON shards
  // otherwise — see core/columnar_records.h for the staleness contract.
  ThreadPool* pool = &ctx_->pool();
  AnalysisInputs inputs;
  CFNET_ASSIGN_OR_RETURN(
      inputs.startups,
      LoadSnapshotRecords<StartupRecord>(*dfs_, crawler_->StartupSnapshotDir(),
                                         pool, salvage, &scan_report_));
  CFNET_ASSIGN_OR_RETURN(
      inputs.users,
      LoadSnapshotRecords<UserRecord>(*dfs_, crawler_->UserSnapshotDir(), pool,
                                      salvage, &scan_report_));
  CFNET_ASSIGN_OR_RETURN(
      inputs.crunchbase,
      LoadSnapshotRecords<CrunchBaseRecord>(
          *dfs_, crawler_->CrunchBaseSnapshotDir(), pool, salvage,
          &scan_report_));
  CFNET_ASSIGN_OR_RETURN(
      inputs.facebook,
      LoadSnapshotRecords<FacebookRecord>(
          *dfs_, crawler_->FacebookSnapshotDir(), pool, salvage,
          &scan_report_));
  CFNET_ASSIGN_OR_RETURN(
      inputs.twitter,
      LoadSnapshotRecords<TwitterRecord>(*dfs_, crawler_->TwitterSnapshotDir(),
                                         pool, salvage, &scan_report_));
  cached_inputs_ = std::make_unique<AnalysisInputs>(inputs);
  return inputs;
}

Result<ExploratoryPlatform::EpochAdvanceReport>
ExploratoryPlatform::AdvanceEpoch() {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return AdvanceEpochLocked();
}

Result<ExploratoryPlatform::EpochAdvanceReport>
ExploratoryPlatform::AdvanceEpochLocked() {
  EpochAdvanceReport report;
  if (epoch_maintainer_ == nullptr) {
    epoch_maintainer_ =
        std::make_unique<EpochMaintainer>(options_.epoch_config);
  }

  // Read the committed payload of every edge-bearing JSON shard up front:
  // a truncation anywhere (a shard shrank below its watermark, e.g. a
  // rolled-back resume) invalidates all watermarks, including shards read
  // before the regressed one.
  struct Shard {
    std::string path;
    std::string payload;
    bool is_user = false;
  };
  std::vector<Shard> shards;
  for (const std::string& path :
       SplitSnapshotFiles(dfs_->List(crawler_->UserSnapshotDir())).json) {
    CFNET_ASSIGN_OR_RETURN(std::string payload,
                           dfs::ReadCommitted(dfs_.get(), path));
    shards.push_back({path, std::move(payload), /*is_user=*/true});
  }
  for (const std::string& path :
       SplitSnapshotFiles(dfs_->List(crawler_->CrunchBaseSnapshotDir()))
           .json) {
    CFNET_ASSIGN_OR_RETURN(std::string payload,
                           dfs::ReadCommitted(dfs_.get(), path));
    shards.push_back({path, std::move(payload), /*is_user=*/false});
  }
  report.files_scanned = shards.size();

  bool full_rebuild = !epoch_maintainer_->has_epoch();
  for (const Shard& shard : shards) {
    auto it = epoch_watermarks_.find(shard.path);
    if (it != epoch_watermarks_.end() && shard.payload.size() < it->second) {
      report.watermark_reset = true;
      full_rebuild = true;
    }
  }
  if (report.watermark_reset) epoch_watermarks_.clear();

  std::vector<graph::EdgeDelta> deltas;
  for (Shard& shard : shards) {
    uint64_t& mark = epoch_watermarks_[shard.path];
    if (full_rebuild) mark = 0;
    const std::string_view fresh =
        std::string_view(shard.payload).substr(mark);
    if (shard.is_user) {
      CFNET_RETURN_IF_ERROR(ParseNewLines<UserRecord>(
          fresh, &report.records_parsed, [&](const UserRecord& u) {
            for (uint64_t c : u.investment_company_ids) {
              deltas.push_back(
                  {u.id & kEdgeIdMask, c & kEdgeIdMask, /*add=*/true});
            }
          }));
    } else {
      CFNET_RETURN_IF_ERROR(ParseNewLines<CrunchBaseRecord>(
          fresh, &report.records_parsed, [&](const CrunchBaseRecord& r) {
            for (uint64_t inv : r.round_investor_ids) {
              deltas.push_back({inv & kEdgeIdMask,
                                r.angellist_id & kEdgeIdMask, /*add=*/true});
            }
          }));
    }
    mark = shard.payload.size();
  }
  report.delta_edges_emitted = deltas.size();

  if (full_rebuild) {
    report.full_rebuild = true;
    std::vector<std::pair<uint64_t, uint64_t>> edges;
    edges.reserve(deltas.size());
    for (const graph::EdgeDelta& d : deltas) {
      edges.emplace_back(d.left_id, d.right_id);
    }
    epoch_maintainer_->FullBuild(edges);
  } else {
    epoch_maintainer_->Advance(deltas);
  }
  report.build = epoch_maintainer_->last_report();

  report.epoch = snapshot_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  last_epoch_report_ = report;
  if (options_.epoch_published_hook) {
    options_.epoch_published_hook(report.epoch);
  }
  return report;
}

}  // namespace cfnet::core
