#include "core/platform.h"

#include "dfs/commit.h"
#include "dfs/jsonl.h"
#include "util/logging.h"

namespace cfnet::core {

ExploratoryPlatform::ExploratoryPlatform(const Options& options)
    : options_(options) {
  world_ = std::make_unique<synth::World>(synth::World::Generate(options.world));
  web_ = std::make_unique<net::SocialWeb>(world_.get());
  dfs_ = std::make_unique<dfs::MiniDfs>(options.dfs);
  crawler_ = std::make_unique<crawler::Crawler>(web_.get(), dfs_.get(),
                                                options.crawl);
  ctx_ = std::make_shared<dataflow::ExecutionContext>(
      options.analytics_parallelism == 0 ? ThreadPool::DefaultParallelism()
                                         : options.analytics_parallelism);
}

Status ExploratoryPlatform::CollectData() {
  CFNET_RETURN_IF_ERROR(crawler_->Run());
  collected_ = true;
  cached_inputs_.reset();
  return Status::OK();
}

namespace {

/// Decodes one typed snapshot directory with the streaming scan: every shard
/// is split into line-aligned ranges, each range decoded DOM-free on the
/// analytics pool, and the flattened result is the typed record vector.
template <typename T>
Result<std::vector<T>> LoadTypedSnapshot(
    const dfs::MiniDfs& dfs, const std::vector<std::string>& files,
    dataflow::ExecutionContext* ctx, bool salvage, dfs::ScanReport* report) {
  dfs::ScanOptions scan;
  scan.pool = &ctx->pool();
  scan.salvage = salvage;
  scan.report = report;
  auto decode = [](std::string_view line) -> Result<T> {
    json::JsonReader reader(line);
    CFNET_ASSIGN_OR_RETURN(T record, T::Decode(reader));
    CFNET_RETURN_IF_ERROR(reader.Finish());
    return record;
  };
  CFNET_ASSIGN_OR_RETURN(auto parts,
                         dfs::ScanJsonLines<T>(dfs, files, decode, scan));
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<T> out;
  out.reserve(total);
  for (auto& p : parts) {
    out.insert(out.end(), std::make_move_iterator(p.begin()),
               std::make_move_iterator(p.end()));
  }
  return out;
}

}  // namespace

Result<dataflow::Dataset<json::Json>> ExploratoryPlatform::LoadSnapshotDataset(
    const std::string& dir) {
  // Parallel scan over the snapshot shards; the pre-partitioned ranges feed
  // the dataset directly, so no repartition pass runs.
  dfs::ScanOptions scan;
  scan.pool = &ctx_->pool();
  scan.salvage = options_.salvage_loads;
  scan.report = &scan_report_;
  CFNET_ASSIGN_OR_RETURN(
      auto parts, dfs::ScanJsonLinesDom(*dfs_, dfs_->List(dir), scan));
  return dataflow::Dataset<json::Json>::FromPartitions(ctx_, std::move(parts));
}

Result<AnalysisInputs> ExploratoryPlatform::LoadInputs() {
  if (!collected_) {
    return Status::FailedPrecondition("call CollectData() before LoadInputs()");
  }
  if (cached_inputs_ != nullptr) return *cached_inputs_;

  const bool salvage = options_.salvage_loads;
  if (salvage) {
    // Repair before reading: orphaned temps vanish, bad-footer shards move
    // under /.quarantine (and out of the List() results below).
    dfs::RecoveryReport swept =
        dfs::SweepDir(dfs_.get(), options_.crawl.snapshot_dir);
    scan_report_.quarantined_paths.insert(scan_report_.quarantined_paths.end(),
                                          swept.quarantined_paths.begin(),
                                          swept.quarantined_paths.end());
  }
  AnalysisInputs inputs;
  CFNET_ASSIGN_OR_RETURN(
      inputs.startups,
      LoadTypedSnapshot<StartupRecord>(
          *dfs_, dfs_->List(crawler_->StartupSnapshotDir()), ctx_.get(),
          salvage, &scan_report_));
  CFNET_ASSIGN_OR_RETURN(
      inputs.users,
      LoadTypedSnapshot<UserRecord>(
          *dfs_, dfs_->List(crawler_->UserSnapshotDir()), ctx_.get(), salvage,
          &scan_report_));
  CFNET_ASSIGN_OR_RETURN(
      inputs.crunchbase,
      LoadTypedSnapshot<CrunchBaseRecord>(
          *dfs_, dfs_->List(crawler_->CrunchBaseSnapshotDir()), ctx_.get(),
          salvage, &scan_report_));
  CFNET_ASSIGN_OR_RETURN(
      inputs.facebook,
      LoadTypedSnapshot<FacebookRecord>(
          *dfs_, dfs_->List(crawler_->FacebookSnapshotDir()), ctx_.get(),
          salvage, &scan_report_));
  CFNET_ASSIGN_OR_RETURN(
      inputs.twitter,
      LoadTypedSnapshot<TwitterRecord>(
          *dfs_, dfs_->List(crawler_->TwitterSnapshotDir()), ctx_.get(),
          salvage, &scan_report_));
  cached_inputs_ = std::make_unique<AnalysisInputs>(inputs);
  return inputs;
}

}  // namespace cfnet::core
