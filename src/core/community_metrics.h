#ifndef CFNET_CORE_COMMUNITY_METRICS_H_
#define CFNET_CORE_COMMUNITY_METRICS_H_

#include <cstdint>
#include <vector>

#include "community/community_set.h"
#include "graph/bipartite_graph.h"

namespace cfnet::core {

/// The paper's two community-strength metrics (§5.3), computed against the
/// investor->company bipartite graph.

/// Pairwise shared-investment sizes |C_i ∩ C_j| for investor pairs within
/// one community. All pairs when the pair count is at most `max_pairs`;
/// otherwise `max_pairs` pairs sampled uniformly (seeded).
std::vector<double> SharedInvestmentSizes(const graph::BipartiteGraph& g,
                                          const std::vector<uint32_t>& members,
                                          size_t max_pairs = 2000000,
                                          uint64_t seed = 1);

/// Mean of SharedInvestmentSizes — "average shared investment size".
double MeanSharedInvestmentSize(const graph::BipartiteGraph& g,
                                const std::vector<uint32_t>& members,
                                size_t max_pairs = 2000000, uint64_t seed = 1);

/// Percentage (0-100) of companies invested in by community members that
/// have at least `k` investors from within the community.
double SharedInvestorCompanyPercent(const graph::BipartiteGraph& g,
                                    const std::vector<uint32_t>& members,
                                    size_t k = 2);

/// Mean SharedInvestorCompanyPercent over all communities of a set.
double MeanSharedInvestorCompanyPercent(const graph::BipartiteGraph& g,
                                        const community::CommunitySet& set,
                                        size_t k = 2);

/// Shared-investment sizes of `num_pairs` i.i.d. uniformly sampled investor
/// pairs across the whole graph — the paper's 800,000-pair global CDF
/// estimate (quantify accuracy with stats::DkwEpsilon).
std::vector<double> GlobalSharedInvestmentSample(const graph::BipartiteGraph& g,
                                                 size_t num_pairs,
                                                 uint64_t seed = 1);

}  // namespace cfnet::core

#endif  // CFNET_CORE_COMMUNITY_METRICS_H_
