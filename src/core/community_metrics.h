#ifndef CFNET_CORE_COMMUNITY_METRICS_H_
#define CFNET_CORE_COMMUNITY_METRICS_H_

#include <cstdint>
#include <vector>

#include "community/community_set.h"
#include "graph/bipartite_graph.h"
#include "util/parallel.h"

namespace cfnet::core {

/// The paper's two community-strength metrics (§5.3), computed against the
/// investor->company bipartite graph.
///
/// All metrics here are deterministic pure functions of (graph, arguments,
/// seed): parallel runs shard the pair space into morsels with disjoint
/// output slots and stateless per-sample RNG streams, so any thread count
/// and any morsel size produce bit-identical results.

/// Pairwise shared-investment sizes |C_i ∩ C_j| for investor pairs within
/// one community. All pairs when the pair count is at most `max_pairs`;
/// otherwise `max_pairs` pairs sampled uniformly (seeded).
///
/// The all-pairs path walks rows of the triangular pair space; rows whose
/// investor has high out-degree build a company bitset once and probe it for
/// every partner (O(d_j) per pair), falling back to the sorted-merge
/// intersection below the degree threshold.
std::vector<double> SharedInvestmentSizes(const graph::BipartiteGraph& g,
                                          const std::vector<uint32_t>& members,
                                          size_t max_pairs = 2000000,
                                          uint64_t seed = 1,
                                          const ParallelOptions& par = {});

/// Mean of SharedInvestmentSizes — "average shared investment size".
double MeanSharedInvestmentSize(const graph::BipartiteGraph& g,
                                const std::vector<uint32_t>& members,
                                size_t max_pairs = 2000000, uint64_t seed = 1,
                                const ParallelOptions& par = {});

/// Percentage (0-100) of companies invested in by community members that
/// have at least `k` investors from within the community. Accumulates
/// per-company counts in an epoch-stamped dense scratch (no hash map).
double SharedInvestorCompanyPercent(const graph::BipartiteGraph& g,
                                    const std::vector<uint32_t>& members,
                                    size_t k = 2);

/// Mean SharedInvestorCompanyPercent over all communities of a set.
/// Communities are sharded into morsels with task-local scratch; the mean
/// folds per-community results in community order.
double MeanSharedInvestorCompanyPercent(const graph::BipartiteGraph& g,
                                        const community::CommunitySet& set,
                                        size_t k = 2,
                                        const ParallelOptions& par = {});

/// Shared-investment sizes of `num_pairs` i.i.d. uniformly sampled investor
/// pairs across the whole graph — the paper's 800,000-pair global CDF
/// estimate (quantify accuracy with stats::DkwEpsilon). Each sample derives
/// its pair from a stateless hash of (seed, sample index), so the sample set
/// is independent of sharding.
std::vector<double> GlobalSharedInvestmentSample(const graph::BipartiteGraph& g,
                                                 size_t num_pairs,
                                                 uint64_t seed = 1,
                                                 const ParallelOptions& par = {});

}  // namespace cfnet::core

#endif  // CFNET_CORE_COMMUNITY_METRICS_H_
