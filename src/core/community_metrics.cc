#include "core/community_metrics.h"

#include <algorithm>

#include "util/rng.h"

namespace cfnet::core {
namespace {

/// Rows whose investor has at least this many investments build a company
/// bitset once and probe it per partner; below it the sorted-merge
/// intersection wins (no fill/clear amortization to pay for).
constexpr size_t kBitsetDegreeThreshold = 64;

/// First flat pair index of triangular row i over m members (pairs are
/// enumerated (i, j), j > i, in lexicographic order).
size_t RowOffset(size_t m, size_t i) { return i * (m - 1) - i * (i - 1) / 2; }

/// Computes rows [row_begin, row_end) of the all-pairs triangle into the
/// pre-sized output at their fixed offsets. Writes are disjoint across
/// rows, so any sharding of rows yields identical output.
void ComputePairRows(const graph::BipartiteGraph& g,
                     const std::vector<uint32_t>& members, size_t row_begin,
                     size_t row_end, std::vector<uint64_t>& bits,
                     std::vector<double>& out) {
  const size_t m = members.size();
  for (size_t i = row_begin; i < row_end; ++i) {
    const uint32_t a = members[i];
    auto na = g.OutNeighbors(a);
    size_t pos = RowOffset(m, i);
    if (na.size() >= kBitsetDegreeThreshold) {
      for (uint32_t r : na) bits[r >> 6] |= uint64_t{1} << (r & 63);
      for (size_t j = i + 1; j < m; ++j) {
        size_t shared = 0;
        for (uint32_t r : g.OutNeighbors(members[j])) {
          shared += (bits[r >> 6] >> (r & 63)) & 1;
        }
        out[pos++] = static_cast<double>(shared);
      }
      // Only this row's fill touched these words; zero them wholesale.
      for (uint32_t r : na) bits[r >> 6] = 0;
    } else {
      for (size_t j = i + 1; j < m; ++j) {
        out[pos++] =
            static_cast<double>(g.SharedOutNeighbors(a, members[j]));
      }
    }
  }
}

/// Splits triangular rows 0..m-2 into morsels of roughly `target_pairs`
/// pairs each (early rows carry more pairs than late ones). Returns morsel
/// boundaries: rows of morsel t are [starts[t], starts[t+1]).
std::vector<size_t> BalancePairRows(size_t m, size_t target_pairs) {
  std::vector<size_t> starts{0};
  size_t acc = 0;
  for (size_t i = 0; i + 1 < m; ++i) {
    acc += m - 1 - i;
    if (acc >= target_pairs && i + 2 < m) {
      starts.push_back(i + 1);
      acc = 0;
    }
  }
  starts.push_back(m - 1);
  return starts;
}

/// Stateless pair derivation: sample s of a (salted) seed maps to a
/// distinct-investor pair, independent of how samples are sharded.
std::pair<size_t, size_t> SamplePair(uint64_t base, size_t s, size_t m) {
  size_t i = static_cast<size_t>(Mix64(base + 2 * s + 1) % m);
  size_t j = static_cast<size_t>(Mix64(base + 2 * s + 2) % (m - 1));
  if (j >= i) ++j;
  return {i, j};
}

/// Dense per-company accumulator for SharedInvestorCompanyPercent; reused
/// across communities so the O(num_right) zero-fill is paid once.
struct PercentScratch {
  std::vector<uint32_t> count;
  std::vector<uint32_t> touched;
};

double PercentWithScratch(const graph::BipartiteGraph& g,
                          const std::vector<uint32_t>& members, size_t k,
                          PercentScratch& scratch) {
  if (scratch.count.size() < g.num_right()) {
    scratch.count.assign(g.num_right(), 0);
  }
  scratch.touched.clear();
  for (uint32_t u : members) {
    for (uint32_t c : g.OutNeighbors(u)) {
      if (scratch.count[c]++ == 0) scratch.touched.push_back(c);
    }
  }
  if (scratch.touched.empty()) return 0;
  size_t shared = 0;
  for (uint32_t c : scratch.touched) {
    if (scratch.count[c] >= k) ++shared;
    scratch.count[c] = 0;
  }
  return 100.0 * static_cast<double>(shared) /
         static_cast<double>(scratch.touched.size());
}

}  // namespace

std::vector<double> SharedInvestmentSizes(const graph::BipartiteGraph& g,
                                          const std::vector<uint32_t>& members,
                                          size_t max_pairs, uint64_t seed,
                                          const ParallelOptions& par) {
  const size_t m = members.size();
  if (m < 2) return {};
  const size_t all_pairs = m * (m - 1) / 2;
  if (all_pairs <= max_pairs) {
    std::vector<double> out(all_pairs);
    size_t target = par.morsel_size;
    if (target == 0) {
      target = std::max<size_t>(
          2048, all_pairs / std::max<size_t>(1, par.threads() * 8));
    }
    const std::vector<size_t> starts = BalancePairRows(m, target);
    const size_t num_morsels = starts.size() - 1;
    const size_t words = (g.num_right() + 63) / 64;
    auto run_morsel = [&](size_t t) {
      std::vector<uint64_t> bits(words, 0);
      ComputePairRows(g, members, starts[t], starts[t + 1], bits, out);
    };
    if (par.pool == nullptr || par.threads() <= 1 || num_morsels <= 1) {
      for (size_t t = 0; t < num_morsels; ++t) run_morsel(t);
    } else {
      par.pool->RunBulk(num_morsels, run_morsel);
    }
    return out;
  }

  // Sampled path: every sample derives its pair statelessly from (seed,
  // sample index) and writes its own slot — shard-independent by design.
  std::vector<double> out(max_pairs);
  const uint64_t base = Mix64(seed ^ 0x73686172656470ull);
  ForEachMorsel(par, max_pairs, 1024, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      auto [i, j] = SamplePair(base, s, m);
      out[s] = static_cast<double>(
          g.SharedOutNeighbors(members[i], members[j]));
    }
  });
  return out;
}

double MeanSharedInvestmentSize(const graph::BipartiteGraph& g,
                                const std::vector<uint32_t>& members,
                                size_t max_pairs, uint64_t seed,
                                const ParallelOptions& par) {
  std::vector<double> sizes =
      SharedInvestmentSizes(g, members, max_pairs, seed, par);
  if (sizes.empty()) return 0;
  double sum = 0;
  for (double s : sizes) sum += s;
  return sum / static_cast<double>(sizes.size());
}

double SharedInvestorCompanyPercent(const graph::BipartiteGraph& g,
                                    const std::vector<uint32_t>& members,
                                    size_t k) {
  PercentScratch scratch;
  return PercentWithScratch(g, members, k, scratch);
}

double MeanSharedInvestorCompanyPercent(const graph::BipartiteGraph& g,
                                        const community::CommunitySet& set,
                                        size_t k, const ParallelOptions& par) {
  const size_t num = set.communities.size();
  if (num == 0) return 0;
  // Per-community percents land in disjoint slots; the mean folds them in
  // community order, so sharding cannot change the result.
  std::vector<double> percents(num, 0);
  ForEachMorsel(par, num, 4, [&](size_t begin, size_t end) {
    PercentScratch scratch;
    for (size_t ci = begin; ci < end; ++ci) {
      percents[ci] = PercentWithScratch(g, set.communities[ci], k, scratch);
    }
  });
  double sum = 0;
  for (double p : percents) sum += p;
  return sum / static_cast<double>(num);
}

std::vector<double> GlobalSharedInvestmentSample(const graph::BipartiteGraph& g,
                                                 size_t num_pairs,
                                                 uint64_t seed,
                                                 const ParallelOptions& par) {
  const size_t n = g.num_left();
  if (n < 2) return {};
  std::vector<double> out(num_pairs);
  const uint64_t base = Mix64(seed ^ 0x676c6f62616c70ull);
  ForEachMorsel(par, num_pairs, 1024, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      auto [i, j] = SamplePair(base, s, n);
      out[s] = static_cast<double>(g.SharedOutNeighbors(
          static_cast<uint32_t>(i), static_cast<uint32_t>(j)));
    }
  });
  return out;
}

}  // namespace cfnet::core
