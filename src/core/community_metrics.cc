#include "core/community_metrics.h"

#include <unordered_map>

#include "util/rng.h"

namespace cfnet::core {

std::vector<double> SharedInvestmentSizes(const graph::BipartiteGraph& g,
                                          const std::vector<uint32_t>& members,
                                          size_t max_pairs, uint64_t seed) {
  std::vector<double> out;
  const size_t m = members.size();
  if (m < 2) return out;
  const size_t all_pairs = m * (m - 1) / 2;
  if (all_pairs <= max_pairs) {
    out.reserve(all_pairs);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + 1; j < m; ++j) {
        out.push_back(static_cast<double>(
            g.SharedOutNeighbors(members[i], members[j])));
      }
    }
    return out;
  }
  Rng rng(seed);
  out.reserve(max_pairs);
  for (size_t s = 0; s < max_pairs; ++s) {
    size_t i = static_cast<size_t>(rng.NextUint64(m));
    size_t j = static_cast<size_t>(rng.NextUint64(m - 1));
    if (j >= i) ++j;
    out.push_back(
        static_cast<double>(g.SharedOutNeighbors(members[i], members[j])));
  }
  return out;
}

double MeanSharedInvestmentSize(const graph::BipartiteGraph& g,
                                const std::vector<uint32_t>& members,
                                size_t max_pairs, uint64_t seed) {
  std::vector<double> sizes = SharedInvestmentSizes(g, members, max_pairs, seed);
  if (sizes.empty()) return 0;
  double sum = 0;
  for (double s : sizes) sum += s;
  return sum / static_cast<double>(sizes.size());
}

double SharedInvestorCompanyPercent(const graph::BipartiteGraph& g,
                                    const std::vector<uint32_t>& members,
                                    size_t k) {
  std::unordered_map<uint32_t, size_t> company_investors;
  for (uint32_t u : members) {
    for (uint32_t c : g.OutNeighbors(u)) ++company_investors[c];
  }
  if (company_investors.empty()) return 0;
  size_t shared = 0;
  for (const auto& [c, count] : company_investors) {
    if (count >= k) ++shared;
  }
  return 100.0 * static_cast<double>(shared) /
         static_cast<double>(company_investors.size());
}

double MeanSharedInvestorCompanyPercent(const graph::BipartiteGraph& g,
                                        const community::CommunitySet& set,
                                        size_t k) {
  if (set.communities.empty()) return 0;
  double sum = 0;
  for (const auto& members : set.communities) {
    sum += SharedInvestorCompanyPercent(g, members, k);
  }
  return sum / static_cast<double>(set.communities.size());
}

std::vector<double> GlobalSharedInvestmentSample(const graph::BipartiteGraph& g,
                                                 size_t num_pairs,
                                                 uint64_t seed) {
  std::vector<double> out;
  const size_t n = g.num_left();
  if (n < 2) return out;
  Rng rng(seed);
  out.reserve(num_pairs);
  for (size_t s = 0; s < num_pairs; ++s) {
    uint32_t i = static_cast<uint32_t>(rng.NextUint64(n));
    uint32_t j = static_cast<uint32_t>(rng.NextUint64(n - 1));
    if (j >= i) ++j;
    out.push_back(static_cast<double>(g.SharedOutNeighbors(i, j)));
  }
  return out;
}

}  // namespace cfnet::core
