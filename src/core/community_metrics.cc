#include "core/community_metrics.h"

#include <algorithm>
#include <span>

#include "util/rng.h"
#include "util/simd.h"

namespace cfnet::core {
namespace {

/// Rows whose investor has at least this many investments build a company
/// bitset once and probe it per partner; below it the sorted-merge
/// intersection wins (no fill/clear amortization to pay for).
constexpr size_t kBitsetDegreeThreshold = 64;

/// Cap on the packed high-degree bitset block: 1<<23 words = 64 MiB. When
/// the block would exceed it, the all-pairs path falls back to the original
/// per-morsel fill/probe/clear scratch.
constexpr size_t kBitsetWordBudget = size_t{1} << 23;

/// Word-scan vs probe heuristic: AndPopcountU64 touches all `words` of both
/// rows; probing touches min(da, db) neighbor IDs. The word scan is
/// SIMD-friendly enough to win until it reads ~8x more memory.
constexpr size_t kAndWordsPerProbe = 8;

/// Packed company bitsets for every member whose degree is at least
/// kBitsetDegreeThreshold, built once per SharedInvestmentSizes call so
/// high-degree pairs intersect by word-wise AND+popcount instead of a
/// per-row fill/probe/clear cycle. `index` is empty when the word budget
/// ruled the block out.
struct MemberBitsets {
  size_t words = 0;
  std::vector<uint32_t> index;  // per member: slot + 1, or 0 (low degree)
  std::vector<uint64_t> bits;   // slot-major, `words` words per slot

  bool built() const { return !index.empty(); }

  const uint64_t* Row(size_t i) const {
    const uint32_t slot = index[i];
    return slot == 0 ? nullptr
                     : bits.data() + static_cast<size_t>(slot - 1) * words;
  }
};

MemberBitsets BuildMemberBitsets(const graph::BipartiteGraph& g,
                                 const std::vector<uint32_t>& members) {
  MemberBitsets mb;
  mb.words = (g.num_right() + 63) / 64;
  if (mb.words == 0) return mb;
  size_t num_hi = 0;
  for (uint32_t u : members) {
    if (g.OutNeighbors(u).size() >= kBitsetDegreeThreshold) ++num_hi;
  }
  if (num_hi == 0 || num_hi > kBitsetWordBudget / mb.words) return mb;
  mb.index.assign(members.size(), 0);
  mb.bits.assign(num_hi * mb.words, 0);
  uint32_t slot = 0;
  for (size_t i = 0; i < members.size(); ++i) {
    auto na = g.OutNeighbors(members[i]);
    if (na.size() < kBitsetDegreeThreshold) continue;
    uint64_t* row = mb.bits.data() + static_cast<size_t>(slot) * mb.words;
    for (uint32_t r : na) row[r >> 6] |= uint64_t{1} << (r & 63);
    mb.index[i] = ++slot;
  }
  return mb;
}

/// Probes each neighbor ID against a packed bitset row.
size_t ProbeBitset(std::span<const uint32_t> nbrs, const uint64_t* row) {
  size_t shared = 0;
  for (uint32_t r : nbrs) shared += (row[r >> 6] >> (r & 63)) & 1;
  return shared;
}

/// First flat pair index of triangular row i over m members (pairs are
/// enumerated (i, j), j > i, in lexicographic order).
size_t RowOffset(size_t m, size_t i) { return i * (m - 1) - i * (i - 1) / 2; }

/// Computes rows [row_begin, row_end) of the all-pairs triangle into the
/// pre-sized output at their fixed offsets. Writes are disjoint across
/// rows, so any sharding of rows yields identical output. All four
/// intersection strategies are integer-exact, so which one fires never
/// changes a value — only how fast it arrives.
void ComputePairRows(const graph::BipartiteGraph& g,
                     const std::vector<uint32_t>& members,
                     const MemberBitsets& mb, size_t row_begin, size_t row_end,
                     std::vector<uint64_t>& bits, std::vector<double>& out) {
  const size_t m = members.size();
  if (mb.built()) {
    for (size_t i = row_begin; i < row_end; ++i) {
      auto na = g.OutNeighbors(members[i]);
      const uint64_t* row_a = mb.Row(i);
      size_t pos = RowOffset(m, i);
      for (size_t j = i + 1; j < m; ++j) {
        auto nb = g.OutNeighbors(members[j]);
        const uint64_t* row_b = mb.Row(j);
        size_t shared;
        if (row_a != nullptr && row_b != nullptr &&
            mb.words <= kAndWordsPerProbe * std::min(na.size(), nb.size())) {
          shared = simd::AndPopcountU64(row_a, row_b, mb.words);
        } else if (row_a != nullptr &&
                   (row_b == nullptr || nb.size() <= na.size())) {
          shared = ProbeBitset(nb, row_a);
        } else if (row_b != nullptr) {
          shared = ProbeBitset(na, row_b);
        } else {
          shared = g.SharedOutNeighbors(members[i], members[j]);
        }
        out[pos++] = static_cast<double>(shared);
      }
    }
    return;
  }
  // Fallback (word budget exceeded): per-row fill/probe/clear against the
  // morsel-local scratch.
  for (size_t i = row_begin; i < row_end; ++i) {
    const uint32_t a = members[i];
    auto na = g.OutNeighbors(a);
    size_t pos = RowOffset(m, i);
    if (na.size() >= kBitsetDegreeThreshold) {
      for (uint32_t r : na) bits[r >> 6] |= uint64_t{1} << (r & 63);
      for (size_t j = i + 1; j < m; ++j) {
        out[pos++] = static_cast<double>(
            ProbeBitset(g.OutNeighbors(members[j]), bits.data()));
      }
      // Only this row's fill touched these words; zero them wholesale.
      for (uint32_t r : na) bits[r >> 6] = 0;
    } else {
      for (size_t j = i + 1; j < m; ++j) {
        out[pos++] =
            static_cast<double>(g.SharedOutNeighbors(a, members[j]));
      }
    }
  }
}

/// Splits triangular rows 0..m-2 into morsels of roughly `target_pairs`
/// pairs each (early rows carry more pairs than late ones). Returns morsel
/// boundaries: rows of morsel t are [starts[t], starts[t+1]).
std::vector<size_t> BalancePairRows(size_t m, size_t target_pairs) {
  std::vector<size_t> starts{0};
  size_t acc = 0;
  for (size_t i = 0; i + 1 < m; ++i) {
    acc += m - 1 - i;
    if (acc >= target_pairs && i + 2 < m) {
      starts.push_back(i + 1);
      acc = 0;
    }
  }
  starts.push_back(m - 1);
  return starts;
}

/// Stateless pair derivation: sample s of a (salted) seed maps to a
/// distinct-investor pair, independent of how samples are sharded.
std::pair<size_t, size_t> SamplePair(uint64_t base, size_t s, size_t m) {
  size_t i = static_cast<size_t>(Mix64(base + 2 * s + 1) % m);
  size_t j = static_cast<size_t>(Mix64(base + 2 * s + 2) % (m - 1));
  if (j >= i) ++j;
  return {i, j};
}

/// Dense per-company accumulator for SharedInvestorCompanyPercent; reused
/// across communities so the O(num_right) zero-fill is paid once.
struct PercentScratch {
  std::vector<uint32_t> count;
  std::vector<uint32_t> touched;
};

double PercentWithScratch(const graph::BipartiteGraph& g,
                          const std::vector<uint32_t>& members, size_t k,
                          PercentScratch& scratch) {
  if (scratch.count.size() < g.num_right()) {
    scratch.count.assign(g.num_right(), 0);
  }
  scratch.touched.clear();
  for (uint32_t u : members) {
    for (uint32_t c : g.OutNeighbors(u)) {
      if (scratch.count[c]++ == 0) scratch.touched.push_back(c);
    }
  }
  if (scratch.touched.empty()) return 0;
  size_t shared = 0;
  for (uint32_t c : scratch.touched) {
    if (scratch.count[c] >= k) ++shared;
    scratch.count[c] = 0;
  }
  return 100.0 * static_cast<double>(shared) /
         static_cast<double>(scratch.touched.size());
}

}  // namespace

std::vector<double> SharedInvestmentSizes(const graph::BipartiteGraph& g,
                                          const std::vector<uint32_t>& members,
                                          size_t max_pairs, uint64_t seed,
                                          const ParallelOptions& par) {
  const size_t m = members.size();
  if (m < 2) return {};
  const size_t all_pairs = m * (m - 1) / 2;
  if (all_pairs <= max_pairs) {
    std::vector<double> out(all_pairs);
    size_t target = par.morsel_size;
    if (target == 0) {
      target = std::max<size_t>(
          2048, all_pairs / std::max<size_t>(1, par.threads() * 8));
    }
    const std::vector<size_t> starts = BalancePairRows(m, target);
    const size_t num_morsels = starts.size() - 1;
    const MemberBitsets mb = BuildMemberBitsets(g, members);
    const size_t scratch_words = mb.built() ? 0 : (g.num_right() + 63) / 64;
    auto run_morsel = [&](size_t t) {
      std::vector<uint64_t> bits(scratch_words, 0);
      ComputePairRows(g, members, mb, starts[t], starts[t + 1], bits, out);
    };
    if (par.pool == nullptr || par.threads() <= 1 || num_morsels <= 1) {
      for (size_t t = 0; t < num_morsels; ++t) run_morsel(t);
    } else {
      par.pool->RunBulk(num_morsels, run_morsel);
    }
    return out;
  }

  // Sampled path: every sample derives its pair statelessly from (seed,
  // sample index) and writes its own slot — shard-independent by design.
  std::vector<double> out(max_pairs);
  const uint64_t base = Mix64(seed ^ 0x73686172656470ull);
  ForEachMorsel(par, max_pairs, 1024, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      auto [i, j] = SamplePair(base, s, m);
      out[s] = static_cast<double>(
          g.SharedOutNeighbors(members[i], members[j]));
    }
  });
  return out;
}

double MeanSharedInvestmentSize(const graph::BipartiteGraph& g,
                                const std::vector<uint32_t>& members,
                                size_t max_pairs, uint64_t seed,
                                const ParallelOptions& par) {
  std::vector<double> sizes =
      SharedInvestmentSizes(g, members, max_pairs, seed, par);
  if (sizes.empty()) return 0;
  return simd::SumF64(sizes.data(), sizes.size()) /
         static_cast<double>(sizes.size());
}

double SharedInvestorCompanyPercent(const graph::BipartiteGraph& g,
                                    const std::vector<uint32_t>& members,
                                    size_t k) {
  PercentScratch scratch;
  return PercentWithScratch(g, members, k, scratch);
}

double MeanSharedInvestorCompanyPercent(const graph::BipartiteGraph& g,
                                        const community::CommunitySet& set,
                                        size_t k, const ParallelOptions& par) {
  const size_t num = set.communities.size();
  if (num == 0) return 0;
  // Per-community percents land in disjoint slots; the mean folds them in
  // community order, so sharding cannot change the result.
  std::vector<double> percents(num, 0);
  ForEachMorsel(par, num, 4, [&](size_t begin, size_t end) {
    PercentScratch scratch;
    for (size_t ci = begin; ci < end; ++ci) {
      percents[ci] = PercentWithScratch(g, set.communities[ci], k, scratch);
    }
  });
  double sum = 0;
  for (double p : percents) sum += p;
  return sum / static_cast<double>(num);
}

std::vector<double> GlobalSharedInvestmentSample(const graph::BipartiteGraph& g,
                                                 size_t num_pairs,
                                                 uint64_t seed,
                                                 const ParallelOptions& par) {
  const size_t n = g.num_left();
  if (n < 2) return {};
  std::vector<double> out(num_pairs);
  const uint64_t base = Mix64(seed ^ 0x676c6f62616c70ull);
  ForEachMorsel(par, num_pairs, 1024, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      auto [i, j] = SamplePair(base, s, n);
      out[s] = static_cast<double>(g.SharedOutNeighbors(
          static_cast<uint32_t>(i), static_cast<uint32_t>(j)));
    }
  });
  return out;
}

}  // namespace cfnet::core
