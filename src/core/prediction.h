#ifndef CFNET_CORE_PREDICTION_H_
#define CFNET_CORE_PREDICTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/platform.h"
#include "dataflow/context.h"
#include "graph/bipartite_graph.h"

namespace cfnet::core {

/// §7's prediction direction, implemented: logistic regression from company
/// profile + social-engagement + investor-graph features to fundraising
/// success, with L1 feature selection ("feature selection methods for
/// high-dimensional regression to identify the graph statistics that are
/// the most useful").

/// One labeled example.
struct LabeledExample {
  uint64_t company_id = 0;
  std::vector<double> features;  // aligned with SuccessFeatureNames()
  bool success = false;
};

/// Names of the features produced by BuildSuccessFeatures, in order.
const std::vector<std::string>& SuccessFeatureNames();

/// Builds one example per crawled startup. Engagement counts enter as
/// log1p; investor-graph features come from the merged bipartite graph:
/// company in-degree, the aggregate activity of its investors, and the
/// §7 centrality measures of those investors on the co-investment
/// projection (mean k-core, max PageRank).
///
/// `leak_check`: when true (default), the investor-graph features are
/// included; they partially encode the label (funded companies attract
/// investors), which is exactly the §7 hypothesis worth testing — compare
/// AUCs with and without them.
std::vector<LabeledExample> BuildSuccessFeatures(
    std::shared_ptr<dataflow::ExecutionContext> ctx,
    const AnalysisInputs& inputs, const graph::BipartiteGraph& investor_graph,
    bool include_graph_features = true);

struct TrainConfig {
  double train_fraction = 0.7;
  int epochs = 300;
  double learning_rate = 0.5;
  double l2 = 1e-4;
  /// L1 strength; > 0 enables proximal soft-thresholding (lasso-style
  /// feature selection: irrelevant weights are driven to exactly 0).
  double l1 = 0;
  /// Upweight positive examples by the class imbalance ratio (funding
  /// success is ~1.4% of companies).
  bool balance_classes = true;
  uint64_t seed = 20160626;
};

/// A trained logistic model plus its held-out evaluation.
struct PredictionResult {
  std::vector<std::string> feature_names;
  std::vector<double> weights;  // on standardized features
  double bias = 0;
  /// Standardization parameters (apply to raw features before weights).
  std::vector<double> feature_mean;
  std::vector<double> feature_stddev;

  double test_auc = 0;
  double train_auc = 0;
  double test_log_loss = 0;
  /// Success rate within the top decile of predicted scores, divided by
  /// the base rate — "how much better than guessing".
  double top_decile_lift = 0;
  size_t train_size = 0;
  size_t test_size = 0;
  size_t nonzero_weights = 0;

  /// Probability for a raw (unstandardized) feature vector.
  double Predict(const std::vector<double>& raw_features) const;
};

/// Trains on a deterministic shuffle/split of `examples`.
PredictionResult TrainSuccessPredictor(const std::vector<LabeledExample>& examples,
                                       const TrainConfig& config = {});

/// Area under the ROC curve for (score, label) pairs (rank statistic; ties
/// get half credit).
double ComputeAuc(const std::vector<std::pair<double, bool>>& scored);

}  // namespace cfnet::core

#endif  // CFNET_CORE_PREDICTION_H_
