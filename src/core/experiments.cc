#include "core/experiments.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "dataflow/dataset.h"
#include "community/random_baseline.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "viz/layout.h"
#include "viz/render.h"

namespace cfnet::core {

graph::BipartiteGraph ToyCommunityExample1() {
  // Investors 1..3, companies 101..103:
  //   I1 -> {X, Y}; I2 -> {X, Y, Z}; I3 -> {Y, Z}
  // Pairwise shared: 2, 1, 2 -> mean 5/3; all 3 companies have >= 2
  // community investors -> 100%.
  return graph::BipartiteGraph::FromEdges({
      {1, 101}, {1, 102},
      {2, 101}, {2, 102}, {2, 103},
      {3, 102}, {3, 103},
  });
}

graph::BipartiteGraph ToyCommunityExample2() {
  // I1 -> {X}; I2 -> {X, W}; I3 -> {V, U}
  // Pairwise shared: 1, 0, 0 -> mean 1/3; only X of 4 companies has >= 2
  // investors -> 25%.
  return graph::BipartiteGraph::FromEdges({
      {1, 101},
      {2, 101}, {2, 102},
      {3, 103}, {3, 104},
  });
}

ExperimentSuite::ExperimentSuite(
    std::shared_ptr<dataflow::ExecutionContext> ctx,
    const AnalysisInputs& inputs, community::CodaConfig coda_config)
    : ctx_(std::move(ctx)), inputs_(inputs), coda_config_(coda_config) {}

const graph::BipartiteGraph& ExperimentSuite::investor_graph() {
  if (!graph_.has_value()) {
    graph_ = BuildInvestorGraph(ctx_, inputs_);
  }
  return *graph_;
}

const graph::BipartiteGraph& ExperimentSuite::filtered_graph() {
  if (!filtered_.has_value()) {
    filtered_ = investor_graph().FilterLeftByMinDegree(4);
  }
  return *filtered_;
}

const community::CodaResult& ExperimentSuite::coda() {
  if (!coda_.has_value()) {
    community::Coda detector(coda_config_);
    coda_ = detector.Fit(filtered_graph());
  }
  return *coda_;
}

DatasetStatsResult ExperimentSuite::RunDatasetStats() {
  using dataflow::Dataset;
  DatasetStatsResult r;
  r.companies = static_cast<int64_t>(inputs_.startups.size());
  r.users = static_cast<int64_t>(inputs_.users.size());
  r.crunchbase_profiles = static_cast<int64_t>(inputs_.crunchbase.size());
  r.facebook_profiles = static_cast<int64_t>(inputs_.facebook.size());
  r.twitter_profiles = static_cast<int64_t>(inputs_.twitter.size());

  struct RoleCounts {
    int64_t investors = 0;
    int64_t founders = 0;
    int64_t employees = 0;
    RoleCounts Add(const RoleCounts& o) const {
      return {investors + o.investors, founders + o.founders,
              employees + o.employees};
    }
  };
  RoleCounts roles = Dataset<UserRecord>::FromVector(ctx_, inputs_.users)
                         .Map([](const UserRecord& u) {
                           return RoleCounts{u.is_investor ? 1 : 0,
                                             u.is_founder ? 1 : 0,
                                             u.is_employee ? 1 : 0};
                         })
                         .Reduce([](const RoleCounts& a, const RoleCounts& b) {
                           return a.Add(b);
                         },
                                 RoleCounts{});
  r.investors = roles.investors;
  r.founders = roles.founders;
  r.employees = roles.employees;
  if (r.users > 0) {
    r.investor_pct = 100.0 * static_cast<double>(r.investors) /
                     static_cast<double>(r.users);
    r.founder_pct =
        100.0 * static_cast<double>(r.founders) / static_cast<double>(r.users);
    r.employee_pct = 100.0 * static_cast<double>(r.employees) /
                     static_cast<double>(r.users);
  }
  return r;
}

EngagementTable ExperimentSuite::RunEngagementTable() {
  return AnalyzeEngagement(ctx_, inputs_);
}

Fig3Result ExperimentSuite::RunFig3(size_t cdf_points) {
  Fig3Result r;
  const graph::BipartiteGraph& g = investor_graph();
  r.num_investors = g.num_left();
  r.num_companies = g.num_right();
  r.num_edges = g.num_edges();
  r.avg_investors_per_company =
      g.num_right() == 0 ? 0
                         : static_cast<double>(g.num_edges()) /
                               static_cast<double>(g.num_right());
  r.degrees = SummarizeOutDegrees(g);

  std::vector<double> degrees;
  degrees.reserve(g.num_left());
  for (uint32_t l = 0; l < g.num_left(); ++l) {
    degrees.push_back(static_cast<double>(g.OutDegree(l)));
  }
  stats::Ecdf ecdf(std::move(degrees));
  r.investment_cdf = ecdf.Curve(cdf_points);

  // Mean companies followed per investor (from the AngelList user crawl).
  double follow_sum = 0;
  int64_t investor_users = 0;
  for (const UserRecord& u : inputs_.users) {
    if (u.is_investor) {
      follow_sum += static_cast<double>(u.following_startup_count);
      ++investor_users;
    }
  }
  r.mean_investor_follows =
      investor_users == 0 ? 0 : follow_sum / static_cast<double>(investor_users);
  r.provenance = ComputeEdgeProvenance(ctx_, inputs_);
  return r;
}

std::vector<std::pair<double, size_t>> ExperimentSuite::RankCommunities(
    size_t min_size) {
  const auto& set = coda().investor_communities;
  const graph::BipartiteGraph& g = filtered_graph();
  std::vector<std::pair<double, size_t>> ranked;
  // At small world scales no community may clear the requested floor;
  // relax it rather than returning nothing.
  for (size_t floor = min_size; floor >= 2 && ranked.empty(); --floor) {
    for (size_t ci = 0; ci < set.communities.size(); ++ci) {
      if (set.communities[ci].size() < floor) continue;
      double mean = MeanSharedInvestmentSize(g, set.communities[ci]);
      ranked.emplace_back(mean, ci);
    }
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first > b.first;
  });
  return ranked;
}

Fig4Result ExperimentSuite::RunFig4(size_t num_strong, size_t global_pairs,
                                    size_t min_community_size_for_ranking) {
  Fig4Result r;
  const graph::BipartiteGraph& g = filtered_graph();
  const auto& coda_result = coda();
  const auto& set = coda_result.investor_communities;
  r.num_communities = set.communities.size();
  r.avg_community_size = set.AverageSize();
  r.coda_iterations = coda_result.iterations;
  r.coda_log_likelihood = coda_result.final_log_likelihood;

  auto ranked = RankCommunities(min_community_size_for_ranking);
  for (size_t s = 0; s < std::min(num_strong, ranked.size()); ++s) {
    size_t ci = ranked[s].second;
    const auto& members = set.communities[ci];
    std::vector<double> sizes = SharedInvestmentSizes(g, members);
    Fig4Result::CommunityCurve curve;
    curve.community_index = ci;
    curve.size = members.size();
    curve.mean_shared = ranked[s].first;
    for (double v : sizes) curve.max_shared = std::max(curve.max_shared, v);
    stats::Ecdf ecdf(std::move(sizes));
    curve.curve = ecdf.Curve(64);
    r.strongest.push_back(std::move(curve));
  }

  std::vector<double> global =
      GlobalSharedInvestmentSample(investor_graph(), global_pairs);
  r.global_pairs = global.size();
  r.dkw_epsilon = stats::DkwEpsilon(global.size(), 0.01);
  stats::Ecdf global_ecdf(std::move(global));
  r.global_curve = global_ecdf.Curve(64);
  return r;
}

Fig5Result ExperimentSuite::RunFig5(size_t k, uint64_t random_seed) {
  Fig5Result r;
  const graph::BipartiteGraph& g = filtered_graph();
  const auto& set = coda().investor_communities;
  for (const auto& members : set.communities) {
    r.community_percents.push_back(SharedInvestorCompanyPercent(g, members, k));
  }
  if (!r.community_percents.empty()) {
    double sum = 0;
    for (double p : r.community_percents) sum += p;
    r.mean_percent = sum / static_cast<double>(r.community_percents.size());
  }
  community::CommunitySet random = community::RandomCommunities(
      g.num_left(), std::max<size_t>(1, set.communities.size()), random_seed);
  r.random_mean_percent = MeanSharedInvestorCompanyPercent(g, random, k);
  r.kde = stats::GaussianKde(r.community_percents, 0, 100, 101);
  return r;
}

namespace {

Fig7Result::CommunityViz BuildCommunityViz(const graph::BipartiteGraph& g,
                                           const std::vector<uint32_t>& members,
                                           size_t community_index,
                                           size_t max_companies,
                                           const std::string& title) {
  Fig7Result::CommunityViz out;
  out.community_index = community_index;
  out.num_investors = members.size();
  out.mean_shared = MeanSharedInvestmentSize(g, members);
  out.shared_investor_pct = SharedInvestorCompanyPercent(g, members, 2);

  // Companies invested by the community, most-co-invested first.
  std::unordered_map<uint32_t, size_t> weight;
  for (uint32_t u : members) {
    for (uint32_t c : g.OutNeighbors(u)) ++weight[c];
  }
  std::vector<std::pair<size_t, uint32_t>> by_weight;
  by_weight.reserve(weight.size());
  for (const auto& [c, w] : weight) by_weight.emplace_back(w, c);
  std::sort(by_weight.rbegin(), by_weight.rend());
  if (by_weight.size() > max_companies) by_weight.resize(max_companies);
  out.num_companies = weight.size();

  // Node table: investors first (blue), then companies (red) — matching
  // the paper's Figure 7 color scheme.
  std::vector<viz::NodeSpec> nodes;
  std::unordered_map<uint32_t, uint32_t> investor_node;
  std::unordered_map<uint32_t, uint32_t> company_node;
  for (uint32_t u : members) {
    investor_node[u] = static_cast<uint32_t>(nodes.size());
    nodes.push_back({"investor " + std::to_string(g.LeftId(u)), "#4477cc", 6});
  }
  for (const auto& [w, c] : by_weight) {
    company_node[c] = static_cast<uint32_t>(nodes.size());
    nodes.push_back({"company " + std::to_string(g.RightId(c)), "#cc4444", 4});
  }
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t u : members) {
    for (uint32_t c : g.OutNeighbors(u)) {
      auto it = company_node.find(c);
      if (it != company_node.end()) {
        edges.emplace_back(investor_node[u], it->second);
      }
    }
  }
  viz::LayoutConfig layout_config;
  layout_config.iterations = 120;
  layout_config.seed = 11 + community_index;
  std::vector<viz::Point2D> pos =
      viz::FruchtermanReingold(nodes.size(), edges, layout_config);
  out.svg = viz::RenderSvg(nodes, pos, edges, 1000, 1000, title);
  out.dot = viz::RenderDot(nodes, edges,
                           "community_" + std::to_string(community_index));
  return out;
}

}  // namespace

Fig7Result ExperimentSuite::RunFig7(size_t min_community_size,
                                    size_t max_companies_in_viz) {
  Fig7Result r;
  const graph::BipartiteGraph& g = filtered_graph();
  const auto& set = coda().investor_communities;
  auto ranked = RankCommunities(min_community_size);
  if (ranked.empty()) return r;
  size_t strong_ci = ranked.front().second;
  size_t weak_ci = ranked.back().second;
  r.strong = BuildCommunityViz(g, set.communities[strong_ci], strong_ci,
                               max_companies_in_viz, "Strong community");
  r.weak = BuildCommunityViz(g, set.communities[weak_ci], weak_ci,
                             max_companies_in_viz, "Weak community");
  return r;
}

}  // namespace cfnet::core
