#include "core/columnar_records.h"

#include <algorithm>

#include "util/crc32.h"

namespace cfnet::dfs {

using core::CrunchBaseRecord;
using core::FacebookRecord;
using core::StartupRecord;
using core::TwitterRecord;
using core::UserRecord;

/// Column order within each block payload is the struct field order; the
/// round-trip differential test in columnar_test pins every field.

void ColumnarTraits<StartupRecord>::EncodeBlock(const StartupRecord* rows,
                                                size_t n, std::string& out) {
  AppendDeltaU64Column(n, [&](size_t i) { return rows[i].id; }, out);
  AppendStringDictColumn(
      n, [&](size_t i) -> const std::string& { return rows[i].name; }, out);
  AppendBoolColumn(n, [&](size_t i) { return rows[i].has_twitter_url; }, out);
  AppendBoolColumn(n, [&](size_t i) { return rows[i].has_facebook_url; }, out);
  AppendBoolColumn(n, [&](size_t i) { return rows[i].has_crunchbase_url; },
                   out);
  AppendBoolColumn(n, [&](size_t i) { return rows[i].has_video; }, out);
  AppendBoolColumn(n, [&](size_t i) { return rows[i].fundraising; }, out);
  AppendZigZagI64Column(n, [&](size_t i) { return rows[i].follower_count; },
                        out);
}

bool ColumnarTraits<StartupRecord>::DecodeBlock(ByteReader& r, size_t n,
                                                StartupRecord* rows,
                                                uint64_t* dictionary_bytes) {
  return DecodeDeltaU64Column(r, n,
                              [&](size_t i, uint64_t v) { rows[i].id = v; }) &&
         DecodeStringDictColumn(
             r, n,
             [&](size_t i, std::string_view s) {
               rows[i].name.assign(s.data(), s.size());
             },
             dictionary_bytes) &&
         DecodeBoolColumn(
             r, n, [&](size_t i, bool v) { rows[i].has_twitter_url = v; }) &&
         DecodeBoolColumn(
             r, n, [&](size_t i, bool v) { rows[i].has_facebook_url = v; }) &&
         DecodeBoolColumn(
             r, n,
             [&](size_t i, bool v) { rows[i].has_crunchbase_url = v; }) &&
         DecodeBoolColumn(r, n,
                          [&](size_t i, bool v) { rows[i].has_video = v; }) &&
         DecodeBoolColumn(r, n,
                          [&](size_t i, bool v) { rows[i].fundraising = v; }) &&
         DecodeZigZagI64Column(
             r, n, [&](size_t i, int64_t v) { rows[i].follower_count = v; });
}

uint64_t ColumnarTraits<StartupRecord>::RowBytes(const StartupRecord& row) {
  return sizeof(row) + row.name.size();
}

void ColumnarTraits<UserRecord>::EncodeBlock(const UserRecord* rows, size_t n,
                                             std::string& out) {
  AppendDeltaU64Column(n, [&](size_t i) { return rows[i].id; }, out);
  AppendBoolColumn(n, [&](size_t i) { return rows[i].is_investor; }, out);
  AppendBoolColumn(n, [&](size_t i) { return rows[i].is_founder; }, out);
  AppendBoolColumn(n, [&](size_t i) { return rows[i].is_employee; }, out);
  AppendU64ListColumn(
      n,
      [&](size_t i) -> const std::vector<uint64_t>& {
        return rows[i].investment_company_ids;
      },
      out);
  AppendZigZagI64Column(
      n, [&](size_t i) { return rows[i].following_startup_count; }, out);
  AppendZigZagI64Column(
      n, [&](size_t i) { return rows[i].following_user_count; }, out);
}

bool ColumnarTraits<UserRecord>::DecodeBlock(ByteReader& r, size_t n,
                                             UserRecord* rows,
                                             uint64_t* dictionary_bytes) {
  (void)dictionary_bytes;  // no string columns
  return DecodeDeltaU64Column(r, n,
                              [&](size_t i, uint64_t v) { rows[i].id = v; }) &&
         DecodeBoolColumn(r, n,
                          [&](size_t i, bool v) { rows[i].is_investor = v; }) &&
         DecodeBoolColumn(r, n,
                          [&](size_t i, bool v) { rows[i].is_founder = v; }) &&
         DecodeBoolColumn(r, n,
                          [&](size_t i, bool v) { rows[i].is_employee = v; }) &&
         DecodeU64ListColumn(r, n,
                             [&](size_t i) -> std::vector<uint64_t>& {
                               return rows[i].investment_company_ids;
                             }) &&
         DecodeZigZagI64Column(
             r, n,
             [&](size_t i, int64_t v) { rows[i].following_startup_count = v; }) &&
         DecodeZigZagI64Column(r, n, [&](size_t i, int64_t v) {
           rows[i].following_user_count = v;
         });
}

uint64_t ColumnarTraits<UserRecord>::RowBytes(const UserRecord& row) {
  return sizeof(row) + row.investment_company_ids.size() * sizeof(uint64_t);
}

void ColumnarTraits<CrunchBaseRecord>::EncodeBlock(
    const CrunchBaseRecord* rows, size_t n, std::string& out) {
  AppendDeltaU64Column(n, [&](size_t i) { return rows[i].angellist_id; }, out);
  AppendF64Column(n, [&](size_t i) { return rows[i].total_funding_usd; }, out);
  AppendZigZagI64Column(n, [&](size_t i) { return rows[i].num_rounds; }, out);
  AppendU64ListColumn(
      n,
      [&](size_t i) -> const std::vector<uint64_t>& {
        return rows[i].round_investor_ids;
      },
      out);
}

bool ColumnarTraits<CrunchBaseRecord>::DecodeBlock(ByteReader& r, size_t n,
                                                   CrunchBaseRecord* rows,
                                                   uint64_t* dictionary_bytes) {
  (void)dictionary_bytes;
  return DecodeDeltaU64Column(
             r, n, [&](size_t i, uint64_t v) { rows[i].angellist_id = v; }) &&
         DecodeF64Column(
             r, n,
             [&](size_t i, double v) { rows[i].total_funding_usd = v; }) &&
         DecodeZigZagI64Column(
             r, n, [&](size_t i, int64_t v) { rows[i].num_rounds = v; }) &&
         DecodeU64ListColumn(r, n, [&](size_t i) -> std::vector<uint64_t>& {
           return rows[i].round_investor_ids;
         });
}

uint64_t ColumnarTraits<CrunchBaseRecord>::RowBytes(
    const CrunchBaseRecord& row) {
  return sizeof(row) + row.round_investor_ids.size() * sizeof(uint64_t);
}

void ColumnarTraits<FacebookRecord>::EncodeBlock(const FacebookRecord* rows,
                                                 size_t n, std::string& out) {
  AppendDeltaU64Column(n, [&](size_t i) { return rows[i].angellist_id; }, out);
  AppendZigZagI64Column(n, [&](size_t i) { return rows[i].fan_count; }, out);
}

bool ColumnarTraits<FacebookRecord>::DecodeBlock(ByteReader& r, size_t n,
                                                 FacebookRecord* rows,
                                                 uint64_t* dictionary_bytes) {
  (void)dictionary_bytes;
  return DecodeDeltaU64Column(
             r, n, [&](size_t i, uint64_t v) { rows[i].angellist_id = v; }) &&
         DecodeZigZagI64Column(
             r, n, [&](size_t i, int64_t v) { rows[i].fan_count = v; });
}

uint64_t ColumnarTraits<FacebookRecord>::RowBytes(const FacebookRecord& row) {
  return sizeof(row);
}

void ColumnarTraits<TwitterRecord>::EncodeBlock(const TwitterRecord* rows,
                                                size_t n, std::string& out) {
  AppendDeltaU64Column(n, [&](size_t i) { return rows[i].angellist_id; }, out);
  AppendZigZagI64Column(n, [&](size_t i) { return rows[i].statuses_count; },
                        out);
  AppendZigZagI64Column(n, [&](size_t i) { return rows[i].followers_count; },
                        out);
  AppendBoolColumn(n, [&](size_t i) { return rows[i].followers_count_null; },
                   out);
}

bool ColumnarTraits<TwitterRecord>::DecodeBlock(ByteReader& r, size_t n,
                                                TwitterRecord* rows,
                                                uint64_t* dictionary_bytes) {
  (void)dictionary_bytes;
  return DecodeDeltaU64Column(
             r, n, [&](size_t i, uint64_t v) { rows[i].angellist_id = v; }) &&
         DecodeZigZagI64Column(
             r, n, [&](size_t i, int64_t v) { rows[i].statuses_count = v; }) &&
         DecodeZigZagI64Column(
             r, n, [&](size_t i, int64_t v) { rows[i].followers_count = v; }) &&
         DecodeBoolColumn(r, n, [&](size_t i, bool v) {
           rows[i].followers_count_null = v;
         });
}

uint64_t ColumnarTraits<TwitterRecord>::RowBytes(const TwitterRecord& row) {
  return sizeof(row);
}

}  // namespace cfnet::dfs

namespace cfnet::core {

std::string ColumnarPathFor(const std::string& dir) {
  return dir + "part-all" + std::string(dfs::kColumnarSuffix);
}

SnapshotFiles SplitSnapshotFiles(std::vector<std::string> paths) {
  SnapshotFiles out;
  for (std::string& path : paths) {
    if (dfs::IsColumnarPath(path)) {
      out.columnar.push_back(std::move(path));
    } else {
      out.json.push_back(std::move(path));
    }
  }
  return out;
}

uint32_t SnapshotFingerprint(const dfs::MiniDfs& dfs, const std::string& dir) {
  SnapshotFiles files = SplitSnapshotFiles(dfs.List(dir));
  std::sort(files.json.begin(), files.json.end());
  uint32_t crc = 0;
  std::string line;
  for (const std::string& path : files.json) {
    Result<uint64_t> size = dfs.FileSize(path);
    line = path;
    line.push_back(':');
    line += std::to_string(size.ok() ? size.value() : 0);
    line.push_back('\n');
    crc = Crc32Update(crc, line);
  }
  return crc;
}

}  // namespace cfnet::core
