#ifndef CFNET_CORE_COLUMNAR_RECORDS_H_
#define CFNET_CORE_COLUMNAR_RECORDS_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/records.h"
#include "dfs/columnar.h"
#include "dfs/jsonl.h"
#include "json/reader.h"
#include "util/result.h"
#include "util/thread_pool.h"

/// Columnar codecs for the five snapshot record types, plus the
/// compaction/loading glue that lets the platform prefer columnar files
/// while JSON lines remain the crawl/ingest/dead-letter boundary.

namespace cfnet::dfs {

template <>
struct ColumnarTraits<core::StartupRecord> {
  static constexpr std::string_view kTypeName = "startup";
  static void EncodeBlock(const core::StartupRecord* rows, size_t n,
                          std::string& out);
  static bool DecodeBlock(ByteReader& r, size_t n, core::StartupRecord* rows,
                          uint64_t* dictionary_bytes);
  static uint64_t RowBytes(const core::StartupRecord& row);
};

template <>
struct ColumnarTraits<core::UserRecord> {
  static constexpr std::string_view kTypeName = "user";
  static void EncodeBlock(const core::UserRecord* rows, size_t n,
                          std::string& out);
  static bool DecodeBlock(ByteReader& r, size_t n, core::UserRecord* rows,
                          uint64_t* dictionary_bytes);
  static uint64_t RowBytes(const core::UserRecord& row);
};

template <>
struct ColumnarTraits<core::CrunchBaseRecord> {
  static constexpr std::string_view kTypeName = "crunchbase";
  static void EncodeBlock(const core::CrunchBaseRecord* rows, size_t n,
                          std::string& out);
  static bool DecodeBlock(ByteReader& r, size_t n,
                          core::CrunchBaseRecord* rows,
                          uint64_t* dictionary_bytes);
  static uint64_t RowBytes(const core::CrunchBaseRecord& row);
};

template <>
struct ColumnarTraits<core::FacebookRecord> {
  static constexpr std::string_view kTypeName = "facebook";
  static void EncodeBlock(const core::FacebookRecord* rows, size_t n,
                          std::string& out);
  static bool DecodeBlock(ByteReader& r, size_t n, core::FacebookRecord* rows,
                          uint64_t* dictionary_bytes);
  static uint64_t RowBytes(const core::FacebookRecord& row);
};

template <>
struct ColumnarTraits<core::TwitterRecord> {
  static constexpr std::string_view kTypeName = "twitter";
  static void EncodeBlock(const core::TwitterRecord* rows, size_t n,
                          std::string& out);
  static bool DecodeBlock(ByteReader& r, size_t n, core::TwitterRecord* rows,
                          uint64_t* dictionary_bytes);
  static uint64_t RowBytes(const core::TwitterRecord& row);
};

}  // namespace cfnet::dfs

namespace cfnet::core {

/// Canonical columnar file of a snapshot directory (`<dir>part-all.cfc`).
std::string ColumnarPathFor(const std::string& dir);

/// A snapshot directory's listing split by format.
struct SnapshotFiles {
  std::vector<std::string> json;      // part-*.jsonl shards
  std::vector<std::string> columnar;  // *.cfc files
};
SnapshotFiles SplitSnapshotFiles(std::vector<std::string> paths);

/// CRC32 over the sorted `<path>:<size>` lines of the directory's JSON
/// shards (columnar files excluded). Stored in the columnar header at
/// compaction time; a mismatch against the live shards means the columnar
/// file predates an append/truncate (dead-letter replay, resume rollback)
/// and must not be trusted.
uint32_t SnapshotFingerprint(const dfs::MiniDfs& dfs, const std::string& dir);

/// Decodes one JSON-lines shard set with the streaming (DOM-free) decoder —
/// the reference record stream the columnar path is differential-tested
/// against. Partitioned for FromPartitions; parallel when `pool` is set.
template <typename T>
Result<std::vector<std::vector<T>>> ScanSnapshotJson(
    const dfs::MiniDfs& dfs, const std::vector<std::string>& files,
    ThreadPool* pool, bool salvage, dfs::ScanReport* report) {
  dfs::ScanOptions scan;
  scan.pool = pool;
  scan.salvage = salvage;
  scan.report = report;
  auto decode = [](std::string_view line) -> Result<T> {
    json::JsonReader reader(line);
    CFNET_ASSIGN_OR_RETURN(T record, T::Decode(reader));
    CFNET_RETURN_IF_ERROR(reader.Finish());
    return record;
  };
  return dfs::ScanJsonLines<T>(dfs, files, decode, scan);
}

/// Rewrites `dir`'s JSON shards as one committed columnar file stamped with
/// the shards' current fingerprint. Idempotent: an up-to-date columnar file
/// is left alone. Directories with no JSON shards are skipped (nothing to
/// compact). The JSON shards stay in place — they remain the write/replay
/// boundary and the fallback when the columnar file goes stale or rots.
template <typename T>
Status CompactSnapshotDir(dfs::MiniDfs* dfs, const std::string& dir,
                          ThreadPool* pool = nullptr,
                          size_t block_rows = 64 * 1024) {
  SnapshotFiles files = SplitSnapshotFiles(dfs->List(dir));
  if (files.json.empty()) return Status::OK();
  const uint32_t fingerprint = SnapshotFingerprint(*dfs, dir);
  const std::string target = ColumnarPathFor(dir);
  for (const std::string& existing : files.columnar) {
    if (existing != target) continue;
    Result<uint32_t> stored = dfs::ReadColumnarFingerprint(*dfs, existing);
    if (stored.ok() && stored.value() == fingerprint) return Status::OK();
  }
  CFNET_ASSIGN_OR_RETURN(
      auto parts, ScanSnapshotJson<T>(*dfs, files.json, pool,
                                      /*salvage=*/false, /*report=*/nullptr));
  dfs::ColumnarWriteOptions options;
  options.block_rows = block_rows;
  options.source_fingerprint = fingerprint;
  dfs::ColumnarWriter<T> writer(dfs, target, options);
  for (auto& part : parts) {
    for (T& record : part) writer.Add(std::move(record));
  }
  return writer.Finish();
}

/// Loads one typed snapshot directory, preferring a fresh columnar file and
/// falling back to the JSON shards when none exists, the fingerprint is
/// stale, or (in salvage mode) the columnar read fails. Partition order of
/// both formats flattens to the same record stream.
template <typename T>
Result<std::vector<std::vector<T>>> ScanSnapshotRecords(
    const dfs::MiniDfs& dfs, const std::string& dir, ThreadPool* pool,
    bool salvage, dfs::ScanReport* report) {
  SnapshotFiles files = SplitSnapshotFiles(dfs.List(dir));
  if (!files.columnar.empty()) {
    const uint32_t live = SnapshotFingerprint(dfs, dir);
    std::vector<std::string> fresh;
    for (const std::string& path : files.columnar) {
      Result<uint32_t> stored = dfs::ReadColumnarFingerprint(dfs, path);
      if (stored.ok()) {
        // A stale-but-intact file is quietly superseded by the JSON shards;
        // only fingerprint-matching files are worth decoding.
        if (stored.value() == live) fresh.push_back(path);
        continue;
      }
      // The file's commit footer or header is rotted. That is storage
      // damage, not staleness: strict mode surfaces it; salvage mode
      // abandons columnar wholesale (the JSON shards are the complete
      // stream) rather than guessing at a partial decode.
      if (!salvage) return stored.status();
    }
    if (!fresh.empty()) {
      dfs::ScanReport attempt;
      dfs::ScanOptions scan;
      scan.pool = pool;
      scan.salvage = salvage;
      scan.report = &attempt;
      auto parts = dfs::ScanColumnBlocks<T>(dfs, fresh, scan);
      const bool damaged = !parts.ok() || attempt.columnar_blocks_failed > 0 ||
                           attempt.records_dropped > 0 ||
                           !attempt.quarantined_paths.empty();
      if (!damaged) {
        if (report != nullptr) report->Merge(attempt);
        return parts;
      }
      if (!salvage) return parts;  // strict mode surfaces the damage
      // Salvage mode: the JSON shards are still the complete stream, so any
      // columnar damage abandons the file wholesale instead of returning a
      // partial decode. Keep the failure counters visible, drop the rest of
      // the abandoned attempt's accounting.
      if (report != nullptr) {
        report->columnar_blocks_failed += attempt.columnar_blocks_failed;
      }
    }
  }
  return ScanSnapshotJson<T>(dfs, files.json, pool, salvage, report);
}

/// ScanSnapshotRecords flattened into one record vector.
template <typename T>
Result<std::vector<T>> LoadSnapshotRecords(const dfs::MiniDfs& dfs,
                                           const std::string& dir,
                                           ThreadPool* pool, bool salvage,
                                           dfs::ScanReport* report) {
  CFNET_ASSIGN_OR_RETURN(
      auto parts, ScanSnapshotRecords<T>(dfs, dir, pool, salvage, report));
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<T> out;
  out.reserve(total);
  for (auto& p : parts) {
    out.insert(out.end(), std::make_move_iterator(p.begin()),
               std::make_move_iterator(p.end()));
  }
  return out;
}

}  // namespace cfnet::core

#endif  // CFNET_CORE_COLUMNAR_RECORDS_H_
