#include "core/prediction.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "dataflow/dataset.h"
#include "graph/centrality.h"
#include "graph/weighted_graph.h"
#include "util/logging.h"
#include "util/rng.h"

namespace cfnet::core {
namespace {

constexpr size_t kNumFeatures = 12;

double Sigmoid(double z) {
  if (z >= 0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

const std::vector<std::string>& SuccessFeatureNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "log1p(angellist_followers)",
      "has_facebook",
      "has_twitter",
      "has_demo_video",
      "log1p(facebook_likes)",
      "log1p(twitter_tweets)",
      "log1p(twitter_followers)",
      "log1p(investor_in_degree)",
      "log1p(sum_investor_out_degree)",
      "mean_investor_core_number",
      "max_investor_pagerank_x1e3",
      "currently_fundraising",
  };
  return *names;
}

std::vector<LabeledExample> BuildSuccessFeatures(
    std::shared_ptr<dataflow::ExecutionContext> ctx,
    const AnalysisInputs& inputs, const graph::BipartiteGraph& investor_graph,
    bool include_graph_features) {
  using dataflow::Dataset;

  // Lookup tables for the joins (small relative to startups).
  auto fb_likes = std::make_shared<std::unordered_map<uint64_t, int64_t>>();
  for (const auto& r : inputs.facebook) (*fb_likes)[r.angellist_id] = r.fan_count;
  auto tw = std::make_shared<
      std::unordered_map<uint64_t, std::pair<int64_t, int64_t>>>();
  for (const auto& r : inputs.twitter) {
    (*tw)[r.angellist_id] = {r.statuses_count,
                             r.followers_count_null ? 0 : r.followers_count};
  }
  auto funded = std::make_shared<std::unordered_map<uint64_t, bool>>();
  for (const auto& r : inputs.crunchbase) {
    (*funded)[r.angellist_id] = r.funded();
  }

  // §7 centrality features of investors on the co-investment projection.
  auto core_numbers = std::make_shared<std::vector<int>>();
  auto pageranks = std::make_shared<std::vector<double>>();
  if (include_graph_features && investor_graph.num_left() > 0) {
    graph::WeightedGraph projection =
        graph::WeightedGraph::ProjectLeft(investor_graph);
    *core_numbers = graph::CoreNumbers(projection);
    *pageranks = graph::PageRank(projection);
  }

  const graph::BipartiteGraph* g = &investor_graph;
  return Dataset<StartupRecord>::FromVector(ctx, inputs.startups)
      .Map([=](const StartupRecord& s) {
        LabeledExample ex;
        ex.company_id = s.id;
        ex.features.assign(kNumFeatures, 0.0);
        ex.features[0] = std::log1p(static_cast<double>(s.follower_count));
        ex.features[1] = s.has_facebook_url ? 1.0 : 0.0;
        ex.features[2] = s.has_twitter_url ? 1.0 : 0.0;
        ex.features[3] = s.has_video ? 1.0 : 0.0;
        if (auto it = fb_likes->find(s.id); it != fb_likes->end()) {
          ex.features[4] = std::log1p(static_cast<double>(it->second));
        }
        if (auto it = tw->find(s.id); it != tw->end()) {
          ex.features[5] = std::log1p(static_cast<double>(it->second.first));
          ex.features[6] = std::log1p(static_cast<double>(it->second.second));
        }
        if (include_graph_features) {
          uint32_t r = g->RightIndexOf(s.id);
          if (r != graph::BipartiteGraph::kInvalidIndex) {
            auto investors = g->InNeighbors(r);
            ex.features[7] = std::log1p(static_cast<double>(investors.size()));
            size_t total_activity = 0;
            double core_sum = 0;
            double max_pr = 0;
            for (uint32_t inv : investors) {
              total_activity += g->OutDegree(inv);
              if (inv < core_numbers->size()) {
                core_sum += static_cast<double>((*core_numbers)[inv]);
              }
              if (inv < pageranks->size()) {
                max_pr = std::max(max_pr, (*pageranks)[inv]);
              }
            }
            ex.features[8] =
                std::log1p(static_cast<double>(total_activity));
            if (!investors.empty()) {
              ex.features[9] = core_sum / static_cast<double>(investors.size());
            }
            ex.features[10] = max_pr * 1e3;
          }
        }
        ex.features[11] = s.fundraising ? 1.0 : 0.0;
        auto it = funded->find(s.id);
        ex.success = it != funded->end() && it->second;
        return ex;
      })
      .Collect();
}

double ComputeAuc(const std::vector<std::pair<double, bool>>& scored) {
  std::vector<std::pair<double, bool>> sorted = scored;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Rank-sum (Mann-Whitney) with midranks for ties.
  double rank_sum_pos = 0;
  size_t positives = 0;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i;
    while (j < sorted.size() && sorted[j].first == sorted[i].first) ++j;
    double midrank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (size_t k = i; k < j; ++k) {
      if (sorted[k].second) {
        rank_sum_pos += midrank;
        ++positives;
      }
    }
    i = j;
  }
  size_t negatives = sorted.size() - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  double u = rank_sum_pos - static_cast<double>(positives) *
                                (static_cast<double>(positives) + 1) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

double PredictionResult::Predict(const std::vector<double>& raw) const {
  CFNET_CHECK(raw.size() == weights.size());
  double z = bias;
  for (size_t k = 0; k < raw.size(); ++k) {
    double x = feature_stddev[k] > 0
                   ? (raw[k] - feature_mean[k]) / feature_stddev[k]
                   : 0.0;
    z += weights[k] * x;
  }
  return Sigmoid(z);
}

PredictionResult TrainSuccessPredictor(
    const std::vector<LabeledExample>& examples, const TrainConfig& config) {
  PredictionResult result;
  result.feature_names = SuccessFeatureNames();
  if (examples.empty()) return result;
  const size_t dims = examples[0].features.size();

  // Deterministic shuffle + split.
  std::vector<size_t> order(examples.size());
  for (size_t k = 0; k < order.size(); ++k) order[k] = k;
  Rng rng(config.seed);
  rng.Shuffle(order);
  size_t train_n = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(examples.size()) *
                             config.train_fraction));
  train_n = std::min(train_n, examples.size() - 1);
  result.train_size = train_n;
  result.test_size = examples.size() - train_n;

  // Standardization from the training split only.
  result.feature_mean.assign(dims, 0);
  result.feature_stddev.assign(dims, 0);
  for (size_t i = 0; i < train_n; ++i) {
    const auto& f = examples[order[i]].features;
    for (size_t k = 0; k < dims; ++k) result.feature_mean[k] += f[k];
  }
  for (size_t k = 0; k < dims; ++k) {
    result.feature_mean[k] /= static_cast<double>(train_n);
  }
  for (size_t i = 0; i < train_n; ++i) {
    const auto& f = examples[order[i]].features;
    for (size_t k = 0; k < dims; ++k) {
      double d = f[k] - result.feature_mean[k];
      result.feature_stddev[k] += d * d;
    }
  }
  for (size_t k = 0; k < dims; ++k) {
    result.feature_stddev[k] =
        std::sqrt(result.feature_stddev[k] / static_cast<double>(train_n));
  }

  auto standardized = [&](size_t example_idx, size_t k) {
    double sd = result.feature_stddev[k];
    if (sd <= 0) return 0.0;
    return (examples[example_idx].features[k] - result.feature_mean[k]) / sd;
  };

  // Class weights.
  size_t positives = 0;
  for (size_t i = 0; i < train_n; ++i) {
    if (examples[order[i]].success) ++positives;
  }
  double pos_weight = 1.0;
  if (config.balance_classes && positives > 0 && positives < train_n) {
    pos_weight = static_cast<double>(train_n - positives) /
                 static_cast<double>(positives);
  }

  // Full-batch gradient descent with L2, plus an L1 proximal step.
  std::vector<double> w(dims, 0);
  double bias = 0;
  std::vector<double> grad(dims);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_bias = 0;
    double weight_total = 0;
    for (size_t i = 0; i < train_n; ++i) {
      size_t idx = order[i];
      double z = bias;
      for (size_t k = 0; k < dims; ++k) z += w[k] * standardized(idx, k);
      double p = Sigmoid(z);
      double y = examples[idx].success ? 1.0 : 0.0;
      double sample_weight = examples[idx].success ? pos_weight : 1.0;
      double err = (p - y) * sample_weight;
      for (size_t k = 0; k < dims; ++k) grad[k] += err * standardized(idx, k);
      grad_bias += err;
      weight_total += sample_weight;
    }
    double lr = config.learning_rate;
    for (size_t k = 0; k < dims; ++k) {
      double step = grad[k] / weight_total + config.l2 * w[k];
      w[k] -= lr * step;
      if (config.l1 > 0) {
        // Proximal soft-threshold (ISTA).
        double threshold = lr * config.l1;
        if (w[k] > threshold) {
          w[k] -= threshold;
        } else if (w[k] < -threshold) {
          w[k] += threshold;
        } else {
          w[k] = 0;
        }
      }
    }
    bias -= lr * grad_bias / weight_total;
  }
  result.weights = w;
  result.bias = bias;
  for (double x : w) {
    if (std::fabs(x) > 1e-9) ++result.nonzero_weights;
  }

  // Evaluation.
  auto score_split = [&](size_t begin, size_t end) {
    std::vector<std::pair<double, bool>> scored;
    scored.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      size_t idx = order[i];
      double z = bias;
      for (size_t k = 0; k < dims; ++k) z += w[k] * standardized(idx, k);
      scored.emplace_back(Sigmoid(z), examples[idx].success);
    }
    return scored;
  };
  auto train_scored = score_split(0, train_n);
  auto test_scored = score_split(train_n, examples.size());
  result.train_auc = ComputeAuc(train_scored);
  result.test_auc = ComputeAuc(test_scored);

  double log_loss = 0;
  size_t test_pos = 0;
  for (const auto& [p, y] : test_scored) {
    double clamped = std::clamp(p, 1e-12, 1.0 - 1e-12);
    log_loss += y ? -std::log(clamped) : -std::log(1.0 - clamped);
    if (y) ++test_pos;
  }
  result.test_log_loss =
      test_scored.empty() ? 0 : log_loss / static_cast<double>(test_scored.size());

  // Top-decile lift.
  if (!test_scored.empty() && test_pos > 0) {
    std::sort(test_scored.begin(), test_scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    size_t decile = std::max<size_t>(1, test_scored.size() / 10);
    size_t hits = 0;
    for (size_t i = 0; i < decile; ++i) {
      if (test_scored[i].second) ++hits;
    }
    double decile_rate = static_cast<double>(hits) / static_cast<double>(decile);
    double base_rate =
        static_cast<double>(test_pos) / static_cast<double>(test_scored.size());
    result.top_decile_lift = decile_rate / base_rate;
  }
  return result;
}

}  // namespace cfnet::core
