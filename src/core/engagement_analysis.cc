#include "core/engagement_analysis.h"

#include <array>
#include <unordered_set>

#include "dataflow/dataset.h"
#include "stats/inference.h"
#include "stats/stats.h"
#include "util/string_util.h"

namespace cfnet::core {
namespace {

/// Feature vector per startup after the joins.
struct Feat {
  uint64_t id = 0;
  bool fb = false;
  bool tw = false;
  bool video = false;
  int64_t likes = 0;
  int64_t tweets = 0;
  int64_t followers = 0;
  bool followers_null = false;
  bool success = false;
};

constexpr int kNumCategories = 11;

/// Category membership tests, index-aligned with the output rows.
std::array<bool, kNumCategories> Categorize(const Feat& f, double likes_med,
                                            double tweets_med,
                                            double followers_med) {
  const bool fb_hi = f.fb && static_cast<double>(f.likes) > likes_med;
  const bool tw_tweets_hi =
      f.tw && static_cast<double>(f.tweets) > tweets_med;
  const bool tw_followers_hi =
      f.tw && !f.followers_null &&
      static_cast<double>(f.followers) > followers_med;
  return {
      !f.fb && !f.tw,               // 0: no social media presence
      f.fb,                         // 1: Facebook
      f.tw,                         // 2: Twitter
      f.fb && f.tw,                 // 3: Facebook and Twitter
      f.video,                      // 4: demo video
      !f.video,                     // 5: no demo video
      fb_hi,                        // 6: Facebook above median likes
      tw_tweets_hi,                 // 7: Twitter above median tweets
      tw_followers_hi,              // 8: Twitter above median followers
      fb_hi && tw_followers_hi,     // 9
      fb_hi && tw_tweets_hi,        // 10
  };
}

struct Counts {
  std::array<int64_t, kNumCategories> n{};
  std::array<int64_t, kNumCategories> succ{};
  int64_t total = 0;
  int64_t funded = 0;
  int64_t tw_nonnull_followers = 0;

  Counts Add(const Counts& o) const {
    Counts out = *this;
    for (int i = 0; i < kNumCategories; ++i) {
      out.n[static_cast<size_t>(i)] += o.n[static_cast<size_t>(i)];
      out.succ[static_cast<size_t>(i)] += o.succ[static_cast<size_t>(i)];
    }
    out.total += o.total;
    out.funded += o.funded;
    out.tw_nonnull_followers += o.tw_nonnull_followers;
    return out;
  }
};

}  // namespace

const EngagementRow* EngagementTable::FindRow(const std::string& label) const {
  for (const auto& row : rows) {
    if (row.label == label) return &row;
  }
  return nullptr;
}

EngagementTable AnalyzeEngagement(
    std::shared_ptr<dataflow::ExecutionContext> ctx,
    const AnalysisInputs& inputs) {
  using dataflow::Dataset;

  // --- engagement medians (the split points of the table). --------------
  auto fb_ds = Dataset<FacebookRecord>::FromVector(ctx, inputs.facebook);
  auto tw_ds = Dataset<TwitterRecord>::FromVector(ctx, inputs.twitter);
  // Medians are taken over *valid* accounts (nonzero engagement, non-null
  // follower counts) — the paper's split points (652 likes, 343 tweets,
  // 339 followers) are medians "across all valid accounts", which is why
  // only 41-46% of all linked accounts clear them.
  stats::Summary likes_summary = stats::Summarize(
      fb_ds.Filter([](const FacebookRecord& r) { return r.fan_count > 0; })
          .Map([](const FacebookRecord& r) {
            return static_cast<double>(r.fan_count);
          })
          .Collect());
  stats::Summary tweets_summary = stats::Summarize(
      tw_ds.Filter([](const TwitterRecord& r) { return r.statuses_count > 0; })
          .Map([](const TwitterRecord& r) {
            return static_cast<double>(r.statuses_count);
          })
          .Collect());
  stats::Summary followers_summary = stats::Summarize(
      tw_ds.Filter([](const TwitterRecord& r) {
              return !r.followers_count_null && r.followers_count > 0;
            })
          .Map([](const TwitterRecord& r) {
            return static_cast<double>(r.followers_count);
          })
          .Collect());

  const double likes_med = likes_summary.median;
  const double tweets_med = tweets_summary.median;
  const double followers_med = followers_summary.median;

  // --- success: startups with CrunchBase funding evidence. ---------------
  auto funded_ids =
      Dataset<CrunchBaseRecord>::FromVector(ctx, inputs.crunchbase)
          .Filter([](const CrunchBaseRecord& r) { return r.funded(); })
          .Map([](const CrunchBaseRecord& r) { return r.angellist_id; })
          .Distinct()
          .Collect();
  auto funded_set = std::make_shared<std::unordered_set<uint64_t>>(
      funded_ids.begin(), funded_ids.end());

  // --- join startups with their social profiles. -------------------------
  auto startup_kv =
      Dataset<StartupRecord>::FromVector(ctx, inputs.startups)
          .Map([](const StartupRecord& s) { return std::make_pair(s.id, s); });
  auto fb_kv = fb_ds.Map(
      [](const FacebookRecord& r) { return std::make_pair(r.angellist_id, r); });
  auto tw_kv = tw_ds.Map(
      [](const TwitterRecord& r) { return std::make_pair(r.angellist_id, r); });

  auto with_fb = dataflow::LeftOuterJoin(startup_kv, fb_kv)
                     .Map([funded_set](const auto& kv) {
                       const StartupRecord& s = kv.second.first;
                       const FacebookRecord& fb = kv.second.second.first;
                       const bool has_fb = kv.second.second.second;
                       Feat f;
                       f.id = s.id;
                       f.video = s.has_video;
                       f.fb = has_fb;
                       f.likes = fb.fan_count;
                       f.success = funded_set->count(s.id) > 0;
                       return std::make_pair(s.id, f);
                     });
  auto feats = dataflow::LeftOuterJoin(with_fb, tw_kv)
                   .Map([](const auto& kv) {
                     Feat f = kv.second.first;
                     const TwitterRecord& tw = kv.second.second.first;
                     if (kv.second.second.second) {
                       f.tw = true;
                       f.tweets = tw.statuses_count;
                       f.followers = tw.followers_count;
                       f.followers_null = tw.followers_count_null;
                     }
                     return f;
                   });

  // --- aggregate category counts. -----------------------------------------
  Counts totals =
      feats
          .Map([likes_med, tweets_med, followers_med](const Feat& f) {
            Counts c;
            auto cats = Categorize(f, likes_med, tweets_med, followers_med);
            for (int i = 0; i < kNumCategories; ++i) {
              if (cats[static_cast<size_t>(i)]) {
                c.n[static_cast<size_t>(i)] = 1;
                if (f.success) c.succ[static_cast<size_t>(i)] = 1;
              }
            }
            c.total = 1;
            if (f.success) c.funded = 1;
            if (f.tw && !f.followers_null) c.tw_nonnull_followers = 1;
            return c;
          })
          .Reduce([](const Counts& a, const Counts& b) { return a.Add(b); },
                  Counts{});

  static const char* kLabels[kNumCategories] = {
      "No social media presence",
      "Facebook",
      "Twitter",
      "Facebook and Twitter",
      "Presence of demo video",
      "No demo video",
      "Facebook (likes > median)",
      "Twitter (tweets > median)",
      "Twitter (followers > median)",
      "Facebook (likes > median) and Twitter (followers > median)",
      "Facebook (likes > median) and Twitter (tweets > median)",
  };

  EngagementTable table;
  table.total_companies = totals.total;
  table.funded_companies = totals.funded;
  table.fb_likes_median = likes_med;
  table.tw_tweets_median = tweets_med;
  table.tw_followers_median = followers_med;
  table.twitter_nonnull_followers = totals.tw_nonnull_followers;
  for (int i = 0; i < kNumCategories; ++i) {
    EngagementRow row;
    row.label = kLabels[i];
    row.num_companies = totals.n[static_cast<size_t>(i)];
    row.pct_of_companies =
        totals.total == 0
            ? 0
            : 100.0 * static_cast<double>(row.num_companies) /
                  static_cast<double>(totals.total);
    row.success_pct =
        row.num_companies == 0
            ? 0
            : 100.0 * static_cast<double>(totals.succ[static_cast<size_t>(i)]) /
                  static_cast<double>(row.num_companies);
    // Association vs the complement set.
    int64_t in_succ = totals.succ[static_cast<size_t>(i)];
    int64_t in_fail = row.num_companies - in_succ;
    int64_t out_succ = totals.funded - in_succ;
    int64_t out_fail = (totals.total - row.num_companies) - out_succ;
    stats::ChiSquareResult chi =
        stats::ChiSquare2x2(in_succ, in_fail, out_succ, out_fail);
    row.chi_square_p_value = chi.p_value;
    row.odds_ratio = chi.odds_ratio;
    table.rows.push_back(std::move(row));
  }
  return table;
}

}  // namespace cfnet::core
