#ifndef CFNET_CORE_PLATFORM_H_
#define CFNET_CORE_PLATFORM_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "crawler/crawler.h"
#include "core/epoch_maintainer.h"
#include "core/records.h"
#include "dataflow/context.h"
#include "dataflow/dataset.h"
#include "dfs/dfs.h"
#include "dfs/jsonl.h"
#include "net/social_web.h"
#include "synth/world.h"
#include "util/result.h"

namespace cfnet::core {

/// Every typed snapshot, loaded and parsed — the input to all analyses.
struct AnalysisInputs {
  std::vector<StartupRecord> startups;
  std::vector<UserRecord> users;
  std::vector<CrunchBaseRecord> crunchbase;
  std::vector<FacebookRecord> facebook;
  std::vector<TwitterRecord> twitter;
};

/// The paper's "extensible exploratory platform" (Figure 2), end to end:
/// a synthetic ground-truth world behind simulated Web APIs, parallel
/// crawlers writing JSON snapshots into MiniDFS, and a MiniSpark execution
/// context the analyses run on.
///
/// Typical use:
///   ExploratoryPlatform::Options opts;
///   opts.world.scale = 0.05;
///   ExploratoryPlatform platform(opts);
///   CFNET_CHECK(platform.CollectData().ok());
///   auto inputs = platform.LoadInputs();
class ExploratoryPlatform {
 public:
  struct Options {
    synth::WorldConfig world;
    crawler::CrawlConfig crawl;
    dfs::DfsConfig dfs;
    /// Worker threads for the analytics engine (0 = hardware default).
    size_t analytics_parallelism = 0;
    /// Corruption-aware loads: before reading, sweep the snapshot tree
    /// (GC orphaned temp files, quarantine bad-footer shards), then scan in
    /// salvage mode — undecodable lines are dropped and counted instead of
    /// failing the analysis. `scan_report()` surfaces what was skipped.
    /// Off by default: a healthy pipeline should fail loudly on damage it
    /// did not expect.
    bool salvage_loads = false;
    /// Compact JSON snapshots into columnar (.cfc) files after each crawl
    /// flush, and prefer them on load (see core/columnar_records.h). JSON
    /// shards stay in place as the write/replay boundary and the fallback
    /// when a columnar file is stale or damaged.
    bool compact_snapshots = true;
    /// Fires after every successful crawl/replay flush (post compaction when
    /// `compact_snapshots` is on) with a monotonically increasing epoch
    /// number. The serving tier hooks this to rebuild and hot-swap its
    /// query snapshot; see src/serve. Runs on the crawler's flush thread —
    /// keep it cheap or hand the work off.
    std::function<void(uint64_t epoch)> epoch_published_hook;
    /// Maintain per-epoch analytics (merged investor graph, projection,
    /// refined communities) incrementally across crawl rounds: each
    /// `AdvanceEpoch()` scans only the snapshot bytes appended since the
    /// last scan, turns them into an edge-delta batch, and updates the
    /// EpochMaintainer at delta cost. See DESIGN.md §15.
    bool incremental_epochs = false;
    /// With `incremental_epochs`: run AdvanceEpoch() automatically inside
    /// the post-flush hook, so every crawl/replay flush publishes a
    /// serving-ready incremental epoch (instead of just a counter bump).
    bool auto_advance_epochs = false;
    EpochMaintainer::Config epoch_config;
  };

  /// What one AdvanceEpoch() round did.
  struct EpochAdvanceReport {
    uint64_t epoch = 0;            // epoch number published by this round
    bool full_rebuild = false;     // baseline build (first round or reset)
    bool watermark_reset = false;  // shard truncation detected -> rescan
    size_t files_scanned = 0;
    size_t records_parsed = 0;
    size_t delta_edges_emitted = 0;  // raw add-deltas extracted this round
    EpochBuildReport build;
  };

  explicit ExploratoryPlatform(const Options& options);

  ExploratoryPlatform(const ExploratoryPlatform&) = delete;
  ExploratoryPlatform& operator=(const ExploratoryPlatform&) = delete;

  /// Runs the full crawl pipeline (AngelList BFS + CrunchBase/Facebook/
  /// Twitter augmentation), writing snapshots into the DFS.
  Status CollectData();

  /// Parses every snapshot into typed records (parallel, via the dataflow
  /// engine). Requires CollectData() first. Cached after the first call.
  Result<AnalysisInputs> LoadInputs();

  /// Compacts every snapshot directory's JSON shards into columnar files
  /// (no-op for up-to-date directories). Runs automatically after each
  /// crawl flush when `compact_snapshots` is on; exposed for tests and for
  /// re-compacting after out-of-band snapshot edits.
  Status CompactSnapshots();

  /// Loads one snapshot directory as a dataset of parsed JSON documents.
  Result<dataflow::Dataset<json::Json>> LoadSnapshotDataset(
      const std::string& dir);

  const synth::World& world() const { return *world_; }
  net::SocialWeb& web() { return *web_; }
  dfs::MiniDfs& dfs() { return *dfs_; }
  crawler::Crawler& crawler() { return *crawler_; }
  const crawler::CrawlReport& crawl_report() const {
    return crawler_->report();
  }
  /// Aggregate scan accounting across every LoadInputs/LoadSnapshotDataset
  /// call: files scanned, footer-verified vs raw, salvaged drops, and the
  /// paths quarantined by the pre-load sweep (salvage mode only).
  const dfs::ScanReport& scan_report() const { return scan_report_; }
  std::shared_ptr<dataflow::ExecutionContext> context() { return ctx_; }
  /// Number of snapshot epochs published so far (flush count).
  uint64_t snapshot_epoch() const {
    return snapshot_epoch_.load(std::memory_order_acquire);
  }

  /// Incremental epoch production: scans the user/CrunchBase snapshot
  /// shards past their per-file watermarks (committed payload bytes already
  /// consumed), extracts the new investment edges as a delta batch, and
  /// advances the EpochMaintainer — a full baseline build on the first
  /// round (or after a watermark regression, i.e. a shard shrank under a
  /// resume rollback), the delta path afterwards. Publishes a snapshot
  /// epoch and fires `epoch_published_hook`. Thread-safe.
  Result<EpochAdvanceReport> AdvanceEpoch();

  /// The maintainer behind AdvanceEpoch (nullptr before the first call).
  /// The returned artifacts stay valid until the next AdvanceEpoch().
  const EpochMaintainer* epoch_maintainer() const {
    return epoch_maintainer_.get();
  }
  /// Report of the last AdvanceEpoch() round.
  const EpochAdvanceReport& last_epoch_report() const {
    return last_epoch_report_;
  }

 private:
  Result<EpochAdvanceReport> AdvanceEpochLocked();
  Options options_;
  std::unique_ptr<synth::World> world_;
  std::unique_ptr<net::SocialWeb> web_;
  std::unique_ptr<dfs::MiniDfs> dfs_;
  std::unique_ptr<crawler::Crawler> crawler_;
  std::shared_ptr<dataflow::ExecutionContext> ctx_;
  bool collected_ = false;
  std::atomic<uint64_t> snapshot_epoch_{0};
  std::unique_ptr<AnalysisInputs> cached_inputs_;
  dfs::ScanReport scan_report_;

  /// Incremental-epoch state, guarded by epoch_mu_ (AdvanceEpoch can run
  /// on the crawler's flush thread in auto mode).
  std::mutex epoch_mu_;
  std::unique_ptr<EpochMaintainer> epoch_maintainer_;
  /// Committed payload bytes of each JSON shard already turned into
  /// deltas; a shard whose payload shrank below its watermark signals a
  /// rollback and forces a full rescan.
  std::map<std::string, uint64_t> epoch_watermarks_;
  EpochAdvanceReport last_epoch_report_;
};

}  // namespace cfnet::core

#endif  // CFNET_CORE_PLATFORM_H_
