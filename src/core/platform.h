#ifndef CFNET_CORE_PLATFORM_H_
#define CFNET_CORE_PLATFORM_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "crawler/crawler.h"
#include "core/records.h"
#include "dataflow/context.h"
#include "dataflow/dataset.h"
#include "dfs/dfs.h"
#include "dfs/jsonl.h"
#include "net/social_web.h"
#include "synth/world.h"
#include "util/result.h"

namespace cfnet::core {

/// Every typed snapshot, loaded and parsed — the input to all analyses.
struct AnalysisInputs {
  std::vector<StartupRecord> startups;
  std::vector<UserRecord> users;
  std::vector<CrunchBaseRecord> crunchbase;
  std::vector<FacebookRecord> facebook;
  std::vector<TwitterRecord> twitter;
};

/// The paper's "extensible exploratory platform" (Figure 2), end to end:
/// a synthetic ground-truth world behind simulated Web APIs, parallel
/// crawlers writing JSON snapshots into MiniDFS, and a MiniSpark execution
/// context the analyses run on.
///
/// Typical use:
///   ExploratoryPlatform::Options opts;
///   opts.world.scale = 0.05;
///   ExploratoryPlatform platform(opts);
///   CFNET_CHECK(platform.CollectData().ok());
///   auto inputs = platform.LoadInputs();
class ExploratoryPlatform {
 public:
  struct Options {
    synth::WorldConfig world;
    crawler::CrawlConfig crawl;
    dfs::DfsConfig dfs;
    /// Worker threads for the analytics engine (0 = hardware default).
    size_t analytics_parallelism = 0;
    /// Corruption-aware loads: before reading, sweep the snapshot tree
    /// (GC orphaned temp files, quarantine bad-footer shards), then scan in
    /// salvage mode — undecodable lines are dropped and counted instead of
    /// failing the analysis. `scan_report()` surfaces what was skipped.
    /// Off by default: a healthy pipeline should fail loudly on damage it
    /// did not expect.
    bool salvage_loads = false;
    /// Compact JSON snapshots into columnar (.cfc) files after each crawl
    /// flush, and prefer them on load (see core/columnar_records.h). JSON
    /// shards stay in place as the write/replay boundary and the fallback
    /// when a columnar file is stale or damaged.
    bool compact_snapshots = true;
    /// Fires after every successful crawl/replay flush (post compaction when
    /// `compact_snapshots` is on) with a monotonically increasing epoch
    /// number. The serving tier hooks this to rebuild and hot-swap its
    /// query snapshot; see src/serve. Runs on the crawler's flush thread —
    /// keep it cheap or hand the work off.
    std::function<void(uint64_t epoch)> epoch_published_hook;
  };

  explicit ExploratoryPlatform(const Options& options);

  ExploratoryPlatform(const ExploratoryPlatform&) = delete;
  ExploratoryPlatform& operator=(const ExploratoryPlatform&) = delete;

  /// Runs the full crawl pipeline (AngelList BFS + CrunchBase/Facebook/
  /// Twitter augmentation), writing snapshots into the DFS.
  Status CollectData();

  /// Parses every snapshot into typed records (parallel, via the dataflow
  /// engine). Requires CollectData() first. Cached after the first call.
  Result<AnalysisInputs> LoadInputs();

  /// Compacts every snapshot directory's JSON shards into columnar files
  /// (no-op for up-to-date directories). Runs automatically after each
  /// crawl flush when `compact_snapshots` is on; exposed for tests and for
  /// re-compacting after out-of-band snapshot edits.
  Status CompactSnapshots();

  /// Loads one snapshot directory as a dataset of parsed JSON documents.
  Result<dataflow::Dataset<json::Json>> LoadSnapshotDataset(
      const std::string& dir);

  const synth::World& world() const { return *world_; }
  net::SocialWeb& web() { return *web_; }
  dfs::MiniDfs& dfs() { return *dfs_; }
  crawler::Crawler& crawler() { return *crawler_; }
  const crawler::CrawlReport& crawl_report() const {
    return crawler_->report();
  }
  /// Aggregate scan accounting across every LoadInputs/LoadSnapshotDataset
  /// call: files scanned, footer-verified vs raw, salvaged drops, and the
  /// paths quarantined by the pre-load sweep (salvage mode only).
  const dfs::ScanReport& scan_report() const { return scan_report_; }
  std::shared_ptr<dataflow::ExecutionContext> context() { return ctx_; }
  /// Number of snapshot epochs published so far (flush count).
  uint64_t snapshot_epoch() const {
    return snapshot_epoch_.load(std::memory_order_acquire);
  }

 private:
  Options options_;
  std::unique_ptr<synth::World> world_;
  std::unique_ptr<net::SocialWeb> web_;
  std::unique_ptr<dfs::MiniDfs> dfs_;
  std::unique_ptr<crawler::Crawler> crawler_;
  std::shared_ptr<dataflow::ExecutionContext> ctx_;
  bool collected_ = false;
  std::atomic<uint64_t> snapshot_epoch_{0};
  std::unique_ptr<AnalysisInputs> cached_inputs_;
  dfs::ScanReport scan_report_;
};

}  // namespace cfnet::core

#endif  // CFNET_CORE_PLATFORM_H_
