#ifndef CFNET_GRAPH_GRAPH_IO_H_
#define CFNET_GRAPH_GRAPH_IO_H_

#include <string>

#include "dfs/dfs.h"
#include "graph/bipartite_graph.h"
#include "util/result.h"

namespace cfnet::graph {

/// Persistence + interop for the investor graph (Figure 2's "external
/// plug-ins": the paper feeds the bipartite graph to SNAP's CoDA binary and
/// igraph; these writers produce the interchange formats).

/// Serializes the graph to MiniDFS in a compact binary format (magic,
/// version, id tables, CSR arrays). Deterministic byte-for-byte.
Status WriteBipartiteGraph(dfs::MiniDfs* dfs, const std::string& path,
                           const BipartiteGraph& g);

/// Reads a graph written by WriteBipartiteGraph; validates the header and
/// structural invariants, failing with Corruption on any mismatch.
Result<BipartiteGraph> ReadBipartiteGraph(const dfs::MiniDfs& dfs,
                                          const std::string& path);

/// SNAP-style directed edge list ("# comments, then <src>\t<dst>" lines,
/// external ids) — the input format of the SNAP CoDA tool the paper uses.
std::string ToSnapEdgeList(const BipartiteGraph& g);

/// Parses a SNAP edge list back into a bipartite graph (lines starting
/// with '#' are comments; each data line is "src<TAB>dst").
Result<BipartiteGraph> FromSnapEdgeList(const std::string& text);

}  // namespace cfnet::graph

#endif  // CFNET_GRAPH_GRAPH_IO_H_
