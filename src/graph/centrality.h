#ifndef CFNET_GRAPH_CENTRALITY_H_
#define CFNET_GRAPH_CENTRALITY_H_

#include <cstdint>
#include <vector>

#include "graph/weighted_graph.h"
#include "util/parallel.h"

namespace cfnet::graph {

/// Centrality and connectivity measures over the (undirected, weighted)
/// co-investment projection — the §7 graph characteristics the paper plans
/// to feed into success prediction ("node degree, connectivity, and
/// measures of centrality").

/// Connected components; returns per-node component id (0-based, by
/// discovery order) and sets *num_components.
std::vector<int> ConnectedComponents(const WeightedGraph& g,
                                     size_t* num_components);

/// Size of the largest connected component.
size_t LargestComponentSize(const WeightedGraph& g);

/// Unweighted degree centrality, normalized by (n-1).
std::vector<double> DegreeCentrality(const WeightedGraph& g);

/// Harmonic (closeness-like) centrality via BFS on the unweighted
/// skeleton: C(v) = sum_{u != v} 1/d(v,u), normalized by (n-1).
/// Exact when `sample_sources` = 0; otherwise estimated from that many
/// sampled sources (scales to large graphs).
///
/// Sources fan out over `par.pool` with per-slot BFS scratch; each source's
/// contribution is folded into the score vector in ascending source order
/// on the calling thread, so the result is bit-identical for every thread
/// count and morsel size.
std::vector<double> HarmonicCentrality(const WeightedGraph& g,
                                       size_t sample_sources = 0,
                                       uint64_t seed = 1,
                                       const ParallelOptions& par = {});

/// Brandes betweenness centrality on the unweighted skeleton, normalized
/// to [0,1] by (n-1)(n-2)/2. Exact when `sample_sources` = 0; otherwise a
/// scaled estimate from sampled sources (Brandes & Pich 2007).
///
/// Parallelized over sources (Brandes fan-out): each source runs its BFS +
/// dependency accumulation in private scratch, and deltas are committed in
/// ascending source order (ordered reduction) — bit-identical to the
/// 1-thread run for any pool width or morsel size.
std::vector<double> BetweennessCentrality(const WeightedGraph& g,
                                          size_t sample_sources = 0,
                                          uint64_t seed = 1,
                                          const ParallelOptions& par = {});

/// K-core decomposition (unweighted): per-node core number — the maximal
/// k such that the node belongs to a subgraph of minimum degree k.
std::vector<int> CoreNumbers(const WeightedGraph& g);

/// PageRank with uniform teleport (damping d), on edge weights.
std::vector<double> PageRank(const WeightedGraph& g, double damping = 0.85,
                             int max_iterations = 100, double tolerance = 1e-9);

}  // namespace cfnet::graph

#endif  // CFNET_GRAPH_CENTRALITY_H_
