#include "graph/graph_io.h"

#include <cstring>

#include "util/string_util.h"

namespace cfnet::graph {
namespace {

constexpr char kMagic[8] = {'C', 'F', 'B', 'G', 'R', 'P', 'H', '1'};

void AppendU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

bool ReadU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<unsigned char>(in[*pos + static_cast<size_t>(i)]))
          << (8 * i);
  }
  *pos += 8;
  return true;
}

}  // namespace

Status WriteBipartiteGraph(dfs::MiniDfs* dfs, const std::string& path,
                           const BipartiteGraph& g) {
  std::string out;
  out.reserve(8 + 24 + g.num_edges() * 16);
  out.append(kMagic, sizeof(kMagic));
  AppendU64(out, g.num_left());
  AppendU64(out, g.num_right());
  AppendU64(out, g.num_edges());
  for (uint32_t l = 0; l < g.num_left(); ++l) AppendU64(out, g.LeftId(l));
  for (uint32_t r = 0; r < g.num_right(); ++r) AppendU64(out, g.RightId(r));
  for (uint32_t l = 0; l < g.num_left(); ++l) {
    auto nbrs = g.OutNeighbors(l);
    AppendU64(out, nbrs.size());
    for (uint32_t r : nbrs) AppendU64(out, r);
  }
  return dfs->WriteFile(path, out);
}

Result<BipartiteGraph> ReadBipartiteGraph(const dfs::MiniDfs& dfs,
                                          const std::string& path) {
  CFNET_ASSIGN_OR_RETURN(std::string in, dfs.ReadFile(path));
  if (in.size() < sizeof(kMagic) ||
      std::memcmp(in.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad graph file magic: " + path);
  }
  size_t pos = sizeof(kMagic);
  uint64_t num_left = 0;
  uint64_t num_right = 0;
  uint64_t num_edges = 0;
  if (!ReadU64(in, &pos, &num_left) || !ReadU64(in, &pos, &num_right) ||
      !ReadU64(in, &pos, &num_edges)) {
    return Status::Corruption("truncated graph header");
  }
  std::vector<uint64_t> left_ids(num_left);
  std::vector<uint64_t> right_ids(num_right);
  for (auto& id : left_ids) {
    if (!ReadU64(in, &pos, &id)) return Status::Corruption("truncated ids");
  }
  for (auto& id : right_ids) {
    if (!ReadU64(in, &pos, &id)) return Status::Corruption("truncated ids");
  }
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  edges.reserve(num_edges);
  for (uint64_t l = 0; l < num_left; ++l) {
    uint64_t degree = 0;
    if (!ReadU64(in, &pos, &degree)) return Status::Corruption("truncated CSR");
    for (uint64_t e = 0; e < degree; ++e) {
      uint64_t r = 0;
      if (!ReadU64(in, &pos, &r)) return Status::Corruption("truncated CSR");
      if (r >= num_right) return Status::Corruption("neighbor out of range");
      edges.emplace_back(left_ids[l], right_ids[r]);
    }
  }
  if (edges.size() != num_edges) {
    return Status::Corruption("edge count mismatch in " + path);
  }
  if (pos != in.size()) {
    return Status::Corruption("trailing bytes in graph file");
  }
  return BipartiteGraph::FromEdges(edges);
}

std::string ToSnapEdgeList(const BipartiteGraph& g) {
  std::string out;
  out += "# Directed bipartite investment graph (investor -> company)\n";
  out += StrFormat("# Nodes: %zu+%zu Edges: %zu\n", g.num_left(), g.num_right(),
                   g.num_edges());
  out += "# SrcNId\tDstNId\n";
  for (uint32_t l = 0; l < g.num_left(); ++l) {
    for (uint32_t r : g.OutNeighbors(l)) {
      out += std::to_string(g.LeftId(l));
      out.push_back('\t');
      out += std::to_string(g.RightId(r));
      out.push_back('\n');
    }
  }
  return out;
}

Result<BipartiteGraph> FromSnapEdgeList(const std::string& text) {
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  size_t start = 0;
  size_t line_no = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    ++line_no;
    std::string_view line(text.data() + start, end - start);
    start = end + 1;
    line = StrTrim(line);
    if (line.empty() || line[0] == '#') continue;
    size_t tab = line.find('\t');
    if (tab == std::string_view::npos) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": expected <src>\\t<dst>");
    }
    char* parse_end = nullptr;
    std::string src(line.substr(0, tab));
    std::string dst(line.substr(tab + 1));
    uint64_t s = std::strtoull(src.c_str(), &parse_end, 10);
    if (parse_end != src.c_str() + src.size()) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": bad source id");
    }
    uint64_t d = std::strtoull(dst.c_str(), &parse_end, 10);
    if (parse_end != dst.c_str() + dst.size()) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": bad destination id");
    }
    edges.emplace_back(s, d);
  }
  return BipartiteGraph::FromEdges(edges);
}

}  // namespace cfnet::graph
