#include "graph/centrality.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

#include "util/rng.h"

namespace cfnet::graph {

std::vector<int> ConnectedComponents(const WeightedGraph& g,
                                     size_t* num_components) {
  const size_t n = g.num_nodes();
  std::vector<int> component(n, -1);
  int next = 0;
  std::deque<uint32_t> queue;
  for (uint32_t start = 0; start < n; ++start) {
    if (component[start] != -1) continue;
    component[start] = next;
    queue.push_back(start);
    while (!queue.empty()) {
      uint32_t v = queue.front();
      queue.pop_front();
      for (uint32_t u : g.Neighbors(v)) {
        if (component[u] == -1) {
          component[u] = next;
          queue.push_back(u);
        }
      }
    }
    ++next;
  }
  if (num_components != nullptr) *num_components = static_cast<size_t>(next);
  return component;
}

size_t LargestComponentSize(const WeightedGraph& g) {
  size_t num = 0;
  std::vector<int> component = ConnectedComponents(g, &num);
  std::vector<size_t> sizes(num, 0);
  for (int c : component) ++sizes[static_cast<size_t>(c)];
  size_t best = 0;
  for (size_t s : sizes) best = std::max(best, s);
  return best;
}

std::vector<double> DegreeCentrality(const WeightedGraph& g) {
  const size_t n = g.num_nodes();
  std::vector<double> out(n, 0);
  if (n <= 1) return out;
  for (uint32_t v = 0; v < n; ++v) {
    out[v] = static_cast<double>(g.Neighbors(v).size()) /
             static_cast<double>(n - 1);
  }
  return out;
}

namespace {

/// Sources for sampled centrality: all nodes when samples == 0 or >= n.
std::vector<uint32_t> PickSources(size_t n, size_t samples, uint64_t seed) {
  std::vector<uint32_t> sources;
  if (samples == 0 || samples >= n) {
    sources.resize(n);
    std::iota(sources.begin(), sources.end(), 0);
  } else {
    Rng rng(seed);
    for (size_t idx : rng.SampleWithoutReplacement(n, samples)) {
      sources.push_back(static_cast<uint32_t>(idx));
    }
  }
  return sources;
}

}  // namespace

namespace {

/// Per-slot scratch of one in-flight BFS/Brandes source. `order` doubles as
/// the BFS queue (a head cursor walks it), and survives until the ordered
/// commit folds the slot's contribution into the global score.
struct SourceScratch {
  std::vector<int> dist;
  std::vector<double> sigma;
  std::vector<double> delta;
  std::vector<uint32_t> order;  // nodes in non-decreasing distance

  void Resize(size_t n) {
    dist.resize(n);
    sigma.resize(n);
    delta.resize(n);
    order.reserve(n);
  }
};

size_t WaveSlots(const ParallelOptions& par) {
  return std::max<size_t>(1, par.threads() * 2);
}

}  // namespace

std::vector<double> HarmonicCentrality(const WeightedGraph& g,
                                       size_t sample_sources, uint64_t seed,
                                       const ParallelOptions& par) {
  const size_t n = g.num_nodes();
  std::vector<double> score(n, 0);
  if (n <= 1) return score;
  std::vector<uint32_t> sources = PickSources(n, sample_sources, seed);

  // Accumulate 1/d(source, v) into score[v]; by symmetry of distances this
  // estimates the same quantity as summing from v outward. Each source's
  // BFS runs in slot-private scratch; contributions commit in source order.
  const size_t slots = WaveSlots(par);
  std::vector<SourceScratch> scratch(slots);
  for (auto& sc : scratch) sc.Resize(n);
  RunOrderedWaves(
      par, sources.size(), slots,
      [&](size_t i, size_t slot) {
        SourceScratch& sc = scratch[slot];
        std::fill(sc.dist.begin(), sc.dist.end(), -1);
        sc.order.clear();
        const uint32_t s = sources[i];
        sc.dist[s] = 0;
        sc.order.push_back(s);
        for (size_t head = 0; head < sc.order.size(); ++head) {
          uint32_t v = sc.order[head];
          for (uint32_t u : g.Neighbors(v)) {
            if (sc.dist[u] == -1) {
              sc.dist[u] = sc.dist[v] + 1;
              sc.order.push_back(u);
            }
          }
        }
      },
      [&](size_t i, size_t slot) {
        const SourceScratch& sc = scratch[slot];
        const uint32_t s = sources[i];
        for (uint32_t v : sc.order) {
          if (v != s) score[v] += 1.0 / sc.dist[v];
        }
      });
  const double norm = static_cast<double>(sources.size()) /
                      static_cast<double>(n) * static_cast<double>(n - 1);
  for (double& x : score) x /= norm;
  return score;
}

std::vector<double> BetweennessCentrality(const WeightedGraph& g,
                                          size_t sample_sources, uint64_t seed,
                                          const ParallelOptions& par) {
  const size_t n = g.num_nodes();
  std::vector<double> score(n, 0);
  if (n <= 2) return score;
  std::vector<uint32_t> sources = PickSources(n, sample_sources, seed);

  // Brandes fan-out: every source runs its forward BFS and backward
  // dependency accumulation in slot-private scratch. Predecessor lists are
  // recomputed from the distance array on the backward pass (dist[v] ==
  // dist[w] - 1) instead of materialized, which drops the vector-of-vectors
  // churn from the inner loop. Deltas commit in ascending source order so
  // the floating-point fold is identical for any pool width.
  const size_t slots = WaveSlots(par);
  std::vector<SourceScratch> scratch(slots);
  for (auto& sc : scratch) sc.Resize(n);
  RunOrderedWaves(
      par, sources.size(), slots,
      [&](size_t i, size_t slot) {
        SourceScratch& sc = scratch[slot];
        std::fill(sc.dist.begin(), sc.dist.end(), -1);
        std::fill(sc.sigma.begin(), sc.sigma.end(), 0.0);
        std::fill(sc.delta.begin(), sc.delta.end(), 0.0);
        sc.order.clear();
        const uint32_t s = sources[i];
        sc.dist[s] = 0;
        sc.sigma[s] = 1;
        sc.order.push_back(s);
        for (size_t head = 0; head < sc.order.size(); ++head) {
          uint32_t v = sc.order[head];
          for (uint32_t u : g.Neighbors(v)) {
            if (sc.dist[u] == -1) {
              sc.dist[u] = sc.dist[v] + 1;
              sc.order.push_back(u);
            }
            if (sc.dist[u] == sc.dist[v] + 1) sc.sigma[u] += sc.sigma[v];
          }
        }
        for (auto it = sc.order.rbegin(); it != sc.order.rend(); ++it) {
          uint32_t w = *it;
          const double coeff = (1.0 + sc.delta[w]) / sc.sigma[w];
          for (uint32_t v : g.Neighbors(w)) {
            if (sc.dist[v] == sc.dist[w] - 1) {
              sc.delta[v] += sc.sigma[v] * coeff;
            }
          }
        }
      },
      [&](size_t i, size_t slot) {
        const SourceScratch& sc = scratch[slot];
        const uint32_t s = sources[i];
        for (uint32_t w : sc.order) {
          if (w != s) score[w] += sc.delta[w];
        }
      });

  // Undirected double-counting plus sampling scale-up plus normalization.
  const double scale_up =
      static_cast<double>(n) / static_cast<double>(sources.size());
  const double pairs =
      static_cast<double>(n - 1) * static_cast<double>(n - 2) / 2.0;
  for (double& x : score) x = x * scale_up / 2.0 / pairs;
  return score;
}

std::vector<int> CoreNumbers(const WeightedGraph& g) {
  const size_t n = g.num_nodes();
  std::vector<int> degree(n);
  int max_degree = 0;
  for (uint32_t v = 0; v < n; ++v) {
    degree[v] = static_cast<int>(g.Neighbors(v).size());
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket sort by degree (Batagelj-Zaversnik peeling).
  std::vector<std::vector<uint32_t>> buckets(static_cast<size_t>(max_degree) + 1);
  for (uint32_t v = 0; v < n; ++v) {
    buckets[static_cast<size_t>(degree[v])].push_back(v);
  }
  std::vector<int> core(n, 0);
  std::vector<char> removed(n, 0);
  int current = 0;
  for (int d = 0; d <= max_degree; ++d) {
    // Buckets can gain nodes below the current level as degrees drop.
    for (size_t i = 0; i < buckets[static_cast<size_t>(d)].size(); ++i) {
      uint32_t v = buckets[static_cast<size_t>(d)][i];
      if (removed[v] || degree[v] > d) continue;
      current = std::max(current, d);
      core[v] = current;
      removed[v] = 1;
      for (uint32_t u : g.Neighbors(v)) {
        if (!removed[u] && degree[u] > d) {
          --degree[u];
          if (degree[u] <= d) {
            buckets[static_cast<size_t>(d)].push_back(u);
          } else {
            buckets[static_cast<size_t>(degree[u])].push_back(u);
          }
        }
      }
    }
  }
  return core;
}

std::vector<double> PageRank(const WeightedGraph& g, double damping,
                             int max_iterations, double tolerance) {
  const size_t n = g.num_nodes();
  std::vector<double> rank(n, n == 0 ? 0.0 : 1.0 / static_cast<double>(n));
  if (n == 0) return rank;
  std::vector<double> next(n, 0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    double dangling = 0;
    for (uint32_t v = 0; v < n; ++v) {
      if (g.WeightedDegree(v) <= 0) dangling += rank[v];
    }
    double base = (1.0 - damping) / static_cast<double>(n) +
                  damping * dangling / static_cast<double>(n);
    std::fill(next.begin(), next.end(), base);
    for (uint32_t v = 0; v < n; ++v) {
      double wd = g.WeightedDegree(v);
      if (wd <= 0) continue;
      auto nbrs = g.Neighbors(v);
      auto ws = g.Weights(v);
      double share = damping * rank[v] / wd;
      for (size_t i = 0; i < nbrs.size(); ++i) {
        next[nbrs[i]] += share * ws[i];
      }
    }
    double diff = 0;
    for (uint32_t v = 0; v < n; ++v) diff += std::fabs(next[v] - rank[v]);
    rank.swap(next);
    if (diff < tolerance) break;
  }
  return rank;
}

}  // namespace cfnet::graph
