#include "graph/centrality.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

#include "util/rng.h"

namespace cfnet::graph {

std::vector<int> ConnectedComponents(const WeightedGraph& g,
                                     size_t* num_components) {
  const size_t n = g.num_nodes();
  std::vector<int> component(n, -1);
  int next = 0;
  std::deque<uint32_t> queue;
  for (uint32_t start = 0; start < n; ++start) {
    if (component[start] != -1) continue;
    component[start] = next;
    queue.push_back(start);
    while (!queue.empty()) {
      uint32_t v = queue.front();
      queue.pop_front();
      for (uint32_t u : g.Neighbors(v)) {
        if (component[u] == -1) {
          component[u] = next;
          queue.push_back(u);
        }
      }
    }
    ++next;
  }
  if (num_components != nullptr) *num_components = static_cast<size_t>(next);
  return component;
}

size_t LargestComponentSize(const WeightedGraph& g) {
  size_t num = 0;
  std::vector<int> component = ConnectedComponents(g, &num);
  std::vector<size_t> sizes(num, 0);
  for (int c : component) ++sizes[static_cast<size_t>(c)];
  size_t best = 0;
  for (size_t s : sizes) best = std::max(best, s);
  return best;
}

std::vector<double> DegreeCentrality(const WeightedGraph& g) {
  const size_t n = g.num_nodes();
  std::vector<double> out(n, 0);
  if (n <= 1) return out;
  for (uint32_t v = 0; v < n; ++v) {
    out[v] = static_cast<double>(g.Neighbors(v).size()) /
             static_cast<double>(n - 1);
  }
  return out;
}

namespace {

/// Sources for sampled centrality: all nodes when samples == 0 or >= n.
std::vector<uint32_t> PickSources(size_t n, size_t samples, uint64_t seed) {
  std::vector<uint32_t> sources;
  if (samples == 0 || samples >= n) {
    sources.resize(n);
    std::iota(sources.begin(), sources.end(), 0);
  } else {
    Rng rng(seed);
    for (size_t idx : rng.SampleWithoutReplacement(n, samples)) {
      sources.push_back(static_cast<uint32_t>(idx));
    }
  }
  return sources;
}

}  // namespace

std::vector<double> HarmonicCentrality(const WeightedGraph& g,
                                       size_t sample_sources, uint64_t seed) {
  const size_t n = g.num_nodes();
  std::vector<double> score(n, 0);
  if (n <= 1) return score;
  std::vector<uint32_t> sources = PickSources(n, sample_sources, seed);
  // Accumulate 1/d(source, v) into score[v]; by symmetry of distances this
  // estimates the same quantity as summing from v outward.
  std::vector<int> dist(n);
  std::deque<uint32_t> queue;
  for (uint32_t s : sources) {
    std::fill(dist.begin(), dist.end(), -1);
    dist[s] = 0;
    queue.push_back(s);
    while (!queue.empty()) {
      uint32_t v = queue.front();
      queue.pop_front();
      for (uint32_t u : g.Neighbors(v)) {
        if (dist[u] == -1) {
          dist[u] = dist[v] + 1;
          queue.push_back(u);
        }
      }
    }
    for (uint32_t v = 0; v < n; ++v) {
      if (v != s && dist[v] > 0) score[v] += 1.0 / dist[v];
    }
  }
  const double norm = static_cast<double>(sources.size()) /
                      static_cast<double>(n) * static_cast<double>(n - 1);
  for (double& x : score) x /= norm;
  return score;
}

std::vector<double> BetweennessCentrality(const WeightedGraph& g,
                                          size_t sample_sources,
                                          uint64_t seed) {
  const size_t n = g.num_nodes();
  std::vector<double> score(n, 0);
  if (n <= 2) return score;
  std::vector<uint32_t> sources = PickSources(n, sample_sources, seed);

  // Brandes' accumulation per source.
  std::vector<int> dist(n);
  std::vector<double> sigma(n);
  std::vector<double> delta(n);
  std::vector<std::vector<uint32_t>> preds(n);
  std::vector<uint32_t> order;  // nodes in non-decreasing distance
  order.reserve(n);
  std::deque<uint32_t> queue;

  for (uint32_t s : sources) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    for (auto& p : preds) p.clear();
    order.clear();

    dist[s] = 0;
    sigma[s] = 1;
    queue.push_back(s);
    while (!queue.empty()) {
      uint32_t v = queue.front();
      queue.pop_front();
      order.push_back(v);
      for (uint32_t u : g.Neighbors(v)) {
        if (dist[u] == -1) {
          dist[u] = dist[v] + 1;
          queue.push_back(u);
        }
        if (dist[u] == dist[v] + 1) {
          sigma[u] += sigma[v];
          preds[u].push_back(v);
        }
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      uint32_t w = *it;
      for (uint32_t v : preds[w]) {
        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
      }
      if (w != s) score[w] += delta[w];
    }
  }

  // Undirected double-counting plus sampling scale-up plus normalization.
  const double scale_up =
      static_cast<double>(n) / static_cast<double>(sources.size());
  const double pairs =
      static_cast<double>(n - 1) * static_cast<double>(n - 2) / 2.0;
  for (double& x : score) x = x * scale_up / 2.0 / pairs;
  return score;
}

std::vector<int> CoreNumbers(const WeightedGraph& g) {
  const size_t n = g.num_nodes();
  std::vector<int> degree(n);
  int max_degree = 0;
  for (uint32_t v = 0; v < n; ++v) {
    degree[v] = static_cast<int>(g.Neighbors(v).size());
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket sort by degree (Batagelj-Zaversnik peeling).
  std::vector<std::vector<uint32_t>> buckets(static_cast<size_t>(max_degree) + 1);
  for (uint32_t v = 0; v < n; ++v) {
    buckets[static_cast<size_t>(degree[v])].push_back(v);
  }
  std::vector<int> core(n, 0);
  std::vector<char> removed(n, 0);
  int current = 0;
  for (int d = 0; d <= max_degree; ++d) {
    // Buckets can gain nodes below the current level as degrees drop.
    for (size_t i = 0; i < buckets[static_cast<size_t>(d)].size(); ++i) {
      uint32_t v = buckets[static_cast<size_t>(d)][i];
      if (removed[v] || degree[v] > d) continue;
      current = std::max(current, d);
      core[v] = current;
      removed[v] = 1;
      for (uint32_t u : g.Neighbors(v)) {
        if (!removed[u] && degree[u] > d) {
          --degree[u];
          if (degree[u] <= d) {
            buckets[static_cast<size_t>(d)].push_back(u);
          } else {
            buckets[static_cast<size_t>(degree[u])].push_back(u);
          }
        }
      }
    }
  }
  return core;
}

std::vector<double> PageRank(const WeightedGraph& g, double damping,
                             int max_iterations, double tolerance) {
  const size_t n = g.num_nodes();
  std::vector<double> rank(n, n == 0 ? 0.0 : 1.0 / static_cast<double>(n));
  if (n == 0) return rank;
  std::vector<double> next(n, 0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    double dangling = 0;
    for (uint32_t v = 0; v < n; ++v) {
      if (g.WeightedDegree(v) <= 0) dangling += rank[v];
    }
    double base = (1.0 - damping) / static_cast<double>(n) +
                  damping * dangling / static_cast<double>(n);
    std::fill(next.begin(), next.end(), base);
    for (uint32_t v = 0; v < n; ++v) {
      double wd = g.WeightedDegree(v);
      if (wd <= 0) continue;
      auto nbrs = g.Neighbors(v);
      auto ws = g.Weights(v);
      double share = damping * rank[v] / wd;
      for (size_t i = 0; i < nbrs.size(); ++i) {
        next[nbrs[i]] += share * ws[i];
      }
    }
    double diff = 0;
    for (uint32_t v = 0; v < n; ++v) diff += std::fabs(next[v] - rank[v]);
    rank.swap(next);
    if (diff < tolerance) break;
  }
  return rank;
}

}  // namespace cfnet::graph
