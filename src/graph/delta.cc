#include "graph/delta.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/simd.h"

namespace cfnet::graph {
namespace {

constexpr uint32_t kInvalid = BipartiteGraph::kInvalidIndex;

bool PairLess(const EdgeDelta& a, const EdgeDelta& b) {
  return a.left_id != b.left_id ? a.left_id < b.left_id
                                : a.right_id < b.right_id;
}

/// Sort by (left, right) keeping arrival order within a pair, then keep the
/// last op of each run.
std::vector<EdgeDelta> NormalizeDeltas(const std::vector<EdgeDelta>& deltas) {
  std::vector<EdgeDelta> out = deltas;
  std::stable_sort(out.begin(), out.end(), PairLess);
  size_t write = 0;
  for (size_t i = 0; i < out.size();) {
    size_t j = i;
    while (j + 1 < out.size() && out[j + 1].left_id == out[i].left_id &&
           out[j + 1].right_id == out[i].right_id) {
      ++j;
    }
    out[write++] = out[j];
    i = j + 1;
  }
  out.resize(write);
  return out;
}

/// An effective delta with its merge keys resolved: `old_right` positions
/// it within the old right dense space (for removes, the exact entry; for
/// adds, the insertion point), `new_right` is the merged dense index.
struct ResolvedDelta {
  uint64_t left_id = 0;
  uint32_t old_right = 0;  // position key in old right-dense space
  uint32_t new_right = kInvalid;
  bool add = true;
};

}  // namespace

std::vector<EdgeDelta> DeltaLog::Normalized() const {
  return NormalizeDeltas(entries_);
}

/// Friend of both graph classes: assembles merged CSRs in place.
class GraphDeltaOps {
 public:
  static DeltaMergeResult Merge(const BipartiteGraph& g,
                                const std::vector<EdgeDelta>& deltas) {
    DeltaMergeResult result;
    BipartiteGraph& out = result.graph;
    const size_t old_nl = g.num_left();
    const size_t old_nr = g.num_right();

    // --- normalize, then drop no-ops against the current graph. ----------
    std::vector<EdgeDelta> norm = NormalizeDeltas(deltas);
    std::vector<EdgeDelta> eff;
    eff.reserve(norm.size());
    for (const EdgeDelta& d : norm) {
      const uint32_t lo = g.LeftIndexOf(d.left_id);
      const uint32_t ro = g.RightIndexOf(d.right_id);
      bool present = false;
      if (lo != kInvalid && ro != kInvalid) {
        auto row = g.OutNeighbors(lo);
        present = std::binary_search(row.begin(), row.end(), ro);
      }
      if (d.add == present) {
        ++result.stats.noop_deltas;
        continue;
      }
      eff.push_back(d);
      if (d.add) {
        ++result.stats.edges_added;
      } else {
        ++result.stats.edges_removed;
      }
    }

    // --- counting pass: per-left delta runs, per-right degree deltas. ----
    struct LeftRun {
      uint64_t left_id = 0;
      size_t begin = 0;  // [begin, end) into eff
      size_t end = 0;
      int64_t degree_delta = 0;
    };
    std::vector<LeftRun> runs;
    for (size_t i = 0; i < eff.size();) {
      LeftRun run;
      run.left_id = eff[i].left_id;
      run.begin = i;
      while (i < eff.size() && eff[i].left_id == run.left_id) {
        run.degree_delta += eff[i].add ? 1 : -1;
        ++i;
      }
      run.end = i;
      runs.push_back(run);
    }

    struct RightDelta {
      uint64_t right_id = 0;
      int64_t degree_delta = 0;
    };
    std::vector<RightDelta> right_deltas;
    {
      std::vector<std::pair<uint64_t, int64_t>> by_right;
      by_right.reserve(eff.size());
      for (const EdgeDelta& d : eff) {
        by_right.emplace_back(d.right_id, d.add ? 1 : -1);
      }
      std::sort(by_right.begin(), by_right.end());
      for (size_t i = 0; i < by_right.size();) {
        RightDelta rd;
        rd.right_id = by_right[i].first;
        while (i < by_right.size() && by_right[i].first == rd.right_id) {
          rd.degree_delta += by_right[i].second;
          ++i;
        }
        right_deltas.push_back(rd);
      }
    }

    // --- merged right id space (sorted external ids, in-degree > 0). -----
    result.old_to_new_right.assign(old_nr, kInvalid);
    {
      size_t ri = 0;  // old rights cursor
      size_t di = 0;  // right_deltas cursor
      while (ri < old_nr || di < right_deltas.size()) {
        const bool take_old =
            di >= right_deltas.size() ||
            (ri < old_nr && g.right_ids_[ri] < right_deltas[di].right_id);
        if (take_old) {
          // Untouched right keeps its (positive) in-degree.
          result.old_to_new_right[ri] =
              static_cast<uint32_t>(out.right_ids_.size());
          out.right_ids_.push_back(g.right_ids_[ri]);
          ++ri;
          continue;
        }
        const RightDelta& rd = right_deltas[di];
        TouchedRight touched;
        int64_t degree = rd.degree_delta;
        if (ri < old_nr && g.right_ids_[ri] == rd.right_id) {
          touched.old_index = static_cast<uint32_t>(ri);
          degree += static_cast<int64_t>(g.InDegree(static_cast<uint32_t>(ri)));
          ++ri;
        }
        CFNET_CHECK(degree >= 0);
        if (degree > 0) {
          touched.new_index = static_cast<uint32_t>(out.right_ids_.size());
          if (touched.old_index != kInvalid) {
            result.old_to_new_right[touched.old_index] = touched.new_index;
          }
          out.right_ids_.push_back(rd.right_id);
        }
        result.touched_rights.push_back(touched);
        ++di;
      }
    }

    // --- resolve each effective delta's merge keys. ----------------------
    std::vector<ResolvedDelta> resolved(eff.size());
    for (size_t i = 0; i < eff.size(); ++i) {
      const EdgeDelta& d = eff[i];
      ResolvedDelta& r = resolved[i];
      r.left_id = d.left_id;
      r.add = d.add;
      const uint32_t ro = g.RightIndexOf(d.right_id);
      if (ro != kInvalid) {
        r.old_right = ro;  // exact entry for removes, insertion key for adds
      } else {
        // Brand-new right: insertion point among the old dense indices.
        auto it = std::lower_bound(g.right_ids_.begin(), g.right_ids_.end(),
                                   d.right_id);
        r.old_right = static_cast<uint32_t>(it - g.right_ids_.begin());
      }
      if (d.add) {
        auto it = std::lower_bound(out.right_ids_.begin(),
                                   out.right_ids_.end(), d.right_id);
        CFNET_CHECK(it != out.right_ids_.end() && *it == d.right_id);
        r.new_right = static_cast<uint32_t>(it - out.right_ids_.begin());
      }
    }

    // --- merged left id space + row assembly. ----------------------------
    // First old right index whose dense id shifts: rows entirely below it
    // are identity under the remap and can be copied verbatim.
    size_t first_right_shift = old_nr;
    for (size_t r = 0; r < old_nr; ++r) {
      if (result.old_to_new_right[r] != r) {
        first_right_shift = r;
        break;
      }
    }

    result.old_to_new_left.assign(old_nl, kInvalid);
    const size_t new_edges =
        g.num_edges() + result.stats.edges_added - result.stats.edges_removed;
    out.out_neighbors_.reserve(new_edges);
    out.out_offsets_.push_back(0);

    auto emit_untouched_row = [&](uint32_t lo) {
      auto row = g.OutNeighbors(lo);
      if (row.empty() || row.back() < first_right_shift) {
        // Identity remap over the whole span: reuse it verbatim.
        out.out_neighbors_.insert(out.out_neighbors_.end(), row.begin(),
                                  row.end());
      } else {
        for (uint32_t r : row) {
          out.out_neighbors_.push_back(result.old_to_new_right[r]);
        }
      }
      ++result.stats.rows_reused;
    };

    // Gallop-merge one old row with its sorted delta run.
    auto emit_merged_row = [&](uint32_t lo, const LeftRun& run) {
      auto row = g.OutNeighbors(lo);
      size_t i = 0;
      for (size_t k = run.begin; k < run.end; ++k) {
        const ResolvedDelta& d = resolved[k];
        auto it = std::lower_bound(row.begin() + i, row.end(), d.old_right);
        for (size_t stop = static_cast<size_t>(it - row.begin()); i < stop;
             ++i) {
          out.out_neighbors_.push_back(result.old_to_new_right[row[i]]);
        }
        if (d.add) {
          out.out_neighbors_.push_back(d.new_right);
        } else {
          CFNET_CHECK(i < row.size() && row[i] == d.old_right);
          ++i;  // skip the removed entry
        }
      }
      for (; i < row.size(); ++i) {
        out.out_neighbors_.push_back(result.old_to_new_right[row[i]]);
      }
      ++result.stats.rows_rebuilt;
    };

    {
      size_t li = 0;  // old lefts cursor
      size_t qi = 0;  // runs cursor
      while (li < old_nl || qi < runs.size()) {
        const bool take_old = qi >= runs.size() ||
                              (li < old_nl &&
                               g.left_ids_[li] < runs[qi].left_id);
        if (take_old) {
          result.old_to_new_left[li] =
              static_cast<uint32_t>(out.left_ids_.size());
          out.left_ids_.push_back(g.left_ids_[li]);
          emit_untouched_row(static_cast<uint32_t>(li));
          out.out_offsets_.push_back(out.out_neighbors_.size());
          ++li;
          continue;
        }
        const LeftRun& run = runs[qi];
        uint32_t lo = kInvalid;
        int64_t degree = run.degree_delta;
        if (li < old_nl && g.left_ids_[li] == run.left_id) {
          lo = static_cast<uint32_t>(li);
          degree += static_cast<int64_t>(g.OutDegree(lo));
          ++li;
        }
        CFNET_CHECK(degree >= 0);
        if (degree > 0) {
          const uint32_t nl = static_cast<uint32_t>(out.left_ids_.size());
          out.left_ids_.push_back(run.left_id);
          result.touched_lefts.push_back(nl);
          if (lo != kInvalid) {
            result.old_to_new_left[lo] = nl;
            emit_merged_row(lo, run);
          } else {
            // Brand-new left: the run is adds only, sorted by external id,
            // so the new dense indices come out ascending.
            for (size_t k = run.begin; k < run.end; ++k) {
              CFNET_CHECK(resolved[k].add);
              out.out_neighbors_.push_back(resolved[k].new_right);
            }
            ++result.stats.rows_rebuilt;
          }
          out.out_offsets_.push_back(out.out_neighbors_.size());
        }
        ++qi;
      }
    }
    CFNET_CHECK(out.out_neighbors_.size() == new_edges);

    out.BuildIndexMaps();
    out.BuildInverse();
    return result;
  }

  static std::vector<uint32_t> Frontier(const BipartiteGraph& old_graph,
                                        const DeltaMergeResult& merge,
                                        size_t max_right_degree) {
    const size_t n = merge.graph.num_left();
    std::vector<char> in_frontier(n, 0);
    for (const TouchedRight& tr : merge.touched_rights) {
      if (tr.old_index != kInvalid) {
        auto olds = old_graph.InNeighbors(tr.old_index);
        if (max_right_degree == 0 || olds.size() <= max_right_degree) {
          for (uint32_t l : olds) {
            const uint32_t nl = merge.old_to_new_left[l];
            if (nl != kInvalid) in_frontier[nl] = 1;
          }
        }
      }
      if (tr.new_index != kInvalid) {
        auto news = merge.graph.InNeighbors(tr.new_index);
        if (max_right_degree == 0 || news.size() <= max_right_degree) {
          for (uint32_t l : news) in_frontier[l] = 1;
        }
      }
    }
    for (uint32_t l : merge.touched_lefts) in_frontier[l] = 1;
    std::vector<uint32_t> frontier;
    for (uint32_t v = 0; v < n; ++v) {
      if (in_frontier[v]) frontier.push_back(v);
    }
    return frontier;
  }

  static WeightedGraph Update(const WeightedGraph& old_projection,
                              const BipartiteGraph& old_graph,
                              const DeltaMergeResult& merge,
                              size_t max_right_degree,
                              const ParallelOptions& par) {
    const BipartiteGraph& new_graph = merge.graph;
    const std::vector<uint32_t>& old_to_new = merge.old_to_new_left;
    const size_t n = new_graph.num_left();
    const size_t old_n = old_to_new.size();
    (void)par;  // generation + merge are append-ordered; see fill below
    WeightedGraph out;
    if (n == 0) {
      out.offsets_ = {0};
      return out;
    }

    std::vector<uint32_t> new_to_old(n, kInvalid);
    for (size_t l = 0; l < old_n; ++l) {
      if (old_to_new[l] != kInvalid) {
        new_to_old[old_to_new[l]] = static_cast<uint32_t>(l);
      }
    }

    // The projection is the gated Gram matrix
    //   W = sum_c [in-degree(c) <= cap] x_c x_c^T     (x_c = investor set),
    // so the delta batch changes it by, per touched right,
    //   dW_c = g_new x_new x_new^T - g_old x_old x_old^T,
    // which is sparse in the delta edges when the gate doesn't flip.
    // Pairs involving a dropped left are excluded here — they vanish
    // wholesale and are handled by the dropped-row scan below.
    struct Patch {
      uint32_t row;
      uint32_t nbr;
      double delta;
    };
    std::vector<Patch> raw;
    auto emit = [&raw](uint32_t a, uint32_t b, double d) {
      raw.push_back({a, b, d});
      raw.push_back({b, a, d});
    };
    std::vector<uint32_t> survivors;  // scratch: old investors, new space
    std::vector<uint32_t> removed;    // scratch: survivors absent from B
    for (const TouchedRight& tr : merge.touched_rights) {
      const bool g_old =
          tr.old_index != kInvalid &&
          (max_right_degree == 0 ||
           old_graph.InNeighbors(tr.old_index).size() <= max_right_degree);
      const bool g_new =
          tr.new_index != kInvalid &&
          (max_right_degree == 0 ||
           new_graph.InNeighbors(tr.new_index).size() <= max_right_degree);
      if (!g_old && !g_new) continue;
      survivors.clear();
      if (g_old) {
        for (uint32_t l : old_graph.InNeighbors(tr.old_index)) {
          const uint32_t nl = old_to_new[l];
          if (nl != kInvalid) survivors.push_back(nl);  // sorted: monotone
        }
      }
      if (g_old && g_new) {
        // Both gated in: walk the current set from A (survivors) to B,
        // emitting each element's pairs against the set as it stands —
        // the steps telescope to x_n x_n^T - x_o x_o^T.
        auto b = new_graph.InNeighbors(tr.new_index);
        removed.clear();
        {
          size_t bi = 0;
          for (uint32_t s : survivors) {
            while (bi < b.size() && b[bi] < s) ++bi;
            if (bi >= b.size() || b[bi] != s) removed.push_back(s);
          }
        }
        std::vector<uint32_t>& x = survivors;
        for (uint32_t s : removed) {
          for (uint32_t k : x) {
            if (k != s) emit(s, k, -1.0);
          }
          x.erase(std::lower_bound(x.begin(), x.end(), s));
        }
        {
          size_t ai = 0;
          for (uint32_t s : b) {
            while (ai < x.size() && x[ai] < s) ++ai;
            if (ai < x.size() && x[ai] == s) continue;  // already present
            for (uint32_t k : x) emit(s, k, 1.0);
            x.insert(x.begin() + static_cast<ptrdiff_t>(ai), s);
          }
        }
      } else if (g_new) {
        // Gate flipped in: every pair of the new investor set appears.
        auto b = new_graph.InNeighbors(tr.new_index);
        for (size_t i = 0; i < b.size(); ++i) {
          for (size_t j = 0; j < i; ++j) emit(b[i], b[j], 1.0);
        }
      } else {
        // Gate flipped out: every surviving pair of the old set vanishes.
        for (size_t i = 0; i < survivors.size(); ++i) {
          for (size_t j = 0; j < i; ++j) emit(survivors[i], survivors[j], -1.0);
        }
      }
    }

    // Canonicalize: bucket the increments by row (counting sort), then
    // collapse each bucket with the same sort/dedupe helper FromEdges
    // uses for its rows, dropping pairs whose increments cancel exactly
    // (the sums are small integers, so accumulation order cannot perturb
    // them).
    std::vector<Patch> patches;
    {
      std::vector<uint32_t> patch_begin(n + 1, 0);
      for (const Patch& pa : raw) ++patch_begin[pa.row + 1];
      for (uint32_t v = 0; v < n; ++v) patch_begin[v + 1] += patch_begin[v];
      std::vector<Patch> bucketed(raw.size());
      {
        std::vector<uint32_t> at(patch_begin.begin(), patch_begin.end() - 1);
        for (const Patch& pa : raw) bucketed[at[pa.row]++] = pa;
      }
      raw.clear();
      raw.shrink_to_fit();
      patches.reserve(bucketed.size());
      std::vector<std::pair<uint32_t, double>> rowbuf;
      for (uint32_t v = 0; v < n; ++v) {
        const uint32_t begin = patch_begin[v];
        const uint32_t end = patch_begin[v + 1];
        if (begin == end) continue;
        rowbuf.clear();
        for (uint32_t q = begin; q < end; ++q) {
          rowbuf.emplace_back(bucketed[q].nbr, bucketed[q].delta);
        }
        CanonicalizeAdjacency(rowbuf);
        for (const auto& [nbr, delta] : rowbuf) {
          if (delta != 0.0) patches.push_back({v, nbr, delta});
        }
      }
    }

    // Entries pointing at a dropped left simply vanish; by symmetry they
    // live exactly in the old projection rows of the dropped lefts, so the
    // per-row counts come from scanning those rows only.
    std::vector<uint32_t> dropped_in_row(old_n, 0);
    for (size_t l = 0; l < old_n; ++l) {
      if (old_to_new[l] != kInvalid) continue;
      for (uint32_t j : old_projection.Neighbors(static_cast<uint32_t>(l))) {
        ++dropped_in_row[j];
      }
    }

    // First old left index whose dense id shifts: rows entirely below it
    // are identity under the remap and can be copied verbatim.
    size_t first_left_shift = old_n;
    for (size_t l = 0; l < old_n; ++l) {
      if (old_to_new[l] != static_cast<uint32_t>(l)) {
        first_left_shift = l;
        break;
      }
    }

    // Splice the output CSR row by row with a running cursor. The exact
    // edge count isn't known until the increments meet the old rows, so
    // the buffers are sized to an upper bound and trimmed afterwards
    // (shrinking never reallocates). Rows are produced in index order, so
    // every write is sequential — the whole update is memory-bound on
    // this splice, which is why the fill takes no ParallelOptions.
    // num_edges() counts undirected edges; the CSR stores both directions.
    const size_t upper_bound =
        old_projection.neighbors_.size() + patches.size();
    out.offsets_.assign(n + 1, 0);
    out.neighbors_.resize(upper_bound);
    out.weights_.resize(upper_bound);
    out.weighted_degree_.assign(n, 0);
    size_t cursor = 0;
    size_t p = 0;  // global patch cursor, rows ascend
    for (uint32_t v = 0; v < n; ++v) {
      const size_t pbegin = p;
      while (p < patches.size() && patches[p].row == v) ++p;
      const size_t pend = p;
      const size_t row_start = cursor;
      const uint32_t old_v = new_to_old[v];
      if (old_v == kInvalid) {
        // Brand-new left: its entire row arrives as insert increments.
        for (size_t q = pbegin; q < pend; ++q) {
          CFNET_CHECK(patches[q].delta > 0.0);
          out.neighbors_[cursor] = patches[q].nbr;
          out.weights_[cursor++] = patches[q].delta;
        }
        out.weighted_degree_[v] =
            simd::SumF64(out.weights_.data() + row_start, cursor - row_start);
        out.offsets_[v + 1] = cursor;
        continue;
      }
      auto nbrs = old_projection.Neighbors(old_v);
      auto ws = old_projection.Weights(old_v);
      if (dropped_in_row[old_v] == 0 && pbegin == pend) {
        // Clean splice: no pair through this row changed.
        if (nbrs.empty() || nbrs.back() < first_left_shift) {
          std::copy(nbrs.begin(), nbrs.end(),
                    out.neighbors_.begin() + static_cast<ptrdiff_t>(cursor));
        } else {
          for (size_t i = 0; i < nbrs.size(); ++i) {
            out.neighbors_[cursor + i] = old_to_new[nbrs[i]];
          }
        }
        std::copy(ws.begin(), ws.end(),
                  out.weights_.begin() + static_cast<ptrdiff_t>(cursor));
        cursor += nbrs.size();
        out.weighted_degree_[v] = old_projection.WeightedDegree(old_v);
        out.offsets_[v + 1] = cursor;
        continue;
      }
      // Dirty splice: drop entries to dropped lefts and merge the sorted
      // increments (the remap is monotonic, so surviving entries stay
      // sorted). An increment aligned with an existing entry adjusts it
      // (to zero = removal); an unaligned increment inserts a new pair.
      size_t i = 0;
      size_t q = pbegin;
      while (true) {
        uint32_t mapped = kInvalid;
        while (i < nbrs.size()) {
          const uint32_t m = old_to_new[nbrs[i]];
          if (m != kInvalid) {
            mapped = m;
            break;
          }
          ++i;  // entry to a dropped left vanishes
        }
        const bool have_patch = q < pend;
        if (mapped == kInvalid && !have_patch) break;
        if (have_patch && (mapped == kInvalid || patches[q].nbr <= mapped)) {
          const Patch& pa = patches[q++];
          if (mapped == pa.nbr) {
            const double w = ws[i++] + pa.delta;
            CFNET_CHECK(w >= 0.0);
            if (w != 0.0) {
              out.neighbors_[cursor] = pa.nbr;
              out.weights_[cursor++] = w;
            }
          } else {
            CFNET_CHECK(pa.delta > 0.0);
            out.neighbors_[cursor] = pa.nbr;
            out.weights_[cursor++] = pa.delta;
          }
          continue;
        }
        out.neighbors_[cursor] = mapped;
        out.weights_[cursor++] = ws[i];
        ++i;
      }
      out.weighted_degree_[v] =
          simd::SumF64(out.weights_.data() + row_start, cursor - row_start);
      out.offsets_[v + 1] = cursor;
    }
    out.neighbors_.resize(cursor);
    out.weights_.resize(cursor);
    out.total_weight_2m_ = simd::SumF64(out.weighted_degree_.data(), n);
    return out;
  }
};

DeltaMergeResult MergeBipartiteDelta(const BipartiteGraph& g,
                                     const std::vector<EdgeDelta>& deltas) {
  return GraphDeltaOps::Merge(g, deltas);
}

std::vector<uint32_t> ProjectionFrontier(const BipartiteGraph& old_graph,
                                         const DeltaMergeResult& merge,
                                         size_t max_right_degree) {
  return GraphDeltaOps::Frontier(old_graph, merge, max_right_degree);
}

WeightedGraph UpdateProjection(const WeightedGraph& old_projection,
                               const BipartiteGraph& old_graph,
                               const DeltaMergeResult& merge,
                               size_t max_right_degree,
                               const ParallelOptions& par) {
  return GraphDeltaOps::Update(old_projection, old_graph, merge,
                               max_right_degree, par);
}

}  // namespace cfnet::graph
