#ifndef CFNET_GRAPH_WEIGHTED_GRAPH_H_
#define CFNET_GRAPH_WEIGHTED_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bipartite_graph.h"
#include "util/parallel.h"

namespace cfnet::graph {

class GraphDeltaOps;

/// Canonicalizes one adjacency row in place: entries sorted by neighbor
/// index, duplicate neighbors merged by summing their weights. The single
/// normalization rule shared by `WeightedGraph::FromEdges` and the
/// incremental delta-merge path (graph/delta), so both produce the same
/// CSR bytes for the same logical edge set.
void CanonicalizeAdjacency(std::vector<std::pair<uint32_t, double>>& row);

/// Undirected weighted graph in CSR form (each edge stored in both
/// directions). Node indices correspond to the left side of the bipartite
/// graph it was projected from.
///
/// Used by the community-detection baselines (Louvain, label propagation):
/// projecting the investor->company bipartite graph gives investor-investor
/// edges weighted by co-investment count.
class WeightedGraph {
 public:
  WeightedGraph() = default;

  /// Co-investment projection onto left nodes: weight(i,j) = number of
  /// companies i and j both invested in. Companies with in-degree above
  /// `max_right_degree` are skipped (0 = no cap) — the standard guard
  /// against quadratic blowup on super-popular items.
  ///
  /// The upper-triangle rows are sharded into morsels over `par.pool`; each
  /// morsel accumulates co-investment counts in a dense touched-list scratch
  /// (no hash map) and the CSR is assembled directly from the per-row
  /// results, so the projection is bit-identical for any thread count and
  /// morsel size. Adjacency lists come out sorted by neighbor index.
  static WeightedGraph ProjectLeft(const BipartiteGraph& g,
                                   size_t max_right_degree = 0,
                                   const ParallelOptions& par = {});

  /// Builds directly from undirected weighted edges over [0, num_nodes).
  static WeightedGraph FromEdges(
      size_t num_nodes,
      const std::vector<std::tuple<uint32_t, uint32_t, double>>& edges);

  size_t num_nodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  /// Number of undirected edges.
  size_t num_edges() const { return neighbors_.size() / 2; }

  std::span<const uint32_t> Neighbors(uint32_t v) const {
    return {neighbors_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }
  std::span<const double> Weights(uint32_t v) const {
    return {weights_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Sum of incident edge weights of `v`.
  double WeightedDegree(uint32_t v) const { return weighted_degree_[v]; }
  /// Total weight 2m = sum over nodes of weighted degree.
  double TotalWeight2m() const { return total_weight_2m_; }

 private:
  /// Incremental maintenance (graph/delta.cc) splices untouched rows and
  /// recomputes frontier rows straight into the private CSR arrays.
  friend class GraphDeltaOps;

  void FinishBuild(size_t num_nodes,
                   std::vector<std::tuple<uint32_t, uint32_t, double>>& edges);
  /// Fills weighted_degree_ / total_weight_2m_ from the built CSR.
  void ComputeDegrees();

  std::vector<size_t> offsets_;
  std::vector<uint32_t> neighbors_;
  std::vector<double> weights_;
  std::vector<double> weighted_degree_;
  double total_weight_2m_ = 0;
};

}  // namespace cfnet::graph

#endif  // CFNET_GRAPH_WEIGHTED_GRAPH_H_
