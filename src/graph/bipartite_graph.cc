#include "graph/bipartite_graph.h"

#include <algorithm>

namespace cfnet::graph {

BipartiteGraph BipartiteGraph::FromEdges(
    const std::vector<std::pair<uint64_t, uint64_t>>& edges) {
  BipartiteGraph g;
  if (edges.empty()) {
    g.out_offsets_ = {0};
    g.in_offsets_ = {0};
    return g;
  }
  // Sort + dedup edges by (left, right).
  std::vector<std::pair<uint64_t, uint64_t>> sorted = edges;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  // Dense ids. Left ids appear grouped already; right ids need a sorted set.
  size_t left_count = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i == 0 || sorted[i].first != sorted[i - 1].first) ++left_count;
  }
  g.left_ids_.reserve(left_count);
  for (const auto& [l, r] : sorted) {
    if (g.left_ids_.empty() || g.left_ids_.back() != l) g.left_ids_.push_back(l);
  }
  {
    std::vector<uint64_t> rights;
    rights.reserve(sorted.size());
    for (const auto& [l, r] : sorted) rights.push_back(r);
    std::sort(rights.begin(), rights.end());
    rights.erase(std::unique(rights.begin(), rights.end()), rights.end());
    g.right_ids_ = std::move(rights);
  }
  g.BuildIndexMaps();

  g.out_offsets_.assign(g.left_ids_.size() + 1, 0);
  g.out_neighbors_.reserve(sorted.size());
  size_t li = 0;
  for (const auto& [l, r] : sorted) {
    while (g.left_ids_[li] != l) ++li;
    g.out_neighbors_.push_back(g.right_index_.at(r));
    ++g.out_offsets_[li + 1];
  }
  for (size_t i = 1; i <= g.left_ids_.size(); ++i) {
    g.out_offsets_[i] += g.out_offsets_[i - 1];
  }
  // Out-neighbor lists are sorted by right id order == dense order, since
  // right dense indices are assigned in id order and edges were sorted.
  g.BuildInverse();
  return g;
}

void BipartiteGraph::BuildIndexMaps() {
  left_index_.reserve(left_ids_.size() * 2);
  for (uint32_t i = 0; i < left_ids_.size(); ++i) left_index_[left_ids_[i]] = i;
  right_index_.reserve(right_ids_.size() * 2);
  for (uint32_t i = 0; i < right_ids_.size(); ++i) {
    right_index_[right_ids_[i]] = i;
  }
}

void BipartiteGraph::BuildInverse() {
  in_offsets_.assign(right_ids_.size() + 1, 0);
  for (uint32_t r : out_neighbors_) ++in_offsets_[r + 1];
  for (size_t i = 1; i <= right_ids_.size(); ++i) {
    in_offsets_[i] += in_offsets_[i - 1];
  }
  in_neighbors_.resize(out_neighbors_.size());
  std::vector<size_t> cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (uint32_t l = 0; l < left_ids_.size(); ++l) {
    for (uint32_t r : OutNeighbors(l)) {
      in_neighbors_[cursor[r]++] = l;
    }
  }
  // Left indices were visited in ascending order, so in-lists are sorted.
}

uint32_t BipartiteGraph::LeftIndexOf(uint64_t id) const {
  auto it = left_index_.find(id);
  return it == left_index_.end() ? kInvalidIndex : it->second;
}

uint32_t BipartiteGraph::RightIndexOf(uint64_t id) const {
  auto it = right_index_.find(id);
  return it == right_index_.end() ? kInvalidIndex : it->second;
}

size_t BipartiteGraph::SharedOutNeighbors(uint32_t l1, uint32_t l2) const {
  auto a = OutNeighbors(l1);
  auto b = OutNeighbors(l2);
  size_t i = 0;
  size_t j = 0;
  size_t shared = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++shared;
      ++i;
      ++j;
    }
  }
  return shared;
}

BipartiteGraph BipartiteGraph::FilterLeftByMinDegree(size_t min_degree) const {
  // Build the filtered CSR directly: kept rows are already sorted and
  // deduplicated, so copying them and remapping right indices (the remap is
  // monotonic, preserving sort order) avoids materializing an edge vector
  // and re-sorting it through FromEdges.
  BipartiteGraph out;
  size_t kept_left = 0;
  size_t kept_edges = 0;
  for (uint32_t l = 0; l < num_left(); ++l) {
    if (OutDegree(l) >= min_degree) {
      ++kept_left;
      kept_edges += OutDegree(l);
    }
  }
  out.left_ids_.reserve(kept_left);
  out.out_offsets_.reserve(kept_left + 1);
  out.out_neighbors_.reserve(kept_edges);

  // Right nodes that keep at least one in-edge, in ascending (= id) order.
  std::vector<char> right_kept(num_right(), 0);
  for (uint32_t l = 0; l < num_left(); ++l) {
    if (OutDegree(l) < min_degree) continue;
    for (uint32_t r : OutNeighbors(l)) right_kept[r] = 1;
  }
  std::vector<uint32_t> right_remap(num_right(), kInvalidIndex);
  uint32_t next_right = 0;
  for (uint32_t r = 0; r < num_right(); ++r) {
    if (right_kept[r]) right_remap[r] = next_right++;
  }
  out.right_ids_.reserve(next_right);
  for (uint32_t r = 0; r < num_right(); ++r) {
    if (right_kept[r]) out.right_ids_.push_back(right_ids_[r]);
  }

  out.out_offsets_.push_back(0);
  for (uint32_t l = 0; l < num_left(); ++l) {
    if (OutDegree(l) < min_degree) continue;
    out.left_ids_.push_back(left_ids_[l]);
    for (uint32_t r : OutNeighbors(l)) {
      out.out_neighbors_.push_back(right_remap[r]);
    }
    out.out_offsets_.push_back(out.out_neighbors_.size());
  }
  out.BuildIndexMaps();
  out.BuildInverse();
  return out;
}

DegreeSummary SummarizeOutDegrees(const BipartiteGraph& g,
                                  std::vector<size_t> thresholds) {
  DegreeSummary s;
  const size_t n = g.num_left();
  if (n == 0) return s;
  std::vector<size_t> degrees(n);
  size_t total_edges = 0;
  for (uint32_t l = 0; l < n; ++l) {
    degrees[l] = g.OutDegree(l);
    total_edges += degrees[l];
    s.max = std::max(s.max, degrees[l]);
  }
  s.mean = static_cast<double>(total_edges) / static_cast<double>(n);
  std::vector<size_t> sorted = degrees;
  std::sort(sorted.begin(), sorted.end());
  s.median = (n % 2 == 1)
                 ? static_cast<double>(sorted[n / 2])
                 : (static_cast<double>(sorted[n / 2 - 1] + sorted[n / 2]) / 2.0);
  for (size_t k : thresholds) {
    size_t nodes = 0;
    size_t edges = 0;
    for (size_t d : degrees) {
      if (d >= k) {
        ++nodes;
        edges += d;
      }
    }
    s.concentration.push_back(
        {k, static_cast<double>(nodes) / static_cast<double>(n),
         total_edges == 0
             ? 0
             : static_cast<double>(edges) / static_cast<double>(total_edges)});
  }
  return s;
}

}  // namespace cfnet::graph
