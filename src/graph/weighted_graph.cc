#include "graph/weighted_graph.h"

#include <algorithm>
#include <tuple>
#include <unordered_map>

namespace cfnet::graph {

WeightedGraph WeightedGraph::ProjectLeft(const BipartiteGraph& g,
                                         size_t max_right_degree) {
  // Accumulate pair counts; key packs the (smaller, larger) dense indices.
  std::unordered_map<uint64_t, double> pair_weight;
  for (uint32_t r = 0; r < g.num_right(); ++r) {
    auto investors = g.InNeighbors(r);
    if (max_right_degree > 0 && investors.size() > max_right_degree) continue;
    for (size_t i = 0; i < investors.size(); ++i) {
      for (size_t j = i + 1; j < investors.size(); ++j) {
        uint64_t key = (static_cast<uint64_t>(investors[i]) << 32) |
                       investors[j];
        pair_weight[key] += 1.0;
      }
    }
  }
  std::vector<std::tuple<uint32_t, uint32_t, double>> edges;
  edges.reserve(pair_weight.size());
  for (const auto& [key, w] : pair_weight) {
    edges.emplace_back(static_cast<uint32_t>(key >> 32),
                       static_cast<uint32_t>(key & 0xffffffffull), w);
  }
  WeightedGraph out;
  out.FinishBuild(g.num_left(), edges);
  return out;
}

WeightedGraph WeightedGraph::FromEdges(
    size_t num_nodes,
    const std::vector<std::tuple<uint32_t, uint32_t, double>>& edges) {
  WeightedGraph out;
  std::vector<std::tuple<uint32_t, uint32_t, double>> copy = edges;
  out.FinishBuild(num_nodes, copy);
  return out;
}

void WeightedGraph::FinishBuild(
    size_t num_nodes,
    std::vector<std::tuple<uint32_t, uint32_t, double>>& edges) {
  offsets_.assign(num_nodes + 1, 0);
  for (const auto& [a, b, w] : edges) {
    ++offsets_[a + 1];
    ++offsets_[b + 1];
  }
  for (size_t i = 1; i <= num_nodes; ++i) offsets_[i] += offsets_[i - 1];
  neighbors_.resize(edges.size() * 2);
  weights_.resize(edges.size() * 2);
  std::vector<size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [a, b, w] : edges) {
    neighbors_[cursor[a]] = b;
    weights_[cursor[a]++] = w;
    neighbors_[cursor[b]] = a;
    weights_[cursor[b]++] = w;
  }
  weighted_degree_.assign(num_nodes, 0);
  for (uint32_t v = 0; v < num_nodes; ++v) {
    auto ws = Weights(v);
    for (double w : ws) weighted_degree_[v] += w;
    total_weight_2m_ += weighted_degree_[v];
  }
}

}  // namespace cfnet::graph
