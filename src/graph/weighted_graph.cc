#include "graph/weighted_graph.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "util/simd.h"

namespace cfnet::graph {

WeightedGraph WeightedGraph::ProjectLeft(const BipartiteGraph& g,
                                         size_t max_right_degree,
                                         const ParallelOptions& par) {
  const size_t nl = g.num_left();
  WeightedGraph out;
  if (nl == 0) {
    out.offsets_ = {0};
    return out;
  }

  // Phase 1 — upper-triangle rows, morsel-parallel. Row i collects
  // weight(i, j) for all j > i by scanning i's companies' investor lists
  // (sorted, so a binary search skips the j <= i prefix) into a dense
  // accumulator + touched list. Per-row output is written to rows[i], which
  // is disjoint across morsels — results cannot depend on scheduling.
  std::vector<std::vector<std::pair<uint32_t, double>>> rows(nl);
  ForEachMorsel(par, nl, 16, [&](size_t begin, size_t end) {
    std::vector<double> weight_to(nl, 0.0);
    std::vector<uint32_t> touched;
    for (size_t i = begin; i < end; ++i) {
      const uint32_t li = static_cast<uint32_t>(i);
      for (uint32_t c : g.OutNeighbors(li)) {
        auto investors = g.InNeighbors(c);
        if (max_right_degree > 0 && investors.size() > max_right_degree) {
          continue;
        }
        auto it = std::upper_bound(investors.begin(), investors.end(), li);
        for (; it != investors.end(); ++it) {
          uint32_t j = *it;
          if (weight_to[j] == 0.0) touched.push_back(j);
          weight_to[j] += 1.0;
        }
      }
      std::sort(touched.begin(), touched.end());
      auto& row = rows[i];
      row.reserve(touched.size());
      for (uint32_t j : touched) {
        row.emplace_back(j, weight_to[j]);
        weight_to[j] = 0.0;
      }
      touched.clear();
    }
  });

  // Phase 2 — assemble the symmetric CSR directly from the sorted rows.
  // Scanning rows in ascending i keeps every adjacency list sorted: node v
  // first receives its smaller neighbors (while those rows are processed),
  // then its own larger neighbors in order.
  std::vector<size_t> degree(nl, 0);
  size_t upper = 0;
  for (size_t i = 0; i < nl; ++i) {
    degree[i] += rows[i].size();
    upper += rows[i].size();
    for (const auto& [j, w] : rows[i]) ++degree[j];
  }
  out.offsets_.assign(nl + 1, 0);
  for (size_t i = 0; i < nl; ++i) out.offsets_[i + 1] = out.offsets_[i] + degree[i];
  out.neighbors_.resize(upper * 2);
  out.weights_.resize(upper * 2);
  std::vector<size_t> cursor(out.offsets_.begin(), out.offsets_.end() - 1);
  for (size_t i = 0; i < nl; ++i) {
    for (const auto& [j, w] : rows[i]) {
      out.neighbors_[cursor[i]] = j;
      out.weights_[cursor[i]++] = w;
      out.neighbors_[cursor[j]] = static_cast<uint32_t>(i);
      out.weights_[cursor[j]++] = w;
    }
  }
  out.ComputeDegrees();
  return out;
}

WeightedGraph WeightedGraph::FromEdges(
    size_t num_nodes,
    const std::vector<std::tuple<uint32_t, uint32_t, double>>& edges) {
  WeightedGraph out;
  std::vector<std::tuple<uint32_t, uint32_t, double>> copy = edges;
  out.FinishBuild(num_nodes, copy);
  return out;
}

void WeightedGraph::FinishBuild(
    size_t num_nodes,
    std::vector<std::tuple<uint32_t, uint32_t, double>>& edges) {
  offsets_.assign(num_nodes + 1, 0);
  for (const auto& [a, b, w] : edges) {
    ++offsets_[a + 1];
    ++offsets_[b + 1];
  }
  for (size_t i = 1; i <= num_nodes; ++i) offsets_[i] += offsets_[i - 1];
  neighbors_.resize(edges.size() * 2);
  weights_.resize(edges.size() * 2);
  std::vector<size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [a, b, w] : edges) {
    neighbors_[cursor[a]] = b;
    weights_[cursor[a]++] = w;
    neighbors_[cursor[b]] = a;
    weights_[cursor[b]++] = w;
  }
  // Canonicalize each row through the shared helper: sorted by neighbor
  // index, duplicate parallel edges merged — so the CSR (and every kernel
  // iterating it) is independent of the input edge order and matches the
  // delta-merge path byte for byte.
  std::vector<std::pair<uint32_t, double>> row;
  size_t write = 0;
  std::vector<size_t> new_offsets(num_nodes + 1, 0);
  for (size_t v = 0; v < num_nodes; ++v) {
    const size_t begin = offsets_[v];
    const size_t end = offsets_[v + 1];
    row.clear();
    for (size_t k = begin; k < end; ++k) row.emplace_back(neighbors_[k], weights_[k]);
    CanonicalizeAdjacency(row);
    for (const auto& [nbr, w] : row) {
      neighbors_[write] = nbr;
      weights_[write++] = w;
    }
    new_offsets[v + 1] = write;
  }
  offsets_ = std::move(new_offsets);
  neighbors_.resize(write);
  weights_.resize(write);
  ComputeDegrees();
}

void CanonicalizeAdjacency(std::vector<std::pair<uint32_t, double>>& row) {
  if (row.size() <= 1) return;
  std::sort(row.begin(), row.end());
  size_t out = 0;
  for (size_t i = 0; i < row.size(); ++i) {
    if (out > 0 && row[out - 1].first == row[i].first) {
      row[out - 1].second += row[i].second;
    } else {
      row[out++] = row[i];
    }
  }
  row.resize(out);
}

void WeightedGraph::ComputeDegrees() {
  const size_t num_nodes = offsets_.empty() ? 0 : offsets_.size() - 1;
  weighted_degree_.assign(num_nodes, 0);
  for (uint32_t v = 0; v < num_nodes; ++v) {
    auto ws = Weights(v);
    weighted_degree_[v] = simd::SumF64(ws.data(), ws.size());
  }
  total_weight_2m_ = simd::SumF64(weighted_degree_.data(), num_nodes);
}

}  // namespace cfnet::graph
