#ifndef CFNET_GRAPH_BIPARTITE_GRAPH_H_
#define CFNET_GRAPH_BIPARTITE_GRAPH_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cfnet::graph {

class GraphDeltaOps;

/// Directed bipartite graph in CSR form: left nodes (investors) point to
/// right nodes (companies they invested in). This is the §5.1 investor
/// graph; external 64-bit ids are compacted to dense indices.
///
/// Neighbor lists are sorted and deduplicated, enabling O(d1+d2) pairwise
/// intersections (the shared-investment-size metric).
class BipartiteGraph {
 public:
  BipartiteGraph() = default;

  /// Builds from (left_id, right_id) pairs. Duplicate edges collapse.
  /// Left nodes with no edges never appear (the paper omits investors that
  /// made no investments); right nodes require at least one in-edge too.
  static BipartiteGraph FromEdges(
      const std::vector<std::pair<uint64_t, uint64_t>>& edges);

  size_t num_left() const { return left_ids_.size(); }
  size_t num_right() const { return right_ids_.size(); }
  size_t num_edges() const { return out_neighbors_.size(); }

  /// Companies of investor `l` (dense index), sorted ascending.
  std::span<const uint32_t> OutNeighbors(uint32_t l) const {
    return {out_neighbors_.data() + out_offsets_[l],
            out_offsets_[l + 1] - out_offsets_[l]};
  }
  /// Investors of company `r` (dense index), sorted ascending.
  std::span<const uint32_t> InNeighbors(uint32_t r) const {
    return {in_neighbors_.data() + in_offsets_[r],
            in_offsets_[r + 1] - in_offsets_[r]};
  }

  size_t OutDegree(uint32_t l) const {
    return out_offsets_[l + 1] - out_offsets_[l];
  }
  size_t InDegree(uint32_t r) const {
    return in_offsets_[r + 1] - in_offsets_[r];
  }

  uint64_t LeftId(uint32_t l) const { return left_ids_[l]; }
  uint64_t RightId(uint32_t r) const { return right_ids_[r]; }

  /// Dense index lookup; returns UINT32_MAX when absent.
  uint32_t LeftIndexOf(uint64_t id) const;
  uint32_t RightIndexOf(uint64_t id) const;

  static constexpr uint32_t kInvalidIndex = UINT32_MAX;

  /// Number of shared out-neighbors of two left nodes — the paper's
  /// "shared investment size" |C1 ∩ C2|.
  size_t SharedOutNeighbors(uint32_t l1, uint32_t l2) const;

  /// Subgraph keeping only left nodes with out-degree >= min_degree
  /// (the §5.2 cleaning step: investors with >= 4 investments).
  BipartiteGraph FilterLeftByMinDegree(size_t min_degree) const;

 private:
  /// Incremental maintenance (graph/delta.cc) assembles merged CSRs in
  /// place instead of round-tripping through an edge vector.
  friend class GraphDeltaOps;

  void BuildInverse();
  void BuildIndexMaps();

  std::vector<uint64_t> left_ids_;
  std::vector<uint64_t> right_ids_;
  std::vector<size_t> out_offsets_;   // size num_left()+1
  std::vector<uint32_t> out_neighbors_;
  std::vector<size_t> in_offsets_;    // size num_right()+1
  std::vector<uint32_t> in_neighbors_;
  std::unordered_map<uint64_t, uint32_t> left_index_;
  std::unordered_map<uint64_t, uint32_t> right_index_;
};

/// Degree-distribution summary used by the Figure 3 reproduction.
struct DegreeSummary {
  double mean = 0;
  double median = 0;
  size_t max = 0;
  /// For each threshold k: fraction of nodes with degree >= k and the
  /// fraction of all edges those nodes account for (§5.1 concentration).
  struct Concentration {
    size_t k = 0;
    double node_fraction = 0;
    double edge_fraction = 0;
  };
  std::vector<Concentration> concentration;
};

/// Summarizes the left (investor) out-degree distribution; thresholds sets
/// the concentration rows (default 3,4,5 as in the paper).
DegreeSummary SummarizeOutDegrees(const BipartiteGraph& g,
                                  std::vector<size_t> thresholds = {3, 4, 5});

}  // namespace cfnet::graph

#endif  // CFNET_GRAPH_BIPARTITE_GRAPH_H_
