#ifndef CFNET_GRAPH_DELTA_H_
#define CFNET_GRAPH_DELTA_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/weighted_graph.h"
#include "util/parallel.h"

namespace cfnet::graph {

/// One edge mutation against the bipartite investor graph, in external-id
/// space (the crawl's ids, not dense indices — deltas are extracted from
/// append-only snapshot shards before any graph exists to index into).
struct EdgeDelta {
  uint64_t left_id = 0;
  uint64_t right_id = 0;
  bool add = true;  // false = remove

  bool operator==(const EdgeDelta&) const = default;
};

/// Append-friendly edge-delta log. Producers (the crawl's epoch scanner,
/// tests, benches) append in arrival order; `Normalized()` collapses the
/// log into at most one operation per (left, right) pair with last-op-wins
/// semantics, sorted by (left, right) — the canonical input to
/// `MergeBipartiteDelta`.
class DeltaLog {
 public:
  void AddEdge(uint64_t left_id, uint64_t right_id) {
    entries_.push_back({left_id, right_id, /*add=*/true});
  }
  void RemoveEdge(uint64_t left_id, uint64_t right_id) {
    entries_.push_back({left_id, right_id, /*add=*/false});
  }
  void Append(const EdgeDelta& delta) { entries_.push_back(delta); }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  const std::vector<EdgeDelta>& entries() const { return entries_; }
  void Clear() { entries_.clear(); }

  /// Sorted by (left, right), one entry per pair, last appended op wins.
  std::vector<EdgeDelta> Normalized() const;

 private:
  std::vector<EdgeDelta> entries_;
};

struct DeltaMergeStats {
  size_t rows_reused = 0;    // untouched left rows spliced through
  size_t rows_rebuilt = 0;   // rows gallop-merged with their delta run
  size_t edges_added = 0;
  size_t edges_removed = 0;
  /// Deltas that changed nothing (add of a present edge, remove of an
  /// absent one) — the common case when re-crawled records are re-emitted.
  size_t noop_deltas = 0;
};

/// A right node touched by at least one effective delta. Either index is
/// `BipartiteGraph::kInvalidIndex` when the node is absent on that side
/// (brand-new right / right whose last in-edge was removed).
struct TouchedRight {
  uint32_t old_index = BipartiteGraph::kInvalidIndex;
  uint32_t new_index = BipartiteGraph::kInvalidIndex;
};

struct DeltaMergeResult {
  BipartiteGraph graph;  // bit-identical to FromEdges(old edges ± deltas)
  DeltaMergeStats stats;
  /// Old dense index -> new dense index; kInvalidIndex for dropped nodes.
  /// The remaps are monotonic (both sides assign dense ids in sorted
  /// external-id order), which is what lets untouched adjacency spans be
  /// reused: a remapped sorted row stays sorted.
  std::vector<uint32_t> old_to_new_left;
  std::vector<uint32_t> old_to_new_right;
  /// Rights with an effective delta, ascending by external id.
  std::vector<TouchedRight> touched_rights;
  /// New-dense indices of lefts that participated in a delta, sorted.
  std::vector<uint32_t> touched_lefts;
};

/// Merges an edge-delta batch into the bipartite CSR: one counting pass
/// over the normalized deltas sizes the new id spaces, untouched rows are
/// copied through the monotonic remap (memcpy when the remap is identity
/// over the row's range), and each touched row is gallop-merged with its
/// sorted delta run. The result is bit-identical to rebuilding via
/// `BipartiteGraph::FromEdges` on the merged edge set, at O(E) copy cost
/// instead of O(E log E) sort + hash cost.
DeltaMergeResult MergeBipartiteDelta(const BipartiteGraph& g,
                                     const std::vector<EdgeDelta>& deltas);

/// New-dense left indices whose co-investment projection row may differ
/// from the previous epoch: for every touched right, the investors of its
/// old set (when the old in-degree was within `max_right_degree`) and of
/// its new set (likewise), plus every delta participant. Vertices outside
/// the frontier provably keep their old projection row (modulo the index
/// remap). This is the seed set for incremental community refinement;
/// `UpdateProjection` derives its own (smaller) recompute set internally.
/// `max_right_degree` must match the value used for the projections;
/// 0 = no cap.
std::vector<uint32_t> ProjectionFrontier(const BipartiteGraph& old_graph,
                                         const DeltaMergeResult& merge,
                                         size_t max_right_degree);

/// Incrementally updates the co-investment projection. The projection is
/// the gated Gram matrix sum_c [in-degree(c) <= cap] x_c x_c^T over
/// company investor-indicator vectors, so a delta batch changes it by
/// sum over touched rights of (g_new x_new x_new^T - g_old x_old x_old^T)
/// — sparse in the delta edges. Those pairwise count increments are
/// generated per touched right, bucketed by row, and merged into the old
/// rows; weights are exact small-integer counts, so old + increment is
/// the bit-exact new count. Rows with no increment and no dropped-left
/// entry are spliced from `old_projection` through the left remap
/// (memcpy when the remap is identity over the row's range). The output
/// CSR is appended row-by-row (no zero-initialized resize). Bit-identical
/// to a full `ProjectLeft(merge.graph, max_right_degree)`.
WeightedGraph UpdateProjection(const WeightedGraph& old_projection,
                               const BipartiteGraph& old_graph,
                               const DeltaMergeResult& merge,
                               size_t max_right_degree,
                               const ParallelOptions& par = {});

}  // namespace cfnet::graph

#endif  // CFNET_GRAPH_DELTA_H_
