#ifndef CFNET_NET_ANGELLIST_H_
#define CFNET_NET_ANGELLIST_H_

#include <vector>

#include "net/service.h"

namespace cfnet::net {

/// Simulated AngelList public API.
///
/// Endpoints (all public, paginated where noted):
///  - "startups.raising"    {page}      -> startups currently fundraising
///                                         (the crawl's only entry point,
///                                         as the paper describes).
///  - "startups.get"        {id}        -> full startup profile, with the
///                                         social/CrunchBase URLs that seed
///                                         the other crawlers.
///  - "startups.followers"  {id, page}  -> ids of users following a startup.
///  - "users.get"           {id}        -> user profile: roles + AngelList-
///                                         visible investments.
///  - "users.following.startups" {id, page} -> startups the user follows.
///  - "users.following.users"    {id, page} -> users the user follows.
class AngelListService : public ApiService {
 public:
  AngelListService(const synth::World* world, ServiceConfig config = {
                       .latency_mean_micros = 80000,
                   });

 protected:
  ApiResponse Dispatch(const ApiRequest& request, int64_t now_micros) override;

 private:
  ApiResponse HandleRaising(const ApiRequest& request);
  ApiResponse HandleStartupGet(const ApiRequest& request);
  ApiResponse HandleStartupFollowers(const ApiRequest& request);
  ApiResponse HandleUserGet(const ApiRequest& request);
  ApiResponse HandleUserFollowing(const ApiRequest& request, bool startups);

  std::vector<synth::CompanyId> raising_;  // precomputed listing
};

}  // namespace cfnet::net

#endif  // CFNET_NET_ANGELLIST_H_
