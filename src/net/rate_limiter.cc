#include "net/rate_limiter.h"

#include <algorithm>

namespace cfnet::net {

SlidingWindowRateLimiter::Decision SlidingWindowRateLimiter::Admit(
    const std::string& token, int64_t now_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  TokenWindow& w = windows_[token];
  // Evict timestamps older than the window.
  while (!w.timestamps.empty() &&
         w.timestamps.front() <= now_micros - window_micros_) {
    w.timestamps.pop_front();
  }
  if (static_cast<int>(w.timestamps.size()) < max_calls_) {
    // Keep the deque sorted even when virtual times arrive out of order.
    if (!w.timestamps.empty() && now_micros < w.timestamps.back()) {
      auto pos = std::lower_bound(w.timestamps.begin(), w.timestamps.end(),
                                  now_micros);
      w.timestamps.insert(pos, now_micros);
    } else {
      w.timestamps.push_back(now_micros);
    }
    ++w.total_admitted;
    return Decision{true, 0};
  }
  return Decision{false, w.timestamps.front() + window_micros_};
}

int64_t SlidingWindowRateLimiter::AdmittedCount(const std::string& token) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = windows_.find(token);
  return it == windows_.end() ? 0 : it->second.total_admitted;
}

}  // namespace cfnet::net
