#include "net/crunchbase.h"

#include "net/urls.h"

namespace cfnet::net {

CrunchBaseService::CrunchBaseService(const synth::World* world,
                                     ServiceConfig config)
    : ApiService("crunchbase", world, config) {
  for (const auto& c : world->companies()) {
    if (c.has_crunchbase) by_name_[c.name].push_back(c.id);
  }
}

ApiResponse CrunchBaseService::Dispatch(const ApiRequest& request, int64_t) {
  if (request.endpoint == "organizations.get") return HandleGet(request);
  if (request.endpoint == "organizations.search") return HandleSearch(request);
  return ApiResponse::Error(400, "unknown endpoint: " + request.endpoint);
}

ApiResponse CrunchBaseService::HandleGet(const ApiRequest& request) {
  const std::string permalink = request.GetParam("permalink");
  synth::CompanyId id = CompanyIdFromCrunchBasePermalink(permalink);
  const synth::CompanyTruth* c = world().FindCompany(id);
  if (c == nullptr || !c->has_crunchbase) {
    return ApiResponse::Error(404, "no such organization: " + permalink);
  }
  json::Json j = json::Json::MakeObject();
  j.Set("permalink", permalink);
  j.Set("name", c->name);
  j.Set("crunchbase_url", CrunchBaseUrl(c->id));
  // CrunchBase links back to AngelList for every company in both places.
  j.Set("angellist_url", AngelListCompanyUrl(c->id));
  j.Set("total_funding_usd", c->raised_amount_usd);
  json::Json rounds = json::Json::MakeArray();
  for (size_t round_idx : world().RoundsOf(c->id)) {
    const synth::FundingRound& r = world().rounds()[round_idx];
    json::Json rj = json::Json::MakeObject();
    rj.Set("round_index", static_cast<int64_t>(r.round_index));
    rj.Set("amount_usd", r.amount_usd);
    rj.Set("announced_on_micros", r.announced_on_micros);
    json::Json investors = json::Json::MakeArray();
    for (synth::UserId inv : r.investors) {
      investors.Append(static_cast<int64_t>(inv));
    }
    rj.Set("investor_ids", std::move(investors));
    rounds.Append(std::move(rj));
  }
  j.Set("funding_rounds", std::move(rounds));
  return ApiResponse::Ok(std::move(j));
}

ApiResponse CrunchBaseService::HandleSearch(const ApiRequest& request) {
  const std::string name = request.GetParam("name");
  json::Json body = json::Json::MakeObject();
  json::Json results = json::Json::MakeArray();
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    for (synth::CompanyId id : it->second) {
      json::Json r = json::Json::MakeObject();
      r.Set("permalink", CrunchBasePermalink(id));
      r.Set("name", name);
      results.Append(std::move(r));
    }
  }
  body.Set("results", std::move(results));
  return ApiResponse::Ok(std::move(body));
}

}  // namespace cfnet::net
