#include "net/angellist.h"

#include "net/urls.h"

namespace cfnet::net {
namespace {

json::Json StartupSummaryJson(const synth::CompanyTruth& c) {
  json::Json j = json::Json::MakeObject();
  j.Set("id", static_cast<int64_t>(c.id));
  j.Set("name", c.name);
  j.Set("angellist_url", AngelListCompanyUrl(c.id));
  return j;
}

const char* RoleName(synth::UserRole role) {
  switch (role) {
    case synth::UserRole::kInvestor:
      return "investor";
    case synth::UserRole::kFounder:
      return "founder";
    case synth::UserRole::kEmployee:
      return "employee";
    case synth::UserRole::kOther:
      return "other";
  }
  return "other";
}

}  // namespace

AngelListService::AngelListService(const synth::World* world,
                                   ServiceConfig config)
    : ApiService("angellist", world, config) {
  for (const auto& c : world->companies()) {
    if (c.currently_raising) raising_.push_back(c.id);
  }
}

ApiResponse AngelListService::Dispatch(const ApiRequest& request, int64_t) {
  if (request.endpoint == "startups.raising") return HandleRaising(request);
  if (request.endpoint == "startups.get") return HandleStartupGet(request);
  if (request.endpoint == "startups.followers") {
    return HandleStartupFollowers(request);
  }
  if (request.endpoint == "users.get") return HandleUserGet(request);
  if (request.endpoint == "users.following.startups") {
    return HandleUserFollowing(request, /*startups=*/true);
  }
  if (request.endpoint == "users.following.users") {
    return HandleUserFollowing(request, /*startups=*/false);
  }
  return ApiResponse::Error(400, "unknown endpoint: " + request.endpoint);
}

ApiResponse AngelListService::HandleRaising(const ApiRequest& request) {
  int64_t page = request.GetIntParam("page", 1);
  int64_t begin = 0;
  int64_t end = 0;
  int64_t last_page = 0;
  if (!PageRange(static_cast<int64_t>(raising_.size()), page, &begin, &end,
                 &last_page)) {
    return ApiResponse::Error(404, "page out of range");
  }
  json::Json body = json::Json::MakeObject();
  json::Json startups = json::Json::MakeArray();
  for (int64_t i = begin; i < end; ++i) {
    startups.Append(
        StartupSummaryJson(*world().FindCompany(raising_[static_cast<size_t>(i)])));
  }
  body.Set("startups", std::move(startups));
  body.Set("page", page);
  body.Set("last_page", last_page);
  body.Set("total", static_cast<int64_t>(raising_.size()));
  return ApiResponse::Ok(std::move(body));
}

ApiResponse AngelListService::HandleStartupGet(const ApiRequest& request) {
  const synth::CompanyTruth* c =
      world().FindCompany(static_cast<synth::CompanyId>(request.GetIntParam("id")));
  if (c == nullptr) return ApiResponse::Error(404, "no such startup");

  json::Json j = StartupSummaryJson(*c);
  j.Set("company_url", "https://www." + std::to_string(c->id) + ".example.com");
  j.Set("fundraising", c->currently_raising);
  j.Set("follower_count",
        static_cast<int64_t>(world().FollowersOf(c->id).size()));
  if (c->has_twitter()) j.Set("twitter_url", TwitterUrl(c->id));
  if (c->has_facebook()) j.Set("facebook_url", FacebookUrl(c->id));
  if (c->crunchbase_url_listed) j.Set("crunchbase_url", CrunchBaseUrl(c->id));
  if (c->has_demo_video) {
    j.Set("video_url", "https://video.example.com/demo/" + std::to_string(c->id));
  }
  json::Json founders = json::Json::MakeArray();
  for (synth::UserId f : c->founders) founders.Append(static_cast<int64_t>(f));
  j.Set("founder_ids", std::move(founders));
  return ApiResponse::Ok(std::move(j));
}

ApiResponse AngelListService::HandleStartupFollowers(const ApiRequest& request) {
  const synth::CompanyTruth* c =
      world().FindCompany(static_cast<synth::CompanyId>(request.GetIntParam("id")));
  if (c == nullptr) return ApiResponse::Error(404, "no such startup");
  const auto& followers = world().FollowersOf(c->id);
  int64_t page = request.GetIntParam("page", 1);
  int64_t begin = 0;
  int64_t end = 0;
  int64_t last_page = 0;
  if (!PageRange(static_cast<int64_t>(followers.size()), page, &begin, &end,
                 &last_page)) {
    return ApiResponse::Error(404, "page out of range");
  }
  json::Json body = json::Json::MakeObject();
  json::Json ids = json::Json::MakeArray();
  for (int64_t i = begin; i < end; ++i) {
    ids.Append(static_cast<int64_t>(followers[static_cast<size_t>(i)]));
  }
  body.Set("follower_ids", std::move(ids));
  body.Set("page", page);
  body.Set("last_page", last_page);
  body.Set("total", static_cast<int64_t>(followers.size()));
  return ApiResponse::Ok(std::move(body));
}

ApiResponse AngelListService::HandleUserGet(const ApiRequest& request) {
  const synth::UserTruth* u =
      world().FindUser(static_cast<synth::UserId>(request.GetIntParam("id")));
  if (u == nullptr) return ApiResponse::Error(404, "no such user");
  json::Json j = json::Json::MakeObject();
  j.Set("id", static_cast<int64_t>(u->id));
  j.Set("name", u->name);
  j.Set("angellist_url", AngelListUserUrl(u->id));
  json::Json roles = json::Json::MakeArray();
  roles.Append(RoleName(u->role));
  j.Set("roles", std::move(roles));
  // Only the AngelList-visible investment edges appear on the profile;
  // the remainder is recoverable solely through CrunchBase rounds (§3:
  // "AngelList data is incomplete").
  json::Json investments = json::Json::MakeArray();
  for (size_t i = 0; i < u->investments.size(); ++i) {
    if (u->investment_on_angellist[i]) {
      investments.Append(static_cast<int64_t>(u->investments[i]));
    }
  }
  j.Set("investment_company_ids", std::move(investments));
  return ApiResponse::Ok(std::move(j));
}

ApiResponse AngelListService::HandleUserFollowing(const ApiRequest& request,
                                                  bool startups) {
  const synth::UserTruth* u =
      world().FindUser(static_cast<synth::UserId>(request.GetIntParam("id")));
  if (u == nullptr) return ApiResponse::Error(404, "no such user");
  // CompanyId and UserId are both uint64_t, so the two follow lists share a
  // vector type.
  const std::vector<uint64_t>& list =
      startups ? u->follows_companies : u->follows_users;
  int64_t page = request.GetIntParam("page", 1);
  int64_t begin = 0;
  int64_t end = 0;
  int64_t last_page = 0;
  if (!PageRange(static_cast<int64_t>(list.size()), page, &begin, &end,
                 &last_page)) {
    return ApiResponse::Error(404, "page out of range");
  }
  json::Json body = json::Json::MakeObject();
  json::Json ids = json::Json::MakeArray();
  for (int64_t i = begin; i < end; ++i) {
    ids.Append(static_cast<int64_t>(list[static_cast<size_t>(i)]));
  }
  body.Set(startups ? "startup_ids" : "user_ids", std::move(ids));
  body.Set("page", page);
  body.Set("last_page", last_page);
  body.Set("total", static_cast<int64_t>(list.size()));
  return ApiResponse::Ok(std::move(body));
}

}  // namespace cfnet::net
