#ifndef CFNET_NET_FAULT_PLAN_H_
#define CFNET_NET_FAULT_PLAN_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace cfnet::net {

/// One scripted fault interval in virtual time. A request whose worker clock
/// falls inside [begin_micros, end_micros) is hit with probability `rate`
/// (1.0 = deterministic; fractional rates draw from the plan's seeded hash
/// stream so replays of the same scenario are reproducible).
struct FaultWindow {
  int64_t begin_micros = 0;
  int64_t end_micros = 0;
  double rate = 1.0;

  bool Contains(int64_t t) const { return t >= begin_micros && t < end_micros; }
};

/// A latency spike: requests inside the window take `multiplier` times the
/// sampled latency (slow-request storms, e.g. an overloaded backend).
struct LatencySpike {
  int64_t begin_micros = 0;
  int64_t end_micros = 0;
  double multiplier = 10.0;

  bool Contains(int64_t t) const { return t >= begin_micros && t < end_micros; }
};

/// Scripted failure scenario for one service, expressed in virtual time so
/// whole weeks of flaky-API behaviour replay deterministically in a test.
///
///  - `error_bursts`: 503 storms / hard outage windows (rate 1.0 reproduces
///    the paper's CrunchBase and Facebook maintenance outages).
///  - `auth_storms`: token-revocation windows — every token-authenticated
///    request is answered 401 ("401 storms").
///  - `malformed_bodies`: the service answers 200 but the JSON body is
///    truncated mid-document; clients must treat it as a parse failure.
///  - `latency_spikes`: slow-request windows.
struct FaultPlan {
  std::vector<FaultWindow> error_bursts;
  std::vector<FaultWindow> auth_storms;
  std::vector<FaultWindow> malformed_bodies;
  std::vector<LatencySpike> latency_spikes;
  /// Seed for fractional-rate draws; two injectors with the same plan and
  /// request order make identical decisions.
  uint64_t seed = 1;

  bool empty() const {
    return error_bursts.empty() && auth_storms.empty() &&
           malformed_bodies.empty() && latency_spikes.empty();
  }
};

/// Per-request fault decision.
struct FaultDecision {
  bool inject_error = false;    // answer 503 regardless of endpoint
  bool auth_storm = false;      // answer 401 on token-authenticated endpoints
  bool malformed_body = false;  // answer 200 with a truncated body
  double latency_multiplier = 1.0;
};

/// Evaluates a FaultPlan against virtual time. Thread-safe; fractional-rate
/// draws come from a seeded counter-based hash so decisions depend only on
/// (seed, draw index), not on wall-clock interleaving sources.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Decision for one request issued at virtual time `now_micros`.
  FaultDecision Evaluate(int64_t now_micros);

  const FaultPlan& plan() const { return plan_; }

 private:
  bool Hit(const std::vector<FaultWindow>& windows, int64_t now,
           uint64_t category);

  FaultPlan plan_;
  std::atomic<uint64_t> draw_serial_{0};
};

}  // namespace cfnet::net

#endif  // CFNET_NET_FAULT_PLAN_H_
