#ifndef CFNET_NET_SERVICE_H_
#define CFNET_NET_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>
#include <memory>
#include <string>

#include "json/json.h"
#include "net/fault_plan.h"
#include "net/rate_limiter.h"
#include "net/tokens.h"
#include "synth/world.h"

namespace cfnet::net {

/// One API call against a simulated service.
struct ApiRequest {
  std::string endpoint;  // e.g. "startups.get"
  std::map<std::string, std::string> params;
  std::string access_token;

  ApiRequest() = default;
  ApiRequest(std::string ep, std::map<std::string, std::string> p = {},
             std::string token = {})
      : endpoint(std::move(ep)),
        params(std::move(p)),
        access_token(std::move(token)) {}

  std::string GetParam(const std::string& key, const std::string& dflt = "") const {
    auto it = params.find(key);
    return it == params.end() ? dflt : it->second;
  }
  int64_t GetIntParam(const std::string& key, int64_t dflt = 0) const;
};

/// HTTP-ish response: 200 with a JSON body, or an error status code.
struct ApiResponse {
  int status = 200;  // 200, 400, 401, 404, 429, 503
  json::Json body;
  /// True when the 200 body failed to parse client-side (truncated JSON from
  /// a fault window); `raw_body` carries the broken text, `body` is null.
  /// Callers must treat a malformed 200 as a retryable transport error.
  bool malformed = false;
  std::string raw_body;

  bool ok() const { return status == 200 && !malformed; }

  static ApiResponse Ok(json::Json body) {
    ApiResponse r;
    r.body = std::move(body);
    return r;
  }
  static ApiResponse Error(int status, const std::string& message) {
    ApiResponse r;
    r.status = status;
    r.body.Set("error", message);
    return r;
  }
};

/// Per-service behaviour knobs.
struct ServiceConfig {
  int64_t latency_mean_micros = 100000;  // mean per-request latency (100 ms)
  double latency_jitter = 0.3;           // uniform +-30%
  double transient_error_rate = 0.004;   // 503 rate (crawler retries these)
  bool requires_token = false;
  int rate_limit_calls = 0;  // 0 = unlimited
  int64_t rate_limit_window_micros = 0;
  int page_size = 50;
  int max_apps_per_owner = 5;
  /// Maintenance/outage windows in virtual time: any request whose worker
  /// clock falls inside [begin, end) is answered 503. Crawlers ride these
  /// out with (patient) exponential backoff.
  std::vector<std::pair<int64_t, int64_t>> outage_windows;
};

/// Aggregate request counters.
struct ServiceStats {
  std::atomic<int64_t> total{0};
  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> unauthorized{0};
  std::atomic<int64_t> rate_limited{0};
  std::atomic<int64_t> transient_errors{0};
  std::atomic<int64_t> outage_rejections{0};
  std::atomic<int64_t> not_found{0};
  // Scripted fault-plan injections (zero unless a FaultPlan is installed).
  std::atomic<int64_t> injected_errors{0};
  std::atomic<int64_t> injected_auth_failures{0};
  std::atomic<int64_t> malformed_responses{0};
};

/// Base class for the four simulated Web APIs. Handles the cross-cutting
/// behaviour — token validation, sliding-window rate limiting, latency
/// accounting in virtual time, transient-error injection — and delegates
/// endpoint semantics to `Dispatch`.
///
/// Virtual-time model: each crawler worker carries its own clock; `Handle`
/// advances it by the request latency. On a 429 the response body carries
/// `retry_at_micros`, and the worker chooses between advancing its clock
/// (waiting) and rotating tokens — the two strategies from §3.
class ApiService {
 public:
  ApiService(std::string name, const synth::World* world, ServiceConfig config);
  virtual ~ApiService() = default;

  ApiService(const ApiService&) = delete;
  ApiService& operator=(const ApiService&) = delete;

  /// Thread-safe entry point. `worker_time_micros` is advanced by the
  /// simulated request latency (even for error responses).
  ApiResponse Handle(const ApiRequest& request, int64_t* worker_time_micros);

  const std::string& name() const { return name_; }
  const ServiceStats& stats() const { return stats_; }
  TokenRegistry& tokens() { return tokens_; }
  const ServiceConfig& config() const { return config_; }

  /// Installs (or, with an empty plan, clears) a scripted fault scenario.
  /// Not synchronized against in-flight requests — install between crawls.
  void set_fault_plan(FaultPlan plan);
  bool has_fault_plan() const { return injector_ != nullptr; }

 protected:
  /// Endpoint semantics; `now_micros` is the worker's virtual time after
  /// latency. Runs concurrently from many workers — implementations must
  /// only read the (immutable) world or use their own synchronization.
  virtual ApiResponse Dispatch(const ApiRequest& request, int64_t now_micros) = 0;

  /// Endpoints that must work without a token (e.g. OAuth bootstrap).
  virtual bool EndpointRequiresToken(const std::string& endpoint) const;

  const synth::World& world() const { return *world_; }

  /// Paginates `total` items: computes [begin, end) for `page` (1-based)
  /// and the last page number. Returns false for out-of-range pages.
  bool PageRange(int64_t total, int64_t page, int64_t* begin, int64_t* end,
                 int64_t* last_page) const;

 private:
  int64_t SampleLatency();
  bool ShouldInjectError();

  std::string name_;
  const synth::World* world_;
  ServiceConfig config_;
  ServiceStats stats_;
  TokenRegistry tokens_;
  std::unique_ptr<SlidingWindowRateLimiter> limiter_;
  std::unique_ptr<FaultInjector> injector_;
  std::atomic<uint64_t> request_serial_{0};
};

}  // namespace cfnet::net

#endif  // CFNET_NET_SERVICE_H_
