#include "net/tokens.h"

namespace cfnet::net {

std::string TokenRegistry::NewTokenLocked(const std::string& owner,
                                          int64_t expires_at) {
  std::string token = "tok-" + std::to_string(next_serial_++) + "-" + owner;
  tokens_[token] = TokenInfo{owner, expires_at};
  return token;
}

Result<std::string> TokenRegistry::RegisterApp(const std::string& owner) {
  std::lock_guard<std::mutex> lock(mu_);
  int& count = apps_per_owner_[owner];
  if (count >= max_apps_per_owner_) {
    return Status::ResourceExhausted("owner '" + owner + "' already has " +
                                     std::to_string(count) + " apps");
  }
  ++count;
  return NewTokenLocked(owner, -1);
}

std::string TokenRegistry::IssueShortLivedToken(const std::string& owner,
                                                int64_t now_micros,
                                                int64_t ttl_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  return NewTokenLocked(owner, now_micros + ttl_micros);
}

Result<std::string> TokenRegistry::ExchangeForLongLived(
    const std::string& short_token, int64_t now_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tokens_.find(short_token);
  if (it == tokens_.end()) {
    return Status::NotFound("unknown token");
  }
  if (it->second.expires_at_micros >= 0 &&
      it->second.expires_at_micros <= now_micros) {
    return Status::FailedPrecondition("short-lived token expired");
  }
  return NewTokenLocked(it->second.owner, -1);
}

bool TokenRegistry::IsValid(const std::string& token, int64_t now_micros) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tokens_.find(token);
  if (it == tokens_.end()) return false;
  return it->second.expires_at_micros < 0 ||
         it->second.expires_at_micros > now_micros;
}

int TokenRegistry::tokens_issued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(tokens_.size());
}

}  // namespace cfnet::net
