#include "net/facebook.h"

#include <algorithm>

#include "net/urls.h"
#include "util/string_util.h"

namespace cfnet::net {
namespace {

constexpr const char* kLocations[] = {
    "San Francisco, CA", "New York, NY",  "Boston, MA",   "Austin, TX",
    "Seattle, WA",       "Palo Alto, CA", "Chicago, IL",  "Los Angeles, CA",
    "Denver, CO",        "Philadelphia, PA"};

}  // namespace

FacebookService::FacebookService(const synth::World* world,
                                 ServiceConfig config)
    : ApiService("facebook", world, config) {}

bool FacebookService::EndpointRequiresToken(const std::string& endpoint) const {
  if (endpoint == "oauth.token" || endpoint == "oauth.exchange") return false;
  return config().requires_token;
}

ApiResponse FacebookService::Dispatch(const ApiRequest& request,
                                      int64_t now_micros) {
  if (request.endpoint == "oauth.token") {
    std::string user = request.GetParam("user", "anonymous");
    std::string token =
        tokens().IssueShortLivedToken(user, now_micros, kShortTokenTtlMicros);
    json::Json body = json::Json::MakeObject();
    body.Set("access_token", token);
    body.Set("expires_in_micros", kShortTokenTtlMicros);
    return ApiResponse::Ok(std::move(body));
  }
  if (request.endpoint == "oauth.exchange") {
    auto long_token =
        tokens().ExchangeForLongLived(request.GetParam("token"), now_micros);
    if (!long_token.ok()) {
      return ApiResponse::Error(401, long_token.status().message());
    }
    json::Json body = json::Json::MakeObject();
    body.Set("access_token", *long_token);
    body.Set("long_lived", true);
    return ApiResponse::Ok(std::move(body));
  }
  if (request.endpoint == "page.get") return HandlePageGet(request);
  return ApiResponse::Error(400, "unknown endpoint: " + request.endpoint);
}

ApiResponse FacebookService::HandlePageGet(const ApiRequest& request) {
  const std::string page_id = request.GetParam("page_id");
  synth::CompanyId id = CompanyIdFromFacebookPageId(page_id);
  const synth::CompanyTruth* c = world().FindCompany(id);
  if (c == nullptr || !c->has_facebook()) {
    return ApiResponse::Error(404, "no such page: " + page_id);
  }
  json::Json j = json::Json::MakeObject();
  j.Set("id", page_id);
  j.Set("name", c->name);
  j.Set("location", kLocations[c->id % std::size(kLocations)]);
  j.Set("fan_count", c->facebook_likes);
  // Recent posts: deterministic filler, count scaling with engagement.
  int64_t num_posts =
      std::min<int64_t>(10, c->facebook_likes > 0 ? 1 + c->facebook_likes / 400 : 0);
  json::Json posts = json::Json::MakeArray();
  for (int64_t p = 0; p < num_posts; ++p) {
    json::Json post = json::Json::MakeObject();
    post.Set("message", StrFormat("Update #%lld from %s",
                                  static_cast<long long>(p + 1), c->name.c_str()));
    post.Set("created_time_micros",
             static_cast<int64_t>((c->id * 37 + static_cast<uint64_t>(p)) %
                                  (365ull * 24 * 3600)) *
                 1000000);
    posts.Append(std::move(post));
  }
  j.Set("posts", std::move(posts));
  return ApiResponse::Ok(std::move(j));
}

}  // namespace cfnet::net
