#include "net/twitter.h"

#include "net/urls.h"
#include "util/string_util.h"

namespace cfnet::net {

TwitterService::TwitterService(const synth::World* world, ServiceConfig config)
    : ApiService("twitter", world, config) {}

bool TwitterService::EndpointRequiresToken(const std::string& endpoint) const {
  if (endpoint == "apps.register") return false;
  return config().requires_token;
}

ApiResponse TwitterService::Dispatch(const ApiRequest& request, int64_t) {
  if (request.endpoint == "apps.register") {
    auto token = tokens().RegisterApp(request.GetParam("owner", "anonymous"));
    if (!token.ok()) {
      return ApiResponse::Error(403, token.status().message());
    }
    json::Json body = json::Json::MakeObject();
    body.Set("access_token", *token);
    return ApiResponse::Ok(std::move(body));
  }
  if (request.endpoint == "users.show") return HandleUsersShow(request);
  return ApiResponse::Error(400, "unknown endpoint: " + request.endpoint);
}

ApiResponse TwitterService::HandleUsersShow(const ApiRequest& request) {
  const std::string screen_name = request.GetParam("screen_name");
  synth::CompanyId id = CompanyIdFromTwitterScreenName(screen_name);
  const synth::CompanyTruth* c = world().FindCompany(id);
  if (c == nullptr || !c->has_twitter()) {
    return ApiResponse::Error(404, "no such user: " + screen_name);
  }
  json::Json j = json::Json::MakeObject();
  j.Set("screen_name", screen_name);
  j.Set("name", c->name);
  j.Set("created_at_micros",
        static_cast<int64_t>((c->id * 131) % (5ull * 365 * 24 * 3600)) * 1000000);
  if (c->twitter_followers_null) {
    j.Set("followers_count", json::Json());  // null, as some profiles return
  } else {
    j.Set("followers_count", c->twitter_followers);
  }
  j.Set("friends_count", static_cast<int64_t>((c->id * 13) % 1500));
  j.Set("listed_count", static_cast<int64_t>((c->id * 7) % 120));
  j.Set("statuses_count", c->twitter_tweets);
  if (c->twitter_tweets > 0) {
    json::Json status = json::Json::MakeObject();
    status.Set("text", StrFormat("Latest news from %s!", c->name.c_str()));
    status.Set("created_at_micros",
               static_cast<int64_t>((c->id * 59) % (90ull * 24 * 3600)) * 1000000);
    j.Set("status", std::move(status));
  }
  return ApiResponse::Ok(std::move(j));
}

}  // namespace cfnet::net
