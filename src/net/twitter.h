#ifndef CFNET_NET_TWITTER_H_
#define CFNET_NET_TWITTER_H_

#include "net/service.h"

namespace cfnet::net {

/// Simulated Twitter REST API.
///
/// Endpoints:
///  - "apps.register" {owner}        -> access token; each owner may hold at
///                                      most 5 apps (the paper's constraint
///                                      that forces multi-machine sharding).
///  - "users.show"    {screen_name}  -> profile: created_at, followers_count
///                                      (occasionally null), friends_count,
///                                      listed_count, statuses_count and the
///                                      latest status. Requires a token and
///                                      is rate limited to 180 calls per
///                                      15-minute window per token.
class TwitterService : public ApiService {
 public:
  TwitterService(const synth::World* world, ServiceConfig config = {
                     .latency_mean_micros = 70000,
                     .requires_token = true,
                     .rate_limit_calls = 180,
                     .rate_limit_window_micros = 15ll * 60 * 1000000,
                 });

 protected:
  ApiResponse Dispatch(const ApiRequest& request, int64_t now_micros) override;
  bool EndpointRequiresToken(const std::string& endpoint) const override;

 private:
  ApiResponse HandleUsersShow(const ApiRequest& request);
};

}  // namespace cfnet::net

#endif  // CFNET_NET_TWITTER_H_
