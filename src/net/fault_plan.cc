#include "net/fault_plan.h"

namespace cfnet::net {
namespace {

// SplitMix64 finalizer, the same stateless mix the service layer uses for
// its latency/error draws.
uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

double UnitFromHash(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

bool FaultInjector::Hit(const std::vector<FaultWindow>& windows, int64_t now,
                        uint64_t category) {
  for (const FaultWindow& w : windows) {
    if (!w.Contains(now)) continue;
    if (w.rate >= 1.0) return true;
    if (w.rate <= 0.0) continue;
    uint64_t serial = draw_serial_.fetch_add(1, std::memory_order_relaxed);
    double u = UnitFromHash(Mix(plan_.seed * 0x9e3779b97f4a7c15ull +
                                category * 0x2545f4914f6cdd1dull + serial));
    if (u < w.rate) return true;
  }
  return false;
}

FaultDecision FaultInjector::Evaluate(int64_t now_micros) {
  FaultDecision d;
  d.inject_error = Hit(plan_.error_bursts, now_micros, 1);
  d.auth_storm = Hit(plan_.auth_storms, now_micros, 2);
  d.malformed_body = Hit(plan_.malformed_bodies, now_micros, 3);
  for (const LatencySpike& s : plan_.latency_spikes) {
    if (s.Contains(now_micros)) d.latency_multiplier *= s.multiplier;
  }
  return d;
}

}  // namespace cfnet::net
