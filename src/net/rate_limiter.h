#ifndef CFNET_NET_RATE_LIMITER_H_
#define CFNET_NET_RATE_LIMITER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>

namespace cfnet::net {

/// Sliding-window per-token rate limiter (Twitter's documented behaviour:
/// 180 calls per 15-minute window per access token).
///
/// Operates in virtual time: callers pass their current simulated time and,
/// when rejected, receive the earliest time at which the token has capacity
/// again — so a crawler worker can either advance its clock (wait) or
/// rotate to a different token, exactly the two strategies §3 describes.
class SlidingWindowRateLimiter {
 public:
  struct Decision {
    bool admitted = false;
    /// When not admitted: earliest virtual time the call would be admitted.
    int64_t retry_at_micros = 0;
  };

  SlidingWindowRateLimiter(int max_calls, int64_t window_micros)
      : max_calls_(max_calls), window_micros_(window_micros) {}

  /// Tries to admit one call for `token` at `now_micros`.
  /// Virtual timestamps may arrive slightly out of order across workers;
  /// the window is evaluated against the passed time.
  Decision Admit(const std::string& token, int64_t now_micros);

  int max_calls() const { return max_calls_; }
  int64_t window_micros() const { return window_micros_; }

  /// Calls admitted so far for `token` (for tests/metrics).
  int64_t AdmittedCount(const std::string& token) const;

 private:
  struct TokenWindow {
    std::deque<int64_t> timestamps;  // admitted call times, oldest first
    int64_t total_admitted = 0;
  };

  int max_calls_;
  int64_t window_micros_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, TokenWindow> windows_;
};

}  // namespace cfnet::net

#endif  // CFNET_NET_RATE_LIMITER_H_
