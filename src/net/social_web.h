#ifndef CFNET_NET_SOCIAL_WEB_H_
#define CFNET_NET_SOCIAL_WEB_H_

#include <memory>
#include <optional>

#include "net/angellist.h"
#include "net/crunchbase.h"
#include "net/facebook.h"
#include "net/twitter.h"
#include "synth/world.h"
#include "util/sim_clock.h"

namespace cfnet::net {

/// Optional per-service behaviour overrides (fault-tolerance tests script
/// outages, error rates and rate limits per service; unset services keep
/// their canonical defaults).
struct SocialWebConfig {
  std::optional<ServiceConfig> angellist;
  std::optional<ServiceConfig> crunchbase;
  std::optional<ServiceConfig> facebook;
  std::optional<ServiceConfig> twitter;
};

/// The whole simulated web: one instance of each service over a shared
/// ground-truth world, plus the global virtual clock. This is what a
/// Crawler is pointed at.
class SocialWeb {
 public:
  explicit SocialWeb(const synth::World* world,
                     const SocialWebConfig& config = {})
      : world_(world),
        angellist_(config.angellist
                       ? std::make_unique<AngelListService>(world, *config.angellist)
                       : std::make_unique<AngelListService>(world)),
        crunchbase_(config.crunchbase
                        ? std::make_unique<CrunchBaseService>(world, *config.crunchbase)
                        : std::make_unique<CrunchBaseService>(world)),
        facebook_(config.facebook
                      ? std::make_unique<FacebookService>(world, *config.facebook)
                      : std::make_unique<FacebookService>(world)),
        twitter_(config.twitter
                     ? std::make_unique<TwitterService>(world, *config.twitter)
                     : std::make_unique<TwitterService>(world)) {}

  SocialWeb(const SocialWeb&) = delete;
  SocialWeb& operator=(const SocialWeb&) = delete;

  const synth::World& world() const { return *world_; }
  AngelListService& angellist() { return *angellist_; }
  CrunchBaseService& crunchbase() { return *crunchbase_; }
  FacebookService& facebook() { return *facebook_; }
  TwitterService& twitter() { return *twitter_; }
  SimClock& clock() { return clock_; }

 private:
  const synth::World* world_;
  SimClock clock_;
  std::unique_ptr<AngelListService> angellist_;
  std::unique_ptr<CrunchBaseService> crunchbase_;
  std::unique_ptr<FacebookService> facebook_;
  std::unique_ptr<TwitterService> twitter_;
};

}  // namespace cfnet::net

#endif  // CFNET_NET_SOCIAL_WEB_H_
