#ifndef CFNET_NET_CRUNCHBASE_H_
#define CFNET_NET_CRUNCHBASE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "net/service.h"

namespace cfnet::net {

/// Simulated CrunchBase public API.
///
/// Endpoints:
///  - "organizations.get"    {permalink} -> funding profile with per-round
///                                          amounts, dates and investor ids
///                                          (404 for companies CrunchBase
///                                          does not know, i.e. unfunded).
///  - "organizations.search" {name}      -> organizations matching the name
///                                          exactly; the augmenter only
///                                          accepts unique hits, as §3 does.
class CrunchBaseService : public ApiService {
 public:
  CrunchBaseService(const synth::World* world, ServiceConfig config = {
                        .latency_mean_micros = 120000,
                    });

 protected:
  ApiResponse Dispatch(const ApiRequest& request, int64_t now_micros) override;

 private:
  ApiResponse HandleGet(const ApiRequest& request);
  ApiResponse HandleSearch(const ApiRequest& request);

  /// Exact-name index over companies with a CrunchBase profile.
  std::unordered_map<std::string, std::vector<synth::CompanyId>> by_name_;
};

}  // namespace cfnet::net

#endif  // CFNET_NET_CRUNCHBASE_H_
