#include "net/service.h"

#include <cstdlib>

namespace cfnet::net {
namespace {

/// Stateless 64-bit mix (SplitMix64 finalizer) for deterministic yet
/// contention-free per-request latency/error draws.
uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

double UnitFromHash(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

int64_t ApiRequest::GetIntParam(const std::string& key, int64_t dflt) const {
  auto it = params.find(key);
  if (it == params.end()) return dflt;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

ApiService::ApiService(std::string name, const synth::World* world,
                       ServiceConfig config)
    : name_(std::move(name)),
      world_(world),
      config_(config),
      tokens_(config.max_apps_per_owner) {
  if (config_.rate_limit_calls > 0) {
    limiter_ = std::make_unique<SlidingWindowRateLimiter>(
        config_.rate_limit_calls, config_.rate_limit_window_micros);
  }
}

int64_t ApiService::SampleLatency() {
  uint64_t serial = request_serial_.fetch_add(1, std::memory_order_relaxed);
  double u = UnitFromHash(Mix(serial * 2 + 1));
  double factor = 1.0 - config_.latency_jitter +
                  2.0 * config_.latency_jitter * u;
  return static_cast<int64_t>(
      static_cast<double>(config_.latency_mean_micros) * factor);
}

bool ApiService::ShouldInjectError() {
  if (config_.transient_error_rate <= 0) return false;
  uint64_t serial = request_serial_.load(std::memory_order_relaxed);
  return UnitFromHash(Mix(serial * 2)) < config_.transient_error_rate;
}

bool ApiService::EndpointRequiresToken(const std::string&) const {
  return config_.requires_token;
}

void ApiService::set_fault_plan(FaultPlan plan) {
  injector_ = plan.empty() ? nullptr : std::make_unique<FaultInjector>(std::move(plan));
}

bool ApiService::PageRange(int64_t total, int64_t page, int64_t* begin,
                           int64_t* end, int64_t* last_page) const {
  const int64_t per_page = config_.page_size;
  *last_page = total == 0 ? 1 : (total + per_page - 1) / per_page;
  if (page < 1 || page > *last_page) return false;
  *begin = (page - 1) * per_page;
  *end = std::min<int64_t>(total, *begin + per_page);
  return true;
}

ApiResponse ApiService::Handle(const ApiRequest& request,
                               int64_t* worker_time_micros) {
  stats_.total.fetch_add(1, std::memory_order_relaxed);

  // Scripted-fault decision for this request (identity when no plan).
  FaultDecision fault;
  if (injector_ != nullptr) fault = injector_->Evaluate(*worker_time_micros);
  auto latency = [&]() {
    return static_cast<int64_t>(static_cast<double>(SampleLatency()) *
                                fault.latency_multiplier);
  };

  const bool needs_token = EndpointRequiresToken(request.endpoint);
  if (needs_token && fault.auth_storm) {
    stats_.injected_auth_failures.fetch_add(1, std::memory_order_relaxed);
    stats_.unauthorized.fetch_add(1, std::memory_order_relaxed);
    *worker_time_micros += latency();
    return ApiResponse::Error(401, "access token revoked");
  }
  if (needs_token &&
      !tokens_.IsValid(request.access_token, *worker_time_micros)) {
    stats_.unauthorized.fetch_add(1, std::memory_order_relaxed);
    *worker_time_micros += latency();
    return ApiResponse::Error(401, "invalid or expired access token");
  }

  if (limiter_ != nullptr && needs_token) {
    auto decision = limiter_->Admit(request.access_token, *worker_time_micros);
    if (!decision.admitted) {
      stats_.rate_limited.fetch_add(1, std::memory_order_relaxed);
      // Rejection is cheap (the API answers immediately with a 429).
      ApiResponse limited;
      limited.status = 429;
      limited.body.Set("error", "rate limit exceeded");
      limited.body.Set("retry_at_micros", decision.retry_at_micros);
      return limited;
    }
  }

  *worker_time_micros += latency();

  for (const auto& [begin, end] : config_.outage_windows) {
    if (*worker_time_micros >= begin && *worker_time_micros < end) {
      stats_.outage_rejections.fetch_add(1, std::memory_order_relaxed);
      return ApiResponse::Error(503, "service under maintenance");
    }
  }

  if (fault.inject_error) {
    stats_.injected_errors.fetch_add(1, std::memory_order_relaxed);
    return ApiResponse::Error(503, "injected fault: service unavailable");
  }

  if (ShouldInjectError()) {
    stats_.transient_errors.fetch_add(1, std::memory_order_relaxed);
    return ApiResponse::Error(503, "service temporarily unavailable");
  }

  ApiResponse resp = Dispatch(request, *worker_time_micros);
  if (resp.status == 200 && fault.malformed_body) {
    stats_.malformed_responses.fetch_add(1, std::memory_order_relaxed);
    ApiResponse broken;
    broken.status = 200;
    broken.malformed = true;
    broken.raw_body = resp.body.Dump();
    broken.raw_body.resize(broken.raw_body.size() / 2);  // truncated mid-doc
    return broken;
  }
  if (resp.status == 200) {
    stats_.ok.fetch_add(1, std::memory_order_relaxed);
  } else if (resp.status == 404) {
    stats_.not_found.fetch_add(1, std::memory_order_relaxed);
  }
  return resp;
}

}  // namespace cfnet::net
