#include "net/urls.h"

#include <cstdlib>

#include "util/string_util.h"

namespace cfnet::net {
namespace {

synth::CompanyId ParseIdAfterPrefix(std::string_view handle,
                                    std::string_view prefix) {
  if (!StartsWith(handle, prefix)) return 0;
  handle.remove_prefix(prefix.size());
  if (handle.empty()) return 0;
  char* end = nullptr;
  std::string tmp(handle);
  unsigned long long v = std::strtoull(tmp.c_str(), &end, 10);
  if (end != tmp.c_str() + tmp.size()) return 0;
  return static_cast<synth::CompanyId>(v);
}

}  // namespace

std::string AngelListCompanyUrl(synth::CompanyId id) {
  return "https://angel.co/company/" + std::to_string(id);
}

std::string AngelListUserUrl(synth::UserId id) {
  return "https://angel.co/u/" + std::to_string(id);
}

std::string TwitterScreenName(synth::CompanyId id) {
  return "startup" + std::to_string(id);
}

std::string FacebookPageId(synth::CompanyId id) {
  return "fbpage" + std::to_string(id);
}

std::string CrunchBasePermalink(synth::CompanyId id) {
  return "company-" + std::to_string(id);
}

std::string TwitterUrl(synth::CompanyId id) {
  return "https://twitter.com/" + TwitterScreenName(id);
}

std::string FacebookUrl(synth::CompanyId id) {
  return "https://www.facebook.com/" + FacebookPageId(id);
}

std::string CrunchBaseUrl(synth::CompanyId id) {
  return "https://www.crunchbase.com/organization/" + CrunchBasePermalink(id);
}

synth::CompanyId CompanyIdFromTwitterScreenName(std::string_view name) {
  return ParseIdAfterPrefix(name, "startup");
}

synth::CompanyId CompanyIdFromFacebookPageId(std::string_view page_id) {
  return ParseIdAfterPrefix(page_id, "fbpage");
}

synth::CompanyId CompanyIdFromCrunchBasePermalink(std::string_view permalink) {
  return ParseIdAfterPrefix(permalink, "company-");
}

}  // namespace cfnet::net
