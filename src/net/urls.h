#ifndef CFNET_NET_URLS_H_
#define CFNET_NET_URLS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "synth/entities.h"

namespace cfnet::net {

/// URL scheme of the simulated web. AngelList profiles link to the other
/// services exactly the way the paper exploits: the crawler derives API
/// handles from URL segments (e.g. the Twitter screen name is "the string
/// after the last '/' symbol").
std::string AngelListCompanyUrl(synth::CompanyId id);
std::string AngelListUserUrl(synth::UserId id);
std::string TwitterUrl(synth::CompanyId id);
std::string FacebookUrl(synth::CompanyId id);
std::string CrunchBaseUrl(synth::CompanyId id);

/// Handles embedded in the URLs above.
std::string TwitterScreenName(synth::CompanyId id);
std::string FacebookPageId(synth::CompanyId id);
std::string CrunchBasePermalink(synth::CompanyId id);

/// Reverse mappings; return 0 on malformed handles.
synth::CompanyId CompanyIdFromTwitterScreenName(std::string_view name);
synth::CompanyId CompanyIdFromFacebookPageId(std::string_view page_id);
synth::CompanyId CompanyIdFromCrunchBasePermalink(std::string_view permalink);

}  // namespace cfnet::net

#endif  // CFNET_NET_URLS_H_
