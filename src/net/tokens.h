#ifndef CFNET_NET_TOKENS_H_
#define CFNET_NET_TOKENS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/result.h"

namespace cfnet::net {

/// Access-token issuance and validation for the simulated services.
///
/// Models the two auth flows §3 relies on:
///  - Twitter: each user may register at most `max_apps_per_owner` apps,
///    each app yielding one access token (so the paper shards the crawl
///    across machines/tokens to beat the per-token rate limit).
///  - Facebook: login yields a short-lived token which can be exchanged
///    for a long-lived one ("through certain procedures including creating
///    a Facebook App"), after which the crawler "works without limitations".
class TokenRegistry {
 public:
  explicit TokenRegistry(int max_apps_per_owner = 5)
      : max_apps_per_owner_(max_apps_per_owner) {}

  TokenRegistry(const TokenRegistry&) = delete;
  TokenRegistry& operator=(const TokenRegistry&) = delete;

  /// Registers an app for `owner`; fails with ResourceExhausted once the
  /// owner hits the app cap. Returns a never-expiring app token.
  Result<std::string> RegisterApp(const std::string& owner);

  /// Issues a short-lived token (expires at now + ttl).
  std::string IssueShortLivedToken(const std::string& owner, int64_t now_micros,
                                   int64_t ttl_micros);

  /// Exchanges a valid short-lived token for a long-lived (never expiring)
  /// one; fails if the short token is unknown or already expired.
  Result<std::string> ExchangeForLongLived(const std::string& short_token,
                                           int64_t now_micros);

  /// True iff `token` exists and has not expired at `now_micros`.
  bool IsValid(const std::string& token, int64_t now_micros) const;

  int tokens_issued() const;

 private:
  struct TokenInfo {
    std::string owner;
    int64_t expires_at_micros = -1;  // -1 = never
  };

  std::string NewTokenLocked(const std::string& owner, int64_t expires_at);

  int max_apps_per_owner_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, TokenInfo> tokens_;
  std::unordered_map<std::string, int> apps_per_owner_;
  uint64_t next_serial_ = 1;
};

}  // namespace cfnet::net

#endif  // CFNET_NET_TOKENS_H_
