#ifndef CFNET_NET_FACEBOOK_H_
#define CFNET_NET_FACEBOOK_H_

#include "net/service.h"

namespace cfnet::net {

/// Simulated Facebook Graph API.
///
/// Endpoints:
///  - "oauth.token"    {user}  -> short-lived token (expires after 2h of
///                                virtual time); no token required.
///  - "oauth.exchange" {token} -> long-lived token (never expires); this is
///                                the "certain procedures including creating
///                                a Facebook App" step from §3, after which
///                                the crawler "can work without limitations".
///  - "page.get"       {page_id} -> page profile: location, fan_count
///                                (likes), recent posts. Requires a token.
class FacebookService : public ApiService {
 public:
  FacebookService(const synth::World* world, ServiceConfig config = {
                      .latency_mean_micros = 90000,
                      .requires_token = true,
                  });

  /// Short-lived token lifetime (2 simulated hours).
  static constexpr int64_t kShortTokenTtlMicros = 2ll * 3600 * 1000000;

 protected:
  ApiResponse Dispatch(const ApiRequest& request, int64_t now_micros) override;
  bool EndpointRequiresToken(const std::string& endpoint) const override;

 private:
  ApiResponse HandlePageGet(const ApiRequest& request);
};

}  // namespace cfnet::net

#endif  // CFNET_NET_FACEBOOK_H_
