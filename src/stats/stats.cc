#include "stats/stats.h"

#include <algorithm>
#include <cmath>

#include "util/simd.h"

namespace cfnet::stats {

Summary Summarize(const std::vector<double>& samples) {
  Summary s;
  s.n = samples.size();
  if (samples.empty()) return s;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = (s.n % 2 == 1)
                 ? sorted[s.n / 2]
                 : (sorted[s.n / 2 - 1] + sorted[s.n / 2]) / 2.0;
  double ss = 0;
  simd::MeanVarF64(sorted.data(), sorted.size(), &s.mean, &ss);
  s.stddev = s.n > 1 ? std::sqrt(ss / static_cast<double>(s.n - 1)) : 0.0;
  return s;
}

Ecdf::Ecdf(std::vector<double> samples) : samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end());
}

double Ecdf::operator()(double x) const {
  if (samples_.empty()) return 0;
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Ecdf::Quantile(double q) const {
  if (samples_.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  size_t idx = q <= 0 ? 0
                      : static_cast<size_t>(
                            std::ceil(q * static_cast<double>(samples_.size()))) -
                            1;
  idx = std::min(idx, samples_.size() - 1);
  return samples_[idx];
}

std::vector<Ecdf::Point> Ecdf::Curve(size_t max_points) const {
  std::vector<Point> pts;
  const size_t n = samples_.size();
  for (size_t i = 0; i < n;) {
    size_t j = i;
    while (j < n && samples_[j] == samples_[i]) ++j;
    pts.push_back({samples_[i],
                   static_cast<double>(j) / static_cast<double>(n)});
    i = j;
  }
  if (max_points > 0 && pts.size() > max_points) {
    std::vector<Point> thin;
    thin.reserve(max_points);
    double step = static_cast<double>(pts.size() - 1) /
                  static_cast<double>(max_points - 1);
    for (size_t k = 0; k < max_points; ++k) {
      thin.push_back(pts[static_cast<size_t>(std::llround(k * step))]);
    }
    pts = std::move(thin);
  }
  return pts;
}

double Ecdf::KsDistance(const Ecdf& a, const Ecdf& b) {
  double best = 0;
  for (double x : a.samples_) best = std::max(best, std::fabs(a(x) - b(x)));
  for (double x : b.samples_) best = std::max(best, std::fabs(a(x) - b(x)));
  return best;
}

double DkwEpsilon(size_t n, double delta) {
  if (n == 0) return 1.0;
  return std::sqrt(std::log(2.0 / delta) / (2.0 * static_cast<double>(n)));
}

size_t DkwSampleSize(double eps, double delta) {
  double n = std::log(2.0 / delta) / (2.0 * eps * eps);
  return static_cast<size_t>(std::ceil(n));
}

Histogram::Histogram(double lo, double hi, size_t num_bins)
    : lo_(lo),
      bin_width_((hi - lo) / static_cast<double>(num_bins == 0 ? 1 : num_bins)),
      counts_(num_bins == 0 ? 1 : num_bins, 0) {}

void Histogram::Add(double x) {
  double pos = (x - lo_) / bin_width_;
  long bin = static_cast<long>(std::floor(pos));
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

double Histogram::Density(size_t b) const {
  if (total_ == 0) return 0;
  return static_cast<double>(counts_[b]) /
         (static_cast<double>(total_) * bin_width_);
}

double SilvermanBandwidth(const std::vector<double>& samples) {
  Summary s = Summarize(samples);
  if (s.n < 2 || s.stddev <= 0) return 1.0;
  return 1.06 * s.stddev * std::pow(static_cast<double>(s.n), -0.2);
}

std::vector<std::pair<double, double>> GaussianKde(
    const std::vector<double>& samples, double lo, double hi,
    size_t grid_points, double bandwidth) {
  std::vector<std::pair<double, double>> out;
  if (samples.empty() || grid_points < 2 || hi <= lo) return out;
  double h = bandwidth > 0 ? bandwidth : SilvermanBandwidth(samples);
  if (h <= 0) h = 1.0;
  const double norm =
      1.0 / (static_cast<double>(samples.size()) * h * std::sqrt(2.0 * M_PI));
  out.reserve(grid_points);
  for (size_t g = 0; g < grid_points; ++g) {
    double x = lo + (hi - lo) * static_cast<double>(g) /
                        static_cast<double>(grid_points - 1);
    double density = 0;
    for (double s : samples) {
      double z = (x - s) / h;
      density += std::exp(-0.5 * z * z);
    }
    out.emplace_back(x, density * norm);
  }
  return out;
}

}  // namespace cfnet::stats
