#ifndef CFNET_STATS_INFERENCE_H_
#define CFNET_STATS_INFERENCE_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace cfnet::stats {

/// Inferential statistics used to back the §4 observations quantitatively
/// (the paper reports raw rates; we attach effect sizes and significance).

/// Pearson linear correlation of paired samples (0 if degenerate).
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Spearman rank correlation (Pearson on midranks; robust to the heavy
/// tails of engagement counts).
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// 2x2 chi-square test of independence with Yates continuity correction.
/// counts = {{a, b}, {c, d}} (rows: group, cols: outcome).
struct ChiSquareResult {
  double statistic = 0;
  double p_value = 1;  // df = 1
  /// Odds ratio (a*d)/(b*c), +inf-safe via +0.5 Haldane correction.
  double odds_ratio = 1;
};
ChiSquareResult ChiSquare2x2(int64_t a, int64_t b, int64_t c, int64_t d);

/// Chi-square(df=1) upper tail probability.
double ChiSquarePValueDf1(double statistic);

/// Percentile bootstrap confidence interval for the mean of `samples`.
struct BootstrapInterval {
  double mean = 0;
  double lo = 0;
  double hi = 0;
};
BootstrapInterval BootstrapMeanCi(const std::vector<double>& samples,
                                  double confidence = 0.95,
                                  int resamples = 1000, uint64_t seed = 1);

}  // namespace cfnet::stats

#endif  // CFNET_STATS_INFERENCE_H_
