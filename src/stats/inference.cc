#include "stats/inference.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.h"
#include "util/simd.h"

namespace cfnet::stats {

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  const size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0;
  const double mx = simd::SumF64(x.data(), n) / static_cast<double>(n);
  const double my = simd::SumF64(y.data(), n) / static_cast<double>(n);
  double sxy = 0;
  double sxx = 0;
  double syy = 0;
  simd::PearsonAccumF64(x.data(), y.data(), n, mx, my, &sxy, &sxx, &syy);
  if (sxx <= 0 || syy <= 0) return 0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

/// Midranks of a sample (ties share the average rank).
std::vector<double> Midranks(const std::vector<double>& x) {
  const size_t n = x.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return x[a] < x[b]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && x[order[j]] == x[order[i]]) ++j;
    double midrank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2;
    for (size_t k = i; k < j; ++k) ranks[order[k]] = midrank;
    i = j;
  }
  return ranks;
}

}  // namespace

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  const size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0;
  std::vector<double> xs(x.begin(), x.begin() + static_cast<long>(n));
  std::vector<double> ys(y.begin(), y.begin() + static_cast<long>(n));
  return PearsonCorrelation(Midranks(xs), Midranks(ys));
}

double ChiSquarePValueDf1(double statistic) {
  if (statistic <= 0) return 1.0;
  // For df=1, chi2 upper tail = erfc(sqrt(x/2)).
  return std::erfc(std::sqrt(statistic / 2.0));
}

ChiSquareResult ChiSquare2x2(int64_t a, int64_t b, int64_t c, int64_t d) {
  ChiSquareResult result;
  const double n = static_cast<double>(a + b + c + d);
  if (n <= 0) return result;
  const double row1 = static_cast<double>(a + b);
  const double row2 = static_cast<double>(c + d);
  const double col1 = static_cast<double>(a + c);
  const double col2 = static_cast<double>(b + d);
  if (row1 <= 0 || row2 <= 0 || col1 <= 0 || col2 <= 0) return result;
  // Yates-corrected statistic.
  double det = std::fabs(static_cast<double>(a) * static_cast<double>(d) -
                         static_cast<double>(b) * static_cast<double>(c));
  double corrected = std::max(0.0, det - n / 2.0);
  result.statistic = n * corrected * corrected / (row1 * row2 * col1 * col2);
  result.p_value = ChiSquarePValueDf1(result.statistic);
  result.odds_ratio =
      ((static_cast<double>(a) + 0.5) * (static_cast<double>(d) + 0.5)) /
      ((static_cast<double>(b) + 0.5) * (static_cast<double>(c) + 0.5));
  return result;
}

BootstrapInterval BootstrapMeanCi(const std::vector<double>& samples,
                                  double confidence, int resamples,
                                  uint64_t seed) {
  BootstrapInterval out;
  if (samples.empty()) return out;
  out.mean = simd::SumF64(samples.data(), samples.size()) /
             static_cast<double>(samples.size());
  if (samples.size() == 1 || resamples <= 0) {
    out.lo = out.hi = out.mean;
    return out;
  }
  Rng rng(seed);
  std::vector<double> means;
  means.reserve(static_cast<size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double s = 0;
    for (size_t i = 0; i < samples.size(); ++i) {
      s += samples[rng.NextUint64(samples.size())];
    }
    means.push_back(s / static_cast<double>(samples.size()));
  }
  std::sort(means.begin(), means.end());
  double alpha = (1.0 - confidence) / 2.0;
  auto quantile = [&](double q) {
    double pos = q * static_cast<double>(means.size() - 1);
    size_t lo_idx = static_cast<size_t>(pos);
    size_t hi_idx = std::min(lo_idx + 1, means.size() - 1);
    double frac = pos - static_cast<double>(lo_idx);
    return means[lo_idx] * (1 - frac) + means[hi_idx] * frac;
  };
  out.lo = quantile(alpha);
  out.hi = quantile(1.0 - alpha);
  return out;
}

}  // namespace cfnet::stats
