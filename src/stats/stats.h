#ifndef CFNET_STATS_STATS_H_
#define CFNET_STATS_STATS_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace cfnet::stats {

/// Basic sample summary.
struct Summary {
  size_t n = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  double median = 0;
};

Summary Summarize(const std::vector<double>& samples);

/// Empirical CDF F_n(x) = (#samples <= x) / n.
class Ecdf {
 public:
  /// Takes ownership of the samples (sorted internally).
  explicit Ecdf(std::vector<double> samples);

  /// P(X <= x) under the empirical distribution.
  double operator()(double x) const;

  /// Smallest sample x with F_n(x) >= q, q in (0, 1].
  double Quantile(double q) const;

  size_t n() const { return samples_.size(); }
  const std::vector<double>& sorted_samples() const { return samples_; }

  /// Step-curve points (x, F(x)) at distinct sample values, optionally
  /// thinned to at most `max_points` (0 = all) for plotting/printing.
  struct Point {
    double x = 0;
    double p = 0;
  };
  std::vector<Point> Curve(size_t max_points = 0) const;

  /// Kolmogorov-Smirnov distance sup_x |F_a(x) - F_b(x)|.
  static double KsDistance(const Ecdf& a, const Ecdf& b);

 private:
  std::vector<double> samples_;  // sorted
};

/// Dvoretzky–Kiefer–Wolfowitz bound: with probability >= 1 - delta,
/// sup_x |F_n(x) - F(x)| <= sqrt(ln(2/delta) / (2n)).
/// This is the quantitative form of the Glivenko–Cantelli argument the
/// paper uses for its 800,000-pair estimate (eps = 0.0196 at 99%).
double DkwEpsilon(size_t n, double delta);

/// Smallest n such that DkwEpsilon(n, delta) <= eps.
size_t DkwSampleSize(double eps, double delta);

/// Fixed-range histogram with density normalization (a PDF estimate).
class Histogram {
 public:
  Histogram(double lo, double hi, size_t num_bins);

  /// Adds a sample; values outside [lo, hi] clamp into the edge bins.
  void Add(double x);

  size_t num_bins() const { return counts_.size(); }
  size_t total() const { return total_; }
  double BinLow(size_t b) const { return lo_ + bin_width_ * static_cast<double>(b); }
  double BinHigh(size_t b) const { return BinLow(b) + bin_width_; }
  size_t Count(size_t b) const { return counts_[b]; }
  /// Normalized density: Count / (total * bin_width); integrates to 1.
  double Density(size_t b) const;

 private:
  double lo_;
  double bin_width_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

/// Silverman's rule-of-thumb bandwidth for Gaussian KDE.
double SilvermanBandwidth(const std::vector<double>& samples);

/// Gaussian kernel density estimate evaluated on a uniform grid over
/// [lo, hi]; returns (x, density) pairs. bandwidth <= 0 selects Silverman.
std::vector<std::pair<double, double>> GaussianKde(
    const std::vector<double>& samples, double lo, double hi,
    size_t grid_points, double bandwidth = 0);

}  // namespace cfnet::stats

#endif  // CFNET_STATS_STATS_H_
