#include "synth/world.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace cfnet::synth {
namespace {

constexpr const char* kNamePrefixes[] = {
    "Nova",  "Quant", "Hyper", "Blue",  "Deep",  "Agile", "Cloud", "Data",
    "Smart", "Open",  "Next",  "Peak",  "Flux",  "Iron",  "Solar", "Lunar",
    "Vertex", "Pulse", "Arc",   "Echo",  "Zen",   "Atlas", "Delta", "Metro"};

constexpr const char* kNameSuffixes[] = {
    "Labs",   "Works",   "Systems", "Analytics", "Robotics", "Health",
    "Pay",    "Social",  "Media",   "Logistics", "Grid",     "Mobile",
    "Cloud",  "Security", "Energy", "Foods",     "Travel",   "Learning",
    "Finance", "Games",  "Bio",     "Sense",     "Link",     "Stack"};

constexpr const char* kAmbiguousNames[] = {
    "Acme Labs",    "Apex Systems",  "Echo Media",   "Orbit Health",
    "Vector Works", "Prime Mobile",  "Nimbus Cloud", "Cobalt Analytics"};

/// Probability that a log-normal engagement count strictly exceeds its
/// median, accounting for the zero-inflated dead-account mass.
double AboveMedianProb(double zero_inflation) {
  return 0.5 * (1.0 - zero_inflation);
}

int64_t SampleEngagement(Rng& rng, double median, double sigma,
                         double zero_inflation) {
  // Dead accounts have exactly zero engagement; "valid" accounts follow a
  // log-normal whose median is the paper's split point (652 likes etc.).
  // Analyses compute medians over valid (nonzero) accounts, so the
  // above-median share over ALL accounts lands near the paper's 41-46%.
  if (rng.Bernoulli(zero_inflation)) return 0;
  double v = rng.LogNormal(std::log(median), sigma);
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(v)));
}

}  // namespace

World World::Generate(const WorldConfig& config) {
  World w;
  w.config_ = config;
  Rng rng(config.seed);

  const int64_t num_companies = std::max<int64_t>(100, config.NumCompanies());
  const int64_t num_users = std::max<int64_t>(200, config.NumUsers());

  // ---------------------------------------------------------------------
  // 1. Companies: identity, social cell, engagement, demo video.
  // ---------------------------------------------------------------------
  const double p_both = config.frac_both;
  const double p_fb_only = config.frac_facebook - config.frac_both;
  const double p_tw_only = config.frac_twitter - config.frac_both;
  const double p_social = p_fb_only + p_tw_only + p_both;
  CFNET_CHECK(p_fb_only >= 0 && p_tw_only >= 0 && p_social < 1.0);

  const double v1 = config.video_given_social;
  const double v0 = std::clamp(
      (config.frac_demo_video - p_social * v1) / (1.0 - p_social), 0.0, 1.0);

  w.companies_.resize(static_cast<size_t>(num_companies));
  for (int64_t i = 0; i < num_companies; ++i) {
    CompanyTruth& c = w.companies_[static_cast<size_t>(i)];
    c.id = static_cast<CompanyId>(i + 1);
    if (rng.Bernoulli(config.ambiguous_name_rate)) {
      c.name = kAmbiguousNames[rng.NextUint64(std::size(kAmbiguousNames))];
    } else {
      c.name = StrFormat(
          "%s%s %lld",
          kNamePrefixes[rng.NextUint64(std::size(kNamePrefixes))],
          kNameSuffixes[rng.NextUint64(std::size(kNameSuffixes))],
          static_cast<long long>(c.id));
    }
    c.currently_raising = rng.Bernoulli(config.frac_currently_raising);

    double u = rng.NextDouble();
    if (u < p_both) {
      c.social = SocialCell::kBoth;
    } else if (u < p_both + p_fb_only) {
      c.social = SocialCell::kFacebookOnly;
    } else if (u < p_both + p_fb_only + p_tw_only) {
      c.social = SocialCell::kTwitterOnly;
    } else {
      c.social = SocialCell::kNone;
    }

    if (c.has_facebook()) {
      c.facebook_likes =
          SampleEngagement(rng, config.fb_likes_median, config.fb_likes_sigma,
                           config.fb_zero_inflation);
    }
    if (c.has_twitter()) {
      c.twitter_tweets =
          SampleEngagement(rng, config.tw_tweets_median, config.tw_tweets_sigma,
                           config.tw_zero_inflation);
      c.twitter_followers = SampleEngagement(rng, config.tw_followers_median,
                                             config.tw_followers_sigma,
                                             config.tw_zero_inflation);
      c.twitter_followers_null = rng.Bernoulli(config.tw_followers_null_rate);
    }
    c.has_demo_video = rng.Bernoulli(c.social == SocialCell::kNone ? v0 : v1);
  }

  // ---------------------------------------------------------------------
  // 2. Funding success, calibrated to the Figure 6 cell-conditional rates.
  //
  // The per-company success probability is a cell base rate times odds
  // multipliers for above-median engagement and demo video. The base is
  // deflated by the analytic expectation of the multipliers within the
  // cell, so cell-conditional averages land on the paper's numbers.
  // ---------------------------------------------------------------------
  const double succ_fb_only =
      (config.success_fb_marginal * config.frac_facebook -
       config.success_both * config.frac_both) /
      p_fb_only;
  const double succ_tw_only =
      (config.success_tw_marginal * config.frac_twitter -
       config.success_both * config.frac_both) /
      p_tw_only;
  CFNET_CHECK(succ_fb_only > 0 && succ_tw_only > 0);

  const double q_likes = AboveMedianProb(config.fb_zero_inflation);
  const double q_tweets = AboveMedianProb(config.tw_zero_inflation);
  const double q_followers = AboveMedianProb(config.tw_zero_inflation);

  const double f_likes = 1.0 + q_likes * (config.boost_fb_likes_above_median - 1.0);
  const double f_tweets =
      1.0 + q_tweets * (config.boost_tw_tweets_above_median - 1.0);
  const double f_followers =
      1.0 + q_followers * (config.boost_tw_followers_above_median - 1.0);
  const double f_video_social = 1.0 + v1 * (config.boost_demo_video - 1.0);
  const double f_video_none = 1.0 + v0 * (config.boost_demo_video - 1.0);

  const double base_none = config.success_no_social / f_video_none;
  const double base_fb_only = succ_fb_only / (f_likes * f_video_social);
  const double base_tw_only =
      succ_tw_only / (f_tweets * f_followers * f_video_social);
  const double base_both = config.success_both /
                           (f_likes * f_tweets * f_followers * f_video_social);

  for (CompanyTruth& c : w.companies_) {
    double p = 0;
    switch (c.social) {
      case SocialCell::kNone:
        p = base_none;
        break;
      case SocialCell::kFacebookOnly:
        p = base_fb_only;
        break;
      case SocialCell::kTwitterOnly:
        p = base_tw_only;
        break;
      case SocialCell::kBoth:
        p = base_both;
        break;
    }
    if (c.has_facebook() && c.facebook_likes > config.fb_likes_median) {
      p *= config.boost_fb_likes_above_median;
    }
    if (c.has_twitter()) {
      if (c.twitter_tweets > config.tw_tweets_median) {
        p *= config.boost_tw_tweets_above_median;
      }
      if (c.twitter_followers > config.tw_followers_median) {
        p *= config.boost_tw_followers_above_median;
      }
    }
    if (c.has_demo_video) p *= config.boost_demo_video;
    c.raised_funding = rng.Bernoulli(std::min(p, 0.95));
    // CrunchBase has a funding profile exactly for funded companies — the
    // paper's 10,156 matched CrunchBase profiles are how success is derived.
    c.has_crunchbase = c.raised_funding;
    c.crunchbase_url_listed =
        c.has_crunchbase && rng.Bernoulli(config.cb_url_listed_rate);
    if (c.raised_funding) {
      c.funding_rounds = 1 + static_cast<int>(rng.Poisson(0.8));
      c.raised_amount_usd = rng.LogNormal(std::log(1.5e6), 1.0);
    }
  }

  // ---------------------------------------------------------------------
  // 3. Users and roles.
  // ---------------------------------------------------------------------
  w.users_.resize(static_cast<size_t>(num_users));
  std::vector<UserId> investors;
  std::vector<UserId> founders;
  for (int64_t i = 0; i < num_users; ++i) {
    UserTruth& u = w.users_[static_cast<size_t>(i)];
    u.id = static_cast<UserId>(i + 1);
    u.name = StrFormat("User %lld", static_cast<long long>(u.id));
    double r = rng.NextDouble();
    if (r < config.frac_investor) {
      u.role = UserRole::kInvestor;
      investors.push_back(u.id);
    } else if (r < config.frac_investor + config.frac_founder) {
      u.role = UserRole::kFounder;
      founders.push_back(u.id);
    } else if (r < config.frac_investor + config.frac_founder +
                       config.frac_employee) {
      u.role = UserRole::kEmployee;
    } else {
      u.role = UserRole::kOther;
    }
  }

  // ---------------------------------------------------------------------
  // 4. Investable companies (companies that appear in the bipartite
  //    investment graph). All funded companies are investable; the rest is
  //    sampled uniformly. A shuffled rank order drives Zipf popularity.
  // ---------------------------------------------------------------------
  const int64_t num_investable = std::max<int64_t>(
      10, static_cast<int64_t>(config.frac_companies_investable *
                               static_cast<double>(num_companies)));
  std::vector<CompanyId> investable;
  investable.reserve(static_cast<size_t>(num_investable));
  for (const CompanyTruth& c : w.companies_) {
    if (c.raised_funding) investable.push_back(c.id);
  }
  {
    std::vector<size_t> pool_idx(w.companies_.size());
    std::iota(pool_idx.begin(), pool_idx.end(), size_t{0});
    rng.Shuffle(pool_idx);
    for (size_t idx : pool_idx) {
      if (static_cast<int64_t>(investable.size()) >= num_investable) break;
      const CompanyTruth& c = w.companies_[idx];
      if (!c.raised_funding) investable.push_back(c.id);
    }
    rng.Shuffle(investable);  // rank order for popularity is random
  }

  auto pick_investable = [&](Rng& r) -> CompanyId {
    // Zipf(s=0.62) over the shuffled rank order: popular head, but flat
    // enough that invested companies spread across most of the pool
    // (calibrates companies-with-investors to the paper's 59,953 and the
    // 2.6 investors/company average).
    int64_t rank = r.Zipf(static_cast<int64_t>(investable.size()), 0.62);
    return investable[static_cast<size_t>(rank - 1)];
  };

  // ---------------------------------------------------------------------
  // 5. Active investors and their target out-degrees.
  // ---------------------------------------------------------------------
  std::vector<UserId> active;
  std::vector<int64_t> degree_of_active;
  // Degrees cannot exceed a fraction of the investable pool (matters only
  // at very small scales, where the pool shrinks below the paper's ~1000
  // max out-degree).
  const int64_t degree_cap =
      std::max<int64_t>(3, static_cast<int64_t>(investable.size()) / 2);
  for (UserId inv : investors) {
    if (!rng.Bernoulli(config.frac_investors_active)) continue;
    active.push_back(inv);
    double u = rng.NextDouble();
    int64_t d;
    if (u < config.outdeg_p1) {
      d = 1;
    } else if (u < config.outdeg_p1 + config.outdeg_p2) {
      d = 2;
    } else {
      d = rng.PowerLaw(3, config.outdeg_max, config.outdeg_alpha);
    }
    degree_of_active.push_back(std::min(d, degree_cap));
  }

  // Community-membership candidates, most-active investors first. The
  // analysis pipeline only considers investors with >= 4 investments
  // (§5.2), so planted communities must live mostly in that cohort —
  // rank-weighted sampling over this order keeps them there while still
  // letting smaller investors join.
  std::vector<size_t> active_by_degree(active.size());
  std::iota(active_by_degree.begin(), active_by_degree.end(), size_t{0});
  std::sort(active_by_degree.begin(), active_by_degree.end(),
            [&](size_t a, size_t b) {
              return degree_of_active[a] > degree_of_active[b];
            });

  // ---------------------------------------------------------------------
  // 6. Planted communities. Communities 0..2 are the designated "strong"
  //    ones matching Figure 4's top curves; the rest sweep the herding
  //    range. Portfolio size is solved from the target mean pairwise
  //    shared-investment size: E[|Ci ∩ Cj|] ~ (herd*avg_deg)^2 / |P|.
  // ---------------------------------------------------------------------
  const int num_communities = std::max(4, config.num_communities);
  const int64_t avg_size = config.CommunitySize();
  constexpr int kMaxMembershipsPerInvestor = 3;
  w.communities_.resize(static_cast<size_t>(num_communities));
  std::vector<double> community_target_shared(
      static_cast<size_t>(num_communities), 0);
  std::vector<std::vector<size_t>> community_member_idx(
      static_cast<size_t>(num_communities));
  std::vector<int> memberships_of_active(active.size(), 0);

  // Pass 1: herding intensity, target strength and membership.
  for (int ci = 0; ci < num_communities; ++ci) {
    CommunityTruth& comm = w.communities_[static_cast<size_t>(ci)];
    comm.id = ci;
    double target_shared;
    if (ci == 0) {
      comm.herd = 0.95;
      target_shared = config.strongest_shared_target;  // 2.1
    } else if (ci == 1) {
      comm.herd = 0.90;
      target_shared = 1.6;
    } else if (ci == 2) {
      comm.herd = 0.85;
      target_shared = 1.2;
    } else {
      double t = rng.NextDouble();
      comm.herd = config.herd_min + (config.herd_max - config.herd_min) * t;
      target_shared =
          0.02 + config.strongest_shared_target * std::pow(t, 2.5);
    }
    community_target_shared[static_cast<size_t>(ci)] = target_shared;

    int64_t size = std::max<int64_t>(
        4, static_cast<int64_t>(
               std::llround(rng.LogNormal(std::log(avg_size * 0.85), 0.55))));
    size = std::min<int64_t>(size, static_cast<int64_t>(active.size()) / 2);

    // Sample members: Zipf-weighted toward high-degree active investors,
    // capped at kMaxMembershipsPerInvestor communities per investor so the
    // head investors cannot dilute their herding budget across dozens of
    // groups.
    std::unordered_set<size_t> member_idx;
    int64_t attempts = 0;
    while (static_cast<int64_t>(member_idx.size()) < size &&
           attempts++ < size * 30) {
      int64_t rank =
          rng.Zipf(static_cast<int64_t>(active_by_degree.size()), 0.85);
      size_t idx = active_by_degree[static_cast<size_t>(rank - 1)];
      if (memberships_of_active[idx] >= kMaxMembershipsPerInvestor) continue;
      if (member_idx.insert(idx).second) ++memberships_of_active[idx];
    }
    for (size_t idx : member_idx) {
      comm.members.push_back(active[idx]);
      w.users_[active[idx] - 1].communities.push_back(ci);
      community_member_idx[static_cast<size_t>(ci)].push_back(idx);
    }
  }

  // Pass 2: portfolio sizing from the members' actual herding budgets.
  // A member with degree d and n community memberships devotes
  // b = herd * d / n investments to each of its portfolios; expected
  // pairwise shared size is ~ mean(b)^2 / |P|, so |P| = mean(b)^2 / target.
  for (int ci = 0; ci < num_communities; ++ci) {
    CommunityTruth& comm = w.communities_[static_cast<size_t>(ci)];
    double sum_budget = 0;
    for (size_t idx : community_member_idx[static_cast<size_t>(ci)]) {
      int n = std::max(1, memberships_of_active[idx]);
      sum_budget += comm.herd * static_cast<double>(degree_of_active[idx]) /
                    static_cast<double>(n);
    }
    double k_bar =
        comm.members.empty()
            ? 1.0
            : sum_budget / static_cast<double>(comm.members.size());
    double target = community_target_shared[static_cast<size_t>(ci)];
    // CoDA reports the cohesive core of a planted community, whose pairwise
    // sharing runs ~2x above the community-wide average; deflate the
    // planted target accordingly so *detected* strengths match the paper.
    constexpr double kDetectedCoreInflation = 2.0;
    int64_t portfolio_size = std::max<int64_t>(
        4, static_cast<int64_t>(
               std::llround(k_bar * k_bar * kDetectedCoreInflation / target)));
    portfolio_size = std::min<int64_t>(portfolio_size,
                                       static_cast<int64_t>(investable.size()));
    std::unordered_set<CompanyId> pf;
    int64_t pf_attempts = 0;
    while (static_cast<int64_t>(pf.size()) < portfolio_size &&
           pf_attempts++ < portfolio_size * 20) {
      pf.insert(
          investable[rng.NextUint64(static_cast<uint64_t>(investable.size()))]);
    }
    comm.portfolio.assign(pf.begin(), pf.end());
  }

  // ---------------------------------------------------------------------
  // 7. Investments: each active investor mixes community-portfolio draws
  //    (herding) with global popularity-weighted draws.
  // ---------------------------------------------------------------------
  for (size_t ai = 0; ai < active.size(); ++ai) {
    UserTruth& u = w.users_[active[ai] - 1];
    const int64_t d = degree_of_active[ai];
    std::unordered_set<CompanyId> chosen;
    // Community draws first: each membership gets budget herd*d/n, drawn
    // without replacement from the community portfolio.
    for (int ci : u.communities) {
      const CommunityTruth& comm = w.communities_[static_cast<size_t>(ci)];
      if (comm.portfolio.empty()) continue;
      int64_t budget = std::max<int64_t>(
          1, std::llround(comm.herd * static_cast<double>(d) /
                          static_cast<double>(u.communities.size())));
      budget = std::min<int64_t>(
          {budget, static_cast<int64_t>(comm.portfolio.size()),
           d - static_cast<int64_t>(chosen.size())});
      if (budget <= 0) break;
      for (size_t pick_idx : rng.SampleWithoutReplacement(
               comm.portfolio.size(), static_cast<size_t>(budget))) {
        chosen.insert(comm.portfolio[pick_idx]);
      }
    }
    // Fill the remainder with global popularity-weighted picks.
    int64_t attempts = 0;
    const int64_t max_attempts = 8 * d + 20;
    while (static_cast<int64_t>(chosen.size()) < d && attempts++ < max_attempts) {
      chosen.insert(pick_investable(rng));
    }
    u.investments.assign(chosen.begin(), chosen.end());
    std::sort(u.investments.begin(), u.investments.end());
    u.investment_on_angellist.resize(u.investments.size());
    for (size_t e = 0; e < u.investments.size(); ++e) {
      // Edges into unfunded companies have no CrunchBase round to appear
      // in, so they must stay AngelList-visible to keep the merged edge
      // set equal to the ground truth.
      bool funded = w.companies_[u.investments[e] - 1].raised_funding;
      u.investment_on_angellist[e] =
          (!funded || rng.Bernoulli(config.al_visibility_of_investments)) ? 1
                                                                          : 0;
    }
  }

  // ---------------------------------------------------------------------
  // 8. Follow edges (company follows drive the BFS crawl; investors are
  //    prolific followers, paper: 247 on average).
  // ---------------------------------------------------------------------
  auto sample_follow_count = [&](double mean, double sigma) -> int64_t {
    double median = mean / std::exp(sigma * sigma / 2.0);
    return std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(rng.LogNormal(std::log(median), sigma))));
  };

  for (UserTruth& u : w.users_) {
    int64_t want = (u.role == UserRole::kInvestor)
                       ? sample_follow_count(config.investor_follows_mean, 1.0)
                       : sample_follow_count(config.other_user_follows_mean, 1.2);
    std::unordered_set<CompanyId> follows(u.investments.begin(),
                                          u.investments.end());
    int64_t attempts = 0;
    const int64_t cap = want * 4 + 16;
    while (static_cast<int64_t>(follows.size()) <
               want + static_cast<int64_t>(u.investments.size()) &&
           attempts++ < cap) {
      // Mix popularity-weighted picks with uniform picks so every company
      // has followers (full BFS coverage needs the tail reachable).
      CompanyId pick;
      if (rng.Bernoulli(0.7)) {
        int64_t rank = rng.Zipf(num_companies, 0.9);
        pick = static_cast<CompanyId>(rank);
      } else {
        pick = static_cast<CompanyId>(rng.NextUint64(
                   static_cast<uint64_t>(num_companies)) + 1);
      }
      follows.insert(pick);
    }
    u.follows_companies.assign(follows.begin(), follows.end());
    std::sort(u.follows_companies.begin(), u.follows_companies.end());
  }

  // User->user follows: preferential toward investors (ecosystem hubs).
  for (UserTruth& u : w.users_) {
    int64_t want = sample_follow_count(config.user_user_follows_mean, 1.0);
    std::unordered_set<UserId> follows;
    int64_t attempts = 0;
    while (static_cast<int64_t>(follows.size()) < want && attempts++ < want * 4 + 8) {
      UserId pick;
      if (!investors.empty() && rng.Bernoulli(0.4)) {
        pick = investors[rng.NextUint64(investors.size())];
      } else {
        pick = static_cast<UserId>(rng.NextUint64(static_cast<uint64_t>(num_users)) + 1);
      }
      if (pick != u.id) follows.insert(pick);
    }
    u.follows_users.assign(follows.begin(), follows.end());
    std::sort(u.follows_users.begin(), u.follows_users.end());
  }

  // ---------------------------------------------------------------------
  // 9. Founders per company.
  // ---------------------------------------------------------------------
  for (CompanyTruth& c : w.companies_) {
    if (founders.empty()) break;
    int n = 1 + static_cast<int>(rng.NextUint64(3));
    for (int i = 0; i < n; ++i) {
      c.founders.push_back(founders[rng.NextUint64(founders.size())]);
    }
    std::sort(c.founders.begin(), c.founders.end());
    c.founders.erase(std::unique(c.founders.begin(), c.founders.end()),
                     c.founders.end());
  }

  // ---------------------------------------------------------------------
  // 10. Inverted indices.
  // ---------------------------------------------------------------------
  w.company_followers_.resize(w.companies_.size());
  w.company_investors_.resize(w.companies_.size());
  for (const UserTruth& u : w.users_) {
    for (CompanyId c : u.follows_companies) {
      w.company_followers_[c - 1].push_back(u.id);
    }
    for (CompanyId c : u.investments) {
      w.company_investors_[c - 1].push_back(u.id);
    }
  }

  // ---------------------------------------------------------------------
  // 11. CrunchBase funding rounds. Every investment edge that is hidden
  //     from AngelList must appear in a round; others appear with
  //     cb_coverage probability. Companies with rounds but no recorded
  //     investors still expose amounts (funding data without backers).
  // ---------------------------------------------------------------------
  w.company_rounds_.resize(w.companies_.size());
  for (CompanyTruth& c : w.companies_) {
    if (!c.raised_funding) continue;
    // Which investor edges does CrunchBase know about?
    std::vector<UserId> cb_investors;
    for (UserId inv : w.company_investors_[c.id - 1]) {
      const UserTruth& u = w.users_[inv - 1];
      auto it = std::lower_bound(u.investments.begin(), u.investments.end(), c.id);
      size_t e = static_cast<size_t>(it - u.investments.begin());
      bool on_al = u.investment_on_angellist[e] != 0;
      if (!on_al || rng.Bernoulli(config.cb_coverage_of_investments)) {
        cb_investors.push_back(inv);
      }
    }
    rng.Shuffle(cb_investors);
    int nrounds = std::max(1, c.funding_rounds);
    double per_round = c.raised_amount_usd / nrounds;
    size_t cursor = 0;
    for (int r = 0; r < nrounds; ++r) {
      FundingRound round;
      round.company = c.id;
      round.round_index = r;
      round.amount_usd = per_round * rng.Uniform(0.6, 1.4);
      round.announced_on_micros =
          static_cast<int64_t>(rng.NextUint64(3ull * 365 * 24 * 3600)) * 1000000;
      size_t take = cb_investors.size() / static_cast<size_t>(nrounds);
      if (r == nrounds - 1) take = cb_investors.size() - cursor;
      for (size_t k = 0; k < take && cursor < cb_investors.size(); ++k) {
        round.investors.push_back(cb_investors[cursor++]);
      }
      w.company_rounds_[c.id - 1].push_back(w.rounds_.size());
      w.rounds_.push_back(std::move(round));
    }
  }

  return w;
}

WorldStats World::ComputeStats() const {
  WorldStats s;
  s.num_companies = static_cast<int64_t>(companies_.size());
  s.num_users = static_cast<int64_t>(users_.size());
  for (const CompanyTruth& c : companies_) {
    if (c.has_facebook()) ++s.companies_with_facebook;
    if (c.has_twitter()) ++s.companies_with_twitter;
    if (c.social == SocialCell::kBoth) ++s.companies_with_both;
    if (c.has_demo_video) ++s.companies_with_video;
    if (c.raised_funding) ++s.companies_funded;
    if (c.has_crunchbase) ++s.companies_with_crunchbase;
  }
  double total_follows = 0;
  for (const UserTruth& u : users_) {
    switch (u.role) {
      case UserRole::kInvestor:
        ++s.num_investors;
        total_follows += static_cast<double>(u.follows_companies.size());
        break;
      case UserRole::kFounder:
        ++s.num_founders;
        break;
      case UserRole::kEmployee:
        ++s.num_employees;
        break;
      case UserRole::kOther:
        break;
    }
    s.investment_edges += static_cast<int64_t>(u.investments.size());
    if (!u.investments.empty()) ++s.investing_investors;
  }
  for (const auto& inv : company_investors_) {
    if (!inv.empty()) ++s.companies_with_investors;
  }
  s.mean_investor_follows =
      s.num_investors == 0 ? 0 : total_follows / static_cast<double>(s.num_investors);
  return s;
}

World::DayReport World::EvolveOneDay(Rng& rng) {
  DayReport report;

  // Per-day rates. A campaign runs ~2 weeks on average; launches keep the
  // raising pool roughly stationary.
  constexpr double kCloseRate = 0.07;
  constexpr double kLaunchRate = 0.0004;
  constexpr double kRaisingEngagementDrift = 0.05;
  constexpr double kIdleEngagementDrift = 0.008;

  // Persistent per-company campaign momentum in [0.5, 1.5]: how well the
  // startup works its audience. It scales both engagement growth AND the
  // odds of a successful close — the genuine causal path from social
  // traction to funding that the §7 longitudinal study is designed to
  // detect (and that a one-shot correlation cannot isolate).
  auto momentum_of = [](CompanyId id) {
    return 0.5 + static_cast<double>((id * 2654435761ull) % 1000) / 1000.0;
  };

  // Adds one investment edge (uid -> cid) with all indices kept consistent;
  // no-op if the edge exists. When `round` is given, the edge may be (and,
  // if hidden from AngelList, must be) recorded there.
  auto add_investment = [&](UserId uid, CompanyId cid,
                            FundingRound* round) -> bool {
    UserTruth& u = users_[uid - 1];
    auto it = std::lower_bound(u.investments.begin(), u.investments.end(), cid);
    if (it != u.investments.end() && *it == cid) return false;
    size_t pos = static_cast<size_t>(it - u.investments.begin());
    bool on_al = round == nullptr ||
                 rng.Bernoulli(config_.al_visibility_of_investments);
    u.investments.insert(it, cid);
    u.investment_on_angellist.insert(
        u.investment_on_angellist.begin() + static_cast<long>(pos),
        on_al ? 1 : 0);
    company_investors_[cid - 1].push_back(uid);
    if (round != nullptr &&
        (!on_al || rng.Bernoulli(config_.cb_coverage_of_investments))) {
      round->investors.push_back(uid);
    }
    ++report.new_investments;
    return true;
  };

  for (CompanyTruth& c : companies_) {
    // --- campaign closes ---------------------------------------------------
    if (c.currently_raising && rng.Bernoulli(kCloseRate)) {
      c.currently_raising = false;
      ++report.campaigns_closed;
      // Success odds mirror the static calibration's social signal,
      // scaled by the company's campaign momentum.
      double p = 0.02;
      if (c.has_facebook()) p += 0.10;
      if (c.has_twitter()) p += 0.08;
      if (c.has_demo_video) p += 0.05;
      // Cubic in momentum (normalized to mean ~1 over U[0.5,1.5]) so the
      // traction -> funding path is strong enough to detect from a few
      // weeks of daily snapshots.
      double m = momentum_of(c.id);
      p *= m * m * m / 1.25;
      if (!c.raised_funding && rng.Bernoulli(p)) {
        ++report.campaigns_succeeded;
        c.raised_funding = true;
        c.has_crunchbase = true;
        c.crunchbase_url_listed = rng.Bernoulli(config_.cb_url_listed_rate);
        c.funding_rounds += 1;
        double amount = rng.LogNormal(std::log(8e5), 0.8);
        c.raised_amount_usd += amount;

        FundingRound round;
        round.company = c.id;
        round.round_index = c.funding_rounds - 1;
        round.amount_usd = amount;
        // New backers: a community herds into the deal when one of its
        // members already invests here; otherwise random investors.
        int backers = 1 + static_cast<int>(rng.NextUint64(5));
        const std::vector<UserId>& existing = company_investors_[c.id - 1];
        const CommunityTruth* herd_comm = nullptr;
        if (!existing.empty()) {
          const UserTruth& seed = users_[existing[0] - 1];
          if (!seed.communities.empty()) {
            herd_comm = &communities_[static_cast<size_t>(
                seed.communities[rng.NextUint64(seed.communities.size())])];
          }
        }
        for (int b = 0; b < backers; ++b) {
          UserId backer = 0;
          if (herd_comm != nullptr && rng.Bernoulli(herd_comm->herd)) {
            backer =
                herd_comm->members[rng.NextUint64(herd_comm->members.size())];
          } else {
            // Any investor-role user.
            for (int tries = 0; tries < 32 && backer == 0; ++tries) {
              UserId cand = static_cast<UserId>(
                  rng.NextUint64(static_cast<uint64_t>(users_.size())) + 1);
              if (users_[cand - 1].role == UserRole::kInvestor) backer = cand;
            }
          }
          if (backer != 0) add_investment(backer, c.id, &round);
        }
        company_rounds_[c.id - 1].push_back(rounds_.size());
        rounds_.push_back(std::move(round));
      }
    } else if (!c.currently_raising && !c.raised_funding &&
               rng.Bernoulli(kLaunchRate)) {
      // --- new campaign launches -------------------------------------------
      c.currently_raising = true;
      ++report.campaigns_launched;
    }

    // --- engagement drift (faster while fundraising, scaled by momentum) ----
    double drift =
        (c.currently_raising ? kRaisingEngagementDrift : kIdleEngagementDrift) *
        momentum_of(c.id);
    if (c.has_facebook() && c.facebook_likes > 0) {
      c.facebook_likes += static_cast<int64_t>(std::ceil(
          static_cast<double>(c.facebook_likes) *
          rng.Uniform(0.5 * drift, drift)));
    }
    if (c.has_twitter()) {
      if (c.twitter_followers > 0) {
        c.twitter_followers += static_cast<int64_t>(
            std::ceil(static_cast<double>(c.twitter_followers) *
                      rng.Uniform(0.5 * drift, drift)));
      }
      if (c.currently_raising && rng.Bernoulli(0.5)) ++c.twitter_tweets;
    }
  }
  return report;
}

}  // namespace cfnet::synth
