#ifndef CFNET_SYNTH_ENTITIES_H_
#define CFNET_SYNTH_ENTITIES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cfnet::synth {

using CompanyId = uint64_t;
using UserId = uint64_t;

/// Social-media presence cell, matching the categories of the paper's
/// Figure 6 table. The four cells are mutually exclusive.
enum class SocialCell : uint8_t {
  kNone = 0,
  kFacebookOnly = 1,
  kTwitterOnly = 2,
  kBoth = 3,
};

/// Ground-truth company record in the synthetic crowdfunding world.
/// The simulated AngelList/CrunchBase/Facebook/Twitter services render
/// (partial, per-service) JSON views of these records; the crawler only
/// ever sees those views.
struct CompanyTruth {
  CompanyId id = 0;
  std::string name;

  bool currently_raising = false;  // appears in AngelList "raising" listing
  SocialCell social = SocialCell::kNone;
  bool has_demo_video = false;

  bool raised_funding = false;   // success outcome; implies CrunchBase entry
  bool has_crunchbase = false;   // CrunchBase profile exists
  bool crunchbase_url_listed = false;  // AngelList profile links to it

  /// Engagement (0 when the corresponding account does not exist).
  int64_t facebook_likes = 0;
  int64_t twitter_tweets = 0;
  int64_t twitter_followers = 0;
  bool twitter_followers_null = false;  // API returns null follower count

  /// Funding ground truth (only meaningful when raised_funding).
  double raised_amount_usd = 0;
  int funding_rounds = 0;

  std::vector<UserId> founders;

  bool has_facebook() const {
    return social == SocialCell::kFacebookOnly || social == SocialCell::kBoth;
  }
  bool has_twitter() const {
    return social == SocialCell::kTwitterOnly || social == SocialCell::kBoth;
  }
};

/// Role a user self-identifies as on the simulated AngelList.
enum class UserRole : uint8_t {
  kInvestor = 0,
  kFounder = 1,
  kEmployee = 2,
  kOther = 3,
};

/// Ground-truth user record.
struct UserTruth {
  UserId id = 0;
  std::string name;
  UserRole role = UserRole::kOther;

  std::vector<CompanyId> follows_companies;
  std::vector<UserId> follows_users;

  /// Companies this user invested in (investors only; deduplicated).
  std::vector<CompanyId> investments;

  /// Parallel to `investments`: whether the edge is visible on the user's
  /// AngelList profile. Edges hidden from AngelList are always recorded in
  /// some CrunchBase funding round, so the AngelList+CrunchBase merge the
  /// paper performs (§5.1) recovers exactly the ground-truth edge set.
  std::vector<uint8_t> investment_on_angellist;

  /// Planted community memberships (indices into World::communities).
  std::vector<int> communities;
};

/// A planted overlapping investor community with its co-investment pool.
struct CommunityTruth {
  int id = 0;
  /// Herding intensity in (0, 1]: fraction of a member's investments drawn
  /// from the shared portfolio.
  double herd = 0.5;
  std::vector<UserId> members;
  std::vector<CompanyId> portfolio;
};

/// One CrunchBase funding round of a funded company.
struct FundingRound {
  CompanyId company = 0;
  int round_index = 0;
  double amount_usd = 0;
  int64_t announced_on_micros = 0;
  std::vector<UserId> investors;  // subset recorded by CrunchBase
};

}  // namespace cfnet::synth

#endif  // CFNET_SYNTH_ENTITIES_H_
