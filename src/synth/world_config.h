#ifndef CFNET_SYNTH_WORLD_CONFIG_H_
#define CFNET_SYNTH_WORLD_CONFIG_H_

#include <cstdint>

namespace cfnet::synth {

/// Calibration constants for the synthetic crowdfunding world.
///
/// Every default reproduces a statistic reported in the paper (noted per
/// field). `scale` shrinks the world linearly; all calibration targets are
/// fractions, so they are scale-invariant. scale=1.0 is the paper's full
/// crawl (744,036 companies / 1,109,441 users).
struct WorldConfig {
  double scale = 0.1;
  uint64_t seed = 20160626;  // ExploreDB'16 day one

  /// --- population (paper §3) --------------------------------------------
  int64_t full_companies = 744036;
  int64_t full_users = 1109441;
  double frac_currently_raising = 4000.0 / 744036;  // AngelList raising list

  double frac_investor = 0.043;   // 47,345 users
  double frac_founder = 0.183;    // 203,023 users
  double frac_employee = 0.442;   // 489,836 users

  /// --- social presence cells (Figure 6) -----------------------------------
  double frac_facebook = 0.0507;       // 37,761 companies
  double frac_twitter = 0.0948;        // 70,563 companies
  double frac_both = 0.0437;           // 32,544 companies
  double frac_demo_video = 0.0488;     // 36,364 companies

  /// --- engagement distributions (Figure 6 medians) -------------------------
  /// Log-normal medians match the paper's split points; sigma controls the
  /// spread (long tail of very active accounts); zero_inflation models dead
  /// accounts so that the strictly-greater-than-median fraction lands near
  /// the paper's 41-46% rather than 50%.
  double fb_likes_median = 652;
  double fb_likes_sigma = 1.6;
  double fb_zero_inflation = 0.14;
  double tw_tweets_median = 343;
  double tw_tweets_sigma = 1.5;
  double tw_followers_median = 339;
  double tw_followers_sigma = 1.7;
  double tw_zero_inflation = 0.06;
  double tw_followers_null_rate = 0.002;  // accounts with null follower count

  /// --- funding success (Figure 6, col 3) ----------------------------------
  /// Cell-conditional success targets. FB-only / TW-only rates are solved
  /// from the paper's marginal rates: P(success|FB)=0.122, P(success|TW)=
  /// 0.102, P(success|both)=0.132, with cell sizes above.
  double success_no_social = 0.004;
  double success_fb_marginal = 0.122;
  double success_tw_marginal = 0.102;
  double success_both = 0.132;
  /// Engagement odds multipliers applied on top of the (deflated) cell base;
  /// chosen so the above-median rows land near 18% / 14.7% / 15.2% and the
  /// combined rows near 22%.
  double boost_fb_likes_above_median = 1.95;
  double boost_tw_tweets_above_median = 1.80;
  double boost_tw_followers_above_median = 1.90;
  double boost_demo_video = 1.60;
  /// P(video | has any social) — solved so the overall video rate is 4.88%
  /// and video carries the ~10.4% success the table reports.
  double video_given_social = 0.35;

  /// --- investor graph (§5.1) ----------------------------------------------
  /// 158,199 edges over 46,966 investing investors and 59,953 companies.
  double frac_companies_investable = 59953.0 / 744036;
  double frac_investors_active = 46966.0 / 47345;  // investors with >=1 deal
  /// Out-degree mixture: P(1), P(2), power-law tail on [3, max] with
  /// exponent alpha; calibrated to mean 3.3 / median 1 and the paper's
  /// concentration rows (>=3 -> 75% of edges, >=4 -> 68.3%, >=5 -> 62.0%).
  double outdeg_p1 = 0.52;
  double outdeg_p2 = 0.18;
  double outdeg_alpha = 2.45;
  int64_t outdeg_max = 1000;  // "most active investor makes close to 1000"

  /// Mean companies followed per investor (paper: 247).
  double investor_follows_mean = 247;
  double other_user_follows_mean = 14;
  double user_user_follows_mean = 6;

  /// --- planted communities (§5.2-5.3) --------------------------------------
  int num_communities = 96;           // CoDA found 96
  double community_avg_size = 190.2;  // scaled by `scale`
  /// Range of herding intensity across communities; strong communities draw
  /// nearly all investments from a tight shared portfolio.
  double herd_min = 0.15;
  double herd_max = 0.95;
  /// Target mean pairwise shared-investment size of the strongest planted
  /// community (paper: 2.1) — drives portfolio sizing.
  double strongest_shared_target = 2.1;

  /// --- data-source visibility -----------------------------------------------
  /// "AngelList data is incomplete" (§3): an investment edge into a funded
  /// company shows on the investor's AngelList profile with this
  /// probability (edges into unfunded companies are always visible, since
  /// no CrunchBase round could recover them); edges missed by AngelList
  /// are guaranteed to appear in a CrunchBase round, so the two-source
  /// merge recovers the full edge set — and is genuinely necessary.
  double al_visibility_of_investments = 0.6;
  double cb_coverage_of_investments = 0.7;  // rounds also record this share
  double cb_url_listed_rate = 0.8;          // AngelList links to CrunchBase
  /// Fraction of companies given intentionally ambiguous (duplicated) names,
  /// so CrunchBase name-search returns multiple hits and the augmenter must
  /// skip them, as the paper describes.
  double ambiguous_name_rate = 0.01;

  /// Derived absolute counts at the configured scale.
  int64_t NumCompanies() const {
    return static_cast<int64_t>(full_companies * scale);
  }
  int64_t NumUsers() const { return static_cast<int64_t>(full_users * scale); }
  int64_t CommunitySize() const {
    double s = community_avg_size * scale;
    return s < 6 ? 6 : static_cast<int64_t>(s);
  }
};

}  // namespace cfnet::synth

#endif  // CFNET_SYNTH_WORLD_CONFIG_H_
