#ifndef CFNET_SYNTH_WORLD_H_
#define CFNET_SYNTH_WORLD_H_

#include <cstdint>
#include <vector>

#include "synth/entities.h"
#include "synth/world_config.h"
#include "util/rng.h"

namespace cfnet::synth {

/// Summary statistics of the generated ground truth (used by tests and the
/// crawl bench to compare against the paper's dataset section).
struct WorldStats {
  int64_t num_companies = 0;
  int64_t num_users = 0;
  int64_t num_investors = 0;
  int64_t num_founders = 0;
  int64_t num_employees = 0;
  int64_t companies_with_facebook = 0;
  int64_t companies_with_twitter = 0;
  int64_t companies_with_both = 0;
  int64_t companies_with_video = 0;
  int64_t companies_funded = 0;
  int64_t companies_with_crunchbase = 0;
  int64_t investment_edges = 0;
  int64_t companies_with_investors = 0;
  int64_t investing_investors = 0;
  double mean_investor_follows = 0;
};

/// The synthetic crowdfunding universe: the ground truth the simulated web
/// services render and the crawler rediscovers.
///
/// Company ids are 1..companies.size(); user ids are 1..users.size()
/// (0 is reserved/invalid). `companies[id-1]` / `users[id-1]` index records.
class World {
 public:
  /// Generates a world calibrated to `config` (see WorldConfig for the
  /// paper statistics each knob reproduces). Deterministic per seed.
  static World Generate(const WorldConfig& config);

  World(World&&) noexcept = default;
  World& operator=(World&&) noexcept = default;
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  const WorldConfig& config() const { return config_; }

  const std::vector<CompanyTruth>& companies() const { return companies_; }
  const std::vector<UserTruth>& users() const { return users_; }
  const std::vector<CommunityTruth>& communities() const { return communities_; }
  const std::vector<FundingRound>& rounds() const { return rounds_; }

  const CompanyTruth* FindCompany(CompanyId id) const {
    if (id == 0 || id > companies_.size()) return nullptr;
    return &companies_[id - 1];
  }
  const UserTruth* FindUser(UserId id) const {
    if (id == 0 || id > users_.size()) return nullptr;
    return &users_[id - 1];
  }

  /// Users following a company (inverted from UserTruth::follows_companies).
  const std::vector<UserId>& FollowersOf(CompanyId id) const {
    return company_followers_[id - 1];
  }

  /// Investors of a company (inverted from UserTruth::investments).
  const std::vector<UserId>& InvestorsOf(CompanyId id) const {
    return company_investors_[id - 1];
  }

  /// Funding rounds of a company (indices into rounds()).
  const std::vector<size_t>& RoundsOf(CompanyId id) const {
    return company_rounds_[id - 1];
  }

  WorldStats ComputeStats() const;

  /// Outcome of one day of simulated ecosystem dynamics (see EvolveOneDay).
  struct DayReport {
    int64_t campaigns_closed = 0;
    int64_t campaigns_succeeded = 0;
    int64_t campaigns_launched = 0;
    int64_t new_investments = 0;
  };

  /// Advances the world by one simulated day — the §7 longitudinal-study
  /// dynamics the paper plans to capture:
  ///  - some currently-raising campaigns close (success odds depend on the
  ///    company's social presence, as in the static calibration);
  ///  - successful closes gain CrunchBase funding rounds and investors,
  ///    with community members herding into the same deals;
  ///  - new campaigns launch;
  ///  - social engagement drifts upward, faster for fundraising companies
  ///    (the correlation-vs-causality confound §4 warns about).
  /// Derived indices (followers/investors/rounds) stay consistent.
  /// Note: services cache parts of the world at construction, so rebuild
  /// the SocialWeb after mutating (as a fresh daily crawl would).
  DayReport EvolveOneDay(Rng& rng);

 private:
  World() = default;

  WorldConfig config_;
  std::vector<CompanyTruth> companies_;
  std::vector<UserTruth> users_;
  std::vector<CommunityTruth> communities_;
  std::vector<FundingRound> rounds_;
  std::vector<std::vector<UserId>> company_followers_;
  std::vector<std::vector<UserId>> company_investors_;
  std::vector<std::vector<size_t>> company_rounds_;
};

}  // namespace cfnet::synth

#endif  // CFNET_SYNTH_WORLD_H_
