#ifndef CFNET_UTIL_PARALLEL_H_
#define CFNET_UTIL_PARALLEL_H_

#include <algorithm>
#include <cstddef>

#include "util/thread_pool.h"

namespace cfnet {

/// How an analytics kernel may parallelize. The default (no pool) runs on
/// the calling thread; callers that own a ThreadPool opt in explicitly.
///
/// Every kernel taking a ParallelOptions promises the same bit-identical
/// result for any pool width and any morsel size: work is sharded into
/// morsels whose outputs are either disjoint writes or folded through an
/// ordered reduction, never through scheduling-order accumulation.
struct ParallelOptions {
  /// Worker pool; nullptr = run everything on the calling thread.
  ThreadPool* pool = nullptr;
  /// Items per claimed morsel; 0 lets the kernel pick (~8 morsels per
  /// thread). Only affects scheduling granularity, never results.
  size_t morsel_size = 0;

  size_t threads() const { return pool == nullptr ? 1 : pool->num_threads(); }
};

/// Splits [0, n) into contiguous morsels and runs fn(begin, end) for each,
/// through pool->RunBulk when a pool is present (the caller participates,
/// so nesting inside a pool worker cannot deadlock). `min_morsel` floors
/// the automatic morsel size so tiny tasks are not over-sharded.
///
/// fn must restrict itself to task-local state and writes disjoint across
/// morsels; under that contract the result cannot depend on thread count
/// or morsel size.
template <typename Fn>
void ForEachMorsel(const ParallelOptions& par, size_t n, size_t min_morsel,
                   Fn&& fn) {
  if (n == 0) return;
  size_t morsel = par.morsel_size;
  if (morsel == 0) {
    size_t target = std::max<size_t>(1, par.threads() * 8);
    morsel = std::max<size_t>(std::max<size_t>(1, min_morsel),
                              (n + target - 1) / target);
  }
  const size_t num = (n + morsel - 1) / morsel;
  auto run = [&fn, morsel, n](size_t m) {
    fn(m * morsel, std::min(n, (m + 1) * morsel));
  };
  if (par.pool == nullptr || par.threads() <= 1 || num <= 1) {
    for (size_t m = 0; m < num; ++m) run(m);
  } else {
    par.pool->RunBulk(num, run);
  }
}

/// Ordered fan-out/reduce for kernels whose per-index results must be folded
/// in index order (floating-point accumulation is not associative, so an
/// unordered reduce would make the answer depend on scheduling).
///
/// Indices 0..n-1 are processed in waves of `slots` concurrent tasks:
/// fn(i, slot) computes index i into slot-private scratch (slot is unique
/// among in-flight tasks of a wave), then commit(i, slot) runs on the
/// calling thread in ascending index order. Because each index is computed
/// in isolation and committed at a fixed position, the result is identical
/// for every pool width, wave size and morsel size.
template <typename Fn, typename Commit>
void RunOrderedWaves(const ParallelOptions& par, size_t n, size_t slots,
                     Fn&& fn, Commit&& commit) {
  slots = std::max<size_t>(1, slots);
  for (size_t start = 0; start < n; start += slots) {
    const size_t count = std::min(slots, n - start);
    if (par.pool == nullptr || par.threads() <= 1 || count <= 1) {
      for (size_t k = 0; k < count; ++k) fn(start + k, k);
    } else {
      par.pool->RunBulk(count, [&](size_t k) { fn(start + k, k); });
    }
    for (size_t k = 0; k < count; ++k) commit(start + k, k);
  }
}

}  // namespace cfnet

#endif  // CFNET_UTIL_PARALLEL_H_
