#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace cfnet {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  return Mix64(x);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; uses one of the pair per call for statelessness.
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0);
  double u = NextDouble();
  while (u <= 1e-300) u = NextDouble();
  return -std::log(u) / lambda;
}

int64_t Rng::Geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = NextDouble();
  while (u <= 1e-300) u = NextDouble();
  return static_cast<int64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

int64_t Rng::Poisson(double mean) {
  assert(mean >= 0);
  if (mean == 0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // synthetic generator's large-mean activity counts.
    double x = Normal(mean, std::sqrt(mean));
    return std::max<int64_t>(0, static_cast<int64_t>(std::lround(x)));
  }
  double l = std::exp(-mean);
  int64_t k = 0;
  double prod = NextDouble();
  while (prod > l) {
    ++k;
    prod *= NextDouble();
  }
  return k;
}

int64_t Rng::Zipf(int64_t n, double s) {
  assert(n >= 1);
  if (n == 1) return 1;
  if (s < 1e-9) return UniformInt(1, n);
  // Rejection-inversion sampling (Hormann & Derflinger 1996), following the
  // Apache Commons Math formulation.
  const double nd = static_cast<double>(n);
  auto h_integral = [s](double x) {
    double log_x = std::log(x);
    if (std::fabs(s - 1.0) < 1e-12) return log_x;
    return std::expm1((1.0 - s) * log_x) / (1.0 - s);
  };
  auto h = [s](double x) { return std::exp(-s * std::log(x)); };
  auto h_integral_inv = [s](double y) {
    if (std::fabs(s - 1.0) < 1e-12) return std::exp(y);
    double t = y * (1.0 - s);
    if (t < -1.0) t = -1.0;  // guard against rounding below the pole
    return std::exp(std::log1p(t) / (1.0 - s));
  };
  const double h_x1 = h_integral(1.5) - 1.0;
  const double h_n = h_integral(nd + 0.5);
  const double s_const = 2.0 - h_integral_inv(h_integral(2.5) - h(2.0));
  for (;;) {
    double u = h_n + NextDouble() * (h_x1 - h_n);
    double x = h_integral_inv(u);
    double kd = std::floor(x + 0.5);
    if (kd < 1.0) kd = 1.0;
    if (kd > nd) kd = nd;
    if (kd - x <= s_const || u >= h_integral(kd + 0.5) - h(kd)) {
      return static_cast<int64_t>(kd);
    }
  }
}

int64_t Rng::PowerLaw(int64_t xmin, int64_t xmax, double alpha) {
  assert(xmin >= 1 && xmax >= xmin && alpha > 1.0);
  // Continuous inverse-CDF on [xmin, xmax+1) then floor.
  double a = 1.0 - alpha;
  double lo = std::pow(static_cast<double>(xmin), a);
  double hi = std::pow(static_cast<double>(xmax) + 1.0, a);
  double u = NextDouble();
  double x = std::pow(lo + u * (hi - lo), 1.0 / a);
  int64_t k = static_cast<int64_t>(std::floor(x));
  return std::clamp(k, xmin, xmax);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += std::max(0.0, w);
  assert(total > 0);
  double target = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += std::max(0.0, weights[i]);
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  std::vector<size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over the full index range.
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + static_cast<size_t>(NextUint64(n - i));
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  // Sparse case: rejection with a hash set.
  std::unordered_set<size_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    size_t x = static_cast<size_t>(NextUint64(n));
    if (seen.insert(x).second) out.push_back(x);
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ull); }

}  // namespace cfnet
