#ifndef CFNET_UTIL_SIMD_H_
#define CFNET_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace cfnet::simd {

/// SIMD numeric kernels with a bit-identical scalar fallback.
///
/// Dispatch follows the hardware-CRC32 precedent in util/crc32: the best
/// backend is selected once at first use — AVX2 (runtime CPU check) or SSE2
/// on x86-64, NEON on aarch64, portable scalar otherwise. Three switches
/// force the scalar path:
///   * build with -DCFNET_DISABLE_SIMD=ON (removes the vector TUs' codegen),
///   * set the CFNET_DISABLE_SIMD environment variable to anything but "0",
///   * instantiate a ScopedForceScalar (tests and benchmarks).
///
/// # The virtual-lane bit-identity contract
///
/// Floating-point reductions are not associative, so a naive vector sum
/// would differ from a naive scalar sum in the last bits. Every reducing
/// kernel here instead commits to a fixed *virtual-lane* accumulator
/// layout: kVirtualLanes independent partial accumulators where element i
/// contributes to lane (i mod kVirtualLanes), each lane folding its
/// elements in increasing index order, and the lanes combined by one fixed
/// pairwise tree (see CombineLanes in simd_internal.h). The scalar fallback
/// *emulates that layout exactly*, so SIMD-on, SIMD-off, x86 and ARM all
/// produce byte-identical results — the PR-4 ordered-reduction guarantee
/// extended down into the lanes. Elementwise kernels (axpy, add, clamped
/// sub, ...) are trivially exact: each output element depends only on its
/// own inputs, in one fixed expression.
///
/// Clamping kernels use compare-select semantics ((a > b) ? a : b), which
/// matches x86 MAXPD/MINPD NaN behavior; the NEON paths use explicit
/// compare+bit-select rather than FMAX/FMIN so ARM agrees bit-for-bit.
/// No kernel may be compiled with FMA contraction: the per-file build
/// flags enable -mavx2 only, never -mfma, and the scalar TUs never see
/// either (a fused multiply-add would round differently).
///
/// Integer kernels (AndPopcountU64) are exact under any evaluation order,
/// so their backends are unconstrained.
///
/// # Adding a kernel
///
/// 1. Write the canonical scalar form here (reductions must use the
///    virtual-lane pattern; elementwise ops one fixed expression).
/// 2. Add a function-pointer slot to Kernels in simd_internal.h, pointing
///    the scalar table at the canonical form.
/// 3. Implement vector forms where profitable; any backend may leave the
///    slot on the scalar function — that is always bit-identical.
/// 4. Extend the differential grid in tests/simd_test.cc (lengths 0..257,
///    misaligned offsets, NaN/inf) for the new kernel.

/// Number of virtual accumulator lanes every FP reduction commits to.
/// 16 lanes = four 256-bit AVX2 accumulators (or eight 128-bit ones),
/// enough independent add chains to hide FP-add latency on every target.
inline constexpr size_t kVirtualLanes = 16;

// --- runtime dispatch introspection ---------------------------------------

/// True when the process dispatches to a vector backend (compile-time
/// support present, runtime CPU check passed, no disable switch active).
bool SimdEnabled();

/// Active backend: "avx2", "sse2", "neon" or "scalar".
const char* SimdBackendName();

/// Forces the scalar kernel table for its lifetime (nestable). For tests
/// and benchmarks; flip only while no other thread is inside a kernel.
class ScopedForceScalar {
 public:
  ScopedForceScalar();
  ~ScopedForceScalar();
  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;

 private:
  const void* prev_;
};

// --- FP reductions (virtual-lane contract) --------------------------------

/// sum_i a[i] * b[i].
double DotF64(const double* a, const double* b, size_t n);

/// sum_i a[i].
double SumF64(const double* a, size_t n);

/// sum_i (a[i] - center)^2.
double SumSqDiffF64(const double* a, size_t n, double center);

/// mean = SumF64(a, n) / n and sum_sq_diff = SumSqDiffF64(a, n, mean);
/// n == 0 yields {0, 0}. (The moment pair Summarize and friends consume.)
void MeanVarF64(const double* a, size_t n, double* mean, double* sum_sq_diff);

/// Centered second-moment accumulation for Pearson correlation:
///   *sxy = sum (x[i]-mx)*(y[i]-my)
///   *sxx = sum (x[i]-mx)^2
///   *syy = sum (y[i]-my)^2
/// each under its own virtual-lane layout.
void PearsonAccumF64(const double* x, const double* y, size_t n, double mx,
                     double my, double* sxy, double* sxx, double* syy);

/// Projected gradient step: cand[i] = clamp(x[i] + step * g[i], lo, hi)
/// with compare-select clamping, returning sum_i g[i] * (cand[i] - x[i])
/// (the ascent direction test) under the virtual-lane layout.
double ClampedStepDotF64(const double* x, const double* g, double step,
                         double lo, double hi, double* cand, size_t n);

// --- elementwise kernels (exact under any vector width) -------------------

/// y[i] += alpha * x[i].
void AxpyF64(double alpha, const double* x, double* y, size_t n);

/// y[i] += x[i].
void AddF64(double* y, const double* x, size_t n);

/// y[i] -= x[i].
void SubF64(double* y, const double* x, size_t n);

/// dst[i] = src[i]; acc[i] += src[i]. The CoDA neighbor-row gather: copy
/// the row into contiguous scratch while accumulating the neighbor sum.
void CopyAddF64(double* dst, double* acc, const double* src, size_t n);

/// out[i] = max(a[i] - b[i], 0) via compare-select — the CoDA "rest"
/// projection (column sum minus neighbor sum, floored at zero).
void ClampedSubF64(double* out, const double* a, const double* b, size_t n);

// --- integer kernels ------------------------------------------------------

/// sum_i popcount(a[i] & b[i]) — bitset intersection cardinality.
uint64_t AndPopcountU64(const uint64_t* a, const uint64_t* b, size_t n);

// --- fused CoDA row helpers (backend-independent composition) -------------

/// sum over `count` contiguous rows y_i (each `c` doubles, row-major in
/// `rows`) of log1p(-exp(-max(DotF64(x, y_i, c), min_dot))) — the
/// edge-probability term of the CoDA local objective. The per-row fold is
/// sequential in row order; each dot obeys the virtual-lane contract, and
/// the libm calls see identical inputs on every backend.
double SumLogEdgeProbF64(const double* x, const double* rows, size_t count,
                         size_t c, double min_dot);

/// Fused CoDA gradient accumulation over the same row layout:
///   d_i = max(DotF64(x, y_i, c), min_dot)
///   w_i = min(1 / expm1(d_i), w_cap)
///   grad += w_i * y_i          (AxpyF64 per row, in row order)
void AccumExpm1RowsF64(const double* x, const double* rows, size_t count,
                       size_t c, double min_dot, double w_cap, double* grad);

// --- scalar reference forms (the canonical semantics) ---------------------
//
// Exposed for differential tests and benchmarks, mirroring
// Crc32FallbackUpdate: the dispatched kernels above must be byte-identical
// to these on every input.

double DotF64Scalar(const double* a, const double* b, size_t n);
double SumF64Scalar(const double* a, size_t n);
double SumSqDiffF64Scalar(const double* a, size_t n, double center);
void PearsonAccumF64Scalar(const double* x, const double* y, size_t n,
                           double mx, double my, double* sxy, double* sxx,
                           double* syy);
double ClampedStepDotF64Scalar(const double* x, const double* g, double step,
                               double lo, double hi, double* cand, size_t n);
void AxpyF64Scalar(double alpha, const double* x, double* y, size_t n);
void AddF64Scalar(double* y, const double* x, size_t n);
void SubF64Scalar(double* y, const double* x, size_t n);
void CopyAddF64Scalar(double* dst, double* acc, const double* src, size_t n);
void ClampedSubF64Scalar(double* out, const double* a, const double* b,
                         size_t n);
uint64_t AndPopcountU64Scalar(const uint64_t* a, const uint64_t* b, size_t n);

}  // namespace cfnet::simd

#endif  // CFNET_UTIL_SIMD_H_
