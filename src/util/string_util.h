#ifndef CFNET_UTIL_STRING_UTIL_H_
#define CFNET_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cfnet {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view StrTrim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Final path/URL segment: text after the last '/', e.g. the Twitter handle
/// extraction the paper describes ("the string after the last '/' symbol").
std::string_view LastUrlSegment(std::string_view url);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable large number, e.g. 744036 -> "744,036".
std::string WithThousandsSeparators(int64_t v);

}  // namespace cfnet

#endif  // CFNET_UTIL_STRING_UTIL_H_
