#include "util/crc32.h"

namespace cfnet {
namespace {

const uint32_t* Crc32Table() {
  static uint32_t* table = []() {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, std::string_view data) {
  const uint32_t* table = Crc32Table();
  crc = ~crc;
  for (unsigned char ch : data) {
    crc = table[(crc ^ ch) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32(std::string_view data) { return Crc32Update(0, data); }

}  // namespace cfnet
