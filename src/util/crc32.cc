#include "util/crc32.h"

#include <cstring>

// Hardware paths, selected at compile time and guarded by a one-time runtime
// CPU check. x86-64 has no instruction for the IEEE polynomial (the SSE4.2
// `crc32` opcode is hardwired to Castagnoli), so the accelerated path there
// is carry-less-multiply folding (PCLMULQDQ) with the reflected-IEEE fold
// constants from Intel's "Fast CRC Computation Using PCLMULQDQ" paper — the
// same constants zlib ships. aarch64 exposes the IEEE polynomial directly as
// the ARMv8 `crc32{b,h,w,x}` instructions. Both reduce to the identical
// bit stream the table produces; -DCFNET_DISABLE_HW_CRC=ON removes them.
#if !defined(CFNET_DISABLE_HW_CRC)
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CFNET_CRC32_X86_CLMUL 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define CFNET_CRC32_ARM 1
#include <arm_acle.h>
#endif
#endif

namespace cfnet {
namespace {

/// Slice-by-8 tables: table[0] is the classic byte-at-a-time table; entry
/// table[k][b] is the CRC of byte b followed by k zero bytes. Processing
/// eight bytes per step keeps footer verification cheap relative to the
/// JSON-decode work it rides alongside on the snapshot scan path.
const uint32_t (*Crc32Tables())[256] {
  static auto* tables = []() {
    auto* t = new uint32_t[8][256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (int k = 1; k < 8; ++k) {
        c = t[0][c & 0xff] ^ (c >> 8);
        t[k][i] = c;
      }
    }
    return t;
  }();
  return tables;
}

/// All internal kernels run on the *raw* shift-register state (the caller
/// applies the ~crc pre/post conditioning once), so table and hardware
/// segments of one message compose freely.
uint32_t TableUpdateState(uint32_t state, const unsigned char* p, size_t n) {
  const uint32_t(*t)[256] = Crc32Tables();
  while (n >= 8) {
    // Little-endian word folds; memcpy keeps the loads alignment-safe.
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= state;
    state = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^
            t[5][(lo >> 16) & 0xff] ^ t[4][lo >> 24] ^ t[3][hi & 0xff] ^
            t[2][(hi >> 8) & 0xff] ^ t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    state = t[0][(state ^ *p++) & 0xff] ^ (state >> 8);
  }
  return state;
}

#if defined(CFNET_CRC32_X86_CLMUL)

/// PCLMULQDQ fold-by-4 over the reflected IEEE polynomial. Requires
/// n >= 64 and n % 16 == 0; the dispatcher hands the sub-16-byte tail to
/// the table kernel with the folded state.
__attribute__((target("pclmul,sse4.1"))) uint32_t ClmulUpdateState(
    uint32_t state, const unsigned char* p, size_t n) {
  // k1 = x^(4*128+64) mod P, k2 = x^(4*128) mod P (bit-reflected, the
  // leading coefficient carried in bit 32 of each lane).
  const __m128i k1k2 = _mm_setr_epi32(0x54442bd4, 1, static_cast<int>(0xc6e41596), 1);
  // k3 = x^(128+64) mod P, k4 = x^128 mod P.
  const __m128i k3k4 = _mm_setr_epi32(0x751997d0, 1, static_cast<int>(0xccaa009e), 0);
  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 0));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32));
  __m128i x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(state)));
  p += 64;
  n -= 64;
  __m128i x5;
  while (n >= 64) {
    x5 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
    __m128i x6 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
    __m128i x7 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
    __m128i x8 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
    x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
    x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
    x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
    x1 = _mm_xor_si128(
        _mm_xor_si128(x1, x5),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 0)));
    x2 = _mm_xor_si128(
        _mm_xor_si128(x2, x6),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16)));
    x3 = _mm_xor_si128(
        _mm_xor_si128(x3, x7),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32)));
    x4 = _mm_xor_si128(
        _mm_xor_si128(x4, x8),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48)));
    p += 64;
    n -= 64;
  }
  // Fold the four 128-bit accumulators into one.
  x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), x2);
  x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), x3);
  x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), x4);
  // Residual 16-byte chunks.
  while (n >= 16) {
    x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
    p += 16;
    n -= 16;
  }
  // 128 -> 64 bits.
  const __m128i mask32 = _mm_setr_epi32(~0, 0, ~0, 0);
  x2 = _mm_clmulepi64_si128(x1, k3k4, 0x10);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, x2);
  const __m128i k5k0 = _mm_setr_epi32(0x63cd6124, 1, 0, 0);  // k5 = x^96 mod P
  x2 = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, mask32);
  x1 = _mm_clmulepi64_si128(x1, k5k0, 0x00);
  x1 = _mm_xor_si128(x1, x2);
  // Barrett reduction 64 -> 32 bits (low lane P', high lane mu).
  const __m128i poly =
      _mm_setr_epi32(static_cast<int>(0xdb710641), 1,
                     static_cast<int>(0xf7011641), 1);
  x2 = _mm_and_si128(x1, mask32);
  x2 = _mm_clmulepi64_si128(x2, poly, 0x10);
  x2 = _mm_and_si128(x2, mask32);
  x2 = _mm_clmulepi64_si128(x2, poly, 0x00);
  x1 = _mm_xor_si128(x1, x2);
  return static_cast<uint32_t>(_mm_extract_epi32(x1, 1));
}

bool HardwareCrcAvailable() {
  static const bool available = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1");
  }();
  return available;
}

/// Below this, fold setup costs more than it saves.
constexpr size_t kHwMinBytes = 64;

uint32_t HwUpdateState(uint32_t state, const unsigned char*& p, size_t& n) {
  const size_t chunk = n & ~size_t{15};  // clmul kernel wants 16-byte steps
  state = ClmulUpdateState(state, p, chunk);
  p += chunk;
  n -= chunk;
  return state;
}

#elif defined(CFNET_CRC32_ARM)

bool HardwareCrcAvailable() { return true; }  // guaranteed by the target arch

constexpr size_t kHwMinBytes = 1;

uint32_t HwUpdateState(uint32_t state, const unsigned char*& p, size_t& n) {
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    state = __crc32d(state, v);
    p += 8;
    n -= 8;
  }
  if (n >= 4) {
    uint32_t v;
    std::memcpy(&v, p, 4);
    state = __crc32w(state, v);
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    state = __crc32b(state, *p++);
    --n;
  }
  return state;
}

#else

bool HardwareCrcAvailable() { return false; }

constexpr size_t kHwMinBytes = ~size_t{0};

uint32_t HwUpdateState(uint32_t state, const unsigned char*&, size_t&) {
  return state;  // unreachable: kHwMinBytes admits nothing
}

#endif

}  // namespace

uint32_t Crc32Update(uint32_t crc, std::string_view data) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  uint32_t state = ~crc;
  if (n >= kHwMinBytes && HardwareCrcAvailable()) {
    state = HwUpdateState(state, p, n);
  }
  state = TableUpdateState(state, p, n);
  return ~state;
}

uint32_t Crc32FallbackUpdate(uint32_t crc, std::string_view data) {
  return ~TableUpdateState(
      ~crc, reinterpret_cast<const unsigned char*>(data.data()), data.size());
}

bool Crc32HardwareEnabled() { return HardwareCrcAvailable(); }

uint32_t Crc32(std::string_view data) { return Crc32Update(0, data); }

}  // namespace cfnet
