#include "util/crc32.h"

#include <cstring>

namespace cfnet {
namespace {

/// Slice-by-8 tables: table[0] is the classic byte-at-a-time table; entry
/// table[k][b] is the CRC of byte b followed by k zero bytes. Processing
/// eight bytes per step keeps footer verification cheap relative to the
/// JSON-decode work it rides alongside on the snapshot scan path.
const uint32_t (*Crc32Tables())[256] {
  static auto* tables = []() {
    auto* t = new uint32_t[8][256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (int k = 1; k < 8; ++k) {
        c = t[0][c & 0xff] ^ (c >> 8);
        t[k][i] = c;
      }
    }
    return t;
  }();
  return tables;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, std::string_view data) {
  const uint32_t(*t)[256] = Crc32Tables();
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  crc = ~crc;
  while (n >= 8) {
    // Little-endian word folds; memcpy keeps the loads alignment-safe.
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
          t[4][lo >> 24] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
          t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32(std::string_view data) { return Crc32Update(0, data); }

}  // namespace cfnet
