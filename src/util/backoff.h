#ifndef CFNET_UTIL_BACKOFF_H_
#define CFNET_UTIL_BACKOFF_H_

#include <cstdint>

namespace cfnet {

/// Exponential-backoff tuning shared by every retry loop in cfnet (network
/// fetches, storage commit retries). Delays are expressed in microseconds of
/// whatever clock the caller advances — virtual worker time for the crawler,
/// a commit clock for storage — so the policy itself never sleeps.
struct BackoffPolicy {
  int64_t base_micros = 500000;  // first-retry delay
  double multiplier = 2.0;       // growth per attempt
  int64_t max_micros = 0;        // cap per delay; 0 = uncapped
  /// Jitter fraction in [0, 1]: each delay is scaled by a deterministic
  /// seeded draw in [1 - jitter, 1 + jitter]. 0 keeps delays exact
  /// (base * multiplier^attempt), which bit-reproducible tests rely on.
  double jitter = 0.0;
};

/// Deterministic jittered exponential backoff. Two instances with the same
/// policy and seed produce identical delay sequences: jitter draws come from
/// `cfnet::Mix64` keyed on (seed, attempt), never from wall-clock entropy,
/// so retry schedules replay exactly under test.
class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(const BackoffPolicy& policy, uint64_t seed = 0);

  /// Delay before the next retry; advances the attempt counter.
  int64_t NextDelayMicros();

  /// Back to the first attempt (e.g. after a success in a long-lived loop).
  void Reset();

  int attempts() const { return attempt_; }
  const BackoffPolicy& policy() const { return policy_; }

 private:
  BackoffPolicy policy_;
  uint64_t seed_;
  int attempt_ = 0;
  double current_micros_ = 0;
};

}  // namespace cfnet

#endif  // CFNET_UTIL_BACKOFF_H_
