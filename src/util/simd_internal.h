#ifndef CFNET_UTIL_SIMD_INTERNAL_H_
#define CFNET_UTIL_SIMD_INTERNAL_H_

#include <cstddef>
#include <cstdint>

// Internal to util/simd*: the per-backend kernel table and the shared
// lane-combine helper. Each backend TU (simd.cc scalar+SSE2, simd_avx2.cc,
// simd_neon.cc) fills a Kernels with its vector forms; any slot may point
// at the canonical scalar function — that is bit-identical by contract.

namespace cfnet::simd::internal {

struct Kernels {
  const char* name;
  double (*dot)(const double*, const double*, size_t);
  double (*sum)(const double*, size_t);
  double (*sum_sq_diff)(const double*, size_t, double);
  void (*pearson_accum)(const double*, const double*, size_t, double, double,
                        double*, double*, double*);
  double (*clamped_step_dot)(const double*, const double*, double, double,
                             double, double*, size_t);
  void (*axpy)(double, const double*, double*, size_t);
  void (*add)(double*, const double*, size_t);
  void (*sub)(double*, const double*, size_t);
  void (*copy_add)(double*, double*, const double*, size_t);
  void (*clamped_sub)(double*, const double*, const double*, size_t);
  uint64_t (*and_popcount)(const uint64_t*, const uint64_t*, size_t);
};

/// The fixed pairwise combine tree over the 16 virtual lanes. Every
/// backend (and the scalar canonical form) must fold its lane array
/// through exactly this expression — it is part of the bit-identity
/// contract, so keep it in one place.
inline double CombineLanes(const double lane[16]) {
  const double a = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  const double b = (lane[4] + lane[5]) + (lane[6] + lane[7]);
  const double c = (lane[8] + lane[9]) + (lane[10] + lane[11]);
  const double d = (lane[12] + lane[13]) + (lane[14] + lane[15]);
  return (a + b) + (c + d);
}

/// AVX2 table, or nullptr when unsupported (not compiled in, or the
/// runtime CPU check failed). Defined in simd_avx2.cc.
const Kernels* GetAvx2Kernels();

/// NEON table, or nullptr off aarch64. Defined in simd_neon.cc.
const Kernels* GetNeonKernels();

}  // namespace cfnet::simd::internal

#endif  // CFNET_UTIL_SIMD_INTERNAL_H_
