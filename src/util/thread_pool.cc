#include "util/thread_pool.h"

#include <algorithm>

namespace cfnet {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this]() { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::DefaultParallelism() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this]() { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace cfnet
