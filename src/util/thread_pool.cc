#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace cfnet {
namespace {

/// Shared state of one RunBulk batch: an atomic index counter that workers
/// and the caller claim from, and a latch signalled when the last claimed
/// index finishes executing.
struct BulkState {
  BulkState(size_t total, std::function<void(size_t)> task)
      : n(total), fn(std::move(task)) {}

  const size_t n;
  const std::function<void(size_t)> fn;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // first failure, guarded by mu

  /// Claims and runs indices until none remain. Safe to call from any
  /// thread; helpers that arrive after the batch drained exit immediately.
  void Participate() {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (!failed.exchange(true)) error = std::current_exception();
        }
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::RunBulk(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {  // caller-runs fast path: no shared state, no queueing
    fn(0);
    return;
  }
  auto state = std::make_shared<BulkState>(n, fn);
  size_t helpers = std::min(n - 1, workers_.size());
  for (size_t h = 0; h < helpers; ++h) {
    Schedule([state]() { state->Participate(); });
  }
  state->Participate();
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&]() {
      return state->done.load(std::memory_order_acquire) == state->n;
    });
  }
  if (state->failed.load(std::memory_order_acquire)) {
    std::rethrow_exception(state->error);
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this]() { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::DefaultParallelism() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this]() { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace cfnet
