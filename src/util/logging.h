#ifndef CFNET_UTIL_LOGGING_H_
#define CFNET_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace cfnet {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum level; messages below it are dropped.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

namespace internal_logging {

/// Stream-style log sink. Emits on destruction; FATAL aborts the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define CFNET_LOG_ENABLED(level) \
  (::cfnet::LogLevel::level >= ::cfnet::MinLogLevel())

#define CFNET_LOG(level)                                                 \
  if (!CFNET_LOG_ENABLED(k##level))                                      \
    ;                                                                    \
  else                                                                   \
    ::cfnet::internal_logging::LogMessage(::cfnet::LogLevel::k##level,   \
                                          __FILE__, __LINE__)            \
        .stream()

/// Always-on invariant check (enabled in release builds too).
#define CFNET_CHECK(cond)                                                \
  if (cond)                                                              \
    ;                                                                    \
  else                                                                   \
    ::cfnet::internal_logging::LogMessage(::cfnet::LogLevel::kFatal,     \
                                          __FILE__, __LINE__)            \
            .stream()                                                    \
        << "Check failed: " #cond " "

}  // namespace cfnet

#endif  // CFNET_UTIL_LOGGING_H_
