#ifndef CFNET_UTIL_SIM_CLOCK_H_
#define CFNET_UTIL_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace cfnet {

/// Discrete-event virtual clock, in microseconds.
///
/// The simulated web (`src/net`) and the crawler account for API latency and
/// rate-limit waits in virtual time instead of sleeping, so large crawls
/// "take" hours of simulated time while running in milliseconds of wall time.
/// The clock is monotone: concurrent advances race forward but never back.
class SimClock {
 public:
  SimClock() : now_micros_(0) {}

  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  /// Current virtual time in microseconds since simulation start.
  int64_t NowMicros() const { return now_micros_.load(std::memory_order_relaxed); }

  /// Advances the clock by `delta_micros` (>= 0) and returns the new time.
  int64_t Advance(int64_t delta_micros) {
    return now_micros_.fetch_add(delta_micros, std::memory_order_relaxed) +
           delta_micros;
  }

  /// Moves the clock forward to at least `t_micros` (no-op if already past).
  void AdvanceTo(int64_t t_micros) {
    int64_t cur = now_micros_.load(std::memory_order_relaxed);
    while (cur < t_micros && !now_micros_.compare_exchange_weak(
                                 cur, t_micros, std::memory_order_relaxed)) {
    }
  }

  /// Resets to time zero (single-threaded use only, e.g. between benches).
  void Reset() { now_micros_.store(0, std::memory_order_relaxed); }

  static constexpr int64_t kMicrosPerSecond = 1000000;
  static constexpr int64_t kMicrosPerMinute = 60 * kMicrosPerSecond;

 private:
  std::atomic<int64_t> now_micros_;
};

}  // namespace cfnet

#endif  // CFNET_UTIL_SIM_CLOCK_H_
