#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cctype>

namespace cfnet {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view LastUrlSegment(std::string_view url) {
  while (!url.empty() && url.back() == '/') url.remove_suffix(1);
  size_t pos = url.rfind('/');
  if (pos == std::string_view::npos) return url;
  return url.substr(pos + 1);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string WithThousandsSeparators(int64_t v) {
  bool neg = v < 0;
  uint64_t mag = neg ? static_cast<uint64_t>(-(v + 1)) + 1 : static_cast<uint64_t>(v);
  std::string digits = std::to_string(mag);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace cfnet
