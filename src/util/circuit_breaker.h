#ifndef CFNET_UTIL_CIRCUIT_BREAKER_H_
#define CFNET_UTIL_CIRCUIT_BREAKER_H_

#include <atomic>
#include <cstdint>
#include <mutex>

namespace cfnet::util {

/// Circuit-breaker tuning (virtual-time cooldowns).
struct CircuitBreakerConfig {
  int failure_threshold = 5;                  // consecutive failures to open
  int64_t cooldown_micros = 60ll * 1000000;   // open -> half-open delay
  int half_open_probes = 1;                   // successes needed to re-close
};

/// Shared circuit breaker: closed -> open after `failure_threshold`
/// consecutive failures, open -> half-open once the cooldown elapses,
/// half-open -> closed after `half_open_probes` successful probes (any probe
/// failure re-opens). While open, callers are expected to fail fast or fall
/// back to a degraded answer without touching the protected resource.
///
/// Time is whatever clock the caller passes (the crawler uses per-worker
/// virtual time, the serving tier a wall/manual clock); the breaker only
/// compares timestamps. Thread-safe; `trips()` counts transitions into the
/// open state.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerConfig config = {})
      : config_(config) {}

  /// True when a request may be issued at time `now_micros` (closed, or
  /// open past its cooldown — which admits half-open probes).
  bool AllowRequest(int64_t now_micros);
  void RecordSuccess();
  void RecordFailure(int64_t now_micros);
  /// Back to closed with counters cleared; `trips()` stays (it is a
  /// monotonic metric, not state).
  void Reset();

  State state() const;
  int64_t trips() const { return trips_.load(std::memory_order_relaxed); }
  /// Time the current open period ends (0 when never opened). A waiting
  /// caller advances its clock here before probing.
  int64_t open_until_micros() const;

 private:
  CircuitBreakerConfig config_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_admitted_ = 0;
  int half_open_successes_ = 0;
  int64_t open_until_micros_ = 0;
  std::atomic<int64_t> trips_{0};
};

}  // namespace cfnet::util

#endif  // CFNET_UTIL_CIRCUIT_BREAKER_H_
