#ifndef CFNET_UTIL_RESULT_H_
#define CFNET_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace cfnet {

/// Either a value of type T or a non-OK Status, in the style of
/// absl::StatusOr / arrow::Result.
///
/// Accessing `value()` on an error Result aborts (assert in debug builds,
/// documented UB otherwise); callers must check `ok()` first or use
/// `value_or` / CFNET_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common return path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (the error path).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
/// assigns the value into `lhs` (which may be a declaration).
#define CFNET_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  CFNET_ASSIGN_OR_RETURN_IMPL_(                                 \
      CFNET_RESULT_CONCAT_(_cfnet_result, __LINE__), lhs, rexpr)

#define CFNET_RESULT_CONCAT_INNER_(x, y) x##y
#define CFNET_RESULT_CONCAT_(x, y) CFNET_RESULT_CONCAT_INNER_(x, y)
#define CFNET_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace cfnet

#endif  // CFNET_UTIL_RESULT_H_
