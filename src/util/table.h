#ifndef CFNET_UTIL_TABLE_H_
#define CFNET_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace cfnet {

/// Minimal ASCII table renderer used by the benchmark harness to print the
/// paper's tables/series next to our measured values.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends a data row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders with column auto-sizing, `|` separators and a header rule.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cfnet

#endif  // CFNET_UTIL_TABLE_H_
