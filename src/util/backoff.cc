#include "util/backoff.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace cfnet {

ExponentialBackoff::ExponentialBackoff(const BackoffPolicy& policy,
                                       uint64_t seed)
    : policy_(policy),
      seed_(seed),
      current_micros_(static_cast<double>(std::max<int64_t>(0, policy.base_micros))) {}

void ExponentialBackoff::Reset() {
  attempt_ = 0;
  current_micros_ =
      static_cast<double>(std::max<int64_t>(0, policy_.base_micros));
}

int64_t ExponentialBackoff::NextDelayMicros() {
  double delay = current_micros_;
  if (policy_.max_micros > 0) {
    delay = std::min(delay, static_cast<double>(policy_.max_micros));
  }
  if (policy_.jitter > 0) {
    // Counter-based draw: depends only on (seed, attempt), so schedules
    // replay regardless of thread interleaving. Salt avoids Mix64(0) == 0.
    uint64_t word =
        Mix64(seed_ ^ (0x9e3779b97f4a7c15ull +
                       static_cast<uint64_t>(attempt_) * 0xbf58476d1ce4e5b9ull));
    double unit = static_cast<double>(word >> 11) * 0x1.0p-53;  // [0, 1)
    double jitter = std::clamp(policy_.jitter, 0.0, 1.0);
    delay *= 1.0 - jitter + 2.0 * jitter * unit;
  }
  ++attempt_;
  current_micros_ *= policy_.multiplier <= 0 ? 1.0 : policy_.multiplier;
  return static_cast<int64_t>(std::llround(std::max(0.0, delay)));
}

}  // namespace cfnet
