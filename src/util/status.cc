#include "util/status.h"

namespace cfnet {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace cfnet
