#include "util/table.h"

#include <algorithm>

namespace cfnet {

std::string AsciiTable::Render() const {
  size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<size_t> widths(ncols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  auto render_row = [&](const std::vector<std::string>& row, std::string& out) {
    out += "|";
    for (size_t i = 0; i < ncols; ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      out += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    out += "\n";
  };

  std::string rule = "+";
  for (size_t i = 0; i < ncols; ++i) rule += std::string(widths[i] + 2, '-') + "+";
  rule += "\n";

  std::string out = rule;
  render_row(header_, out);
  out += rule;
  for (const auto& r : rows_) render_row(r, out);
  out += rule;
  return out;
}

}  // namespace cfnet
