// ARMv8 NEON kernel tier. NEON is baseline on aarch64 so no runtime CPU
// check is needed — the compile-time guard is the whole gate. The 16
// virtual lanes live in eight float64x2_t accumulators (accumulator q
// holds lanes 2q, 2q+1); main loops step 16 and the scalar tail continues
// the same lanes, exactly like the scalar canonical forms in simd.cc.
//
// Clamps use explicit compare + bit-select (vcgtq/vcltq + vbslq), NOT
// vmaxq/vminq: ARM FMAX propagates NaN while x86 MAXPD returns the second
// operand, and the bit-identity contract pins the latter (compare-select)
// semantics.

#include "util/simd.h"
#include "util/simd_internal.h"

#if defined(__aarch64__) && !defined(CFNET_DISABLE_SIMD)

#include <arm_neon.h>

#include <bit>

namespace cfnet::simd::internal {
namespace {

double DotNeon(const double* a, const double* b, size_t n) {
  float64x2_t acc[8];
  for (auto& v : acc) v = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (size_t q = 0; q < 8; ++q) {
      acc[q] = vaddq_f64(
          acc[q], vmulq_f64(vld1q_f64(a + i + 2 * q), vld1q_f64(b + i + 2 * q)));
    }
  }
  double lane[kVirtualLanes];
  for (size_t q = 0; q < 8; ++q) vst1q_f64(lane + 2 * q, acc[q]);
  for (; i < n; ++i) lane[i & 15] += a[i] * b[i];
  return CombineLanes(lane);
}

double SumNeon(const double* a, size_t n) {
  float64x2_t acc[8];
  for (auto& v : acc) v = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (size_t q = 0; q < 8; ++q) {
      acc[q] = vaddq_f64(acc[q], vld1q_f64(a + i + 2 * q));
    }
  }
  double lane[kVirtualLanes];
  for (size_t q = 0; q < 8; ++q) vst1q_f64(lane + 2 * q, acc[q]);
  for (; i < n; ++i) lane[i & 15] += a[i];
  return CombineLanes(lane);
}

double SumSqDiffNeon(const double* a, size_t n, double center) {
  const float64x2_t vc = vdupq_n_f64(center);
  float64x2_t acc[8];
  for (auto& v : acc) v = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (size_t q = 0; q < 8; ++q) {
      const float64x2_t d = vsubq_f64(vld1q_f64(a + i + 2 * q), vc);
      acc[q] = vaddq_f64(acc[q], vmulq_f64(d, d));
    }
  }
  double lane[kVirtualLanes];
  for (size_t q = 0; q < 8; ++q) vst1q_f64(lane + 2 * q, acc[q]);
  for (; i < n; ++i) {
    const double d = a[i] - center;
    lane[i & 15] += d * d;
  }
  return CombineLanes(lane);
}

void PearsonAccumNeon(const double* x, const double* y, size_t n, double mx,
                      double my, double* sxy, double* sxx, double* syy) {
  const float64x2_t vmx = vdupq_n_f64(mx);
  const float64x2_t vmy = vdupq_n_f64(my);
  float64x2_t axy[8], axx[8], ayy[8];
  for (size_t q = 0; q < 8; ++q) {
    axy[q] = vdupq_n_f64(0.0);
    axx[q] = vdupq_n_f64(0.0);
    ayy[q] = vdupq_n_f64(0.0);
  }
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (size_t q = 0; q < 8; ++q) {
      const float64x2_t dx = vsubq_f64(vld1q_f64(x + i + 2 * q), vmx);
      const float64x2_t dy = vsubq_f64(vld1q_f64(y + i + 2 * q), vmy);
      axy[q] = vaddq_f64(axy[q], vmulq_f64(dx, dy));
      axx[q] = vaddq_f64(axx[q], vmulq_f64(dx, dx));
      ayy[q] = vaddq_f64(ayy[q], vmulq_f64(dy, dy));
    }
  }
  double lxy[kVirtualLanes], lxx[kVirtualLanes], lyy[kVirtualLanes];
  for (size_t q = 0; q < 8; ++q) {
    vst1q_f64(lxy + 2 * q, axy[q]);
    vst1q_f64(lxx + 2 * q, axx[q]);
    vst1q_f64(lyy + 2 * q, ayy[q]);
  }
  for (; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    lxy[i & 15] += dx * dy;
    lxx[i & 15] += dx * dx;
    lyy[i & 15] += dy * dy;
  }
  *sxy = CombineLanes(lxy);
  *sxx = CombineLanes(lxx);
  *syy = CombineLanes(lyy);
}

/// (t > lo) ? t : lo — compare false on NaN selects lo, matching MAXPD.
inline float64x2_t SelectMax(float64x2_t t, float64x2_t lo) {
  return vbslq_f64(vcgtq_f64(t, lo), t, lo);
}

/// (t < hi) ? t : hi.
inline float64x2_t SelectMin(float64x2_t t, float64x2_t hi) {
  return vbslq_f64(vcltq_f64(t, hi), t, hi);
}

double ClampedStepDotNeon(const double* x, const double* g, double step,
                          double lo, double hi, double* cand, size_t n) {
  const float64x2_t vstep = vdupq_n_f64(step);
  const float64x2_t vlo = vdupq_n_f64(lo);
  const float64x2_t vhi = vdupq_n_f64(hi);
  float64x2_t acc[8];
  for (auto& v : acc) v = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (size_t q = 0; q < 8; ++q) {
      const float64x2_t vx = vld1q_f64(x + i + 2 * q);
      const float64x2_t vg = vld1q_f64(g + i + 2 * q);
      float64x2_t t = vaddq_f64(vx, vmulq_f64(vstep, vg));
      t = SelectMin(SelectMax(t, vlo), vhi);
      vst1q_f64(cand + i + 2 * q, t);
      acc[q] = vaddq_f64(acc[q], vmulq_f64(vg, vsubq_f64(t, vx)));
    }
  }
  double lane[kVirtualLanes];
  for (size_t q = 0; q < 8; ++q) vst1q_f64(lane + 2 * q, acc[q]);
  for (; i < n; ++i) {
    double t = x[i] + step * g[i];
    t = (t > lo) ? t : lo;
    t = (t < hi) ? t : hi;
    cand[i] = t;
    lane[i & 15] += g[i] * (t - x[i]);
  }
  return CombineLanes(lane);
}

void AxpyNeon(double alpha, const double* x, double* y, size_t n) {
  const float64x2_t va = vdupq_n_f64(alpha);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i,
              vaddq_f64(vld1q_f64(y + i), vmulq_f64(va, vld1q_f64(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void AddNeon(double* y, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), vld1q_f64(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void SubNeon(double* y, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i, vsubq_f64(vld1q_f64(y + i), vld1q_f64(x + i)));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

void CopyAddNeon(double* dst, double* acc, const double* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t s = vld1q_f64(src + i);
    vst1q_f64(dst + i, s);
    vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i), s));
  }
  for (; i < n; ++i) {
    dst[i] = src[i];
    acc[i] += src[i];
  }
}

void ClampedSubNeon(double* out, const double* a, const double* b, size_t n) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t t = vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
    vst1q_f64(out + i, SelectMax(t, zero));
  }
  for (; i < n; ++i) {
    const double t = a[i] - b[i];
    out[i] = (t > 0.0) ? t : 0.0;
  }
}

uint64_t AndPopcountNeon(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t v = vreinterpretq_u8_u64(
        vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
    acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v)))));
  }
  uint64_t s = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; i < n; ++i) s += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
  return s;
}

const Kernels kNeonKernels = {
    "neon",
    DotNeon,
    SumNeon,
    SumSqDiffNeon,
    PearsonAccumNeon,
    ClampedStepDotNeon,
    AxpyNeon,
    AddNeon,
    SubNeon,
    CopyAddNeon,
    ClampedSubNeon,
    AndPopcountNeon,
};

}  // namespace

const Kernels* GetNeonKernels() { return &kNeonKernels; }

}  // namespace cfnet::simd::internal

#else  // !__aarch64__ || CFNET_DISABLE_SIMD

namespace cfnet::simd::internal {
const Kernels* GetNeonKernels() { return nullptr; }
}  // namespace cfnet::simd::internal

#endif
