#include "util/simd.h"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>

#include "util/simd_internal.h"

// Scalar canonical kernels + the SSE2 tier (baseline on x86-64, no extra
// flags needed) + runtime dispatch. The AVX2 and NEON tiers live in their
// own TUs (simd_avx2.cc / simd_neon.cc) so their -mavx2-style flags never
// leak into portable code; see util/CMakeLists.txt.
#if defined(__x86_64__) && !defined(CFNET_DISABLE_SIMD)
#define CFNET_SIMD_SSE2 1
#include <emmintrin.h>
#endif

namespace cfnet::simd {

using internal::CombineLanes;
using internal::Kernels;

// --------------------------------------------------------------------------
// Scalar canonical forms. These DEFINE the kernel semantics: every vector
// backend must be byte-identical to them. Reductions walk the virtual-lane
// layout directly (lane = index mod kVirtualLanes, combined by the fixed
// CombineLanes tree); elementwise ops are one fixed expression per element.
// --------------------------------------------------------------------------

double DotF64Scalar(const double* a, const double* b, size_t n) {
  double lane[kVirtualLanes] = {};
  for (size_t i = 0; i < n; ++i) lane[i & 15] += a[i] * b[i];
  return CombineLanes(lane);
}

double SumF64Scalar(const double* a, size_t n) {
  double lane[kVirtualLanes] = {};
  for (size_t i = 0; i < n; ++i) lane[i & 15] += a[i];
  return CombineLanes(lane);
}

double SumSqDiffF64Scalar(const double* a, size_t n, double center) {
  double lane[kVirtualLanes] = {};
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - center;
    lane[i & 15] += d * d;
  }
  return CombineLanes(lane);
}

void PearsonAccumF64Scalar(const double* x, const double* y, size_t n,
                           double mx, double my, double* sxy, double* sxx,
                           double* syy) {
  double lxy[kVirtualLanes] = {};
  double lxx[kVirtualLanes] = {};
  double lyy[kVirtualLanes] = {};
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    lxy[i & 15] += dx * dy;
    lxx[i & 15] += dx * dx;
    lyy[i & 15] += dy * dy;
  }
  *sxy = CombineLanes(lxy);
  *sxx = CombineLanes(lxx);
  *syy = CombineLanes(lyy);
}

double ClampedStepDotF64Scalar(const double* x, const double* g, double step,
                               double lo, double hi, double* cand, size_t n) {
  double lane[kVirtualLanes] = {};
  for (size_t i = 0; i < n; ++i) {
    double t = x[i] + step * g[i];
    t = (t > lo) ? t : lo;  // compare-select: matches MAXPD/MINPD on NaN
    t = (t < hi) ? t : hi;
    cand[i] = t;
    lane[i & 15] += g[i] * (t - x[i]);
  }
  return CombineLanes(lane);
}

void AxpyF64Scalar(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void AddF64Scalar(double* y, const double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += x[i];
}

void SubF64Scalar(double* y, const double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] -= x[i];
}

void CopyAddF64Scalar(double* dst, double* acc, const double* src, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] = src[i];
    acc[i] += src[i];
  }
}

void ClampedSubF64Scalar(double* out, const double* a, const double* b,
                         size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double t = a[i] - b[i];
    out[i] = (t > 0.0) ? t : 0.0;
  }
}

uint64_t AndPopcountU64Scalar(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t s = 0;
  for (size_t i = 0; i < n; ++i) {
    s += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
  }
  return s;
}

namespace {

const Kernels kScalarKernels = {
    "scalar",
    DotF64Scalar,
    SumF64Scalar,
    SumSqDiffF64Scalar,
    PearsonAccumF64Scalar,
    ClampedStepDotF64Scalar,
    AxpyF64Scalar,
    AddF64Scalar,
    SubF64Scalar,
    CopyAddF64Scalar,
    ClampedSubF64Scalar,
    AndPopcountU64Scalar,
};

// --------------------------------------------------------------------------
// SSE2 tier: two lanes per register, so the 16 virtual lanes live in eight
// __m128d accumulators (accumulator q holds lanes 2q and 2q+1). Only the
// streaming kernels are vectorized here; the rest stay on the scalar
// canonical forms, which is always bit-identical. x86-64 guarantees SSE2,
// so there is no runtime check for this tier.
// --------------------------------------------------------------------------
#if defined(CFNET_SIMD_SSE2)

double DotSse2(const double* a, const double* b, size_t n) {
  __m128d acc[8];
  for (auto& v : acc) v = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (size_t q = 0; q < 8; ++q) {
      acc[q] = _mm_add_pd(acc[q], _mm_mul_pd(_mm_loadu_pd(a + i + 2 * q),
                                             _mm_loadu_pd(b + i + 2 * q)));
    }
  }
  double lane[kVirtualLanes];
  for (size_t q = 0; q < 8; ++q) _mm_storeu_pd(lane + 2 * q, acc[q]);
  for (; i < n; ++i) lane[i & 15] += a[i] * b[i];
  return CombineLanes(lane);
}

double SumSse2(const double* a, size_t n) {
  __m128d acc[8];
  for (auto& v : acc) v = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (size_t q = 0; q < 8; ++q) {
      acc[q] = _mm_add_pd(acc[q], _mm_loadu_pd(a + i + 2 * q));
    }
  }
  double lane[kVirtualLanes];
  for (size_t q = 0; q < 8; ++q) _mm_storeu_pd(lane + 2 * q, acc[q]);
  for (; i < n; ++i) lane[i & 15] += a[i];
  return CombineLanes(lane);
}

double SumSqDiffSse2(const double* a, size_t n, double center) {
  const __m128d vc = _mm_set1_pd(center);
  __m128d acc[8];
  for (auto& v : acc) v = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (size_t q = 0; q < 8; ++q) {
      const __m128d d = _mm_sub_pd(_mm_loadu_pd(a + i + 2 * q), vc);
      acc[q] = _mm_add_pd(acc[q], _mm_mul_pd(d, d));
    }
  }
  double lane[kVirtualLanes];
  for (size_t q = 0; q < 8; ++q) _mm_storeu_pd(lane + 2 * q, acc[q]);
  for (; i < n; ++i) {
    const double d = a[i] - center;
    lane[i & 15] += d * d;
  }
  return CombineLanes(lane);
}

void AxpySse2(double alpha, const double* x, double* y, size_t n) {
  const __m128d va = _mm_set1_pd(alpha);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(y + i, _mm_add_pd(_mm_loadu_pd(y + i),
                                    _mm_mul_pd(va, _mm_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void AddSse2(double* y, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(y + i, _mm_add_pd(_mm_loadu_pd(y + i), _mm_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void SubSse2(double* y, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(y + i, _mm_sub_pd(_mm_loadu_pd(y + i), _mm_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

void CopyAddSse2(double* dst, double* acc, const double* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d s = _mm_loadu_pd(src + i);
    _mm_storeu_pd(dst + i, s);
    _mm_storeu_pd(acc + i, _mm_add_pd(_mm_loadu_pd(acc + i), s));
  }
  for (; i < n; ++i) {
    dst[i] = src[i];
    acc[i] += src[i];
  }
}

void ClampedSubSse2(double* out, const double* a, const double* b, size_t n) {
  const __m128d zero = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d t = _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
    _mm_storeu_pd(out + i, _mm_max_pd(t, zero));
  }
  for (; i < n; ++i) {
    const double t = a[i] - b[i];
    out[i] = (t > 0.0) ? t : 0.0;
  }
}

const Kernels kSse2Kernels = {
    "sse2",
    DotSse2,
    SumSse2,
    SumSqDiffSse2,
    PearsonAccumF64Scalar,
    ClampedStepDotF64Scalar,
    AxpySse2,
    AddSse2,
    SubSse2,
    CopyAddSse2,
    ClampedSubSse2,
    AndPopcountU64Scalar,
};

#endif  // CFNET_SIMD_SSE2

// --------------------------------------------------------------------------
// Dispatch
// --------------------------------------------------------------------------

bool DisabledByEnv() {
  const char* v = std::getenv("CFNET_DISABLE_SIMD");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

const Kernels* DetectKernels() {
#if defined(CFNET_DISABLE_SIMD)
  return &kScalarKernels;
#else
  if (DisabledByEnv()) return &kScalarKernels;
  if (const Kernels* k = internal::GetAvx2Kernels()) return k;
  if (const Kernels* k = internal::GetNeonKernels()) return k;
#if defined(CFNET_SIMD_SSE2)
  return &kSse2Kernels;
#else
  return &kScalarKernels;
#endif
#endif
}

std::atomic<const Kernels*>& ActiveSlot() {
  static std::atomic<const Kernels*> slot{DetectKernels()};
  return slot;
}

const Kernels& Active() {
  return *ActiveSlot().load(std::memory_order_relaxed);
}

}  // namespace

bool SimdEnabled() { return &Active() != &kScalarKernels; }

const char* SimdBackendName() { return Active().name; }

ScopedForceScalar::ScopedForceScalar()
    : prev_(ActiveSlot().exchange(&kScalarKernels)) {}

ScopedForceScalar::~ScopedForceScalar() {
  ActiveSlot().store(static_cast<const Kernels*>(prev_));
}

// --------------------------------------------------------------------------
// Public dispatched kernels
// --------------------------------------------------------------------------

double DotF64(const double* a, const double* b, size_t n) {
  return Active().dot(a, b, n);
}

double SumF64(const double* a, size_t n) { return Active().sum(a, n); }

double SumSqDiffF64(const double* a, size_t n, double center) {
  return Active().sum_sq_diff(a, n, center);
}

void MeanVarF64(const double* a, size_t n, double* mean, double* sum_sq_diff) {
  if (n == 0) {
    *mean = 0;
    *sum_sq_diff = 0;
    return;
  }
  *mean = SumF64(a, n) / static_cast<double>(n);
  *sum_sq_diff = SumSqDiffF64(a, n, *mean);
}

void PearsonAccumF64(const double* x, const double* y, size_t n, double mx,
                     double my, double* sxy, double* sxx, double* syy) {
  Active().pearson_accum(x, y, n, mx, my, sxy, sxx, syy);
}

double ClampedStepDotF64(const double* x, const double* g, double step,
                         double lo, double hi, double* cand, size_t n) {
  return Active().clamped_step_dot(x, g, step, lo, hi, cand, n);
}

void AxpyF64(double alpha, const double* x, double* y, size_t n) {
  Active().axpy(alpha, x, y, n);
}

void AddF64(double* y, const double* x, size_t n) { Active().add(y, x, n); }

void SubF64(double* y, const double* x, size_t n) { Active().sub(y, x, n); }

void CopyAddF64(double* dst, double* acc, const double* src, size_t n) {
  Active().copy_add(dst, acc, src, n);
}

void ClampedSubF64(double* out, const double* a, const double* b, size_t n) {
  Active().clamped_sub(out, a, b, n);
}

uint64_t AndPopcountU64(const uint64_t* a, const uint64_t* b, size_t n) {
  return Active().and_popcount(a, b, n);
}

// --------------------------------------------------------------------------
// Fused CoDA row helpers: backend-independent composition. The per-row
// fold is sequential in row order on every backend, each dot obeys the
// lane contract, and the libm calls (exp/log1p/expm1) see bit-identical
// inputs — so the whole helper is bit-identical SIMD-on vs SIMD-off.
// --------------------------------------------------------------------------

double SumLogEdgeProbF64(const double* x, const double* rows, size_t count,
                         size_t c, double min_dot) {
  const Kernels& k = Active();
  double obj = 0;
  for (size_t i = 0; i < count; ++i) {
    double d = k.dot(x, rows + i * c, c);
    if (d < min_dot) d = min_dot;
    obj += std::log1p(-std::exp(-d));
  }
  return obj;
}

void AccumExpm1RowsF64(const double* x, const double* rows, size_t count,
                       size_t c, double min_dot, double w_cap, double* grad) {
  const Kernels& k = Active();
  for (size_t i = 0; i < count; ++i) {
    const double* row = rows + i * c;
    double d = k.dot(x, row, c);
    if (d < min_dot) d = min_dot;
    double w = 1.0 / std::expm1(d);
    if (w > w_cap) w = w_cap;
    k.axpy(w, row, grad, c);
  }
}

}  // namespace cfnet::simd
