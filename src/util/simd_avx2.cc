// AVX2 kernel tier. This TU is the only one compiled with -mavx2 (see
// util/CMakeLists.txt), so the vector codegen cannot leak into portable
// code; a one-time __builtin_cpu_supports check gates dispatch at runtime.
// -mfma is deliberately NOT enabled: a contracted multiply-add would round
// differently from the scalar canonical forms and break bit-identity.
//
// Lane layout: the 16 virtual lanes live in four __m256d accumulators
// (accumulator q holds lanes 4q..4q+3); the main loops step 16 elements
// and the scalar tail continues the same lanes, exactly like the scalar
// canonical forms in simd.cc.

#include "util/simd.h"
#include "util/simd_internal.h"

#if defined(__AVX2__) && !defined(CFNET_DISABLE_SIMD)

#include <immintrin.h>

#include <bit>

namespace cfnet::simd::internal {
namespace {

double DotAvx2(const double* a, const double* b, size_t n) {
  __m256d acc[4];
  for (auto& v : acc) v = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (size_t q = 0; q < 4; ++q) {
      acc[q] = _mm256_add_pd(
          acc[q], _mm256_mul_pd(_mm256_loadu_pd(a + i + 4 * q),
                                _mm256_loadu_pd(b + i + 4 * q)));
    }
  }
  double lane[kVirtualLanes];
  for (size_t q = 0; q < 4; ++q) _mm256_storeu_pd(lane + 4 * q, acc[q]);
  for (; i < n; ++i) lane[i & 15] += a[i] * b[i];
  return CombineLanes(lane);
}

double SumAvx2(const double* a, size_t n) {
  __m256d acc[4];
  for (auto& v : acc) v = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (size_t q = 0; q < 4; ++q) {
      acc[q] = _mm256_add_pd(acc[q], _mm256_loadu_pd(a + i + 4 * q));
    }
  }
  double lane[kVirtualLanes];
  for (size_t q = 0; q < 4; ++q) _mm256_storeu_pd(lane + 4 * q, acc[q]);
  for (; i < n; ++i) lane[i & 15] += a[i];
  return CombineLanes(lane);
}

double SumSqDiffAvx2(const double* a, size_t n, double center) {
  const __m256d vc = _mm256_set1_pd(center);
  __m256d acc[4];
  for (auto& v : acc) v = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (size_t q = 0; q < 4; ++q) {
      const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(a + i + 4 * q), vc);
      acc[q] = _mm256_add_pd(acc[q], _mm256_mul_pd(d, d));
    }
  }
  double lane[kVirtualLanes];
  for (size_t q = 0; q < 4; ++q) _mm256_storeu_pd(lane + 4 * q, acc[q]);
  for (; i < n; ++i) {
    const double d = a[i] - center;
    lane[i & 15] += d * d;
  }
  return CombineLanes(lane);
}

void PearsonAccumAvx2(const double* x, const double* y, size_t n, double mx,
                      double my, double* sxy, double* sxx, double* syy) {
  const __m256d vmx = _mm256_set1_pd(mx);
  const __m256d vmy = _mm256_set1_pd(my);
  __m256d axy[4], axx[4], ayy[4];
  for (size_t q = 0; q < 4; ++q) {
    axy[q] = _mm256_setzero_pd();
    axx[q] = _mm256_setzero_pd();
    ayy[q] = _mm256_setzero_pd();
  }
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (size_t q = 0; q < 4; ++q) {
      const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(x + i + 4 * q), vmx);
      const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(y + i + 4 * q), vmy);
      axy[q] = _mm256_add_pd(axy[q], _mm256_mul_pd(dx, dy));
      axx[q] = _mm256_add_pd(axx[q], _mm256_mul_pd(dx, dx));
      ayy[q] = _mm256_add_pd(ayy[q], _mm256_mul_pd(dy, dy));
    }
  }
  double lxy[kVirtualLanes], lxx[kVirtualLanes], lyy[kVirtualLanes];
  for (size_t q = 0; q < 4; ++q) {
    _mm256_storeu_pd(lxy + 4 * q, axy[q]);
    _mm256_storeu_pd(lxx + 4 * q, axx[q]);
    _mm256_storeu_pd(lyy + 4 * q, ayy[q]);
  }
  for (; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    lxy[i & 15] += dx * dy;
    lxx[i & 15] += dx * dx;
    lyy[i & 15] += dy * dy;
  }
  *sxy = CombineLanes(lxy);
  *sxx = CombineLanes(lxx);
  *syy = CombineLanes(lyy);
}

double ClampedStepDotAvx2(const double* x, const double* g, double step,
                          double lo, double hi, double* cand, size_t n) {
  const __m256d vstep = _mm256_set1_pd(step);
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  __m256d acc[4];
  for (auto& v : acc) v = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (size_t q = 0; q < 4; ++q) {
      const __m256d vx = _mm256_loadu_pd(x + i + 4 * q);
      const __m256d vg = _mm256_loadu_pd(g + i + 4 * q);
      // MAXPD/MINPD return the second operand on NaN — the same
      // compare-select semantics the scalar canonical form spells out.
      __m256d t = _mm256_add_pd(vx, _mm256_mul_pd(vstep, vg));
      t = _mm256_max_pd(t, vlo);
      t = _mm256_min_pd(t, vhi);
      _mm256_storeu_pd(cand + i + 4 * q, t);
      acc[q] = _mm256_add_pd(acc[q], _mm256_mul_pd(vg, _mm256_sub_pd(t, vx)));
    }
  }
  double lane[kVirtualLanes];
  for (size_t q = 0; q < 4; ++q) _mm256_storeu_pd(lane + 4 * q, acc[q]);
  for (; i < n; ++i) {
    double t = x[i] + step * g[i];
    t = (t > lo) ? t : lo;
    t = (t < hi) ? t : hi;
    cand[i] = t;
    lane[i & 15] += g[i] * (t - x[i]);
  }
  return CombineLanes(lane);
}

void AxpyAvx2(double alpha, const double* x, double* y, size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(va, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void AddAvx2(double* y, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void SubAvx2(double* y, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_sub_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

void CopyAddAvx2(double* dst, double* acc, const double* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d s = _mm256_loadu_pd(src + i);
    _mm256_storeu_pd(dst + i, s);
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i), s));
  }
  for (; i < n; ++i) {
    dst[i] = src[i];
    acc[i] += src[i];
  }
}

void ClampedSubAvx2(double* out, const double* a, const double* b, size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    _mm256_storeu_pd(out + i, _mm256_max_pd(t, zero));
  }
  for (; i < n; ++i) {
    const double t = a[i] - b[i];
    out[i] = (t > 0.0) ? t : 0.0;
  }
}

/// Nibble-LUT popcount (VPSHUFB) with per-128-bit-lane byte sums folded
/// into 64-bit counters via VPSADBW — integer-exact, so unconstrained by
/// the lane contract.
uint64_t AndPopcountAvx2(const uint64_t* a, const uint64_t* b, size_t n) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, zero));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) s += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
  return s;
}

const Kernels kAvx2Kernels = {
    "avx2",
    DotAvx2,
    SumAvx2,
    SumSqDiffAvx2,
    PearsonAccumAvx2,
    ClampedStepDotAvx2,
    AxpyAvx2,
    AddAvx2,
    SubAvx2,
    CopyAddAvx2,
    ClampedSubAvx2,
    AndPopcountAvx2,
};

}  // namespace

const Kernels* GetAvx2Kernels() {
  static const bool supported = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx2") != 0;
  }();
  return supported ? &kAvx2Kernels : nullptr;
}

}  // namespace cfnet::simd::internal

#else  // !__AVX2__ || CFNET_DISABLE_SIMD

namespace cfnet::simd::internal {
const Kernels* GetAvx2Kernels() { return nullptr; }
}  // namespace cfnet::simd::internal

#endif
