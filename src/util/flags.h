#ifndef CFNET_UTIL_FLAGS_H_
#define CFNET_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace cfnet {

/// Tiny `--key=value` / `--flag` command-line parser for the example and
/// benchmark binaries. Unrecognized positional arguments are ignored.
class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  bool Has(const std::string& key) const { return flags_.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

 private:
  std::map<std::string, std::string> flags_;
};

}  // namespace cfnet

#endif  // CFNET_UTIL_FLAGS_H_
