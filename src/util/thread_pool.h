#ifndef CFNET_UTIL_THREAD_POOL_H_
#define CFNET_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace cfnet {

/// Fixed-size worker pool used by the dataflow engine and the crawler.
///
/// Tasks are arbitrary void() callables; `Submit` additionally returns a
/// future for result/ exception-free completion tracking. `RunBulk` runs an
/// indexed task set through a single shared work-claiming loop. Destruction
/// joins all workers after draining the queue.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Schedule(std::function<void()> task);

  /// Enqueues a task and returns a future completed when it finishes.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    Schedule([task]() { (*task)(); });
    return fut;
  }

  /// Runs fn(0..n-1) and blocks until all complete. One shared state (an
  /// atomic claim counter + a completion latch) serves the whole batch
  /// instead of n queued closures; up to num_threads() helper tasks join in,
  /// and the caller participates in the claim loop too ("caller runs"), so
  /// the batch always makes progress even when invoked from inside a pool
  /// worker with every other worker busy — nested bulk runs cannot deadlock.
  ///
  /// If any fn(i) throws, the first exception is rethrown in the caller
  /// after the batch drains; indices claimed after the failure are skipped.
  void RunBulk(size_t n, const std::function<void(size_t)>& fn);

  /// Blocks until the queue is empty and all in-flight tasks finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// A sensible default parallelism: hardware_concurrency clamped to >= 1.
  static size_t DefaultParallelism();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signaled when work arrives / shutdown
  std::condition_variable idle_cv_;   // signaled when the pool may be idle
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cfnet

#endif  // CFNET_UTIL_THREAD_POOL_H_
