#ifndef CFNET_UTIL_RNG_H_
#define CFNET_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cfnet {

/// SplitMix64 finalizer: a fast, statistically strong 64-bit bit mixer.
/// Use for stateless per-index hashes (e.g. the dataflow engine's
/// partition-count-independent sampling decisions). Mix64(0) == 0, so salt
/// the input when zero inputs are possible.
uint64_t Mix64(uint64_t x);

/// Deterministic pseudo-random source (xoshiro256** seeded via SplitMix64)
/// plus the sampling distributions used across the synthetic-world generator
/// and the analyses. Every stochastic component in cfnet draws from an Rng
/// with an explicit seed, so all experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Uniform 64-bit word.
  uint64_t Next();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Exponential with rate lambda (> 0).
  double Exponential(double lambda);

  /// Geometric number of failures before first success, success prob p in (0,1].
  int64_t Geometric(double p);

  /// Poisson-distributed count with the given mean (>= 0).
  /// Uses Knuth's method for small means and normal approximation above 64.
  int64_t Poisson(double mean);

  /// Zipf-distributed rank in [1, n] with exponent s >= 0.
  /// Uses rejection-inversion (Hormann & Derflinger) so it is O(1) per draw.
  int64_t Zipf(int64_t n, double s);

  /// Discrete power-law sample in [xmin, xmax] with exponent alpha > 1,
  /// P(x) proportional to x^-alpha, via continuous inversion + rounding.
  int64_t PowerLaw(int64_t xmin, int64_t xmax, double alpha);

  /// Samples an index in [0, weights.size()) proportional to weights.
  /// Zero/negative weights are treated as zero. Requires some positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator (for per-thread / per-entity
  /// streams that must not correlate with the parent).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace cfnet

#endif  // CFNET_UTIL_RNG_H_
