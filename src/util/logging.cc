#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace cfnet {
namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

}  // namespace

void SetMinLogLevel(LogLevel level) { g_min_level.store(level); }
LogLevel MinLogLevel() { return g_min_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fputs(stream_.str().c_str(), stderr);
    std::fputc('\n', stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace cfnet
