#include "util/circuit_breaker.h"

#include <algorithm>

namespace cfnet::util {

bool CircuitBreaker::AllowRequest(int64_t now_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_micros < open_until_micros_) return false;
      state_ = State::kHalfOpen;
      half_open_admitted_ = 0;
      half_open_successes_ = 0;
      [[fallthrough]];
    case State::kHalfOpen:
      if (half_open_admitted_ >= config_.half_open_probes) return false;
      ++half_open_admitted_;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    if (++half_open_successes_ >= config_.half_open_probes) {
      state_ = State::kClosed;
      consecutive_failures_ = 0;
    }
    return;
  }
  consecutive_failures_ = 0;
}

void CircuitBreaker::RecordFailure(int64_t now_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    // A failed probe re-opens immediately for another cooldown.
    state_ = State::kOpen;
    open_until_micros_ =
        std::max(open_until_micros_, now_micros + config_.cooldown_micros);
    trips_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (state_ == State::kOpen) return;  // racing worker, already open
  if (++consecutive_failures_ >= config_.failure_threshold) {
    state_ = State::kOpen;
    open_until_micros_ = now_micros + config_.cooldown_micros;
    consecutive_failures_ = 0;
    trips_.fetch_add(1, std::memory_order_relaxed);
  }
}

void CircuitBreaker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  half_open_admitted_ = 0;
  half_open_successes_ = 0;
  open_until_micros_ = 0;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int64_t CircuitBreaker::open_until_micros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_until_micros_;
}

}  // namespace cfnet::util
