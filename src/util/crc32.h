#ifndef CFNET_UTIL_CRC32_H_
#define CFNET_UTIL_CRC32_H_

#include <cstdint>
#include <string_view>

namespace cfnet {

/// CRC-32 (IEEE 802.3 polynomial, the HDFS default block checksum).
///
/// Dispatches to a hardware-accelerated path when one is available:
/// carry-less-multiply folding (PCLMULQDQ) on x86-64, the ARMv8 `crc32`
/// instructions on aarch64. Both are bit-identical to the table fallback —
/// footers and block checksums written by either path verify under the
/// other (pinned by the differential test in util_misc_test). Build with
/// -DCFNET_DISABLE_HW_CRC=ON to force the table path everywhere.
uint32_t Crc32(std::string_view data);

/// Incremental form: feed chunks with the previous return value.
uint32_t Crc32Update(uint32_t crc, std::string_view data);

/// Portable slice-by-8 table implementation — the reference the hardware
/// paths are differential-tested against (and the fallback baseline for the
/// CRC micro-bench in bench_durability).
uint32_t Crc32FallbackUpdate(uint32_t crc, std::string_view data);

/// True when this process dispatches large inputs to a hardware CRC path
/// (compile-time support present, runtime CPU check passed, and the build
/// did not force the fallback).
bool Crc32HardwareEnabled();

}  // namespace cfnet

#endif  // CFNET_UTIL_CRC32_H_
