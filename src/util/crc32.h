#ifndef CFNET_UTIL_CRC32_H_
#define CFNET_UTIL_CRC32_H_

#include <cstdint>
#include <string_view>

namespace cfnet {

/// CRC-32 (IEEE 802.3 polynomial, the HDFS default block checksum).
uint32_t Crc32(std::string_view data);

/// Incremental form: feed chunks with the previous return value.
uint32_t Crc32Update(uint32_t crc, std::string_view data);

}  // namespace cfnet

#endif  // CFNET_UTIL_CRC32_H_
