#ifndef CFNET_UTIL_STATUS_H_
#define CFNET_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace cfnet {

/// Canonical error codes, modeled after the absl/RocksDB status idiom.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kUnavailable,
  kInternal,
  kCorruption,
  kIOError,
  kUnimplemented,
  kAborted,
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for `code` ("OK", "NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

/// Value type carrying either success or an error code plus message.
///
/// cfnet never throws across public API boundaries; fallible operations
/// return `Status` (or `Result<T>` when they also produce a value).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status out of the enclosing function.
#define CFNET_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::cfnet::Status _cfnet_status = (expr);          \
    if (!_cfnet_status.ok()) return _cfnet_status;   \
  } while (0)

}  // namespace cfnet

#endif  // CFNET_UTIL_STATUS_H_
