#include "util/flags.h"

#include <cstdlib>
#include <string_view>

#include "util/string_util.h"

namespace cfnet {

FlagParser::FlagParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!StartsWith(arg, "--")) continue;
    arg.remove_prefix(2);
    size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      flags_[std::string(arg)] = "true";
    } else {
      flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

std::string FlagParser::GetString(const std::string& key,
                                  const std::string& default_value) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? default_value : it->second;
}

int64_t FlagParser::GetInt(const std::string& key, int64_t default_value) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& key, double default_value) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& key, bool default_value) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return default_value;
  const std::string v = ToLower(it->second);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace cfnet
