#ifndef CFNET_DATAFLOW_NARROW_CHAIN_H_
#define CFNET_DATAFLOW_NARROW_CHAIN_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "dataflow/context.h"

namespace cfnet::dataflow::internal_chain {

/// A morsel's worth of elements flowing between fused operators. `idx` holds
/// each element's stable 64-bit stream index — derived from its global
/// position in the *source* dataset (mixed through FlatMap expansions), so
/// it does not depend on partitioning or morsel boundaries. Operators fill
/// `idx` only when a downstream consumer (Sample) requested it.
template <typename T>
struct Batch {
  std::vector<T> vals;
  std::vector<uint64_t> idx;
};

/// A fused chain of narrow operators (Map/Filter/FlatMap/Sample) over a
/// type-erased source dataset. Each operator is a batch kernel: a tight,
/// inlinable loop over its parent's output buffer (or directly over the
/// source partition for the first operator), so fusion never pays per-element
/// virtual dispatch. Extending the chain composes kernels; executing it runs
/// the whole chain once per morsel with no intermediate partition
/// materialization.
template <typename T>
struct NarrowChain {
  /// Forces the source dataset's materialization (thread-safe, memoized).
  std::function<void()> materialize_source;
  /// Per-partition element counts of the materialized source.
  std::function<std::vector<size_t>()> source_sizes;
  /// Fills `out` (assumed empty) with the chain's output for source rows
  /// [begin, end) of partition p; `idx0` is the global stream index of the
  /// row at `begin`. When `want_idx`, also fills `out.idx`.
  std::function<void(size_t p, size_t begin, size_t end, uint64_t idx0,
                     bool want_idx, Batch<T>& out)>
      run;
  /// Non-null only on a bare source chain: direct access to partition p of
  /// the materialized source, letting the first fused operator loop over
  /// source rows in place instead of through a copied batch.
  std::function<const std::vector<T>*(size_t p)> source_part;
  size_t num_partitions = 0;
  /// Number of narrow operators fused into this chain (0 for a bare source).
  size_t fused_ops = 0;
};

/// Executes a fused narrow stage morsel-by-morsel: splits source partitions
/// into fixed-size morsels, runs the whole chain over each morsel on the
/// context pool (dynamic claiming balances skewed partitions), then
/// reassembles per-partition outputs in source order. Exactly one engine
/// stage regardless of chain length.
template <typename T>
std::vector<std::vector<T>> ExecuteNarrowStage(ExecutionContext& ctx,
                                               const NarrowChain<T>& chain) {
  auto start = std::chrono::steady_clock::now();
  chain.materialize_source();
  const std::vector<size_t> sizes = chain.source_sizes();
  const size_t np = sizes.size();

  std::vector<uint64_t> base(np + 1, 0);
  for (size_t p = 0; p < np; ++p) base[p + 1] = base[p] + sizes[p];

  struct Morsel {
    size_t p;
    size_t begin;
    size_t end;
  };
  // Morsel splitting exists to let idle workers steal slices of skewed
  // partitions; with a single worker (or no partition above the morsel
  // size) it would only add a reassembly pass, so each partition stays one
  // morsel and its chunk is moved into place without copying.
  const size_t morsel_size = ctx.parallelism() > 1
                                 ? std::max<size_t>(1, ctx.morsel_size())
                                 : static_cast<size_t>(-1);
  std::vector<Morsel> morsels;
  std::vector<size_t> first_chunk(np + 1, 0);
  for (size_t p = 0; p < np; ++p) {
    first_chunk[p] = morsels.size();
    for (size_t b = 0; b < sizes[p]; b += morsel_size) {
      morsels.push_back({p, b, std::min(sizes[p], b + morsel_size)});
      if (sizes[p] - b <= morsel_size) break;  // avoid b += overflow
    }
  }
  first_chunk[np] = morsels.size();

  std::vector<std::vector<T>> chunks(morsels.size());
  ctx.pool().RunBulk(morsels.size(), [&](size_t m) {
    const Morsel& mo = morsels[m];
    Batch<T> out;
    chain.run(mo.p, mo.begin, mo.end, base[mo.p] + mo.begin,
              /*want_idx=*/false, out);
    chunks[m] = std::move(out.vals);
  });

  std::vector<std::vector<T>> result(np);
  ctx.pool().RunBulk(np, [&](size_t p) {
    const size_t fc = first_chunk[p];
    const size_t lc = first_chunk[p + 1];
    if (lc == fc) return;
    if (lc - fc == 1) {
      result[p] = std::move(chunks[fc]);
      return;
    }
    size_t total = 0;
    for (size_t c = fc; c < lc; ++c) total += chunks[c].size();
    result[p].reserve(total);
    for (size_t c = fc; c < lc; ++c) {
      result[p].insert(result[p].end(),
                       std::make_move_iterator(chunks[c].begin()),
                       std::make_move_iterator(chunks[c].end()));
    }
  });

  auto elapsed = std::chrono::steady_clock::now() - start;
  EngineMetrics& m = ctx.metrics();
  m.stages_run.fetch_add(1, std::memory_order_relaxed);
  m.tasks_launched.fetch_add(morsels.size(), std::memory_order_relaxed);
  m.fused_ops.fetch_add(chain.fused_ops, std::memory_order_relaxed);
  m.morsels_run.fetch_add(morsels.size(), std::memory_order_relaxed);
  m.stage_wall_ns.fetch_add(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()),
      std::memory_order_relaxed);
  return result;
}

}  // namespace cfnet::dataflow::internal_chain

#endif  // CFNET_DATAFLOW_NARROW_CHAIN_H_
