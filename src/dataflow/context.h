#ifndef CFNET_DATAFLOW_CONTEXT_H_
#define CFNET_DATAFLOW_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "util/thread_pool.h"

namespace cfnet::dataflow {

/// Counters the engine exposes for benchmarking (tasks launched, records
/// moved through shuffles).
struct EngineMetrics {
  std::atomic<uint64_t> tasks_launched{0};
  std::atomic<uint64_t> shuffle_records{0};
  std::atomic<uint64_t> stages_run{0};
};

/// Execution context for the MiniSpark engine: owns the worker pool and
/// default partitioning, and carries engine metrics. Datasets created from
/// the same context share its pool.
class ExecutionContext {
 public:
  /// `parallelism` worker threads; `default_partitions` defaults to the
  /// same value when 0.
  explicit ExecutionContext(size_t parallelism = ThreadPool::DefaultParallelism(),
                            size_t default_partitions = 0)
      : pool_(parallelism),
        default_partitions_(default_partitions == 0 ? parallelism
                                                    : default_partitions) {}

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  size_t parallelism() const { return pool_.num_threads(); }
  size_t default_partitions() const { return default_partitions_; }
  EngineMetrics& metrics() { return metrics_; }

  /// Runs f(0..n-1) on the pool and blocks until all complete.
  /// Must be called from outside pool worker threads (the engine only
  /// drives evaluation from the caller's thread, so this holds).
  template <typename F>
  void RunParallel(size_t n, F&& f) {
    if (n == 0) return;
    metrics_.stages_run.fetch_add(1, std::memory_order_relaxed);
    if (n == 1) {
      metrics_.tasks_launched.fetch_add(1, std::memory_order_relaxed);
      f(size_t{0});
      return;
    }
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      metrics_.tasks_launched.fetch_add(1, std::memory_order_relaxed);
      futures.push_back(pool_.Submit([&f, i]() { f(i); }));
    }
    for (auto& fut : futures) fut.get();
  }

 private:
  ThreadPool pool_;
  size_t default_partitions_;
  EngineMetrics metrics_;
};

}  // namespace cfnet::dataflow

#endif  // CFNET_DATAFLOW_CONTEXT_H_
