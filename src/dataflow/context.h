#ifndef CFNET_DATAFLOW_CONTEXT_H_
#define CFNET_DATAFLOW_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/thread_pool.h"

namespace cfnet::dataflow {

/// Counters the engine exposes for benchmarking (tasks launched, records
/// moved through shuffles, fused narrow stages and the morsels they ran as).
struct EngineMetrics {
  std::atomic<uint64_t> tasks_launched{0};
  std::atomic<uint64_t> shuffle_records{0};
  std::atomic<uint64_t> stages_run{0};
  /// Narrow operators executed inside fused stages (a Map→Filter→Map chain
  /// contributes 3 here but only 1 to stages_run).
  std::atomic<uint64_t> fused_ops{0};
  /// Morsels dispatched by the morsel-driven stage executor.
  std::atomic<uint64_t> morsels_run{0};
  /// Summed wall time of fused narrow stages, nanoseconds.
  std::atomic<uint64_t> stage_wall_ns{0};

  void Reset() {
    tasks_launched.store(0, std::memory_order_relaxed);
    shuffle_records.store(0, std::memory_order_relaxed);
    stages_run.store(0, std::memory_order_relaxed);
    fused_ops.store(0, std::memory_order_relaxed);
    morsels_run.store(0, std::memory_order_relaxed);
    stage_wall_ns.store(0, std::memory_order_relaxed);
  }
};

/// Execution context for the MiniSpark engine: owns the worker pool and
/// default partitioning, and carries engine metrics. Datasets created from
/// the same context share its pool.
class ExecutionContext {
 public:
  /// Partitions larger than this many elements are split into morsels of
  /// this size by the fused-stage executor for dynamic load balancing.
  static constexpr size_t kDefaultMorselSize = 32768;

  /// `parallelism` worker threads; `default_partitions` defaults to the
  /// same value when 0.
  explicit ExecutionContext(size_t parallelism = ThreadPool::DefaultParallelism(),
                            size_t default_partitions = 0)
      : pool_(parallelism),
        default_partitions_(default_partitions == 0 ? parallelism
                                                    : default_partitions) {}

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  size_t parallelism() const { return pool_.num_threads(); }
  size_t default_partitions() const { return default_partitions_; }
  EngineMetrics& metrics() { return metrics_; }
  ThreadPool& pool() { return pool_; }

  size_t morsel_size() const { return morsel_size_; }
  void set_morsel_size(size_t elements) {
    morsel_size_ = elements == 0 ? kDefaultMorselSize : elements;
  }

  /// Runs f(0..n-1) on the pool and blocks until all complete. The caller
  /// participates in executing the batch (ThreadPool::RunBulk), so this is
  /// safe to invoke from inside a pool worker — nested dataset evaluation
  /// cannot deadlock.
  template <typename F>
  void RunParallel(size_t n, F&& f) {
    if (n == 0) return;
    metrics_.stages_run.fetch_add(1, std::memory_order_relaxed);
    metrics_.tasks_launched.fetch_add(n, std::memory_order_relaxed);
    pool_.RunBulk(n, std::forward<F>(f));
  }

 private:
  ThreadPool pool_;
  size_t default_partitions_;
  size_t morsel_size_ = kDefaultMorselSize;
  EngineMetrics metrics_;
};

}  // namespace cfnet::dataflow

#endif  // CFNET_DATAFLOW_CONTEXT_H_
