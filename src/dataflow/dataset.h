#ifndef CFNET_DATAFLOW_DATASET_H_
#define CFNET_DATAFLOW_DATASET_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "dataflow/context.h"
#include "dataflow/narrow_chain.h"
#include "util/logging.h"
#include "util/rng.h"

namespace cfnet::dataflow {

/// A dataset's physical layout: one vector per partition.
template <typename T>
using Partitions = std::vector<std::vector<T>>;

namespace internal_dataset {

/// Lazily-computed, memoized partitioned collection (the RDD analogue).
/// `compute` runs at most once, on the first action; narrow transformations
/// extend a fused per-element chain (executed as a single morsel-driven
/// stage), wide ones insert a hash shuffle.
template <typename T>
struct Impl {
  std::shared_ptr<ExecutionContext> ctx;
  size_t num_partitions = 1;
  std::function<Partitions<T>()> compute;
  std::once_flag once;
  Partitions<T> data;
  /// The fused narrow pipeline this impl's compute executes, when the impl
  /// is a narrow transformation. Further narrow ops extend it (re-running it
  /// from the source on their own evaluation, Spark-style) instead of
  /// materializing this impl.
  std::shared_ptr<internal_chain::NarrowChain<T>> chain;
  /// Set once `data` is valid; downstream ops then read `data` directly
  /// instead of re-running `chain`.
  std::atomic<bool> materialized{false};
  /// Set by Dataset::Cache(): downstream narrow ops must materialize here
  /// rather than fuse past this impl.
  std::atomic<bool> cache_pinned{false};

  const Partitions<T>& Materialize() {
    std::call_once(once, [this]() {
      data = compute();
      compute = nullptr;  // release captured parents
      materialized.store(true, std::memory_order_release);
    });
    return data;
  }
};

}  // namespace internal_dataset

/// Lazy, partitioned, parallel collection — the MiniSpark analogue of an
/// RDD/Dataset. All transformations are lazy and memoized: the pipeline
/// executes once, on the first action (`Collect`, `Count`, ...), in parallel
/// across partitions on the context's thread pool.
///
/// Chained narrow transformations (Map/Filter/FlatMap/Sample) fuse into a
/// single stage: one pass per partition morsel, one output allocation, no
/// intermediate partitions. Wide (shuffle) operations and `Cache()` are the
/// materialization boundaries. A consequence of fusion: an *unmaterialized*
/// narrow dataset used by several downstream pipelines is recomputed from
/// its source by each of them (as in Spark) — call `Cache()` on it to pin a
/// shared materialization instead.
///
/// Copying a Dataset is cheap (shared immutable state). Element types must
/// be copyable; key types used in wide operations additionally need
/// std::hash and operator==.
template <typename T>
class Dataset {
 public:
  /// Internal: wraps an implementation node. Use `FromVector` or a
  /// transformation to create datasets.
  explicit Dataset(std::shared_ptr<internal_dataset::Impl<T>> impl)
      : impl_(std::move(impl)) {}

  Dataset(const Dataset&) = default;
  Dataset& operator=(const Dataset&) = default;

  /// Creates a dataset by range-partitioning `data` into
  /// `num_partitions` (0 = context default) chunks.
  static Dataset FromVector(std::shared_ptr<ExecutionContext> ctx,
                            std::vector<T> data, size_t num_partitions = 0) {
    CFNET_CHECK(ctx != nullptr);
    size_t np = num_partitions == 0 ? ctx->default_partitions() : num_partitions;
    np = std::max<size_t>(1, np);
    auto impl = std::make_shared<internal_dataset::Impl<T>>();
    impl->ctx = ctx;
    impl->num_partitions = np;
    auto shared = std::make_shared<std::vector<T>>(std::move(data));
    impl->compute = [shared, np]() {
      Partitions<T> parts(np);
      size_t n = shared->size();
      size_t base = n / np;
      size_t extra = n % np;
      size_t offset = 0;
      for (size_t p = 0; p < np; ++p) {
        size_t len = base + (p < extra ? 1 : 0);
        parts[p].assign(shared->begin() + offset, shared->begin() + offset + len);
        offset += len;
      }
      return parts;
    };
    return Dataset(std::move(impl));
  }

  /// Creates a dataset directly from pre-built partitions, keeping their
  /// layout as-is (no repartition pass). This is how parallel scans hand
  /// their per-range outputs to the dataflow layer. An empty `parts` becomes
  /// one empty partition.
  static Dataset FromPartitions(std::shared_ptr<ExecutionContext> ctx,
                                Partitions<T> parts) {
    CFNET_CHECK(ctx != nullptr);
    if (parts.empty()) parts.emplace_back();
    auto impl = std::make_shared<internal_dataset::Impl<T>>();
    impl->ctx = ctx;
    impl->num_partitions = parts.size();
    auto shared = std::make_shared<Partitions<T>>(std::move(parts));
    impl->compute = [shared]() { return std::move(*shared); };
    return Dataset(std::move(impl));
  }

  std::shared_ptr<ExecutionContext> context() const { return impl_->ctx; }
  size_t num_partitions() const { return impl_->num_partitions; }

  /// --- narrow transformations -------------------------------------------
  /// Each of these extends the fused chain: evaluation runs the whole chain
  /// in one morsel-driven stage with a single output allocation.

  /// Element-wise transform.
  template <typename F>
  auto Map(F f) const -> Dataset<std::decay_t<std::invoke_result_t<F, const T&>>> {
    using U = std::decay_t<std::invoke_result_t<F, const T&>>;
    auto pchain = ChainFor(impl_);
    auto chain = std::make_shared<internal_chain::NarrowChain<U>>();
    InheritSource(*chain, *pchain);
    if (auto src = pchain->source_part) {
      chain->run = [src, f](size_t p, size_t begin, size_t end, uint64_t idx0,
                            bool want_idx, internal_chain::Batch<U>& out) {
        const std::vector<T>& part = *src(p);
        out.vals.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) out.vals.push_back(f(part[i]));
        if (want_idx) FillDenseIdx(out.idx, idx0, end - begin);
      };
    } else {
      chain->run = [pchain, f](size_t p, size_t begin, size_t end,
                               uint64_t idx0, bool want_idx,
                               internal_chain::Batch<U>& out) {
        internal_chain::Batch<T> in;
        pchain->run(p, begin, end, idx0, want_idx, in);
        if constexpr (std::is_same_v<T, U>) {
          // 1:1 same-type transform: reuse the parent's buffer in place.
          for (T& x : in.vals) x = f(std::as_const(x));
          out.vals = std::move(in.vals);
        } else {
          out.vals.reserve(in.vals.size());
          for (const T& x : in.vals) out.vals.push_back(f(x));
        }
        out.idx = std::move(in.idx);
      };
    }
    return Dataset<U>(MakeChained<U>(impl_->ctx, chain));
  }

  /// Keeps elements satisfying `pred`.
  template <typename F>
  Dataset<T> Filter(F pred) const {
    auto pchain = ChainFor(impl_);
    auto chain = std::make_shared<internal_chain::NarrowChain<T>>();
    InheritSource(*chain, *pchain);
    if (auto src = pchain->source_part) {
      chain->run = [src, pred](size_t p, size_t begin, size_t end,
                               uint64_t idx0, bool want_idx,
                               internal_chain::Batch<T>& out) {
        const std::vector<T>& part = *src(p);
        out.vals.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) {
          if (pred(part[i])) {
            out.vals.push_back(part[i]);
            if (want_idx) out.idx.push_back(idx0 + (i - begin));
          }
        }
      };
    } else {
      chain->run = [pchain, pred](size_t p, size_t begin, size_t end,
                                  uint64_t idx0, bool want_idx,
                                  internal_chain::Batch<T>& out) {
        internal_chain::Batch<T> in;
        pchain->run(p, begin, end, idx0, want_idx, in);
        CompactBatch(in, [&pred](const T& x, uint64_t) { return pred(x); },
                     want_idx);
        out = std::move(in);
      };
    }
    return Dataset<T>(MakeChained<T>(impl_->ctx, chain));
  }

  /// Expands each element into zero or more outputs; `f` returns any
  /// iterable container of the output type.
  template <typename F>
  auto FlatMap(F f) const
      -> Dataset<typename std::decay_t<std::invoke_result_t<F, const T&>>::value_type> {
    using C = std::decay_t<std::invoke_result_t<F, const T&>>;
    using U = typename C::value_type;
    auto pchain = ChainFor(impl_);
    auto chain = std::make_shared<internal_chain::NarrowChain<U>>();
    InheritSource(*chain, *pchain);
    // Children get stream indices derived from the parent's, so downstream
    // Sample stays partition-count independent.
    auto expand = [f](const T& x, uint64_t idx, bool want_idx,
                      internal_chain::Batch<U>& out) {
      C items = f(x);
      uint64_t child = Mix64(idx + 0x9e3779b97f4a7c15ull);
      for (auto& item : items) {
        out.vals.push_back(std::move(item));
        if (want_idx) out.idx.push_back(child++);
      }
    };
    if (auto src = pchain->source_part) {
      chain->run = [src, expand](size_t p, size_t begin, size_t end,
                                 uint64_t idx0, bool want_idx,
                                 internal_chain::Batch<U>& out) {
        const std::vector<T>& part = *src(p);
        for (size_t i = begin; i < end; ++i) {
          expand(part[i], idx0 + (i - begin), want_idx, out);
        }
      };
    } else {
      chain->run = [pchain, expand](size_t p, size_t begin, size_t end,
                                    uint64_t idx0, bool want_idx,
                                    internal_chain::Batch<U>& out) {
        internal_chain::Batch<T> in;
        pchain->run(p, begin, end, idx0, want_idx, in);
        for (size_t i = 0; i < in.vals.size(); ++i) {
          expand(in.vals[i], want_idx ? in.idx[i] : 0, want_idx, out);
        }
      };
    }
    return Dataset<U>(MakeChained<U>(impl_->ctx, chain));
  }

  /// Bernoulli sample of roughly `fraction` of the elements. Each element's
  /// decision hashes (seed, stable stream index), so the sampled set is
  /// deterministic per seed and independent of `num_partitions`.
  Dataset<T> Sample(double fraction, uint64_t seed) const {
    auto pchain = ChainFor(impl_);
    auto chain = std::make_shared<internal_chain::NarrowChain<T>>();
    InheritSource(*chain, *pchain);
    const uint64_t salt = Mix64(seed + 0x9e3779b97f4a7c15ull);
    auto keep = [fraction, salt](uint64_t idx) {
      uint64_t h = Mix64(idx ^ salt);
      return static_cast<double>(h >> 11) * 0x1.0p-53 < fraction;
    };
    if (auto src = pchain->source_part) {
      chain->run = [src, keep](size_t p, size_t begin, size_t end,
                               uint64_t idx0, bool want_idx,
                               internal_chain::Batch<T>& out) {
        const std::vector<T>& part = *src(p);
        for (size_t i = begin; i < end; ++i) {
          uint64_t idx = idx0 + (i - begin);
          if (keep(idx)) {
            out.vals.push_back(part[i]);
            if (want_idx) out.idx.push_back(idx);
          }
        }
      };
    } else {
      chain->run = [pchain, keep](size_t p, size_t begin, size_t end,
                                  uint64_t idx0, bool want_idx,
                                  internal_chain::Batch<T>& out) {
        internal_chain::Batch<T> in;
        // The decision hashes the stream index, so the parent must produce
        // indices even when our own consumer does not need them.
        pchain->run(p, begin, end, idx0, /*want_idx=*/true, in);
        CompactBatch(in, [&keep](const T&, uint64_t idx) { return keep(idx); },
                     /*have_idx=*/true);
        if (!want_idx) in.idx.clear();
        out = std::move(in);
      };
    }
    return Dataset<T>(MakeChained<T>(impl_->ctx, chain));
  }

  /// Concatenation (partitions of both inputs are preserved).
  Dataset<T> Union(const Dataset<T>& other) const {
    auto a = impl_;
    auto b = other.impl_;
    auto out = std::make_shared<internal_dataset::Impl<T>>();
    out->ctx = a->ctx;
    out->num_partitions = a->num_partitions + b->num_partitions;
    out->compute = [a, b]() {
      const auto& pa = a->Materialize();
      const auto& pb = b->Materialize();
      Partitions<T> result;
      result.reserve(pa.size() + pb.size());
      for (const auto& p : pa) result.push_back(p);
      for (const auto& p : pb) result.push_back(p);
      return result;
    };
    return Dataset<T>(std::move(out));
  }

  /// Marks this dataset as an explicit materialization point: downstream
  /// narrow transformations read its memoized partitions instead of fusing
  /// past it (and re-running its chain from the source once per consumer).
  /// Use before branching an expensive narrow pipeline into multiple
  /// downstream pipelines. Returns *this; materialization still happens
  /// lazily on the first action.
  Dataset<T> Cache() const {
    impl_->cache_pinned.store(true, std::memory_order_release);
    return *this;
  }

  /// --- wide transformations (shuffle) -------------------------------------

  /// Deduplicates (hash shuffle so equal elements meet in one partition).
  /// First occurrence order within a partition is retained.
  Dataset<T> Distinct(size_t num_partitions = 0) const {
    auto parent = impl_;
    size_t np = num_partitions == 0 ? parent->num_partitions : num_partitions;
    auto out = std::make_shared<internal_dataset::Impl<T>>();
    out->ctx = parent->ctx;
    out->num_partitions = np;
    out->compute = [parent, np]() {
      Partitions<T> shuffled = ShuffleBy(
          parent->ctx.get(), parent->Materialize(), np,
          [](const T& x) { return std::hash<T>{}(x); });
      Partitions<T> result(np);
      parent->ctx->RunParallel(np, [&](size_t p) {
        std::unordered_set<T> seen;
        seen.reserve(shuffled[p].size());
        for (T& x : shuffled[p]) {
          if (seen.insert(x).second) result[p].push_back(std::move(x));
        }
      });
      return result;
    };
    return Dataset<T>(std::move(out));
  }

  /// Rebalances into `n` partitions (round-robin), in parallel across the
  /// output partitions.
  Dataset<T> Repartition(size_t n) const {
    CFNET_CHECK(n > 0);
    auto parent = impl_;
    auto out = std::make_shared<internal_dataset::Impl<T>>();
    out->ctx = parent->ctx;
    out->num_partitions = n;
    out->compute = [parent, n]() {
      const auto& in = parent->Materialize();
      std::vector<uint64_t> offsets(in.size() + 1, 0);
      for (size_t p = 0; p < in.size(); ++p) {
        offsets[p + 1] = offsets[p] + in[p].size();
      }
      const uint64_t total = offsets.back();
      Partitions<T> result(n);
      // Each output partition r owns global indices r, r+n, r+2n, ... ; a
      // cursor over the input partitions makes the walk O(total/n + #parts).
      parent->ctx->RunParallel(n, [&](size_t r) {
        const uint64_t count = total > r ? (total - r - 1) / n + 1 : 0;
        result[r].reserve(count);
        size_t p = 0;
        for (uint64_t g = r; g < total; g += n) {
          while (offsets[p + 1] <= g) ++p;
          result[r].push_back(in[p][g - offsets[p]]);
        }
      });
      return result;
    };
    return Dataset<T>(std::move(out));
  }

  /// --- actions -------------------------------------------------------------

  /// Materializes and flattens to a single vector (partition order).
  std::vector<T> Collect() const {
    const auto& parts = impl_->Materialize();
    size_t total = 0;
    for (const auto& p : parts) total += p.size();
    std::vector<T> out;
    out.reserve(total);
    for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
    return out;
  }

  /// Number of elements.
  size_t Count() const {
    const auto& parts = impl_->Materialize();
    size_t total = 0;
    for (const auto& p : parts) total += p.size();
    return total;
  }

  /// Parallel fold with an associative, commutative `f` and identity.
  template <typename F>
  T Reduce(F f, T identity) const {
    const auto& parts = impl_->Materialize();
    std::vector<T> partials(parts.size(), identity);
    impl_->ctx->RunParallel(parts.size(), [&](size_t i) {
      T acc = identity;
      for (const T& x : parts[i]) acc = f(acc, x);
      partials[i] = acc;
    });
    T acc = identity;
    for (const T& p : partials) acc = f(acc, p);
    return acc;
  }

  /// Applies `f` to every element, in parallel across partitions.
  template <typename F>
  void ForEach(F f) const {
    const auto& parts = impl_->Materialize();
    impl_->ctx->RunParallel(parts.size(), [&](size_t i) {
      for (const T& x : parts[i]) f(x);
    });
  }

  /// Collects and sorts ascending by `key_fn(x)`. Large inputs run a
  /// parallel sample sort: sampled splitters partition the key space into
  /// one range per worker, ranges are gathered and sorted concurrently, and
  /// the sorted ranges concatenate in order.
  template <typename F>
  std::vector<T> SortBy(F key_fn) const {
    const auto& parts = impl_->Materialize();
    size_t total = 0;
    for (const auto& p : parts) total += p.size();
    ExecutionContext* ctx = impl_->ctx.get();
    auto asc = [&key_fn](const T& a, const T& b) {
      return key_fn(a) < key_fn(b);
    };
    const size_t ways =
        std::min<size_t>(ctx->parallelism(), total / kMinSortRangeSize);
    if (ways <= 1) {
      std::vector<T> all = Collect();
      std::sort(all.begin(), all.end(), asc);
      return all;
    }
    using K = std::decay_t<std::invoke_result_t<F, const T&>>;
    // Evenly-strided key sample -> ways-1 splitters.
    std::vector<K> sample;
    const size_t stride = std::max<size_t>(1, total / (ways * 32));
    size_t seen = 0, next = stride / 2;
    for (const auto& part : parts) {
      for (const T& x : part) {
        if (seen++ == next) {
          sample.push_back(key_fn(x));
          next += stride;
        }
      }
    }
    std::sort(sample.begin(), sample.end());
    std::vector<K> splitters;
    splitters.reserve(ways - 1);
    for (size_t s = 1; s < ways; ++s) {
      splitters.push_back(sample[s * sample.size() / ways]);
    }
    // Range-bucket each partition locally, in parallel.
    std::vector<Partitions<T>> local(parts.size());
    ctx->RunParallel(parts.size(), [&](size_t i) {
      local[i].assign(ways, {});
      for (const T& x : parts[i]) {
        size_t b = static_cast<size_t>(
            std::upper_bound(splitters.begin(), splitters.end(), key_fn(x)) -
            splitters.begin());
        local[i][b].push_back(x);
      }
    });
    // Gather and sort each key range, in parallel.
    Partitions<T> ranges(ways);
    ctx->RunParallel(ways, [&](size_t b) {
      size_t sz = 0;
      for (const auto& l : local) sz += l[b].size();
      ranges[b].reserve(sz);
      for (auto& l : local) {
        ranges[b].insert(ranges[b].end(), std::make_move_iterator(l[b].begin()),
                         std::make_move_iterator(l[b].end()));
      }
      std::sort(ranges[b].begin(), ranges[b].end(), asc);
    });
    std::vector<T> out;
    out.reserve(total);
    for (auto& r : ranges) {
      out.insert(out.end(), std::make_move_iterator(r.begin()),
                 std::make_move_iterator(r.end()));
    }
    return out;
  }

  /// Top-k elements by `key_fn`, descending: per-partition partial sorts in
  /// parallel, then a merge of the k-candidate lists.
  template <typename F>
  std::vector<T> TopBy(size_t k, F key_fn) const {
    const auto& parts = impl_->Materialize();
    if (k == 0) return {};
    auto desc = [&key_fn](const T& a, const T& b) {
      return key_fn(a) > key_fn(b);
    };
    Partitions<T> local(parts.size());
    impl_->ctx->RunParallel(parts.size(), [&](size_t i) {
      std::vector<T> top(parts[i].begin(), parts[i].end());
      if (top.size() > k) {
        std::partial_sort(top.begin(), top.begin() + static_cast<long>(k),
                          top.end(), desc);
        top.resize(k);
      }
      local[i] = std::move(top);
    });
    std::vector<T> all;
    for (auto& l : local) {
      all.insert(all.end(), std::make_move_iterator(l.begin()),
                 std::make_move_iterator(l.end()));
    }
    k = std::min(k, all.size());
    std::partial_sort(all.begin(), all.begin() + static_cast<long>(k),
                      all.end(), desc);
    all.resize(k);
    return all;
  }

  /// Internal access for the key-value free functions below.
  const std::shared_ptr<internal_dataset::Impl<T>>& impl() const { return impl_; }

  /// Hash-partitions `in` into `np` buckets by `key_of(x)` (already-hashed
  /// values). Used by every wide operation; exposed for reuse by GroupByKey
  /// et al. A counting pass pre-sizes every bucket exactly, so the bucketing
  /// pass never reallocates.
  template <typename KeyHashFn>
  static Partitions<T> ShuffleBy(ExecutionContext* ctx, const Partitions<T>& in,
                                 size_t np, KeyHashFn key_of) {
    // Phase 1: per input partition, bucket locally (parallel, no contention).
    std::vector<Partitions<T>> local(in.size());
    ctx->RunParallel(in.size(), [&](size_t i) {
      std::vector<uint32_t> bucket_of(in[i].size());
      std::vector<size_t> counts(np, 0);
      for (size_t j = 0; j < in[i].size(); ++j) {
        uint32_t b = static_cast<uint32_t>(MixToBucket(key_of(in[i][j]), np));
        bucket_of[j] = b;
        ++counts[b];
      }
      local[i].assign(np, {});
      for (size_t b = 0; b < np; ++b) local[i][b].reserve(counts[b]);
      for (size_t j = 0; j < in[i].size(); ++j) {
        local[i][bucket_of[j]].push_back(in[i][j]);
      }
    });
    // Phase 2: concatenate bucket b from every input partition (parallel).
    Partitions<T> out(np);
    ctx->RunParallel(np, [&](size_t b) {
      size_t total = 0;
      for (size_t i = 0; i < local.size(); ++i) total += local[i][b].size();
      out[b].reserve(total);
      for (size_t i = 0; i < local.size(); ++i) {
        auto& src = local[i][b];
        out[b].insert(out[b].end(), std::make_move_iterator(src.begin()),
                      std::make_move_iterator(src.end()));
      }
      ctx->metrics().shuffle_records.fetch_add(total, std::memory_order_relaxed);
    });
    return out;
  }

 private:
  template <typename U>
  friend class Dataset;

  /// SortBy runs sequentially below one range per this many elements.
  static constexpr size_t kMinSortRangeSize = 65536;

  /// Mixes an already-hashed key into a bucket index so that sequential
  /// keys spread (std::hash<int> is identity).
  static size_t MixToBucket(size_t h, size_t np) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return h % np;
  }

  /// The chain a new narrow op should extend: this impl's own chain while it
  /// is still unmaterialized and not cache-pinned (fusion), otherwise a
  /// fresh base chain streaming this impl's (to-be-)materialized partitions.
  static std::shared_ptr<internal_chain::NarrowChain<T>> ChainFor(
      const std::shared_ptr<internal_dataset::Impl<T>>& impl) {
    auto chain = impl->chain;
    if (chain && !impl->materialized.load(std::memory_order_acquire) &&
        !impl->cache_pinned.load(std::memory_order_acquire)) {
      return chain;
    }
    auto base = std::make_shared<internal_chain::NarrowChain<T>>();
    base->materialize_source = [impl]() { impl->Materialize(); };
    base->source_sizes = [impl]() {
      std::vector<size_t> sizes;
      sizes.reserve(impl->data.size());
      for (const auto& part : impl->data) sizes.push_back(part.size());
      return sizes;
    };
    base->run = [impl](size_t p, size_t begin, size_t end, uint64_t idx0,
                       bool want_idx, internal_chain::Batch<T>& out) {
      const std::vector<T>& part = impl->data[p];
      out.vals.assign(part.begin() + begin, part.begin() + end);
      if (want_idx) FillDenseIdx(out.idx, idx0, end - begin);
    };
    base->source_part = [impl](size_t p) { return &impl->data[p]; };
    base->num_partitions = impl->num_partitions;
    base->fused_ops = 0;
    return base;
  }

  /// Appends `n` consecutive stream indices starting at `idx0`.
  static void FillDenseIdx(std::vector<uint64_t>& idx, uint64_t idx0,
                           size_t n) {
    idx.reserve(idx.size() + n);
    for (size_t i = 0; i < n; ++i) idx.push_back(idx0 + i);
  }

  /// In-place filter of a batch: keeps elements where `keep(val, idx)` holds,
  /// compacting `vals` (and `idx`, when populated) without reallocating.
  template <typename Keep>
  static void CompactBatch(internal_chain::Batch<T>& b, Keep keep,
                           bool have_idx) {
    size_t w = 0;
    const size_t n = b.vals.size();
    for (size_t i = 0; i < n; ++i) {
      if (keep(b.vals[i], have_idx ? b.idx[i] : 0)) {
        if (w != i) {
          b.vals[w] = std::move(b.vals[i]);
          if (have_idx) b.idx[w] = b.idx[i];
        }
        ++w;
      }
    }
    b.vals.resize(w);
    if (have_idx) b.idx.resize(w);
  }

  /// Copies source plumbing from the parent chain and counts the new op.
  template <typename U, typename S>
  static void InheritSource(internal_chain::NarrowChain<U>& chain,
                            const internal_chain::NarrowChain<S>& parent) {
    chain.materialize_source = parent.materialize_source;
    chain.source_sizes = parent.source_sizes;
    chain.num_partitions = parent.num_partitions;
    chain.fused_ops = parent.fused_ops + 1;
  }

  /// Wraps a fused chain in a lazy impl whose compute runs it as one
  /// morsel-driven stage.
  template <typename U>
  static std::shared_ptr<internal_dataset::Impl<U>> MakeChained(
      std::shared_ptr<ExecutionContext> ctx,
      std::shared_ptr<internal_chain::NarrowChain<U>> chain) {
    auto out = std::make_shared<internal_dataset::Impl<U>>();
    out->ctx = ctx;
    out->num_partitions = chain->num_partitions;
    out->chain = chain;
    out->compute = [ctx, chain]() {
      return internal_chain::ExecuteNarrowStage<U>(*ctx, *chain);
    };
    return out;
  }

  std::shared_ptr<internal_dataset::Impl<T>> impl_;
};

/// --- key-value operations ----------------------------------------------
/// These operate on Dataset<std::pair<K, V>>. K requires std::hash and ==.

/// Merges values per key with an associative `reduce_fn(V, V) -> V`.
template <typename K, typename V, typename F>
Dataset<std::pair<K, V>> ReduceByKey(const Dataset<std::pair<K, V>>& ds,
                                     F reduce_fn, size_t num_partitions = 0) {
  using KV = std::pair<K, V>;
  auto parent = ds.impl();
  size_t np = num_partitions == 0 ? parent->num_partitions : num_partitions;
  auto out = std::make_shared<internal_dataset::Impl<KV>>();
  out->ctx = parent->ctx;
  out->num_partitions = np;
  out->compute = [parent, reduce_fn, np]() {
    Partitions<KV> shuffled = Dataset<KV>::ShuffleBy(
        parent->ctx.get(), parent->Materialize(), np,
        [](const KV& kv) { return std::hash<K>{}(kv.first); });
    Partitions<KV> result(np);
    parent->ctx->RunParallel(np, [&](size_t p) {
      std::unordered_map<K, V> agg;
      agg.reserve(shuffled[p].size());
      for (KV& kv : shuffled[p]) {
        auto [it, inserted] = agg.try_emplace(kv.first, kv.second);
        if (!inserted) it->second = reduce_fn(it->second, kv.second);
      }
      result[p].reserve(agg.size());
      for (auto& [k, v] : agg) result[p].emplace_back(k, std::move(v));
    });
    return result;
  };
  return Dataset<KV>(std::move(out));
}

/// Groups values per key.
template <typename K, typename V>
Dataset<std::pair<K, std::vector<V>>> GroupByKey(
    const Dataset<std::pair<K, V>>& ds, size_t num_partitions = 0) {
  using KV = std::pair<K, V>;
  using KG = std::pair<K, std::vector<V>>;
  auto parent = ds.impl();
  size_t np = num_partitions == 0 ? parent->num_partitions : num_partitions;
  auto out = std::make_shared<internal_dataset::Impl<KG>>();
  out->ctx = parent->ctx;
  out->num_partitions = np;
  out->compute = [parent, np]() {
    Partitions<KV> shuffled = Dataset<KV>::ShuffleBy(
        parent->ctx.get(), parent->Materialize(), np,
        [](const KV& kv) { return std::hash<K>{}(kv.first); });
    Partitions<KG> result(np);
    parent->ctx->RunParallel(np, [&](size_t p) {
      std::unordered_map<K, std::vector<V>> groups;
      for (KV& kv : shuffled[p]) {
        groups[kv.first].push_back(std::move(kv.second));
      }
      result[p].reserve(groups.size());
      for (auto& [k, vs] : groups) result[p].emplace_back(k, std::move(vs));
    });
    return result;
  };
  return Dataset<KG>(std::move(out));
}

/// Inner hash join: emits (k, (v1, v2)) for every matching pair.
template <typename K, typename V1, typename V2>
Dataset<std::pair<K, std::pair<V1, V2>>> Join(
    const Dataset<std::pair<K, V1>>& left,
    const Dataset<std::pair<K, V2>>& right, size_t num_partitions = 0) {
  using L = std::pair<K, V1>;
  using R = std::pair<K, V2>;
  using O = std::pair<K, std::pair<V1, V2>>;
  auto lp = left.impl();
  auto rp = right.impl();
  size_t np = num_partitions == 0 ? lp->num_partitions : num_partitions;
  auto out = std::make_shared<internal_dataset::Impl<O>>();
  out->ctx = lp->ctx;
  out->num_partitions = np;
  out->compute = [lp, rp, np]() {
    Partitions<L> ls = Dataset<L>::ShuffleBy(
        lp->ctx.get(), lp->Materialize(), np,
        [](const L& kv) { return std::hash<K>{}(kv.first); });
    Partitions<R> rs = Dataset<R>::ShuffleBy(
        lp->ctx.get(), rp->Materialize(), np,
        [](const R& kv) { return std::hash<K>{}(kv.first); });
    Partitions<O> result(np);
    lp->ctx->RunParallel(np, [&](size_t p) {
      std::unordered_multimap<K, V1> table;
      table.reserve(ls[p].size());
      for (L& kv : ls[p]) table.emplace(kv.first, std::move(kv.second));
      for (const R& kv : rs[p]) {
        auto range = table.equal_range(kv.first);
        for (auto it = range.first; it != range.second; ++it) {
          result[p].emplace_back(kv.first,
                                 std::make_pair(it->second, kv.second));
        }
      }
    });
    return result;
  };
  return Dataset<O>(std::move(out));
}

/// Left outer hash join: right side is optional (missing -> default V2 and
/// matched=false flag).
template <typename K, typename V1, typename V2>
Dataset<std::pair<K, std::pair<V1, std::pair<V2, bool>>>> LeftOuterJoin(
    const Dataset<std::pair<K, V1>>& left,
    const Dataset<std::pair<K, V2>>& right, size_t num_partitions = 0) {
  using L = std::pair<K, V1>;
  using R = std::pair<K, V2>;
  using O = std::pair<K, std::pair<V1, std::pair<V2, bool>>>;
  auto lp = left.impl();
  auto rp = right.impl();
  size_t np = num_partitions == 0 ? lp->num_partitions : num_partitions;
  auto out = std::make_shared<internal_dataset::Impl<O>>();
  out->ctx = lp->ctx;
  out->num_partitions = np;
  out->compute = [lp, rp, np]() {
    Partitions<L> ls = Dataset<L>::ShuffleBy(
        lp->ctx.get(), lp->Materialize(), np,
        [](const L& kv) { return std::hash<K>{}(kv.first); });
    Partitions<R> rs = Dataset<R>::ShuffleBy(
        lp->ctx.get(), rp->Materialize(), np,
        [](const R& kv) { return std::hash<K>{}(kv.first); });
    Partitions<O> result(np);
    lp->ctx->RunParallel(np, [&](size_t p) {
      std::unordered_multimap<K, V2> table;
      table.reserve(rs[p].size());
      for (R& kv : rs[p]) table.emplace(kv.first, std::move(kv.second));
      for (const L& kv : ls[p]) {
        auto range = table.equal_range(kv.first);
        if (range.first == range.second) {
          result[p].emplace_back(
              kv.first, std::make_pair(kv.second, std::make_pair(V2{}, false)));
        } else {
          for (auto it = range.first; it != range.second; ++it) {
            result[p].emplace_back(
                kv.first,
                std::make_pair(kv.second, std::make_pair(it->second, true)));
          }
        }
      }
    });
    return result;
  };
  return Dataset<O>(std::move(out));
}

/// Aggregates values per key into an accumulator of a different type:
/// `seq(acc, value)` folds values into a partition-local accumulator
/// starting from `zero`; `comb(acc, acc)` merges accumulators across
/// partitions (Spark's aggregateByKey).
template <typename K, typename V, typename A, typename SeqFn, typename CombFn>
Dataset<std::pair<K, A>> AggregateByKey(const Dataset<std::pair<K, V>>& ds,
                                        A zero, SeqFn seq, CombFn comb,
                                        size_t num_partitions = 0) {
  using KV = std::pair<K, V>;
  using KA = std::pair<K, A>;
  auto parent = ds.impl();
  size_t np = num_partitions == 0 ? parent->num_partitions : num_partitions;
  auto out = std::make_shared<internal_dataset::Impl<KA>>();
  out->ctx = parent->ctx;
  out->num_partitions = np;
  out->compute = [parent, zero, seq, comb, np]() {
    // Phase 1: partition-local pre-aggregation (the combiner optimization —
    // shuffles accumulators instead of raw values).
    const auto& in = parent->Materialize();
    Partitions<KA> local(in.size());
    parent->ctx->RunParallel(in.size(), [&](size_t i) {
      std::unordered_map<K, A> agg;
      for (const KV& kv : in[i]) {
        auto [it, inserted] = agg.try_emplace(kv.first, zero);
        it->second = seq(it->second, kv.second);
      }
      local[i].reserve(agg.size());
      for (auto& [k, a] : agg) local[i].emplace_back(k, std::move(a));
    });
    // Phase 2: shuffle accumulators and merge.
    Partitions<KA> shuffled = Dataset<KA>::ShuffleBy(
        parent->ctx.get(), local, np,
        [](const KA& ka) { return std::hash<K>{}(ka.first); });
    Partitions<KA> result(np);
    parent->ctx->RunParallel(np, [&](size_t p) {
      std::unordered_map<K, A> agg;
      for (KA& ka : shuffled[p]) {
        auto [it, inserted] = agg.try_emplace(ka.first, std::move(ka.second));
        if (!inserted) it->second = comb(it->second, ka.second);
      }
      result[p].reserve(agg.size());
      for (auto& [k, a] : agg) result[p].emplace_back(k, std::move(a));
    });
    return result;
  };
  return Dataset<KA>(std::move(out));
}

/// Groups both sides by key: emits (k, (values_left, values_right)) for
/// every key present in either input (Spark's cogroup).
template <typename K, typename V1, typename V2>
Dataset<std::pair<K, std::pair<std::vector<V1>, std::vector<V2>>>> CoGroup(
    const Dataset<std::pair<K, V1>>& left,
    const Dataset<std::pair<K, V2>>& right, size_t num_partitions = 0) {
  using L = std::pair<K, V1>;
  using R = std::pair<K, V2>;
  using O = std::pair<K, std::pair<std::vector<V1>, std::vector<V2>>>;
  auto lp = left.impl();
  auto rp = right.impl();
  size_t np = num_partitions == 0 ? lp->num_partitions : num_partitions;
  auto out = std::make_shared<internal_dataset::Impl<O>>();
  out->ctx = lp->ctx;
  out->num_partitions = np;
  out->compute = [lp, rp, np]() {
    Partitions<L> ls = Dataset<L>::ShuffleBy(
        lp->ctx.get(), lp->Materialize(), np,
        [](const L& kv) { return std::hash<K>{}(kv.first); });
    Partitions<R> rs = Dataset<R>::ShuffleBy(
        lp->ctx.get(), rp->Materialize(), np,
        [](const R& kv) { return std::hash<K>{}(kv.first); });
    Partitions<O> result(np);
    lp->ctx->RunParallel(np, [&](size_t p) {
      std::unordered_map<K, std::pair<std::vector<V1>, std::vector<V2>>> groups;
      for (L& kv : ls[p]) groups[kv.first].first.push_back(std::move(kv.second));
      for (R& kv : rs[p]) groups[kv.first].second.push_back(std::move(kv.second));
      result[p].reserve(groups.size());
      for (auto& [k, vs] : groups) result[p].emplace_back(k, std::move(vs));
    });
    return result;
  };
  return Dataset<O>(std::move(out));
}

/// Counts occurrences per key (action).
template <typename K, typename V>
std::unordered_map<K, size_t> CountByKey(const Dataset<std::pair<K, V>>& ds) {
  auto counted = ReduceByKey(
      ds.Map([](const std::pair<K, V>& kv) { return std::make_pair(kv.first, size_t{1}); }),
      [](size_t a, size_t b) { return a + b; });
  std::unordered_map<K, size_t> out;
  for (auto& [k, c] : counted.Collect()) out[k] = c;
  return out;
}

/// Keys a dataset by `key_fn(x)`, producing (key, x) pairs.
template <typename T, typename F>
auto KeyBy(const Dataset<T>& ds, F key_fn)
    -> Dataset<std::pair<std::decay_t<std::invoke_result_t<F, const T&>>, T>> {
  using K = std::decay_t<std::invoke_result_t<F, const T&>>;
  return ds.Map(
      [key_fn](const T& x) { return std::make_pair(K(key_fn(x)), x); });
}

}  // namespace cfnet::dataflow

#endif  // CFNET_DATAFLOW_DATASET_H_
