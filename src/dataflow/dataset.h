#ifndef CFNET_DATAFLOW_DATASET_H_
#define CFNET_DATAFLOW_DATASET_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "dataflow/context.h"
#include "util/logging.h"
#include "util/rng.h"

namespace cfnet::dataflow {

/// A dataset's physical layout: one vector per partition.
template <typename T>
using Partitions = std::vector<std::vector<T>>;

namespace internal_dataset {

/// Lazily-computed, memoized partitioned collection (the RDD analogue).
/// `compute` runs at most once, on the first action; narrow transformations
/// chain compute thunks, wide ones insert a hash shuffle.
template <typename T>
struct Impl {
  std::shared_ptr<ExecutionContext> ctx;
  size_t num_partitions = 1;
  std::function<Partitions<T>()> compute;
  std::once_flag once;
  Partitions<T> data;

  const Partitions<T>& Materialize() {
    std::call_once(once, [this]() {
      data = compute();
      compute = nullptr;  // release captured parents
    });
    return data;
  }
};

}  // namespace internal_dataset

/// Lazy, partitioned, parallel collection — the MiniSpark analogue of an
/// RDD/Dataset. All transformations are lazy and memoized: the pipeline
/// executes once, on the first action (`Collect`, `Count`, ...), in parallel
/// across partitions on the context's thread pool.
///
/// Copying a Dataset is cheap (shared immutable state). Element types must
/// be copyable; key types used in wide operations additionally need
/// std::hash and operator==.
template <typename T>
class Dataset {
 public:
  /// Internal: wraps an implementation node. Use `FromVector` or a
  /// transformation to create datasets.
  explicit Dataset(std::shared_ptr<internal_dataset::Impl<T>> impl)
      : impl_(std::move(impl)) {}

  Dataset(const Dataset&) = default;
  Dataset& operator=(const Dataset&) = default;

  /// Creates a dataset by range-partitioning `data` into
  /// `num_partitions` (0 = context default) chunks.
  static Dataset FromVector(std::shared_ptr<ExecutionContext> ctx,
                            std::vector<T> data, size_t num_partitions = 0) {
    CFNET_CHECK(ctx != nullptr);
    size_t np = num_partitions == 0 ? ctx->default_partitions() : num_partitions;
    np = std::max<size_t>(1, np);
    auto impl = std::make_shared<internal_dataset::Impl<T>>();
    impl->ctx = ctx;
    impl->num_partitions = np;
    auto shared = std::make_shared<std::vector<T>>(std::move(data));
    impl->compute = [shared, np]() {
      Partitions<T> parts(np);
      size_t n = shared->size();
      size_t base = n / np;
      size_t extra = n % np;
      size_t offset = 0;
      for (size_t p = 0; p < np; ++p) {
        size_t len = base + (p < extra ? 1 : 0);
        parts[p].assign(shared->begin() + offset, shared->begin() + offset + len);
        offset += len;
      }
      return parts;
    };
    return Dataset(std::move(impl));
  }

  std::shared_ptr<ExecutionContext> context() const { return impl_->ctx; }
  size_t num_partitions() const { return impl_->num_partitions; }

  /// --- narrow transformations -------------------------------------------

  /// Element-wise transform.
  template <typename F>
  auto Map(F f) const -> Dataset<std::decay_t<std::invoke_result_t<F, const T&>>> {
    using U = std::decay_t<std::invoke_result_t<F, const T&>>;
    auto parent = impl_;
    auto out = std::make_shared<internal_dataset::Impl<U>>();
    out->ctx = parent->ctx;
    out->num_partitions = parent->num_partitions;
    out->compute = [parent, f]() {
      const auto& in = parent->Materialize();
      Partitions<U> result(in.size());
      parent->ctx->RunParallel(in.size(), [&](size_t i) {
        result[i].reserve(in[i].size());
        for (const T& x : in[i]) result[i].push_back(f(x));
      });
      return result;
    };
    return Dataset<U>(std::move(out));
  }

  /// Keeps elements satisfying `pred`.
  template <typename F>
  Dataset<T> Filter(F pred) const {
    auto parent = impl_;
    auto out = std::make_shared<internal_dataset::Impl<T>>();
    out->ctx = parent->ctx;
    out->num_partitions = parent->num_partitions;
    out->compute = [parent, pred]() {
      const auto& in = parent->Materialize();
      Partitions<T> result(in.size());
      parent->ctx->RunParallel(in.size(), [&](size_t i) {
        for (const T& x : in[i]) {
          if (pred(x)) result[i].push_back(x);
        }
      });
      return result;
    };
    return Dataset<T>(std::move(out));
  }

  /// Expands each element into zero or more outputs; `f` returns any
  /// iterable container of the output type.
  template <typename F>
  auto FlatMap(F f) const
      -> Dataset<typename std::decay_t<std::invoke_result_t<F, const T&>>::value_type> {
    using C = std::decay_t<std::invoke_result_t<F, const T&>>;
    using U = typename C::value_type;
    auto parent = impl_;
    auto out = std::make_shared<internal_dataset::Impl<U>>();
    out->ctx = parent->ctx;
    out->num_partitions = parent->num_partitions;
    out->compute = [parent, f]() {
      const auto& in = parent->Materialize();
      Partitions<U> result(in.size());
      parent->ctx->RunParallel(in.size(), [&](size_t i) {
        for (const T& x : in[i]) {
          C items = f(x);
          for (auto& item : items) result[i].push_back(std::move(item));
        }
      });
      return result;
    };
    return Dataset<U>(std::move(out));
  }

  /// Concatenation (partitions of both inputs are preserved).
  Dataset<T> Union(const Dataset<T>& other) const {
    auto a = impl_;
    auto b = other.impl_;
    auto out = std::make_shared<internal_dataset::Impl<T>>();
    out->ctx = a->ctx;
    out->num_partitions = a->num_partitions + b->num_partitions;
    out->compute = [a, b]() {
      const auto& pa = a->Materialize();
      const auto& pb = b->Materialize();
      Partitions<T> result;
      result.reserve(pa.size() + pb.size());
      for (const auto& p : pa) result.push_back(p);
      for (const auto& p : pb) result.push_back(p);
      return result;
    };
    return Dataset<T>(std::move(out));
  }

  /// Bernoulli sample of roughly `fraction` of the elements, deterministic
  /// for a given seed.
  Dataset<T> Sample(double fraction, uint64_t seed) const {
    auto parent = impl_;
    auto out = std::make_shared<internal_dataset::Impl<T>>();
    out->ctx = parent->ctx;
    out->num_partitions = parent->num_partitions;
    out->compute = [parent, fraction, seed]() {
      const auto& in = parent->Materialize();
      Partitions<T> result(in.size());
      parent->ctx->RunParallel(in.size(), [&](size_t i) {
        Rng rng(seed * 0x9e3779b1u + i);
        for (const T& x : in[i]) {
          if (rng.Bernoulli(fraction)) result[i].push_back(x);
        }
      });
      return result;
    };
    return Dataset<T>(std::move(out));
  }

  /// --- wide transformations (shuffle) -------------------------------------

  /// Deduplicates (hash shuffle so equal elements meet in one partition).
  /// First occurrence order within a partition is retained.
  Dataset<T> Distinct(size_t num_partitions = 0) const {
    auto parent = impl_;
    size_t np = num_partitions == 0 ? parent->num_partitions : num_partitions;
    auto out = std::make_shared<internal_dataset::Impl<T>>();
    out->ctx = parent->ctx;
    out->num_partitions = np;
    out->compute = [parent, np]() {
      Partitions<T> shuffled = ShuffleBy(
          parent->ctx.get(), parent->Materialize(), np,
          [](const T& x) { return std::hash<T>{}(x); });
      Partitions<T> result(np);
      parent->ctx->RunParallel(np, [&](size_t p) {
        std::unordered_set<T> seen;
        seen.reserve(shuffled[p].size());
        for (T& x : shuffled[p]) {
          if (seen.insert(x).second) result[p].push_back(std::move(x));
        }
      });
      return result;
    };
    return Dataset<T>(std::move(out));
  }

  /// Rebalances into `n` partitions (round-robin).
  Dataset<T> Repartition(size_t n) const {
    CFNET_CHECK(n > 0);
    auto parent = impl_;
    auto out = std::make_shared<internal_dataset::Impl<T>>();
    out->ctx = parent->ctx;
    out->num_partitions = n;
    out->compute = [parent, n]() {
      const auto& in = parent->Materialize();
      Partitions<T> result(n);
      size_t idx = 0;
      for (const auto& part : in) {
        for (const T& x : part) {
          result[idx % n].push_back(x);
          ++idx;
        }
      }
      return result;
    };
    return Dataset<T>(std::move(out));
  }

  /// --- actions -------------------------------------------------------------

  /// Materializes and flattens to a single vector (partition order).
  std::vector<T> Collect() const {
    const auto& parts = impl_->Materialize();
    size_t total = 0;
    for (const auto& p : parts) total += p.size();
    std::vector<T> out;
    out.reserve(total);
    for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
    return out;
  }

  /// Number of elements.
  size_t Count() const {
    const auto& parts = impl_->Materialize();
    size_t total = 0;
    for (const auto& p : parts) total += p.size();
    return total;
  }

  /// Parallel fold with an associative, commutative `f` and identity.
  template <typename F>
  T Reduce(F f, T identity) const {
    const auto& parts = impl_->Materialize();
    std::vector<T> partials(parts.size(), identity);
    impl_->ctx->RunParallel(parts.size(), [&](size_t i) {
      T acc = identity;
      for (const T& x : parts[i]) acc = f(acc, x);
      partials[i] = acc;
    });
    T acc = identity;
    for (const T& p : partials) acc = f(acc, p);
    return acc;
  }

  /// Applies `f` to every element, in parallel across partitions.
  template <typename F>
  void ForEach(F f) const {
    const auto& parts = impl_->Materialize();
    impl_->ctx->RunParallel(parts.size(), [&](size_t i) {
      for (const T& x : parts[i]) f(x);
    });
  }

  /// Collects and sorts ascending by `key_fn(x)`.
  template <typename F>
  std::vector<T> SortBy(F key_fn) const {
    std::vector<T> all = Collect();
    std::sort(all.begin(), all.end(), [&](const T& a, const T& b) {
      return key_fn(a) < key_fn(b);
    });
    return all;
  }

  /// Top-k elements by `key_fn`, descending.
  template <typename F>
  std::vector<T> TopBy(size_t k, F key_fn) const {
    std::vector<T> all = Collect();
    k = std::min(k, all.size());
    std::partial_sort(all.begin(), all.begin() + static_cast<long>(k), all.end(),
                      [&](const T& a, const T& b) { return key_fn(a) > key_fn(b); });
    all.resize(k);
    return all;
  }

  /// Internal access for the key-value free functions below.
  const std::shared_ptr<internal_dataset::Impl<T>>& impl() const { return impl_; }

  /// Hash-partitions `in` into `np` buckets by `key_of(x)` (already-hashed
  /// values). Used by every wide operation; exposed for reuse by GroupByKey
  /// et al.
  template <typename KeyHashFn>
  static Partitions<T> ShuffleBy(ExecutionContext* ctx, const Partitions<T>& in,
                                 size_t np, KeyHashFn key_of) {
    // Phase 1: per input partition, bucket locally (parallel, no contention).
    std::vector<Partitions<T>> local(in.size());
    ctx->RunParallel(in.size(), [&](size_t i) {
      local[i].assign(np, {});
      for (const T& x : in[i]) {
        size_t h = key_of(x);
        // Mix so that sequential keys spread (std::hash<int> is identity).
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 33;
        local[i][h % np].push_back(x);
      }
    });
    // Phase 2: concatenate bucket b from every input partition (parallel).
    Partitions<T> out(np);
    ctx->RunParallel(np, [&](size_t b) {
      size_t total = 0;
      for (size_t i = 0; i < local.size(); ++i) total += local[i][b].size();
      out[b].reserve(total);
      for (size_t i = 0; i < local.size(); ++i) {
        auto& src = local[i][b];
        out[b].insert(out[b].end(), std::make_move_iterator(src.begin()),
                      std::make_move_iterator(src.end()));
      }
      ctx->metrics().shuffle_records.fetch_add(total, std::memory_order_relaxed);
    });
    return out;
  }

 private:
  std::shared_ptr<internal_dataset::Impl<T>> impl_;
};

/// --- key-value operations ----------------------------------------------
/// These operate on Dataset<std::pair<K, V>>. K requires std::hash and ==.

/// Merges values per key with an associative `reduce_fn(V, V) -> V`.
template <typename K, typename V, typename F>
Dataset<std::pair<K, V>> ReduceByKey(const Dataset<std::pair<K, V>>& ds,
                                     F reduce_fn, size_t num_partitions = 0) {
  using KV = std::pair<K, V>;
  auto parent = ds.impl();
  size_t np = num_partitions == 0 ? parent->num_partitions : num_partitions;
  auto out = std::make_shared<internal_dataset::Impl<KV>>();
  out->ctx = parent->ctx;
  out->num_partitions = np;
  out->compute = [parent, reduce_fn, np]() {
    Partitions<KV> shuffled = Dataset<KV>::ShuffleBy(
        parent->ctx.get(), parent->Materialize(), np,
        [](const KV& kv) { return std::hash<K>{}(kv.first); });
    Partitions<KV> result(np);
    parent->ctx->RunParallel(np, [&](size_t p) {
      std::unordered_map<K, V> agg;
      agg.reserve(shuffled[p].size());
      for (KV& kv : shuffled[p]) {
        auto [it, inserted] = agg.try_emplace(kv.first, kv.second);
        if (!inserted) it->second = reduce_fn(it->second, kv.second);
      }
      result[p].reserve(agg.size());
      for (auto& [k, v] : agg) result[p].emplace_back(k, std::move(v));
    });
    return result;
  };
  return Dataset<KV>(std::move(out));
}

/// Groups values per key.
template <typename K, typename V>
Dataset<std::pair<K, std::vector<V>>> GroupByKey(
    const Dataset<std::pair<K, V>>& ds, size_t num_partitions = 0) {
  using KV = std::pair<K, V>;
  using KG = std::pair<K, std::vector<V>>;
  auto parent = ds.impl();
  size_t np = num_partitions == 0 ? parent->num_partitions : num_partitions;
  auto out = std::make_shared<internal_dataset::Impl<KG>>();
  out->ctx = parent->ctx;
  out->num_partitions = np;
  out->compute = [parent, np]() {
    Partitions<KV> shuffled = Dataset<KV>::ShuffleBy(
        parent->ctx.get(), parent->Materialize(), np,
        [](const KV& kv) { return std::hash<K>{}(kv.first); });
    Partitions<KG> result(np);
    parent->ctx->RunParallel(np, [&](size_t p) {
      std::unordered_map<K, std::vector<V>> groups;
      for (KV& kv : shuffled[p]) {
        groups[kv.first].push_back(std::move(kv.second));
      }
      result[p].reserve(groups.size());
      for (auto& [k, vs] : groups) result[p].emplace_back(k, std::move(vs));
    });
    return result;
  };
  return Dataset<KG>(std::move(out));
}

/// Inner hash join: emits (k, (v1, v2)) for every matching pair.
template <typename K, typename V1, typename V2>
Dataset<std::pair<K, std::pair<V1, V2>>> Join(
    const Dataset<std::pair<K, V1>>& left,
    const Dataset<std::pair<K, V2>>& right, size_t num_partitions = 0) {
  using L = std::pair<K, V1>;
  using R = std::pair<K, V2>;
  using O = std::pair<K, std::pair<V1, V2>>;
  auto lp = left.impl();
  auto rp = right.impl();
  size_t np = num_partitions == 0 ? lp->num_partitions : num_partitions;
  auto out = std::make_shared<internal_dataset::Impl<O>>();
  out->ctx = lp->ctx;
  out->num_partitions = np;
  out->compute = [lp, rp, np]() {
    Partitions<L> ls = Dataset<L>::ShuffleBy(
        lp->ctx.get(), lp->Materialize(), np,
        [](const L& kv) { return std::hash<K>{}(kv.first); });
    Partitions<R> rs = Dataset<R>::ShuffleBy(
        lp->ctx.get(), rp->Materialize(), np,
        [](const R& kv) { return std::hash<K>{}(kv.first); });
    Partitions<O> result(np);
    lp->ctx->RunParallel(np, [&](size_t p) {
      std::unordered_multimap<K, V1> table;
      table.reserve(ls[p].size());
      for (L& kv : ls[p]) table.emplace(kv.first, std::move(kv.second));
      for (const R& kv : rs[p]) {
        auto range = table.equal_range(kv.first);
        for (auto it = range.first; it != range.second; ++it) {
          result[p].emplace_back(kv.first,
                                 std::make_pair(it->second, kv.second));
        }
      }
    });
    return result;
  };
  return Dataset<O>(std::move(out));
}

/// Left outer hash join: right side is optional (missing -> default V2 and
/// matched=false flag).
template <typename K, typename V1, typename V2>
Dataset<std::pair<K, std::pair<V1, std::pair<V2, bool>>>> LeftOuterJoin(
    const Dataset<std::pair<K, V1>>& left,
    const Dataset<std::pair<K, V2>>& right, size_t num_partitions = 0) {
  using L = std::pair<K, V1>;
  using R = std::pair<K, V2>;
  using O = std::pair<K, std::pair<V1, std::pair<V2, bool>>>;
  auto lp = left.impl();
  auto rp = right.impl();
  size_t np = num_partitions == 0 ? lp->num_partitions : num_partitions;
  auto out = std::make_shared<internal_dataset::Impl<O>>();
  out->ctx = lp->ctx;
  out->num_partitions = np;
  out->compute = [lp, rp, np]() {
    Partitions<L> ls = Dataset<L>::ShuffleBy(
        lp->ctx.get(), lp->Materialize(), np,
        [](const L& kv) { return std::hash<K>{}(kv.first); });
    Partitions<R> rs = Dataset<R>::ShuffleBy(
        lp->ctx.get(), rp->Materialize(), np,
        [](const R& kv) { return std::hash<K>{}(kv.first); });
    Partitions<O> result(np);
    lp->ctx->RunParallel(np, [&](size_t p) {
      std::unordered_multimap<K, V2> table;
      table.reserve(rs[p].size());
      for (R& kv : rs[p]) table.emplace(kv.first, std::move(kv.second));
      for (const L& kv : ls[p]) {
        auto range = table.equal_range(kv.first);
        if (range.first == range.second) {
          result[p].emplace_back(
              kv.first, std::make_pair(kv.second, std::make_pair(V2{}, false)));
        } else {
          for (auto it = range.first; it != range.second; ++it) {
            result[p].emplace_back(
                kv.first,
                std::make_pair(kv.second, std::make_pair(it->second, true)));
          }
        }
      }
    });
    return result;
  };
  return Dataset<O>(std::move(out));
}

/// Aggregates values per key into an accumulator of a different type:
/// `seq(acc, value)` folds values into a partition-local accumulator
/// starting from `zero`; `comb(acc, acc)` merges accumulators across
/// partitions (Spark's aggregateByKey).
template <typename K, typename V, typename A, typename SeqFn, typename CombFn>
Dataset<std::pair<K, A>> AggregateByKey(const Dataset<std::pair<K, V>>& ds,
                                        A zero, SeqFn seq, CombFn comb,
                                        size_t num_partitions = 0) {
  using KV = std::pair<K, V>;
  using KA = std::pair<K, A>;
  auto parent = ds.impl();
  size_t np = num_partitions == 0 ? parent->num_partitions : num_partitions;
  auto out = std::make_shared<internal_dataset::Impl<KA>>();
  out->ctx = parent->ctx;
  out->num_partitions = np;
  out->compute = [parent, zero, seq, comb, np]() {
    // Phase 1: partition-local pre-aggregation (the combiner optimization —
    // shuffles accumulators instead of raw values).
    const auto& in = parent->Materialize();
    Partitions<KA> local(in.size());
    parent->ctx->RunParallel(in.size(), [&](size_t i) {
      std::unordered_map<K, A> agg;
      for (const KV& kv : in[i]) {
        auto [it, inserted] = agg.try_emplace(kv.first, zero);
        it->second = seq(it->second, kv.second);
      }
      local[i].reserve(agg.size());
      for (auto& [k, a] : agg) local[i].emplace_back(k, std::move(a));
    });
    // Phase 2: shuffle accumulators and merge.
    Partitions<KA> shuffled = Dataset<KA>::ShuffleBy(
        parent->ctx.get(), local, np,
        [](const KA& ka) { return std::hash<K>{}(ka.first); });
    Partitions<KA> result(np);
    parent->ctx->RunParallel(np, [&](size_t p) {
      std::unordered_map<K, A> agg;
      for (KA& ka : shuffled[p]) {
        auto [it, inserted] = agg.try_emplace(ka.first, std::move(ka.second));
        if (!inserted) it->second = comb(it->second, ka.second);
      }
      result[p].reserve(agg.size());
      for (auto& [k, a] : agg) result[p].emplace_back(k, std::move(a));
    });
    return result;
  };
  return Dataset<KA>(std::move(out));
}

/// Groups both sides by key: emits (k, (values_left, values_right)) for
/// every key present in either input (Spark's cogroup).
template <typename K, typename V1, typename V2>
Dataset<std::pair<K, std::pair<std::vector<V1>, std::vector<V2>>>> CoGroup(
    const Dataset<std::pair<K, V1>>& left,
    const Dataset<std::pair<K, V2>>& right, size_t num_partitions = 0) {
  using L = std::pair<K, V1>;
  using R = std::pair<K, V2>;
  using O = std::pair<K, std::pair<std::vector<V1>, std::vector<V2>>>;
  auto lp = left.impl();
  auto rp = right.impl();
  size_t np = num_partitions == 0 ? lp->num_partitions : num_partitions;
  auto out = std::make_shared<internal_dataset::Impl<O>>();
  out->ctx = lp->ctx;
  out->num_partitions = np;
  out->compute = [lp, rp, np]() {
    Partitions<L> ls = Dataset<L>::ShuffleBy(
        lp->ctx.get(), lp->Materialize(), np,
        [](const L& kv) { return std::hash<K>{}(kv.first); });
    Partitions<R> rs = Dataset<R>::ShuffleBy(
        lp->ctx.get(), rp->Materialize(), np,
        [](const R& kv) { return std::hash<K>{}(kv.first); });
    Partitions<O> result(np);
    lp->ctx->RunParallel(np, [&](size_t p) {
      std::unordered_map<K, std::pair<std::vector<V1>, std::vector<V2>>> groups;
      for (L& kv : ls[p]) groups[kv.first].first.push_back(std::move(kv.second));
      for (R& kv : rs[p]) groups[kv.first].second.push_back(std::move(kv.second));
      result[p].reserve(groups.size());
      for (auto& [k, vs] : groups) result[p].emplace_back(k, std::move(vs));
    });
    return result;
  };
  return Dataset<O>(std::move(out));
}

/// Counts occurrences per key (action).
template <typename K, typename V>
std::unordered_map<K, size_t> CountByKey(const Dataset<std::pair<K, V>>& ds) {
  auto counted = ReduceByKey(
      ds.Map([](const std::pair<K, V>& kv) { return std::make_pair(kv.first, size_t{1}); }),
      [](size_t a, size_t b) { return a + b; });
  std::unordered_map<K, size_t> out;
  for (auto& [k, c] : counted.Collect()) out[k] = c;
  return out;
}

/// Keys a dataset by `key_fn(x)`, producing (key, x) pairs.
template <typename T, typename F>
auto KeyBy(const Dataset<T>& ds, F key_fn)
    -> Dataset<std::pair<std::decay_t<std::invoke_result_t<F, const T&>>, T>> {
  using K = std::decay_t<std::invoke_result_t<F, const T&>>;
  return ds.Map(
      [key_fn](const T& x) { return std::make_pair(K(key_fn(x)), x); });
}

}  // namespace cfnet::dataflow

#endif  // CFNET_DATAFLOW_DATASET_H_
