#include "community/louvain.h"

#include <algorithm>
#include <numeric>
#include <tuple>
#include <unordered_map>

#include "util/rng.h"

namespace cfnet::community {
namespace {

/// One Louvain level: local node moves until no modularity gain. Returns
/// the per-node community labels within this level's graph.
std::vector<int> LocalMovePhase(const graph::WeightedGraph& g,
                                const LouvainConfig& config, Rng& rng,
                                bool* any_move) {
  const size_t n = g.num_nodes();
  std::vector<int> label(n);
  std::iota(label.begin(), label.end(), 0);
  const double m2 = g.TotalWeight2m();
  *any_move = false;
  if (m2 <= 0) return label;

  // sigma_tot[c]: total weighted degree of community c.
  std::vector<double> sigma_tot(n, 0);
  for (uint32_t v = 0; v < n; ++v) sigma_tot[v] = g.WeightedDegree(v);

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  std::unordered_map<int, double> weight_to;  // community -> edge weight sum
  for (int sweep = 0; sweep < config.max_sweeps_per_level; ++sweep) {
    bool moved = false;
    for (uint32_t v : order) {
      const double k_v = g.WeightedDegree(v);
      if (k_v <= 0) continue;
      weight_to.clear();
      auto nbrs = g.Neighbors(v);
      auto ws = g.Weights(v);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        if (nbrs[i] == v) continue;  // self loops handled via degree
        weight_to[label[nbrs[i]]] += ws[i];
      }
      const int old_c = label[v];
      // Remove v from its community.
      sigma_tot[static_cast<size_t>(old_c)] -= k_v;
      double best_gain = 0;
      int best_c = old_c;
      double w_old = 0;
      if (auto it = weight_to.find(old_c); it != weight_to.end()) {
        w_old = it->second;
      }
      for (const auto& [cand, w_in] : weight_to) {
        // Delta modularity of joining cand (relative to staying isolated):
        //   w_in/m - k_v * sigma_tot[cand] / (2m^2) ... using 2m = m2:
        double gain = (w_in - w_old) / m2 * 2.0 -
                      k_v * (sigma_tot[static_cast<size_t>(cand)] -
                             sigma_tot[static_cast<size_t>(old_c)]) /
                          (m2 * m2) * 2.0;
        if (gain > best_gain + config.min_modularity_gain) {
          best_gain = gain;
          best_c = cand;
        }
      }
      sigma_tot[static_cast<size_t>(best_c)] += k_v;
      if (best_c != old_c) {
        label[v] = best_c;
        moved = true;
        *any_move = true;
      }
    }
    if (!moved) break;
  }
  return label;
}

/// Aggregates the graph by community labels (relabeled to 0..k-1).
graph::WeightedGraph Aggregate(const graph::WeightedGraph& g,
                               std::vector<int>& labels, size_t* num_out) {
  // Compact labels.
  std::unordered_map<int, int> remap;
  for (int& l : labels) {
    auto [it, inserted] = remap.try_emplace(l, static_cast<int>(remap.size()));
    l = it->second;
  }
  *num_out = remap.size();
  std::unordered_map<uint64_t, double> agg;
  for (uint32_t v = 0; v < g.num_nodes(); ++v) {
    auto nbrs = g.Neighbors(v);
    auto ws = g.Weights(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] < v) continue;  // undirected: visit each edge once
      double w = ws[i];
      // A self-loop contributes two identical adjacency entries, both of
      // which pass the filter above; halve to keep its true weight.
      if (nbrs[i] == v) w *= 0.5;
      uint32_t a = static_cast<uint32_t>(labels[v]);
      uint32_t b = static_cast<uint32_t>(labels[nbrs[i]]);
      if (a > b) std::swap(a, b);
      agg[(static_cast<uint64_t>(a) << 32) | b] += w;
    }
  }
  std::vector<std::tuple<uint32_t, uint32_t, double>> edges;
  edges.reserve(agg.size());
  for (const auto& [key, w] : agg) {
    edges.emplace_back(static_cast<uint32_t>(key >> 32),
                       static_cast<uint32_t>(key & 0xffffffffull), w);
  }
  return graph::WeightedGraph::FromEdges(*num_out, edges);
}

}  // namespace

double Modularity(const graph::WeightedGraph& g, const std::vector<int>& labels) {
  const double m2 = g.TotalWeight2m();
  if (m2 <= 0) return 0;
  std::unordered_map<int, double> sigma_tot;
  std::unordered_map<int, double> sigma_in;
  for (uint32_t v = 0; v < g.num_nodes(); ++v) {
    if (labels[v] < 0) continue;
    sigma_tot[labels[v]] += g.WeightedDegree(v);
    auto nbrs = g.Neighbors(v);
    auto ws = g.Weights(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (labels[nbrs[i]] == labels[v]) sigma_in[labels[v]] += ws[i];
    }
  }
  double q = 0;
  for (const auto& [c, st] : sigma_tot) {
    double in = 0;
    if (auto it = sigma_in.find(c); it != sigma_in.end()) in = it->second;
    q += in / m2 - (st / m2) * (st / m2);
  }
  return q;
}

LouvainResult RunLouvain(const graph::WeightedGraph& g,
                         const LouvainConfig& config) {
  LouvainResult result;
  const size_t n = g.num_nodes();
  result.labels.assign(n, -1);
  if (n == 0) return result;

  Rng rng(config.seed);
  // node_of_level maps original node -> current-level node.
  std::vector<int> node_map(n);
  std::iota(node_map.begin(), node_map.end(), 0);
  graph::WeightedGraph current = g;

  for (int level = 0; level < config.max_levels; ++level) {
    bool any_move = false;
    std::vector<int> labels = LocalMovePhase(current, config, rng, &any_move);
    size_t num_comms = 0;
    graph::WeightedGraph next = Aggregate(current, labels, &num_comms);
    for (size_t v = 0; v < n; ++v) {
      node_map[v] = labels[static_cast<size_t>(node_map[v])];
    }
    result.levels = level + 1;
    if (!any_move || num_comms == current.num_nodes()) break;
    current = std::move(next);
  }

  // Final labels: omit isolated nodes (zero degree in the original graph).
  for (uint32_t v = 0; v < n; ++v) {
    result.labels[v] = g.WeightedDegree(v) > 0 ? node_map[v] : -1;
  }
  result.communities = CommunitySet::FromLabels(result.labels);
  result.modularity = Modularity(g, result.labels);
  return result;
}

}  // namespace cfnet::community
