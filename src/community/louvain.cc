#include "community/louvain.h"

#include <algorithm>
#include <numeric>
#include <tuple>

#include "util/rng.h"

namespace cfnet::community {
namespace {

/// Dense neighbor-weight accumulator: weight_to[c] is valid only when
/// stamp[c] == epoch, so switching nodes costs one counter bump instead of
/// a hash-map clear. `touched` lists the communities seen for the current
/// node, in adjacency order (deterministic for a fixed graph).
struct NeighborWeights {
  std::vector<double> weight_to;
  std::vector<uint32_t> stamp;
  std::vector<int> touched;
  uint32_t epoch = 0;

  void Resize(size_t n) {
    weight_to.assign(n, 0);
    stamp.assign(n, 0);
    touched.reserve(64);
    epoch = 0;
  }

  void Begin() {
    ++epoch;
    touched.clear();
    if (epoch == 0) {  // wrapped: stamps are stale, reset them
      std::fill(stamp.begin(), stamp.end(), 0);
      epoch = 1;
    }
  }

  void Add(int c, double w) {
    const size_t idx = static_cast<size_t>(c);
    if (stamp[idx] != epoch) {
      stamp[idx] = epoch;
      weight_to[idx] = 0;
      touched.push_back(c);
    }
    weight_to[idx] += w;
  }

  double Get(int c) const {
    const size_t idx = static_cast<size_t>(c);
    return stamp[idx] == epoch ? weight_to[idx] : 0.0;
  }
};

/// One Louvain level: local node moves until no modularity gain. Returns
/// the per-node community labels within this level's graph.
std::vector<int> LocalMovePhase(const graph::WeightedGraph& g,
                                const LouvainConfig& config, Rng& rng,
                                bool* any_move) {
  const size_t n = g.num_nodes();
  std::vector<int> label(n);
  std::iota(label.begin(), label.end(), 0);
  const double m2 = g.TotalWeight2m();
  *any_move = false;
  if (m2 <= 0) return label;

  // sigma_tot[c]: total weighted degree of community c.
  std::vector<double> sigma_tot(n, 0);
  for (uint32_t v = 0; v < n; ++v) sigma_tot[v] = g.WeightedDegree(v);

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  NeighborWeights weights;  // community -> edge weight sum for current node
  weights.Resize(n);
  for (int sweep = 0; sweep < config.max_sweeps_per_level; ++sweep) {
    bool moved = false;
    for (uint32_t v : order) {
      const double k_v = g.WeightedDegree(v);
      if (k_v <= 0) continue;
      weights.Begin();
      auto nbrs = g.Neighbors(v);
      auto ws = g.Weights(v);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        if (nbrs[i] == v) continue;  // self loops handled via degree
        weights.Add(label[nbrs[i]], ws[i]);
      }
      const int old_c = label[v];
      // Remove v from its community.
      sigma_tot[static_cast<size_t>(old_c)] -= k_v;
      double best_gain = 0;
      int best_c = old_c;
      const double w_old = weights.Get(old_c);
      for (int cand : weights.touched) {
        const double w_in = weights.Get(cand);
        // Delta modularity of joining cand (relative to staying isolated):
        //   w_in/m - k_v * sigma_tot[cand] / (2m^2) ... using 2m = m2:
        double gain = (w_in - w_old) / m2 * 2.0 -
                      k_v * (sigma_tot[static_cast<size_t>(cand)] -
                             sigma_tot[static_cast<size_t>(old_c)]) /
                          (m2 * m2) * 2.0;
        if (gain > best_gain + config.min_modularity_gain) {
          best_gain = gain;
          best_c = cand;
        }
      }
      sigma_tot[static_cast<size_t>(best_c)] += k_v;
      if (best_c != old_c) {
        label[v] = best_c;
        moved = true;
        *any_move = true;
      }
    }
    if (!moved) break;
  }
  return label;
}

/// Aggregates the graph by community labels (relabeled to 0..k-1).
graph::WeightedGraph Aggregate(const graph::WeightedGraph& g,
                               std::vector<int>& labels, size_t* num_out) {
  const size_t n = g.num_nodes();
  // Compact labels in first-appearance order (labels are level-local node
  // ids, so a dense remap array replaces the hash map).
  std::vector<int> remap(n, -1);
  int next = 0;
  for (int& l : labels) {
    if (remap[static_cast<size_t>(l)] == -1) {
      remap[static_cast<size_t>(l)] = next++;
    }
    l = remap[static_cast<size_t>(l)];
  }
  const size_t num_comms = static_cast<size_t>(next);
  *num_out = num_comms;

  // Group nodes by community (counting sort), then accumulate each
  // community's neighbor-community weights through the dense scratch.
  std::vector<size_t> comm_offsets(num_comms + 1, 0);
  for (int l : labels) ++comm_offsets[static_cast<size_t>(l) + 1];
  for (size_t c = 1; c <= num_comms; ++c) {
    comm_offsets[c] += comm_offsets[c - 1];
  }
  std::vector<uint32_t> comm_nodes(n);
  {
    std::vector<size_t> cursor(comm_offsets.begin(), comm_offsets.end() - 1);
    for (uint32_t v = 0; v < n; ++v) {
      comm_nodes[cursor[static_cast<size_t>(labels[v])]++] = v;
    }
  }

  std::vector<std::tuple<uint32_t, uint32_t, double>> edges;
  edges.reserve(std::min(g.num_edges(), num_comms * 8));
  NeighborWeights weights;
  weights.Resize(num_comms);
  for (size_t a = 0; a < num_comms; ++a) {
    weights.Begin();
    for (size_t k = comm_offsets[a]; k < comm_offsets[a + 1]; ++k) {
      const uint32_t v = comm_nodes[k];
      auto nbrs = g.Neighbors(v);
      auto ws = g.Weights(v);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const int b = labels[nbrs[i]];
        if (static_cast<size_t>(b) < a) continue;  // counted from the other side
        // Intra-community adjacency entries (including both entries of a
        // self loop) are seen twice while scanning community a; halve them.
        weights.Add(b, static_cast<size_t>(b) == a ? ws[i] * 0.5 : ws[i]);
      }
    }
    std::sort(weights.touched.begin(), weights.touched.end());
    for (int b : weights.touched) {
      edges.emplace_back(static_cast<uint32_t>(a), static_cast<uint32_t>(b),
                         weights.Get(b));
    }
  }
  return graph::WeightedGraph::FromEdges(num_comms, edges);
}

}  // namespace

double Modularity(const graph::WeightedGraph& g, const std::vector<int>& labels) {
  const double m2 = g.TotalWeight2m();
  if (m2 <= 0) return 0;
  int max_label = -1;
  for (int l : labels) max_label = std::max(max_label, l);
  if (max_label < 0) return 0;
  const size_t k = static_cast<size_t>(max_label) + 1;
  std::vector<double> sigma_tot(k, 0);
  std::vector<double> sigma_in(k, 0);
  for (uint32_t v = 0; v < g.num_nodes(); ++v) {
    if (labels[v] < 0) continue;
    sigma_tot[static_cast<size_t>(labels[v])] += g.WeightedDegree(v);
    auto nbrs = g.Neighbors(v);
    auto ws = g.Weights(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (labels[nbrs[i]] == labels[v]) {
        sigma_in[static_cast<size_t>(labels[v])] += ws[i];
      }
    }
  }
  double q = 0;
  for (size_t c = 0; c < k; ++c) {
    if (sigma_tot[c] <= 0 && sigma_in[c] <= 0) continue;
    q += sigma_in[c] / m2 - (sigma_tot[c] / m2) * (sigma_tot[c] / m2);
  }
  return q;
}

LouvainResult RunLouvain(const graph::WeightedGraph& g,
                         const LouvainConfig& config) {
  LouvainResult result;
  const size_t n = g.num_nodes();
  result.labels.assign(n, -1);
  if (n == 0) return result;

  Rng rng(config.seed);
  // node_of_level maps original node -> current-level node.
  std::vector<int> node_map(n);
  std::iota(node_map.begin(), node_map.end(), 0);
  graph::WeightedGraph current = g;

  for (int level = 0; level < config.max_levels; ++level) {
    bool any_move = false;
    std::vector<int> labels = LocalMovePhase(current, config, rng, &any_move);
    size_t num_comms = 0;
    graph::WeightedGraph next = Aggregate(current, labels, &num_comms);
    for (size_t v = 0; v < n; ++v) {
      node_map[v] = labels[static_cast<size_t>(node_map[v])];
    }
    result.levels = level + 1;
    if (!any_move || num_comms == current.num_nodes()) break;
    current = std::move(next);
  }

  // Final labels: omit isolated nodes (zero degree in the original graph).
  for (uint32_t v = 0; v < n; ++v) {
    result.labels[v] = g.WeightedDegree(v) > 0 ? node_map[v] : -1;
  }
  result.communities = CommunitySet::FromLabels(result.labels);
  result.modularity = Modularity(g, result.labels);
  return result;
}

}  // namespace cfnet::community
