#ifndef CFNET_COMMUNITY_MODEL_SELECTION_H_
#define CFNET_COMMUNITY_MODEL_SELECTION_H_

#include <cstdint>
#include <vector>

#include "community/coda.h"
#include "graph/bipartite_graph.h"

namespace cfnet::community {

/// Choosing CoDA's community count C by held-out likelihood — the standard
/// affiliation-model selection recipe (hold out a fraction of the edges,
/// fit on the rest, score the held-out edges plus an equal sample of
/// non-edges under the fitted edge-probability model).
struct ModelSelectionConfig {
  double holdout_fraction = 0.15;
  /// Base CoDA settings; num_communities is overridden per candidate.
  CodaConfig coda;
  uint64_t seed = 1;
};

struct CandidateScore {
  int num_communities = 0;
  /// Mean per-pair held-out log-likelihood (edges + sampled non-edges);
  /// higher is better.
  double heldout_log_likelihood = 0;
  double train_log_likelihood = 0;
  size_t detected_communities = 0;
};

struct ModelSelectionResult {
  std::vector<CandidateScore> scores;  // in candidate order
  int best_num_communities = 0;
};

/// Evaluates each candidate C and returns the held-out-likelihood winner.
ModelSelectionResult SelectCodaCommunities(const graph::BipartiteGraph& g,
                                           const std::vector<int>& candidates,
                                           const ModelSelectionConfig& config = {});

}  // namespace cfnet::community

#endif  // CFNET_COMMUNITY_MODEL_SELECTION_H_
