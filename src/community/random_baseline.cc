#include "community/random_baseline.h"

#include "util/rng.h"

namespace cfnet::community {

CommunitySet RandomCommunities(size_t num_nodes, size_t num_communities,
                               uint64_t seed) {
  CommunitySet out;
  out.num_nodes = num_nodes;
  if (num_communities == 0) return out;
  out.communities.resize(num_communities);
  Rng rng(seed);
  for (uint32_t v = 0; v < num_nodes; ++v) {
    out.communities[rng.NextUint64(num_communities)].push_back(v);
  }
  out.PruneSmall(1);
  return out;
}

}  // namespace cfnet::community
