#ifndef CFNET_COMMUNITY_LOUVAIN_H_
#define CFNET_COMMUNITY_LOUVAIN_H_

#include <cstdint>
#include <vector>

#include "community/community_set.h"
#include "graph/weighted_graph.h"

namespace cfnet::community {

struct LouvainConfig {
  int max_levels = 10;
  int max_sweeps_per_level = 20;
  double min_modularity_gain = 1e-6;
  uint64_t seed = 1;
};

struct LouvainResult {
  CommunitySet communities;     // disjoint partition (isolated nodes omitted)
  std::vector<int> labels;      // per-node community id (-1 for isolated)
  double modularity = 0;
  int levels = 0;
};

/// Louvain modularity optimization (Blondel et al. 2008) on a weighted
/// undirected graph — the baseline community detector run on the
/// co-investment projection of the investor graph.
LouvainResult RunLouvain(const graph::WeightedGraph& g,
                         const LouvainConfig& config = {});

/// Weighted modularity of a disjoint partition (labels; -1 = ignore node).
double Modularity(const graph::WeightedGraph& g, const std::vector<int>& labels);

}  // namespace cfnet::community

#endif  // CFNET_COMMUNITY_LOUVAIN_H_
