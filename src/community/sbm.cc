#include "community/sbm.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace cfnet::community {
namespace {

double SafeLog(double x) { return std::log(std::max(x, 1e-300)); }

}  // namespace

SbmResult RunSbm(const graph::BipartiteGraph& g, const SbmConfig& config) {
  SbmResult result;
  const size_t nl = g.num_left();
  const size_t nr = g.num_right();
  const int bk = std::max(1, config.num_investor_blocks);
  const int bl = std::max(1, config.num_company_blocks);
  result.investor_communities.num_nodes = nl;
  if (nl == 0 || nr == 0) return result;

  Rng rng(config.seed);
  std::vector<int> zl(nl);
  std::vector<int> zr(nr);
  for (auto& z : zl) z = static_cast<int>(rng.NextUint64(static_cast<uint64_t>(bk)));
  for (auto& z : zr) z = static_cast<int>(rng.NextUint64(static_cast<uint64_t>(bl)));

  // Block statistics.
  std::vector<int64_t> size_l(static_cast<size_t>(bk), 0);
  std::vector<int64_t> size_r(static_cast<size_t>(bl), 0);
  std::vector<int64_t> m(static_cast<size_t>(bk) * static_cast<size_t>(bl), 0);
  auto mat = [&](int k, int l) -> int64_t& {
    return m[static_cast<size_t>(k) * static_cast<size_t>(bl) +
             static_cast<size_t>(l)];
  };
  for (size_t u = 0; u < nl; ++u) ++size_l[static_cast<size_t>(zl[u])];
  for (size_t v = 0; v < nr; ++v) ++size_r[static_cast<size_t>(zr[v])];
  for (uint32_t u = 0; u < nl; ++u) {
    for (uint32_t v : g.OutNeighbors(u)) ++mat(zl[u], zr[v]);
  }

  const double a = config.prior_a;
  const double b = config.prior_b;

  std::vector<int64_t> edges_to_block(static_cast<size_t>(std::max(bk, bl)), 0);

  for (int sweep = 0; sweep < config.max_sweeps; ++sweep) {
    bool changed = false;

    // --- investor phase ---------------------------------------------------
    for (uint32_t u = 0; u < nl; ++u) {
      std::fill(edges_to_block.begin(), edges_to_block.begin() + bl, 0);
      for (uint32_t v : g.OutNeighbors(u)) {
        ++edges_to_block[static_cast<size_t>(zr[v])];
      }
      // Remove u from its block.
      int old_k = zl[u];
      --size_l[static_cast<size_t>(old_k)];
      for (int l = 0; l < bl; ++l) mat(old_k, l) -= edges_to_block[static_cast<size_t>(l)];

      int best_k = old_k;
      double best_score = -1e300;
      for (int k = 0; k < bk; ++k) {
        double score = 0;
        for (int l = 0; l < bl; ++l) {
          double pairs = static_cast<double>(size_l[static_cast<size_t>(k)]) *
                         static_cast<double>(size_r[static_cast<size_t>(l)]);
          double p = (static_cast<double>(mat(k, l)) + a) / (pairs + a + b);
          p = std::clamp(p, 1e-9, 1.0 - 1e-9);
          double e = static_cast<double>(edges_to_block[static_cast<size_t>(l)]);
          double non_e = static_cast<double>(size_r[static_cast<size_t>(l)]) - e;
          score += e * SafeLog(p) + non_e * SafeLog(1.0 - p);
        }
        if (score > best_score) {
          best_score = score;
          best_k = k;
        }
      }
      if (best_k != old_k) changed = true;
      zl[u] = best_k;
      ++size_l[static_cast<size_t>(best_k)];
      for (int l = 0; l < bl; ++l) mat(best_k, l) += edges_to_block[static_cast<size_t>(l)];
    }

    // --- company phase -----------------------------------------------------
    for (uint32_t v = 0; v < nr; ++v) {
      std::fill(edges_to_block.begin(), edges_to_block.begin() + bk, 0);
      for (uint32_t u : g.InNeighbors(v)) {
        ++edges_to_block[static_cast<size_t>(zl[u])];
      }
      int old_l = zr[v];
      --size_r[static_cast<size_t>(old_l)];
      for (int k = 0; k < bk; ++k) mat(k, old_l) -= edges_to_block[static_cast<size_t>(k)];

      int best_l = old_l;
      double best_score = -1e300;
      for (int l = 0; l < bl; ++l) {
        double score = 0;
        for (int k = 0; k < bk; ++k) {
          double pairs = static_cast<double>(size_l[static_cast<size_t>(k)]) *
                         static_cast<double>(size_r[static_cast<size_t>(l)]);
          double p = (static_cast<double>(mat(k, l)) + a) / (pairs + a + b);
          p = std::clamp(p, 1e-9, 1.0 - 1e-9);
          double e = static_cast<double>(edges_to_block[static_cast<size_t>(k)]);
          double non_e = static_cast<double>(size_l[static_cast<size_t>(k)]) - e;
          score += e * SafeLog(p) + non_e * SafeLog(1.0 - p);
        }
        if (score > best_score) {
          best_score = score;
          best_l = l;
        }
      }
      if (best_l != old_l) changed = true;
      zr[v] = best_l;
      ++size_r[static_cast<size_t>(best_l)];
      for (int k = 0; k < bk; ++k) mat(k, best_l) += edges_to_block[static_cast<size_t>(k)];
    }

    result.sweeps = sweep + 1;
    if (!changed) break;
  }

  // MAP-rate log-likelihood of the final assignment.
  double ll = 0;
  for (int k = 0; k < bk; ++k) {
    for (int l = 0; l < bl; ++l) {
      double pairs = static_cast<double>(size_l[static_cast<size_t>(k)]) *
                     static_cast<double>(size_r[static_cast<size_t>(l)]);
      if (pairs <= 0) continue;
      double edges = static_cast<double>(mat(k, l));
      double p = std::clamp((edges + a) / (pairs + a + b), 1e-9, 1.0 - 1e-9);
      ll += edges * SafeLog(p) + (pairs - edges) * SafeLog(1.0 - p);
    }
  }
  result.log_posterior = ll;
  result.investor_labels = zl;
  result.company_labels = zr;
  result.investor_communities = CommunitySet::FromLabels(zl);
  return result;
}

}  // namespace cfnet::community
