#ifndef CFNET_COMMUNITY_INCREMENTAL_H_
#define CFNET_COMMUNITY_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "community/community_set.h"
#include "community/label_propagation.h"
#include "community/louvain.h"
#include "graph/weighted_graph.h"

namespace cfnet::community {

/// Knobs for the incremental refinement passes. The frontier/halo rule and
/// the fallback guard are documented in DESIGN.md §15.
struct IncrementalCommunityConfig {
  /// Hops of halo eagerly added around the frontier before the first
  /// sweep. The worklist sweeps already activate the neighbors of every
  /// moved vertex, which subsumes a static halo lazily — a halo node whose
  /// frontier neighbors never move keeps its converged previous label, so
  /// revisiting it eagerly is wasted work. Default 0: frontier-seeded,
  /// moves spread activity outward on demand.
  int halo_hops = 0;
  /// Local-move sweeps over the active set (no aggregation levels — the
  /// refinement stays in the original graph's label space).
  int max_sweeps = 20;
  double min_modularity_gain = 1e-6;
  /// Fallback guard: if refined modularity drops more than this below the
  /// previous epoch's, the refinement is discarded and the full algorithm
  /// reruns. Negative values force the fallback (used in tests).
  double modularity_drop_tolerance = 0.02;
  /// Config for the full-recompute fallback paths.
  LouvainConfig full_louvain;
  LabelPropagationConfig full_lp;
};

struct RefineResult {
  std::vector<int> labels;  // per node, -1 = isolated
  CommunitySet communities;
  double modularity = 0;
  /// True when the guard rejected the refinement and the full algorithm
  /// produced this result instead.
  bool full_rebuild = false;
  size_t frontier_size = 0;
  size_t active_nodes = 0;  // frontier + halo actually swept
  int sweeps = 0;
};

/// Carries the previous epoch's labels across an index remap: new-space
/// labels with unmapped (brand-new) nodes set to -1. `old_to_new` uses
/// `graph::BipartiteGraph::kInvalidIndex` for dropped nodes.
std::vector<int> MapLabels(const std::vector<int>& previous_labels,
                           const std::vector<uint32_t>& old_to_new,
                           size_t new_num_nodes);

/// Incremental Louvain: seeds from `seed_labels` (the previous partition,
/// remapped; -1 entries get fresh singletons), then runs modularity local
/// moves restricted to the frontier plus its k-hop halo, letting activity
/// spread to neighbors of moved vertices. Falls back to `RunLouvain` when
/// the refined modularity drops more than the configured tolerance below
/// `previous_modularity`.
RefineResult RefineLouvain(const graph::WeightedGraph& g,
                           const std::vector<int>& seed_labels,
                           const std::vector<uint32_t>& frontier,
                           double previous_modularity,
                           const IncrementalCommunityConfig& config = {});

/// Incremental label propagation: same frontier/halo restriction and
/// fallback guard, with the weighted-majority update rule.
RefineResult RefineLabelPropagation(
    const graph::WeightedGraph& g, const std::vector<int>& seed_labels,
    const std::vector<uint32_t>& frontier, double previous_modularity,
    const IncrementalCommunityConfig& config = {});

}  // namespace cfnet::community

#endif  // CFNET_COMMUNITY_INCREMENTAL_H_
