#include "community/model_selection.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/rng.h"

namespace cfnet::community {
namespace {

constexpr double kMinProb = 1e-9;

}  // namespace

ModelSelectionResult SelectCodaCommunities(const graph::BipartiteGraph& g,
                                           const std::vector<int>& candidates,
                                           const ModelSelectionConfig& config) {
  ModelSelectionResult result;
  if (candidates.empty() || g.num_edges() < 10) return result;

  // Collect edges by external id, shuffle, split.
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  edges.reserve(g.num_edges());
  std::unordered_set<uint64_t> edge_keys;
  edge_keys.reserve(g.num_edges() * 2);
  for (uint32_t l = 0; l < g.num_left(); ++l) {
    for (uint32_t r : g.OutNeighbors(l)) {
      edges.emplace_back(g.LeftId(l), g.RightId(r));
      edge_keys.insert((static_cast<uint64_t>(l) << 32) | r);
    }
  }
  Rng rng(config.seed);
  rng.Shuffle(edges);
  size_t holdout = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(edges.size()) *
                             config.holdout_fraction));
  holdout = std::min(holdout, edges.size() - 1);
  std::vector<std::pair<uint64_t, uint64_t>> heldout_edges(
      edges.begin(), edges.begin() + static_cast<long>(holdout));
  std::vector<std::pair<uint64_t, uint64_t>> train_edges(
      edges.begin() + static_cast<long>(holdout), edges.end());
  graph::BipartiteGraph train_graph =
      graph::BipartiteGraph::FromEdges(train_edges);

  // Sampled non-edges (in the full graph) for the negative half of the
  // held-out score. Indices refer to the *original* graph for uniform
  // coverage, then map to train-graph indices for evaluation.
  std::vector<std::pair<uint64_t, uint64_t>> non_edges;
  non_edges.reserve(holdout);
  size_t attempts = 0;
  while (non_edges.size() < holdout && attempts++ < holdout * 50) {
    uint32_t l = static_cast<uint32_t>(rng.NextUint64(g.num_left()));
    uint32_t r = static_cast<uint32_t>(rng.NextUint64(g.num_right()));
    if (edge_keys.count((static_cast<uint64_t>(l) << 32) | r)) continue;
    non_edges.emplace_back(g.LeftId(l), g.RightId(r));
  }

  double best_score = -1e300;
  for (int c : candidates) {
    CodaConfig coda_config = config.coda;
    coda_config.num_communities = c;
    CodaResult fit = Coda(coda_config).Fit(train_graph);

    double ll = 0;
    size_t scored = 0;
    for (const auto& [lid, rid] : heldout_edges) {
      uint32_t l = train_graph.LeftIndexOf(lid);
      uint32_t r = train_graph.RightIndexOf(rid);
      if (l == graph::BipartiteGraph::kInvalidIndex ||
          r == graph::BipartiteGraph::kInvalidIndex) {
        continue;  // endpoint lost all training edges; cannot be scored
      }
      ll += std::log(std::max(fit.EdgeProbability(l, r), kMinProb));
      ++scored;
    }
    for (const auto& [lid, rid] : non_edges) {
      uint32_t l = train_graph.LeftIndexOf(lid);
      uint32_t r = train_graph.RightIndexOf(rid);
      if (l == graph::BipartiteGraph::kInvalidIndex ||
          r == graph::BipartiteGraph::kInvalidIndex) {
        continue;
      }
      ll += std::log(
          std::max(1.0 - fit.EdgeProbability(l, r), kMinProb));
      ++scored;
    }

    CandidateScore score;
    score.num_communities = c;
    score.heldout_log_likelihood =
        scored == 0 ? -1e300 : ll / static_cast<double>(scored);
    score.train_log_likelihood = fit.final_log_likelihood;
    score.detected_communities = fit.investor_communities.communities.size();
    if (score.heldout_log_likelihood > best_score) {
      best_score = score.heldout_log_likelihood;
      result.best_num_communities = c;
    }
    result.scores.push_back(score);
  }
  return result;
}

}  // namespace cfnet::community
