#ifndef CFNET_COMMUNITY_QUALITY_H_
#define CFNET_COMMUNITY_QUALITY_H_

#include <cstdint>
#include <vector>

#include "community/community_set.h"
#include "graph/weighted_graph.h"

namespace cfnet::community {

/// Structural community-quality measures on the weighted co-investment
/// projection, complementing the paper's behavioural (shared-investment)
/// metrics.

/// Weighted conductance of a node set: cut(S, V\S) / min(vol(S), vol(V\S)).
/// Lower is better; 0 = perfectly separated, 1 = all edge weight leaves.
/// Returns 1.0 for empty/degenerate sets.
double Conductance(const graph::WeightedGraph& g,
                   const std::vector<uint32_t>& members);

/// Mean conductance over the communities of a set (ignoring empties).
double MeanConductance(const graph::WeightedGraph& g, const CommunitySet& set);

/// Fraction of total edge weight that falls inside some community
/// (both endpoints share a community). In [0, 1]; higher = better cover.
double Coverage(const graph::WeightedGraph& g, const CommunitySet& set);

}  // namespace cfnet::community

#endif  // CFNET_COMMUNITY_QUALITY_H_
