#ifndef CFNET_COMMUNITY_CODA_H_
#define CFNET_COMMUNITY_CODA_H_

#include <cstdint>
#include <vector>

#include "community/community_set.h"
#include "graph/bipartite_graph.h"

namespace cfnet::community {

/// Configuration for CoDA (Communities through Directed Affiliations).
struct CodaConfig {
  /// Number of latent communities C. The paper runs SNAP's CoDA and
  /// obtains 96 investor communities.
  int num_communities = 96;
  int max_iterations = 50;       // full F/H sweeps
  double tolerance = 1e-4;       // relative log-likelihood improvement stop
  double initial_step = 0.25;    // backtracking line-search start
  double step_beta = 0.5;        // backtracking shrink factor
  int max_backtracks = 8;
  double max_affiliation = 1000; // clamp for numeric safety (bigCLAM's cap)
  uint64_t seed = 1;
  /// Parallel row updates (F rows are independent given H, and vice versa).
  int num_threads = 0;  // 0 = hardware default
  /// Membership threshold; <= 0 selects the density-based default
  /// delta = sqrt(-log(1 - eps)), eps = |E| / (|L|*|R|).
  double membership_threshold = 0;
  /// Communities smaller than this are discarded in the output.
  size_t min_community_size = 3;
};

/// Result of a CoDA fit.
struct CodaResult {
  CommunitySet investor_communities;   // over left (investor) indices
  CommunitySet company_communities;    // over right (company) indices
  std::vector<double> log_likelihood_trace;  // per iteration
  int iterations = 0;
  double final_log_likelihood = 0;
  double threshold_used = 0;

  /// Fitted affiliation factors, row-major (num_left x C and num_right x C).
  /// Kept for held-out likelihood evaluation / model selection.
  int num_factors = 0;
  std::vector<double> f;  // outgoing (investor) affiliations
  std::vector<double> h;  // incoming (company) affiliations

  /// Model edge probability 1 - exp(-F_u . H_v) for dense indices (u, v).
  double EdgeProbability(uint32_t left, uint32_t right) const;
};

/// Warm-start seed for `Coda::FitWarm`: the previous epoch's factor
/// matrices plus the index remaps and frontier produced by the delta merge
/// (graph/delta.h). Mapped non-frontier rows copy their previous factors;
/// frontier and brand-new rows are re-initialized.
struct CodaWarmStart {
  const CodaResult* previous = nullptr;
  /// Old dense index -> new dense index (kInvalidIndex = dropped).
  std::vector<uint32_t> old_to_new_left;
  std::vector<uint32_t> old_to_new_right;
  /// New-dense rows whose neighborhoods changed; re-initialized.
  std::vector<uint32_t> frontier_left;
  std::vector<uint32_t> frontier_right;
};

/// CoDA — the directed/bipartite affiliation-network community detector of
/// Yang, McAuley & Leskovec (WSDM'14), reimplemented from the paper.
///
/// Model: investor u has a nonnegative outgoing-affiliation vector F_u,
/// company v an incoming-affiliation vector H_v; an investment edge u->v
/// appears with probability 1 - exp(-F_u . H_v). The fit maximizes the
/// bipartite log-likelihood
///
///   L = sum_{(u,v) in E} log(1 - exp(-F_u.H_v)) - sum_{(u,v) notin E} F_u.H_v
///
/// by block-coordinate projected-gradient ascent with backtracking line
/// search, alternating full sweeps over F rows and H rows. The non-edge sum
/// is computed in O(C) per row via cached column sums of F and H.
///
/// After convergence, u joins community c iff F_uc exceeds a density-derived
/// threshold (likewise for companies via H), yielding overlapping
/// communities of investors that direct their investments at the same
/// latent group of companies — exactly the herding structure §5 measures.
class Coda {
 public:
  explicit Coda(CodaConfig config) : config_(config) {}

  /// Fits the model to the investor->company bipartite graph.
  CodaResult Fit(const graph::BipartiteGraph& g) const;

  /// Warm-started fit: reuses the previous epoch's factor matrices for
  /// mapped non-frontier rows and re-initializes frontier / brand-new rows
  /// (deterministic per-index hash jitter), then iterates to the same
  /// convergence criterion as `Fit`. Falls back to a cold `Fit` when the
  /// warm start is unusable (no previous result, or a different factor
  /// count).
  CodaResult FitWarm(const graph::BipartiteGraph& g,
                     const CodaWarmStart& warm) const;

 private:
  /// The shared ascent loop: runs block-coordinate updates from the given
  /// initial factors to convergence, then assigns memberships.
  CodaResult FitFrom(const graph::BipartiteGraph& g, std::vector<double> f,
                     std::vector<double> h) const;

  CodaConfig config_;
};

}  // namespace cfnet::community

#endif  // CFNET_COMMUNITY_CODA_H_
