#ifndef CFNET_COMMUNITY_COMMUNITY_SET_H_
#define CFNET_COMMUNITY_COMMUNITY_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cfnet::community {

/// A (possibly overlapping) set of communities over nodes [0, num_nodes).
/// For the investor graph, node indices are the bipartite graph's left
/// (investor) dense indices.
struct CommunitySet {
  size_t num_nodes = 0;
  /// communities[c] = sorted, deduplicated member node indices.
  std::vector<std::vector<uint32_t>> communities;

  size_t size() const { return communities.size(); }

  double AverageSize() const {
    if (communities.empty()) return 0;
    size_t total = 0;
    for (const auto& c : communities) total += c.size();
    return static_cast<double>(total) / static_cast<double>(communities.size());
  }

  /// Drops communities smaller than `min_size` members.
  void PruneSmall(size_t min_size) {
    std::vector<std::vector<uint32_t>> kept;
    for (auto& c : communities) {
      if (c.size() >= min_size) kept.push_back(std::move(c));
    }
    communities = std::move(kept);
  }

  /// Builds from a disjoint label assignment (label < 0 = unassigned).
  static CommunitySet FromLabels(const std::vector<int>& labels) {
    CommunitySet out;
    out.num_nodes = labels.size();
    int max_label = -1;
    for (int l : labels) max_label = l > max_label ? l : max_label;
    out.communities.resize(static_cast<size_t>(max_label + 1));
    for (uint32_t v = 0; v < labels.size(); ++v) {
      if (labels[v] >= 0) {
        out.communities[static_cast<size_t>(labels[v])].push_back(v);
      }
    }
    // Remove empty label slots.
    out.PruneSmall(1);
    return out;
  }
};

}  // namespace cfnet::community

#endif  // CFNET_COMMUNITY_COMMUNITY_SET_H_
