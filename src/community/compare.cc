#include "community/compare.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.h"

namespace cfnet::community {
namespace {

/// Sorted community-membership list per node.
std::vector<std::vector<uint32_t>> MembershipLists(const CommunitySet& set,
                                                   size_t num_nodes) {
  std::vector<std::vector<uint32_t>> member_of(num_nodes);
  for (uint32_t ci = 0; ci < set.communities.size(); ++ci) {
    for (uint32_t v : set.communities[ci]) {
      if (v < num_nodes) member_of[v].push_back(ci);
    }
  }
  for (auto& m : member_of) std::sort(m.begin(), m.end());
  return member_of;
}

bool Together(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

uint64_t PackPair(uint32_t a, uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

/// Fraction of `cover`'s co-membership pairs that are also together in
/// `other_membership`; sets *pair_count to the number of distinct pairs
/// (exact in exhaustive mode, the multiset total when sampling).
double TogetherFraction(
    const CommunitySet& cover,
    const std::vector<std::vector<uint32_t>>& other_membership,
    size_t max_pairs, uint64_t seed, size_t* pair_count) {
  size_t total_pairs = 0;
  for (const auto& c : cover.communities) {
    total_pairs += c.size() * (c.size() - 1) / 2;
  }
  *pair_count = total_pairs;
  if (total_pairs == 0) return 0;

  if (total_pairs <= max_pairs) {
    // Exhaustive with dedup (overlapping communities repeat pairs).
    std::unordered_set<uint64_t> pairs;
    pairs.reserve(total_pairs * 2);
    for (const auto& c : cover.communities) {
      for (size_t i = 0; i < c.size(); ++i) {
        for (size_t j = i + 1; j < c.size(); ++j) {
          pairs.insert(PackPair(c[i], c[j]));
        }
      }
    }
    *pair_count = pairs.size();
    size_t together = 0;
    for (uint64_t p : pairs) {
      uint32_t a = static_cast<uint32_t>(p >> 32);
      uint32_t b = static_cast<uint32_t>(p & 0xffffffffull);
      if (a < other_membership.size() && b < other_membership.size() &&
          Together(other_membership[a], other_membership[b])) {
        ++together;
      }
    }
    return static_cast<double>(together) / static_cast<double>(pairs.size());
  }

  // Sampled: pick communities proportional to their pair counts.
  Rng rng(seed);
  std::vector<double> weights;
  weights.reserve(cover.communities.size());
  for (const auto& c : cover.communities) {
    weights.push_back(static_cast<double>(c.size() * (c.size() - 1) / 2));
  }
  size_t together = 0;
  for (size_t s = 0; s < max_pairs; ++s) {
    const auto& c = cover.communities[rng.Categorical(weights)];
    size_t i = static_cast<size_t>(rng.NextUint64(c.size()));
    size_t j = static_cast<size_t>(rng.NextUint64(c.size() - 1));
    if (j >= i) ++j;
    uint32_t a = c[i];
    uint32_t b = c[j];
    if (a < other_membership.size() && b < other_membership.size() &&
        Together(other_membership[a], other_membership[b])) {
      ++together;
    }
  }
  return static_cast<double>(together) / static_cast<double>(max_pairs);
}

}  // namespace

PairwiseAgreement ComparePairwise(const CommunitySet& detected,
                                  const CommunitySet& truth,
                                  size_t max_pairs_per_side, uint64_t seed) {
  PairwiseAgreement out;
  size_t num_nodes = std::max(detected.num_nodes, truth.num_nodes);
  auto truth_membership = MembershipLists(truth, num_nodes);
  auto detected_membership = MembershipLists(detected, num_nodes);

  out.recall = TogetherFraction(truth, detected_membership, max_pairs_per_side,
                                seed, &out.truth_pairs);
  out.precision = TogetherFraction(detected, truth_membership,
                                   max_pairs_per_side, seed + 1,
                                   &out.detected_pairs);
  if (out.precision + out.recall > 0) {
    out.f1 = 2 * out.precision * out.recall / (out.precision + out.recall);
  }
  return out;
}

double NormalizedMutualInformation(const std::vector<int>& labels_a,
                                   const std::vector<int>& labels_b) {
  const size_t n = std::min(labels_a.size(), labels_b.size());
  std::unordered_map<int, double> pa;
  std::unordered_map<int, double> pb;
  std::unordered_map<int64_t, double> pab;
  double count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (labels_a[i] < 0 || labels_b[i] < 0) continue;
    ++count;
    ++pa[labels_a[i]];
    ++pb[labels_b[i]];
    ++pab[(static_cast<int64_t>(labels_a[i]) << 32) | labels_b[i]];
  }
  if (count == 0) return 0;
  double ha = 0;
  for (auto& [k, c] : pa) {
    double p = c / count;
    ha -= p * std::log(p);
  }
  double hb = 0;
  for (auto& [k, c] : pb) {
    double p = c / count;
    hb -= p * std::log(p);
  }
  if (ha == 0 && hb == 0) return 1.0;  // both trivial and identical
  if (ha == 0 || hb == 0) return 0.0;
  double mi = 0;
  for (auto& [key, c] : pab) {
    double p = c / count;
    double p_a = pa[static_cast<int>(key >> 32)] / count;
    double p_b = pb[static_cast<int>(key & 0xffffffff)] / count;
    mi += p * std::log(p / (p_a * p_b));
  }
  return mi / std::sqrt(ha * hb);
}

}  // namespace cfnet::community
