#ifndef CFNET_COMMUNITY_COMPARE_H_
#define CFNET_COMMUNITY_COMPARE_H_

#include <cstdint>
#include <vector>

#include "community/community_set.h"

namespace cfnet::community {

/// Agreement measures between two community covers — used to score how
/// well each detector recovers the synthetic world's *planted* communities
/// (the evaluation a real crawl can never run) and to quantify community
/// drift over time (§7).

/// Pairwise co-membership precision/recall/F1: a node pair counts as
/// "together" in a cover when some community contains both. Works for
/// overlapping covers. Pairs are enumerated exhaustively when cheap and
/// sampled otherwise (seeded).
struct PairwiseAgreement {
  double precision = 0;  // together-in-detected that are together-in-truth
  double recall = 0;     // together-in-truth recovered by detected
  double f1 = 0;
  size_t truth_pairs = 0;
  size_t detected_pairs = 0;
};

PairwiseAgreement ComparePairwise(const CommunitySet& detected,
                                  const CommunitySet& truth,
                                  size_t max_pairs_per_side = 2000000,
                                  uint64_t seed = 1);

/// Normalized mutual information of two *disjoint* label assignments
/// (label < 0 = unassigned, excluded from both marginals). In [0, 1].
double NormalizedMutualInformation(const std::vector<int>& labels_a,
                                   const std::vector<int>& labels_b);

}  // namespace cfnet::community

#endif  // CFNET_COMMUNITY_COMPARE_H_
