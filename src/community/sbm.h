#ifndef CFNET_COMMUNITY_SBM_H_
#define CFNET_COMMUNITY_SBM_H_

#include <cstdint>
#include <vector>

#include "community/community_set.h"
#include "graph/bipartite_graph.h"

namespace cfnet::community {

struct SbmConfig {
  int num_investor_blocks = 16;
  int num_company_blocks = 16;
  int max_sweeps = 30;
  /// Beta(a, b) prior on block-pair edge rates.
  double prior_a = 1.0;
  double prior_b = 1.0;
  uint64_t seed = 1;
};

struct SbmResult {
  CommunitySet investor_communities;
  std::vector<int> investor_labels;
  std::vector<int> company_labels;
  double log_posterior = 0;
  int sweeps = 0;
};

/// Bipartite Bernoulli stochastic block model, fit by iterated conditional
/// modes (MAP coordinate ascent): alternately reassign each investor to
/// the block maximizing its conditional posterior given company blocks,
/// and vice versa, with Beta-smoothed MAP edge-rate estimates per block
/// pair. This implements the §7 "community inference using stochastic
/// block models, extended to directed (bipartite) graphs" direction.
SbmResult RunSbm(const graph::BipartiteGraph& g, const SbmConfig& config = {});

}  // namespace cfnet::community

#endif  // CFNET_COMMUNITY_SBM_H_
