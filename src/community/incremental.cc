#include "community/incremental.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "graph/bipartite_graph.h"
#include "util/logging.h"

namespace cfnet::community {
namespace {

constexpr uint32_t kInvalid = graph::BipartiteGraph::kInvalidIndex;

/// Dense label-weight accumulator (same epoch-stamp pattern as the full
/// Louvain/LP kernels): valid only while stamp matches, so per-vertex reset
/// is O(1).
struct DenseWeights {
  std::vector<double> weight_to;
  std::vector<uint32_t> stamp;
  std::vector<int> touched;
  uint32_t epoch = 0;

  explicit DenseWeights(size_t n) : weight_to(n, 0), stamp(n, 0) {
    touched.reserve(64);
  }

  void Begin() {
    ++epoch;
    touched.clear();
    if (epoch == 0) {
      std::fill(stamp.begin(), stamp.end(), 0);
      epoch = 1;
    }
  }

  void Add(int c, double w) {
    const size_t idx = static_cast<size_t>(c);
    if (stamp[idx] != epoch) {
      stamp[idx] = epoch;
      weight_to[idx] = 0;
      touched.push_back(c);
    }
    weight_to[idx] += w;
  }

  double Get(int c) const {
    const size_t idx = static_cast<size_t>(c);
    return stamp[idx] == epoch ? weight_to[idx] : 0.0;
  }
};

/// Seed labels compacted to [0, n): previous-partition labels keep their
/// grouping (first-appearance order), -1 seeds become fresh singletons.
std::vector<int> CompactSeeds(const graph::WeightedGraph& g,
                              const std::vector<int>& seed_labels) {
  const size_t n = g.num_nodes();
  std::vector<int> label(n, -1);
  std::unordered_map<int, int> remap;
  int next = 0;
  for (size_t v = 0; v < n; ++v) {
    const int s = v < seed_labels.size() ? seed_labels[v] : -1;
    if (s >= 0) {
      auto [it, inserted] = remap.try_emplace(s, next);
      if (inserted) ++next;
      label[v] = it->second;
    }
  }
  for (size_t v = 0; v < n; ++v) {
    if (label[v] < 0) label[v] = next++;
  }
  CFNET_CHECK(static_cast<size_t>(next) <= n);
  return label;
}

/// Frontier + k-hop halo as a flag vector; returns the sorted active list.
std::vector<uint32_t> BuildActiveSet(const graph::WeightedGraph& g,
                                     const std::vector<uint32_t>& frontier,
                                     int halo_hops, std::vector<char>* active) {
  const size_t n = g.num_nodes();
  active->assign(n, 0);
  std::vector<uint32_t> wave;
  for (uint32_t v : frontier) {
    if (v < n && !(*active)[v]) {
      (*active)[v] = 1;
      wave.push_back(v);
    }
  }
  for (int hop = 0; hop < halo_hops; ++hop) {
    std::vector<uint32_t> next_wave;
    for (uint32_t v : wave) {
      for (uint32_t u : g.Neighbors(v)) {
        if (!(*active)[u]) {
          (*active)[u] = 1;
          next_wave.push_back(u);
        }
      }
    }
    wave = std::move(next_wave);
    if (wave.empty()) break;
  }
  std::vector<uint32_t> list;
  for (uint32_t v = 0; v < n; ++v) {
    if ((*active)[v]) list.push_back(v);
  }
  return list;
}

/// Shared finalization: isolated nodes -> -1, labels compacted in
/// first-appearance order, communities + modularity computed, and the
/// fallback guard applied via `full_rebuild_fn` when quality degraded.
template <typename FullRebuildFn>
void Finalize(const graph::WeightedGraph& g, const std::vector<int>& label,
              double previous_modularity,
              const IncrementalCommunityConfig& config, RefineResult* res,
              FullRebuildFn&& full_rebuild_fn) {
  const size_t n = g.num_nodes();
  res->labels.assign(n, -1);
  std::vector<int> remap(n, -1);
  int next = 0;
  for (uint32_t v = 0; v < n; ++v) {
    if (g.WeightedDegree(v) <= 0) continue;
    const size_t l = static_cast<size_t>(label[v]);
    if (remap[l] == -1) remap[l] = next++;
    res->labels[v] = remap[l];
  }
  res->communities = CommunitySet::FromLabels(res->labels);
  res->modularity = Modularity(g, res->labels);
  if (previous_modularity - res->modularity >
      config.modularity_drop_tolerance) {
    full_rebuild_fn(res);
    res->full_rebuild = true;
  }
}

}  // namespace

std::vector<int> MapLabels(const std::vector<int>& previous_labels,
                           const std::vector<uint32_t>& old_to_new,
                           size_t new_num_nodes) {
  std::vector<int> out(new_num_nodes, -1);
  for (size_t v = 0; v < old_to_new.size() && v < previous_labels.size(); ++v) {
    const uint32_t nl = old_to_new[v];
    if (nl != kInvalid && nl < new_num_nodes) out[nl] = previous_labels[v];
  }
  return out;
}

RefineResult RefineLouvain(const graph::WeightedGraph& g,
                           const std::vector<int>& seed_labels,
                           const std::vector<uint32_t>& frontier,
                           double previous_modularity,
                           const IncrementalCommunityConfig& config) {
  RefineResult res;
  const size_t n = g.num_nodes();
  res.frontier_size = frontier.size();
  if (n == 0) return res;
  const double m2 = g.TotalWeight2m();
  std::vector<int> label = CompactSeeds(g, seed_labels);
  if (m2 > 0) {
    std::vector<double> sigma_tot(n, 0);
    for (uint32_t v = 0; v < n; ++v) {
      sigma_tot[static_cast<size_t>(label[v])] += g.WeightedDegree(v);
    }

    std::vector<char> active;
    std::vector<uint32_t> active_list =
        BuildActiveSet(g, frontier, config.halo_hops, &active);
    res.active_nodes = active_list.size();

    // Worklist sweeps: only nodes whose neighborhood moved last sweep are
    // revisited — after the first pass over frontier + halo, the active set
    // shrinks to the wavefront of actual moves instead of accumulating.
    std::vector<char> next(n, 0);
    std::vector<uint32_t> next_list;
    DenseWeights weights(n);
    for (int sweep = 0; sweep < config.max_sweeps; ++sweep) {
      bool moved = false;
      next_list.clear();
      for (uint32_t v : active_list) {
        const double k_v = g.WeightedDegree(v);
        if (k_v <= 0) continue;
        weights.Begin();
        auto nbrs = g.Neighbors(v);
        auto ws = g.Weights(v);
        for (size_t i = 0; i < nbrs.size(); ++i) {
          if (nbrs[i] == v) continue;
          weights.Add(label[nbrs[i]], ws[i]);
        }
        const int old_c = label[v];
        sigma_tot[static_cast<size_t>(old_c)] -= k_v;
        double best_gain = 0;
        int best_c = old_c;
        const double w_old = weights.Get(old_c);
        for (int cand : weights.touched) {
          const double w_in = weights.Get(cand);
          double gain = (w_in - w_old) / m2 * 2.0 -
                        k_v * (sigma_tot[static_cast<size_t>(cand)] -
                               sigma_tot[static_cast<size_t>(old_c)]) /
                            (m2 * m2) * 2.0;
          if (gain > best_gain + config.min_modularity_gain) {
            best_gain = gain;
            best_c = cand;
          }
        }
        sigma_tot[static_cast<size_t>(best_c)] += k_v;
        if (best_c != old_c) {
          label[v] = best_c;
          moved = true;
          // A move can destabilize the neighborhood: revisit it next sweep.
          for (uint32_t u : nbrs) {
            if (!next[u]) {
              next[u] = 1;
              next_list.push_back(u);
            }
          }
        }
      }
      res.sweeps = sweep + 1;
      if (!moved) break;
      std::sort(next_list.begin(), next_list.end());
      active_list = next_list;
      for (uint32_t u : active_list) next[u] = 0;
      res.active_nodes = std::max(res.active_nodes, active_list.size());
    }
  }

  Finalize(g, label, previous_modularity, config, &res, [&](RefineResult* r) {
    LouvainResult full = RunLouvain(g, config.full_louvain);
    r->labels = std::move(full.labels);
    r->communities = std::move(full.communities);
    r->modularity = full.modularity;
  });
  return res;
}

RefineResult RefineLabelPropagation(const graph::WeightedGraph& g,
                                    const std::vector<int>& seed_labels,
                                    const std::vector<uint32_t>& frontier,
                                    double previous_modularity,
                                    const IncrementalCommunityConfig& config) {
  RefineResult res;
  const size_t n = g.num_nodes();
  res.frontier_size = frontier.size();
  if (n == 0) return res;
  std::vector<int> label = CompactSeeds(g, seed_labels);

  std::vector<char> active;
  std::vector<uint32_t> active_list =
      BuildActiveSet(g, frontier, config.halo_hops, &active);
  res.active_nodes = active_list.size();

  // Same worklist discipline as RefineLouvain: revisit only nodes with a
  // moved neighbor after the initial frontier + halo pass.
  std::vector<char> next(n, 0);
  std::vector<uint32_t> next_list;
  DenseWeights weights(n);
  for (int sweep = 0; sweep < config.max_sweeps; ++sweep) {
    bool moved = false;
    next_list.clear();
    for (uint32_t v : active_list) {
      auto nbrs = g.Neighbors(v);
      if (nbrs.empty()) continue;
      auto ws = g.Weights(v);
      weights.Begin();
      for (size_t i = 0; i < nbrs.size(); ++i) {
        weights.Add(label[nbrs[i]], ws[i]);
      }
      int best = label[v];
      double best_w = -1;
      for (int l : weights.touched) {
        const double w = weights.Get(l);
        // Same deterministic tie-break as the full LP: current label first,
        // then the smaller label.
        if (w > best_w || (w == best_w && l == label[v]) ||
            (w == best_w && best != label[v] && l < best)) {
          best_w = w;
          best = l;
        }
      }
      if (best != label[v]) {
        label[v] = best;
        moved = true;
        for (uint32_t u : nbrs) {
          if (!next[u]) {
            next[u] = 1;
            next_list.push_back(u);
          }
        }
      }
    }
    res.sweeps = sweep + 1;
    if (!moved) break;
    std::sort(next_list.begin(), next_list.end());
    active_list = next_list;
    for (uint32_t u : active_list) next[u] = 0;
    res.active_nodes = std::max(res.active_nodes, active_list.size());
  }

  Finalize(g, label, previous_modularity, config, &res, [&](RefineResult* r) {
    LabelPropagationResult full = RunLabelPropagation(g, config.full_lp);
    r->labels = std::move(full.labels);
    r->communities = std::move(full.communities);
    r->modularity = Modularity(g, r->labels);
  });
  return res;
}

}  // namespace cfnet::community
