#include "community/quality.h"

#include <algorithm>
#include <unordered_set>

namespace cfnet::community {

double Conductance(const graph::WeightedGraph& g,
                   const std::vector<uint32_t>& members) {
  if (members.empty()) return 1.0;
  std::unordered_set<uint32_t> in_set(members.begin(), members.end());
  double cut = 0;
  double vol = 0;
  for (uint32_t v : members) {
    auto nbrs = g.Neighbors(v);
    auto ws = g.Weights(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      vol += ws[i];
      if (!in_set.count(nbrs[i])) cut += ws[i];
    }
  }
  double complement_vol = g.TotalWeight2m() - vol;
  double denom = std::min(vol, complement_vol);
  if (denom <= 0) return 1.0;
  return cut / denom;
}

double MeanConductance(const graph::WeightedGraph& g, const CommunitySet& set) {
  if (set.communities.empty()) return 1.0;
  double sum = 0;
  size_t counted = 0;
  for (const auto& members : set.communities) {
    if (members.empty()) continue;
    sum += Conductance(g, members);
    ++counted;
  }
  return counted == 0 ? 1.0 : sum / static_cast<double>(counted);
}

double Coverage(const graph::WeightedGraph& g, const CommunitySet& set) {
  const double total = g.TotalWeight2m();
  if (total <= 0) return 0;
  // Per-node community memberships for overlap-aware membership checks.
  std::vector<std::vector<uint32_t>> member_of(g.num_nodes());
  for (uint32_t ci = 0; ci < set.communities.size(); ++ci) {
    for (uint32_t v : set.communities[ci]) {
      if (v < member_of.size()) member_of[v].push_back(ci);
    }
  }
  for (auto& m : member_of) std::sort(m.begin(), m.end());
  double covered = 0;
  for (uint32_t v = 0; v < g.num_nodes(); ++v) {
    auto nbrs = g.Neighbors(v);
    auto ws = g.Weights(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const auto& a = member_of[v];
      const auto& b = member_of[nbrs[i]];
      // Sorted intersection test.
      size_t x = 0;
      size_t y = 0;
      bool shared = false;
      while (x < a.size() && y < b.size()) {
        if (a[x] < b[y]) {
          ++x;
        } else if (a[x] > b[y]) {
          ++y;
        } else {
          shared = true;
          break;
        }
      }
      if (shared) covered += ws[i];
    }
  }
  return covered / total;
}

}  // namespace cfnet::community
