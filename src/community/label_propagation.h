#ifndef CFNET_COMMUNITY_LABEL_PROPAGATION_H_
#define CFNET_COMMUNITY_LABEL_PROPAGATION_H_

#include <cstdint>
#include <vector>

#include "community/community_set.h"
#include "graph/weighted_graph.h"

namespace cfnet::community {

struct LabelPropagationConfig {
  int max_iterations = 50;
  uint64_t seed = 1;
};

struct LabelPropagationResult {
  CommunitySet communities;
  std::vector<int> labels;  // -1 for isolated nodes
  int iterations = 0;
};

/// Asynchronous weighted label propagation (Raghavan et al. 2007): each
/// node repeatedly adopts the label with the largest incident edge weight,
/// in random order, until stable. Fast, parameter-free baseline on the
/// co-investment projection.
LabelPropagationResult RunLabelPropagation(
    const graph::WeightedGraph& g, const LabelPropagationConfig& config = {});

}  // namespace cfnet::community

#endif  // CFNET_COMMUNITY_LABEL_PROPAGATION_H_
