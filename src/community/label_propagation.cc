#include "community/label_propagation.h"

#include <numeric>
#include <unordered_map>

#include "util/rng.h"

namespace cfnet::community {

LabelPropagationResult RunLabelPropagation(
    const graph::WeightedGraph& g, const LabelPropagationConfig& config) {
  LabelPropagationResult result;
  const size_t n = g.num_nodes();
  result.labels.assign(n, -1);
  if (n == 0) return result;

  std::vector<int> label(n);
  std::iota(label.begin(), label.end(), 0);
  Rng rng(config.seed);
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  std::unordered_map<int, double> weight_of;
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    rng.Shuffle(order);
    bool changed = false;
    for (uint32_t v : order) {
      auto nbrs = g.Neighbors(v);
      if (nbrs.empty()) continue;
      auto ws = g.Weights(v);
      weight_of.clear();
      for (size_t i = 0; i < nbrs.size(); ++i) {
        weight_of[label[nbrs[i]]] += ws[i];
      }
      int best = label[v];
      double best_w = -1;
      for (const auto& [l, w] : weight_of) {
        // Ties break toward the current label, then the smaller label, for
        // determinism under a fixed seed.
        if (w > best_w || (w == best_w && l == label[v]) ||
            (w == best_w && best != label[v] && l < best)) {
          best_w = w;
          best = l;
        }
      }
      if (best != label[v]) {
        label[v] = best;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed) break;
  }

  for (uint32_t v = 0; v < n; ++v) {
    result.labels[v] = g.Neighbors(v).empty() ? -1 : label[v];
  }
  result.communities = CommunitySet::FromLabels(result.labels);
  return result;
}

}  // namespace cfnet::community
