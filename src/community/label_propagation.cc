#include "community/label_propagation.h"

#include <algorithm>
#include <numeric>

#include "util/rng.h"

namespace cfnet::community {

LabelPropagationResult RunLabelPropagation(
    const graph::WeightedGraph& g, const LabelPropagationConfig& config) {
  LabelPropagationResult result;
  const size_t n = g.num_nodes();
  result.labels.assign(n, -1);
  if (n == 0) return result;

  std::vector<int> label(n);
  std::iota(label.begin(), label.end(), 0);
  Rng rng(config.seed);
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  // Dense label-weight accumulator (labels stay within [0, n)): weight_of[l]
  // is valid only when stamp[l] == epoch, so per-node reset is O(1) instead
  // of a hash-map clear.
  std::vector<double> weight_of(n, 0);
  std::vector<uint32_t> stamp(n, 0);
  std::vector<int> touched;
  uint32_t epoch = 0;
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    rng.Shuffle(order);
    bool changed = false;
    for (uint32_t v : order) {
      auto nbrs = g.Neighbors(v);
      if (nbrs.empty()) continue;
      auto ws = g.Weights(v);
      ++epoch;
      touched.clear();
      if (epoch == 0) {  // wrapped: stamps are stale, reset them
        std::fill(stamp.begin(), stamp.end(), 0);
        epoch = 1;
      }
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const size_t l = static_cast<size_t>(label[nbrs[i]]);
        if (stamp[l] != epoch) {
          stamp[l] = epoch;
          weight_of[l] = 0;
          touched.push_back(static_cast<int>(l));
        }
        weight_of[l] += ws[i];
      }
      int best = label[v];
      double best_w = -1;
      for (int l : touched) {
        const double w = weight_of[static_cast<size_t>(l)];
        // Ties break toward the current label, then the smaller label, for
        // determinism under a fixed seed.
        if (w > best_w || (w == best_w && l == label[v]) ||
            (w == best_w && best != label[v] && l < best)) {
          best_w = w;
          best = l;
        }
      }
      if (best != label[v]) {
        label[v] = best;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed) break;
  }

  for (uint32_t v = 0; v < n; ++v) {
    result.labels[v] = g.Neighbors(v).empty() ? -1 : label[v];
  }
  result.communities = CommunitySet::FromLabels(result.labels);
  return result;
}

}  // namespace cfnet::community
