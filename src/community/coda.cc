#include "community/coda.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cfnet::community {
namespace {

constexpr double kMinDot = 1e-10;

double Dot(const double* a, const double* b, int c) {
  double s = 0;
  for (int i = 0; i < c; ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

CodaResult Coda::Fit(const graph::BipartiteGraph& g) const {
  CodaResult result;
  const size_t nl = g.num_left();
  const size_t nr = g.num_right();
  const int c = std::max(1, config_.num_communities);
  result.investor_communities.num_nodes = nl;
  result.company_communities.num_nodes = nr;
  if (nl == 0 || nr == 0 || g.num_edges() == 0) return result;

  std::vector<double> f(nl * static_cast<size_t>(c));
  std::vector<double> h(nr * static_cast<size_t>(c));
  std::vector<double> sum_f(static_cast<size_t>(c), 0);
  std::vector<double> sum_h(static_cast<size_t>(c), 0);

  // Init so that an average dot product matches the graph density.
  const double density = static_cast<double>(g.num_edges()) /
                         (static_cast<double>(nl) * static_cast<double>(nr));
  const double init_mean = std::sqrt(std::max(density, 1e-12) /
                                     static_cast<double>(c));
  Rng rng(config_.seed);
  for (double& x : f) x = init_mean * rng.Uniform(0.5, 1.5);
  for (double& x : h) x = init_mean * rng.Uniform(0.5, 1.5);
  for (size_t u = 0; u < nl; ++u) {
    for (int k = 0; k < c; ++k) sum_f[static_cast<size_t>(k)] += f[u * c + k];
  }
  for (size_t v = 0; v < nr; ++v) {
    for (int k = 0; k < c; ++k) sum_h[static_cast<size_t>(k)] += h[v * c + k];
  }

  ThreadPool pool(config_.num_threads > 0
                      ? static_cast<size_t>(config_.num_threads)
                      : ThreadPool::DefaultParallelism());

  // Local objective of one row x (F_u against its out-neighborhood, or H_v
  // against its in-neighborhood):
  //   l(x) = sum_{nbr} log(1 - exp(-x . Y_nbr)) - x . rest
  // where rest = (column sums of the other side) - (sum over neighbors).
  auto row_objective = [c](const double* x, const std::vector<const double*>& nbrs,
                           const double* rest) {
    double obj = 0;
    for (const double* y : nbrs) {
      double dot = std::max(Dot(x, y, c), kMinDot);
      obj += std::log1p(-std::exp(-dot));
    }
    obj -= Dot(x, rest, c);
    return obj;
  };

  auto update_row = [&](double* x, const std::vector<const double*>& nbrs,
                        const double* rest) {
    // Gradient: sum_nbr Y / expm1(dot) - rest.
    std::vector<double> grad(static_cast<size_t>(c), 0);
    for (const double* y : nbrs) {
      double dot = std::max(Dot(x, y, c), kMinDot);
      double w = 1.0 / std::expm1(dot);  // exp(-d)/(1-exp(-d))
      w = std::min(w, 1.0 / kMinDot);
      for (int k = 0; k < c; ++k) grad[static_cast<size_t>(k)] += w * y[k];
    }
    for (int k = 0; k < c; ++k) grad[static_cast<size_t>(k)] -= rest[k];

    double base = row_objective(x, nbrs, rest);
    std::vector<double> candidate(static_cast<size_t>(c));
    double step = config_.initial_step;
    for (int bt = 0; bt <= config_.max_backtracks; ++bt) {
      double gdx = 0;
      for (int k = 0; k < c; ++k) {
        double nx = std::clamp(x[k] + step * grad[static_cast<size_t>(k)], 0.0,
                               config_.max_affiliation);
        candidate[static_cast<size_t>(k)] = nx;
        gdx += grad[static_cast<size_t>(k)] * (nx - x[k]);
      }
      if (gdx <= 0) break;  // projected step is not an ascent direction
      double obj = row_objective(candidate.data(), nbrs, rest);
      if (obj >= base + 1e-4 * gdx) {  // Armijo
        for (int k = 0; k < c; ++k) x[k] = candidate[static_cast<size_t>(k)];
        return;
      }
      step *= config_.step_beta;
    }
    // No improving step found: leave the row unchanged.
  };

  auto parallel_rows = [&](size_t n, auto&& fn) {
    const size_t workers = pool.num_threads();
    std::vector<std::future<void>> futs;
    for (size_t w = 0; w < workers; ++w) {
      futs.push_back(pool.Submit([&, w]() {
        for (size_t i = w; i < n; i += workers) fn(i);
      }));
    }
    for (auto& fu : futs) fu.get();
  };

  auto log_likelihood = [&]() {
    double ll = 0;
    double edge_dot_sum = 0;
    for (uint32_t u = 0; u < nl; ++u) {
      const double* fu = &f[u * static_cast<size_t>(c)];
      for (uint32_t v : g.OutNeighbors(u)) {
        double dot =
            std::max(Dot(fu, &h[v * static_cast<size_t>(c)], c), kMinDot);
        ll += std::log1p(-std::exp(-dot));
        edge_dot_sum += dot;
      }
    }
    double all_pairs = Dot(sum_f.data(), sum_h.data(), c);
    ll -= all_pairs - edge_dot_sum;
    return ll;
  };

  double prev_ll = log_likelihood();
  result.log_likelihood_trace.push_back(prev_ll);

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    // --- F phase (investor rows; H and sum_h fixed). ---------------------
    parallel_rows(nl, [&](size_t u) {
      const double* fu = &f[u * static_cast<size_t>(c)];
      auto nbrs_span = g.OutNeighbors(static_cast<uint32_t>(u));
      std::vector<const double*> nbrs;
      nbrs.reserve(nbrs_span.size());
      std::vector<double> rest(sum_h);
      for (uint32_t v : nbrs_span) {
        const double* hv = &h[v * static_cast<size_t>(c)];
        nbrs.push_back(hv);
        for (int k = 0; k < c; ++k) rest[static_cast<size_t>(k)] -= hv[k];
      }
      for (int k = 0; k < c; ++k) {
        rest[static_cast<size_t>(k)] = std::max(0.0, rest[static_cast<size_t>(k)]);
      }
      update_row(&f[u * static_cast<size_t>(c)], nbrs, rest.data());
      (void)fu;
    });
    std::fill(sum_f.begin(), sum_f.end(), 0.0);
    for (size_t u = 0; u < nl; ++u) {
      for (int k = 0; k < c; ++k) {
        sum_f[static_cast<size_t>(k)] += f[u * static_cast<size_t>(c) + k];
      }
    }

    // --- H phase (company rows; F and sum_f fixed). ----------------------
    parallel_rows(nr, [&](size_t v) {
      auto nbrs_span = g.InNeighbors(static_cast<uint32_t>(v));
      std::vector<const double*> nbrs;
      nbrs.reserve(nbrs_span.size());
      std::vector<double> rest(sum_f);
      for (uint32_t u : nbrs_span) {
        const double* fu = &f[u * static_cast<size_t>(c)];
        nbrs.push_back(fu);
        for (int k = 0; k < c; ++k) rest[static_cast<size_t>(k)] -= fu[k];
      }
      for (int k = 0; k < c; ++k) {
        rest[static_cast<size_t>(k)] = std::max(0.0, rest[static_cast<size_t>(k)]);
      }
      update_row(&h[v * static_cast<size_t>(c)], nbrs, rest.data());
    });
    std::fill(sum_h.begin(), sum_h.end(), 0.0);
    for (size_t v = 0; v < nr; ++v) {
      for (int k = 0; k < c; ++k) {
        sum_h[static_cast<size_t>(k)] += h[v * static_cast<size_t>(c) + k];
      }
    }

    double ll = log_likelihood();
    result.log_likelihood_trace.push_back(ll);
    result.iterations = iter + 1;
    double denom = std::fabs(prev_ll) > 1e-12 ? std::fabs(prev_ll) : 1.0;
    if (ll - prev_ll < config_.tolerance * denom) {
      prev_ll = ll;
      break;
    }
    prev_ll = ll;
  }
  result.final_log_likelihood = prev_ll;

  // --- membership assignment -------------------------------------------
  double delta = config_.membership_threshold;
  if (delta <= 0) {
    double eps = std::clamp(density, 1e-12, 1.0 - 1e-12);
    delta = std::sqrt(-std::log1p(-eps));
  }
  result.threshold_used = delta;
  result.investor_communities.communities.assign(static_cast<size_t>(c), {});
  result.company_communities.communities.assign(static_cast<size_t>(c), {});
  for (uint32_t u = 0; u < nl; ++u) {
    for (int k = 0; k < c; ++k) {
      if (f[u * static_cast<size_t>(c) + k] >= delta) {
        result.investor_communities.communities[static_cast<size_t>(k)]
            .push_back(u);
      }
    }
  }
  for (uint32_t v = 0; v < nr; ++v) {
    for (int k = 0; k < c; ++k) {
      if (h[v * static_cast<size_t>(c) + k] >= delta) {
        result.company_communities.communities[static_cast<size_t>(k)]
            .push_back(v);
      }
    }
  }
  result.investor_communities.PruneSmall(config_.min_community_size);
  result.company_communities.PruneSmall(config_.min_community_size);
  result.num_factors = c;
  result.f = std::move(f);
  result.h = std::move(h);
  return result;
}

double CodaResult::EdgeProbability(uint32_t left, uint32_t right) const {
  if (num_factors == 0) return 0;
  const size_t c = static_cast<size_t>(num_factors);
  double dot = Dot(&f[left * c], &h[right * c], num_factors);
  return -std::expm1(-std::max(dot, kMinDot));
}

}  // namespace cfnet::community
