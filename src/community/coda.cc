#include "community/coda.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace cfnet::community {
namespace {

constexpr double kMinDot = 1e-10;

/// Per-worker buffers for one row update, sized once for the maximum degree
/// on either side so the row loop never reallocates (degree-skewed graphs
/// used to churn `gather` on every high-degree row). `gather` holds the
/// neighbor rows copied contiguously (count * c doubles), so the dot-product
/// kernels stream sequential memory instead of chasing a pointer per
/// neighbor.
struct RowScratch {
  std::vector<double> gather;
  std::vector<double> nbr_sum;
  std::vector<double> rest;
  std::vector<double> grad;
  std::vector<double> candidate;

  RowScratch(int c, size_t max_degree)
      : gather(max_degree * static_cast<size_t>(c)),
        nbr_sum(static_cast<size_t>(c)),
        rest(static_cast<size_t>(c)),
        grad(static_cast<size_t>(c)),
        candidate(static_cast<size_t>(c)) {}
};

}  // namespace

namespace {

/// Mean factor value whose dot products match the graph density — the
/// shared initialization scale of the cold and warm paths.
double InitMean(const graph::BipartiteGraph& g, int c) {
  const double density =
      static_cast<double>(g.num_edges()) /
      (static_cast<double>(g.num_left()) * static_cast<double>(g.num_right()));
  return std::sqrt(std::max(density, 1e-12) / static_cast<double>(c));
}

/// Stateless per-cell jitter in [0.5, 1.5) for warm-start re-init: unlike
/// the cold path's sequential Rng draws, every cell hashes independently,
/// so which rows get re-initialized cannot perturb the others.
double HashJitter(uint64_t seed, uint64_t cell) {
  const uint64_t bits = Mix64(seed ^ (cell + 0x9e3779b97f4a7c15ull));
  return 0.5 + static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

CodaResult Coda::Fit(const graph::BipartiteGraph& g) const {
  const size_t nl = g.num_left();
  const size_t nr = g.num_right();
  const int c = std::max(1, config_.num_communities);
  if (nl == 0 || nr == 0 || g.num_edges() == 0) {
    CodaResult result;
    result.investor_communities.num_nodes = nl;
    result.company_communities.num_nodes = nr;
    return result;
  }

  std::vector<double> f(nl * static_cast<size_t>(c));
  std::vector<double> h(nr * static_cast<size_t>(c));

  // Init so that an average dot product matches the graph density.
  const double init_mean = InitMean(g, c);
  Rng rng(config_.seed);
  for (double& x : f) x = init_mean * rng.Uniform(0.5, 1.5);
  for (double& x : h) x = init_mean * rng.Uniform(0.5, 1.5);
  return FitFrom(g, std::move(f), std::move(h));
}

CodaResult Coda::FitWarm(const graph::BipartiteGraph& g,
                         const CodaWarmStart& warm) const {
  const size_t nl = g.num_left();
  const size_t nr = g.num_right();
  const int c = std::max(1, config_.num_communities);
  if (warm.previous == nullptr || warm.previous->num_factors != c) {
    return Fit(g);  // unusable warm start
  }
  if (nl == 0 || nr == 0 || g.num_edges() == 0) {
    CodaResult result;
    result.investor_communities.num_nodes = nl;
    result.company_communities.num_nodes = nr;
    return result;
  }
  const size_t cs = static_cast<size_t>(c);
  const double init_mean = InitMean(g, c);
  const CodaResult& prev = *warm.previous;

  auto seed_side = [&](size_t n, const std::vector<double>& prev_rows,
                       const std::vector<uint32_t>& old_to_new,
                       const std::vector<uint32_t>& frontier,
                       uint64_t salt) {
    std::vector<double> rows(n * cs);
    std::vector<char> warm_row(n, 0);
    for (size_t old_i = 0; old_i < old_to_new.size(); ++old_i) {
      const uint32_t new_i = old_to_new[old_i];
      if (new_i == graph::BipartiteGraph::kInvalidIndex ||
          static_cast<size_t>(new_i) >= n) {
        continue;
      }
      if ((old_i + 1) * cs > prev_rows.size()) continue;
      std::copy(prev_rows.begin() + static_cast<ptrdiff_t>(old_i * cs),
                prev_rows.begin() + static_cast<ptrdiff_t>((old_i + 1) * cs),
                rows.begin() + static_cast<ptrdiff_t>(new_i * cs));
      warm_row[new_i] = 1;
    }
    for (uint32_t v : frontier) {
      if (v < n) warm_row[v] = 0;  // changed neighborhood: re-initialize
    }
    for (size_t v = 0; v < n; ++v) {
      if (warm_row[v]) continue;
      for (size_t k = 0; k < cs; ++k) {
        rows[v * cs + k] =
            init_mean * HashJitter(config_.seed ^ salt, v * cs + k);
      }
    }
    return rows;
  };

  std::vector<double> f = seed_side(nl, prev.f, warm.old_to_new_left,
                                    warm.frontier_left, 0x66ull);
  std::vector<double> h = seed_side(nr, prev.h, warm.old_to_new_right,
                                    warm.frontier_right, 0x68ull);
  return FitFrom(g, std::move(f), std::move(h));
}

CodaResult Coda::FitFrom(const graph::BipartiteGraph& g, std::vector<double> f,
                         std::vector<double> h) const {
  CodaResult result;
  const size_t nl = g.num_left();
  const size_t nr = g.num_right();
  const int c = std::max(1, config_.num_communities);
  result.investor_communities.num_nodes = nl;
  result.company_communities.num_nodes = nr;
  if (nl == 0 || nr == 0 || g.num_edges() == 0) return result;

  const double density = static_cast<double>(g.num_edges()) /
                         (static_cast<double>(nl) * static_cast<double>(nr));
  std::vector<double> sum_f(static_cast<size_t>(c), 0);
  std::vector<double> sum_h(static_cast<size_t>(c), 0);
  for (size_t u = 0; u < nl; ++u) {
    for (int k = 0; k < c; ++k) sum_f[static_cast<size_t>(k)] += f[u * c + k];
  }
  for (size_t v = 0; v < nr; ++v) {
    for (int k = 0; k < c; ++k) sum_h[static_cast<size_t>(k)] += h[v * c + k];
  }

  ThreadPool pool(config_.num_threads > 0
                      ? static_cast<size_t>(config_.num_threads)
                      : ThreadPool::DefaultParallelism());

  const size_t cs = static_cast<size_t>(c);

  // One-time max-degree reservation: every worker's scratch is sized for the
  // largest neighborhood on either side, so no row update reallocates.
  size_t max_degree = 1;
  for (uint32_t u = 0; u < nl; ++u) {
    max_degree = std::max(max_degree, g.OutNeighbors(u).size());
  }
  for (uint32_t v = 0; v < nr; ++v) {
    max_degree = std::max(max_degree, g.InNeighbors(v).size());
  }
  std::vector<RowScratch> scratches;
  scratches.reserve(pool.num_threads());
  for (size_t w = 0; w < pool.num_threads(); ++w) {
    scratches.emplace_back(c, max_degree);
  }

  // Local objective of one row x (F_u against its out-neighborhood, or H_v
  // against its in-neighborhood):
  //   l(x) = sum_{nbr} log(1 - exp(-x . Y_nbr)) - x . rest
  // where rest = (column sums of the other side) - (sum over neighbors),
  // and the neighbor rows are packed contiguously in `nbr_rows`.
  auto row_objective = [cs](const double* x, const double* nbr_rows,
                            size_t count, const double* rest) {
    return simd::SumLogEdgeProbF64(x, nbr_rows, count, cs, kMinDot) -
           simd::DotF64(x, rest, cs);
  };

  auto update_row = [&](double* x, const double* nbr_rows, size_t count,
                        RowScratch& scratch) {
    const double* rest = scratch.rest.data();
    // Gradient: sum_nbr Y / expm1(dot) - rest.
    double* grad = scratch.grad.data();
    std::fill(scratch.grad.begin(), scratch.grad.end(), 0.0);
    simd::AccumExpm1RowsF64(x, nbr_rows, count, cs, kMinDot, 1.0 / kMinDot,
                            grad);
    simd::SubF64(grad, rest, cs);

    double base = row_objective(x, nbr_rows, count, rest);
    double* candidate = scratch.candidate.data();
    double step = config_.initial_step;
    for (int bt = 0; bt <= config_.max_backtracks; ++bt) {
      double gdx = simd::ClampedStepDotF64(x, grad, step, 0.0,
                                           config_.max_affiliation, candidate,
                                           cs);
      if (gdx <= 0) break;  // projected step is not an ascent direction
      double obj = row_objective(candidate, nbr_rows, count, rest);
      if (obj >= base + 1e-4 * gdx) {  // Armijo
        std::copy(candidate, candidate + cs, x);
        return;
      }
      step *= config_.step_beta;
    }
    // No improving step found: leave the row unchanged.
  };

  // Rows are independent within a phase (each writes only its own row
  // against the fixed other side), so any worker assignment produces
  // identical results. fn(i, scratch) gets a worker-local RowScratch.
  auto parallel_rows = [&](size_t n, auto&& fn) {
    const size_t workers = pool.num_threads();
    std::vector<std::future<void>> futs;
    for (size_t w = 0; w < workers; ++w) {
      futs.push_back(pool.Submit([&, w]() {
        for (size_t i = w; i < n; i += workers) fn(i, scratches[w]);
      }));
    }
    for (auto& fu : futs) fu.get();
  };

  auto log_likelihood = [&]() {
    double ll = 0;
    double edge_dot_sum = 0;
    for (uint32_t u = 0; u < nl; ++u) {
      const double* fu = &f[u * cs];
      for (uint32_t v : g.OutNeighbors(u)) {
        double dot = std::max(simd::DotF64(fu, &h[v * cs], cs), kMinDot);
        ll += std::log1p(-std::exp(-dot));
        edge_dot_sum += dot;
      }
    }
    double all_pairs = simd::DotF64(sum_f.data(), sum_h.data(), cs);
    ll -= all_pairs - edge_dot_sum;
    return ll;
  };

  double prev_ll = log_likelihood();
  result.log_likelihood_trace.push_back(prev_ll);

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    // --- F phase (investor rows; H and sum_h fixed). ---------------------
    parallel_rows(nl, [&](size_t u, RowScratch& scratch) {
      auto nbrs_span = g.OutNeighbors(static_cast<uint32_t>(u));
      double* gather = scratch.gather.data();
      std::fill(scratch.nbr_sum.begin(), scratch.nbr_sum.end(), 0.0);
      for (size_t i = 0; i < nbrs_span.size(); ++i) {
        simd::CopyAddF64(gather + i * cs, scratch.nbr_sum.data(),
                         &h[nbrs_span[i] * cs], cs);
      }
      simd::ClampedSubF64(scratch.rest.data(), sum_h.data(),
                          scratch.nbr_sum.data(), cs);
      update_row(&f[u * cs], gather, nbrs_span.size(), scratch);
    });
    std::fill(sum_f.begin(), sum_f.end(), 0.0);
    for (size_t u = 0; u < nl; ++u) {
      simd::AddF64(sum_f.data(), &f[u * cs], cs);
    }

    // --- H phase (company rows; F and sum_f fixed). ----------------------
    parallel_rows(nr, [&](size_t v, RowScratch& scratch) {
      auto nbrs_span = g.InNeighbors(static_cast<uint32_t>(v));
      double* gather = scratch.gather.data();
      std::fill(scratch.nbr_sum.begin(), scratch.nbr_sum.end(), 0.0);
      for (size_t i = 0; i < nbrs_span.size(); ++i) {
        simd::CopyAddF64(gather + i * cs, scratch.nbr_sum.data(),
                         &f[nbrs_span[i] * cs], cs);
      }
      simd::ClampedSubF64(scratch.rest.data(), sum_f.data(),
                          scratch.nbr_sum.data(), cs);
      update_row(&h[v * cs], gather, nbrs_span.size(), scratch);
    });
    std::fill(sum_h.begin(), sum_h.end(), 0.0);
    for (size_t v = 0; v < nr; ++v) {
      simd::AddF64(sum_h.data(), &h[v * cs], cs);
    }

    double ll = log_likelihood();
    result.log_likelihood_trace.push_back(ll);
    result.iterations = iter + 1;
    double denom = std::fabs(prev_ll) > 1e-12 ? std::fabs(prev_ll) : 1.0;
    if (ll - prev_ll < config_.tolerance * denom) {
      prev_ll = ll;
      break;
    }
    prev_ll = ll;
  }
  result.final_log_likelihood = prev_ll;

  // --- membership assignment -------------------------------------------
  double delta = config_.membership_threshold;
  if (delta <= 0) {
    double eps = std::clamp(density, 1e-12, 1.0 - 1e-12);
    delta = std::sqrt(-std::log1p(-eps));
  }
  result.threshold_used = delta;
  result.investor_communities.communities.assign(static_cast<size_t>(c), {});
  result.company_communities.communities.assign(static_cast<size_t>(c), {});
  for (uint32_t u = 0; u < nl; ++u) {
    for (int k = 0; k < c; ++k) {
      if (f[u * static_cast<size_t>(c) + k] >= delta) {
        result.investor_communities.communities[static_cast<size_t>(k)]
            .push_back(u);
      }
    }
  }
  for (uint32_t v = 0; v < nr; ++v) {
    for (int k = 0; k < c; ++k) {
      if (h[v * static_cast<size_t>(c) + k] >= delta) {
        result.company_communities.communities[static_cast<size_t>(k)]
            .push_back(v);
      }
    }
  }
  result.investor_communities.PruneSmall(config_.min_community_size);
  result.company_communities.PruneSmall(config_.min_community_size);
  result.num_factors = c;
  result.f = std::move(f);
  result.h = std::move(h);
  return result;
}

double CodaResult::EdgeProbability(uint32_t left, uint32_t right) const {
  if (num_factors == 0) return 0;
  const size_t c = static_cast<size_t>(num_factors);
  double dot = simd::DotF64(&f[left * c], &h[right * c], c);
  return -std::expm1(-std::max(dot, kMinDot));
}

}  // namespace cfnet::community
