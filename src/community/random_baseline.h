#ifndef CFNET_COMMUNITY_RANDOM_BASELINE_H_
#define CFNET_COMMUNITY_RANDOM_BASELINE_H_

#include <cstdint>

#include "community/community_set.h"

namespace cfnet::community {

/// Uniformly random partition of `num_nodes` nodes into `num_communities`
/// groups — the paper's "randomized community of investors" comparison
/// point (its shared-investor percentage of 5.8% vs 23.1% for CoDA).
CommunitySet RandomCommunities(size_t num_nodes, size_t num_communities,
                               uint64_t seed);

}  // namespace cfnet::community

#endif  // CFNET_COMMUNITY_RANDOM_BASELINE_H_
