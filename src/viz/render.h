#ifndef CFNET_VIZ_RENDER_H_
#define CFNET_VIZ_RENDER_H_

#include <string>
#include <utility>
#include <vector>

#include "util/status.h"
#include "viz/layout.h"

namespace cfnet::viz {

/// A node to draw: position is supplied separately (parallel vector).
struct NodeSpec {
  std::string label;
  std::string color = "#4477cc";  // investor blue by default
  double radius = 5;
};

/// Renders an SVG document of a node-link diagram. `positions` must be
/// parallel to `nodes`; edges index into them.
std::string RenderSvg(const std::vector<NodeSpec>& nodes,
                      const std::vector<Point2D>& positions,
                      const std::vector<std::pair<uint32_t, uint32_t>>& edges,
                      double width = 1000, double height = 1000,
                      const std::string& title = "");

/// Renders GraphViz DOT (undirected) with fill colors, for tooling interop.
std::string RenderDot(const std::vector<NodeSpec>& nodes,
                      const std::vector<std::pair<uint32_t, uint32_t>>& edges,
                      const std::string& graph_name = "g");

/// Writes `content` to a local file (used by examples/benches to emit the
/// Figure 7 artifacts).
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace cfnet::viz

#endif  // CFNET_VIZ_RENDER_H_
