#ifndef CFNET_VIZ_LAYOUT_H_
#define CFNET_VIZ_LAYOUT_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cfnet::viz {

struct Point2D {
  double x = 0;
  double y = 0;
};

struct LayoutConfig {
  int iterations = 150;
  double width = 1000;
  double height = 1000;
  uint64_t seed = 1;
  /// Repulsion/attraction balance; <= 0 selects sqrt(area / n).
  double ideal_edge_length = 0;
};

/// Fruchterman–Reingold force-directed layout (the classic spring embedder
/// igraph uses for plots like the paper's Figure 7). O(n^2 + e) per
/// iteration with linearly cooling temperature; fine for the few-hundred-
/// node community renderings it serves.
std::vector<Point2D> FruchtermanReingold(
    size_t num_nodes, const std::vector<std::pair<uint32_t, uint32_t>>& edges,
    const LayoutConfig& config = {});

}  // namespace cfnet::viz

#endif  // CFNET_VIZ_LAYOUT_H_
