#include "viz/render.h"

#include <cstdio>

#include "util/string_util.h"

namespace cfnet::viz {

std::string RenderSvg(const std::vector<NodeSpec>& nodes,
                      const std::vector<Point2D>& positions,
                      const std::vector<std::pair<uint32_t, uint32_t>>& edges,
                      double width, double height, const std::string& title) {
  std::string svg = StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" "
      "height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n",
      width, height, width, height);
  svg += "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  if (!title.empty()) {
    svg += StrFormat(
        "<text x=\"%.0f\" y=\"24\" font-family=\"sans-serif\" "
        "font-size=\"18\" text-anchor=\"middle\">%s</text>\n",
        width / 2, title.c_str());
  }
  for (const auto& [a, b] : edges) {
    if (a >= positions.size() || b >= positions.size()) continue;
    svg += StrFormat(
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
        "stroke=\"#999999\" stroke-width=\"0.6\" stroke-opacity=\"0.6\"/>\n",
        positions[a].x, positions[a].y, positions[b].x, positions[b].y);
  }
  for (size_t i = 0; i < nodes.size() && i < positions.size(); ++i) {
    svg += StrFormat(
        "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"%s\" "
        "stroke=\"#333333\" stroke-width=\"0.4\">",
        positions[i].x, positions[i].y, nodes[i].radius,
        nodes[i].color.c_str());
    svg += "<title>" + nodes[i].label + "</title></circle>\n";
  }
  svg += "</svg>\n";
  return svg;
}

std::string RenderDot(const std::vector<NodeSpec>& nodes,
                      const std::vector<std::pair<uint32_t, uint32_t>>& edges,
                      const std::string& graph_name) {
  std::string dot = "graph " + graph_name + " {\n";
  dot += "  node [style=filled, shape=circle, fontsize=8];\n";
  for (size_t i = 0; i < nodes.size(); ++i) {
    dot += StrFormat("  n%zu [label=\"%s\", fillcolor=\"%s\"];\n", i,
                     nodes[i].label.c_str(), nodes[i].color.c_str());
  }
  for (const auto& [a, b] : edges) {
    dot += StrFormat("  n%u -- n%u;\n", a, b);
  }
  dot += "}\n";
  return dot;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open for writing: " + path);
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (written != content.size()) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

}  // namespace cfnet::viz
