#include "viz/layout.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace cfnet::viz {

std::vector<Point2D> FruchtermanReingold(
    size_t num_nodes, const std::vector<std::pair<uint32_t, uint32_t>>& edges,
    const LayoutConfig& config) {
  std::vector<Point2D> pos(num_nodes);
  if (num_nodes == 0) return pos;
  Rng rng(config.seed);
  for (auto& p : pos) {
    p.x = rng.Uniform(0, config.width);
    p.y = rng.Uniform(0, config.height);
  }
  if (num_nodes == 1) return pos;

  const double area = config.width * config.height;
  const double k = config.ideal_edge_length > 0
                       ? config.ideal_edge_length
                       : std::sqrt(area / static_cast<double>(num_nodes));
  double temperature = config.width / 10.0;
  const double cooling =
      temperature / static_cast<double>(std::max(1, config.iterations));

  std::vector<Point2D> disp(num_nodes);
  for (int iter = 0; iter < config.iterations; ++iter) {
    for (auto& d : disp) d = {0, 0};

    // Repulsive forces between all pairs.
    for (size_t i = 0; i < num_nodes; ++i) {
      for (size_t j = i + 1; j < num_nodes; ++j) {
        double dx = pos[i].x - pos[j].x;
        double dy = pos[i].y - pos[j].y;
        double dist2 = dx * dx + dy * dy;
        double dist = std::sqrt(dist2);
        if (dist < 1e-9) {
          dx = rng.Uniform(-0.5, 0.5);
          dy = rng.Uniform(-0.5, 0.5);
          dist = std::max(1e-4, std::sqrt(dx * dx + dy * dy));
        }
        double force = k * k / dist;
        disp[i].x += dx / dist * force;
        disp[i].y += dy / dist * force;
        disp[j].x -= dx / dist * force;
        disp[j].y -= dy / dist * force;
      }
    }

    // Attractive forces along edges.
    for (const auto& [a, b] : edges) {
      if (a >= num_nodes || b >= num_nodes || a == b) continue;
      double dx = pos[a].x - pos[b].x;
      double dy = pos[a].y - pos[b].y;
      double dist = std::max(1e-9, std::sqrt(dx * dx + dy * dy));
      double force = dist * dist / k;
      disp[a].x -= dx / dist * force;
      disp[a].y -= dy / dist * force;
      disp[b].x += dx / dist * force;
      disp[b].y += dy / dist * force;
    }

    // Displace, capped by temperature, clamped to the frame.
    for (size_t i = 0; i < num_nodes; ++i) {
      double len = std::sqrt(disp[i].x * disp[i].x + disp[i].y * disp[i].y);
      if (len > 1e-12) {
        double capped = std::min(len, temperature);
        pos[i].x += disp[i].x / len * capped;
        pos[i].y += disp[i].y / len * capped;
      }
      pos[i].x = std::clamp(pos[i].x, 0.0, config.width);
      pos[i].y = std::clamp(pos[i].y, 0.0, config.height);
    }
    temperature = std::max(0.0, temperature - cooling);
  }
  return pos;
}

}  // namespace cfnet::viz
