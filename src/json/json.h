#ifndef CFNET_JSON_JSON_H_
#define CFNET_JSON_JSON_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace cfnet::json {

/// JSON document value — the interchange format of the crawl pipeline
/// (every simulated API returns JSON; MiniDFS snapshots store JSON lines).
///
/// Objects preserve insertion order (fields of API payloads are small, so
/// lookup is linear); integers are kept distinct from doubles so 64-bit IDs
/// round-trip exactly.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  /// Null by default.
  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}                      // NOLINT
  Json(bool b) : type_(Type::kBool), bool_(b) {}                    // NOLINT
  Json(int v) : type_(Type::kInt), int_(v) {}                       // NOLINT
  Json(int64_t v) : type_(Type::kInt), int_(v) {}                   // NOLINT
  Json(uint32_t v) : type_(Type::kInt), int_(v) {}                  // NOLINT
  Json(double v) : type_(Type::kDouble), double_(v) {}              // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}         // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(std::string_view s) : type_(Type::kString), string_(s) {}    // NOLINT

  static Json MakeArray() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json MakeObject() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Json(const Json&) = default;
  Json& operator=(const Json&) = default;
  Json(Json&&) noexcept = default;
  Json& operator=(Json&&) noexcept = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_number() const { return type_ == Type::kInt || type_ == Type::kDouble; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; type mismatches return neutral defaults
  /// (false / 0 / "" / empty) so optional-field extraction stays terse.
  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  int64_t AsInt(int64_t fallback = 0) const {
    if (type_ == Type::kInt) return int_;
    if (type_ == Type::kDouble) return static_cast<int64_t>(double_);
    return fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    if (type_ == Type::kDouble) return double_;
    if (type_ == Type::kInt) return static_cast<double>(int_);
    return fallback;
  }
  const std::string& AsString() const {
    static const std::string empty;
    return is_string() ? string_ : empty;
  }
  /// Allocation-free view of a string value ("" for other types) — prefer
  /// this over AsString() when the caller only compares or copies out.
  std::string_view AsStringView() const {
    return is_string() ? std::string_view(string_) : std::string_view();
  }

  /// Array access. `at(i)` on non-array or out of range returns Null.
  size_t size() const;
  const Json& at(size_t i) const;
  /// Appends to an array (converts a null value into an array first).
  void Append(Json v);

  /// Object access. `Get(key)` returns Null when missing.
  bool Has(std::string_view key) const;
  const Json& Get(std::string_view key) const;
  /// Sets/overwrites a member (converts a null value into an object first).
  void Set(std::string_view key, Json v);

  const Array& array() const {
    static const Array empty;
    return is_array() ? array_ : empty;
  }
  const Object& object() const {
    static const Object empty;
    return is_object() ? object_ : empty;
  }

  /// Compact serialization ("{"a":1}"); `indent >= 0` pretty-prints.
  std::string Dump(int indent = -1) const;

  /// Appends the compact serialization to `out` — the allocation-free path
  /// snapshot writers use (one shared buffer instead of a string per record).
  void AppendTo(std::string& out) const { DumpTo(out, -1, 0); }

  friend bool operator==(const Json& a, const Json& b);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses a JSON document; trailing non-whitespace is an error.
Result<Json> Parse(std::string_view text);

/// Escapes `s` as a JSON string literal (with surrounding quotes).
std::string EscapeString(std::string_view s);

/// Appends the escaped literal to `out` without a temporary string.
void AppendEscapedString(std::string& out, std::string_view s);

}  // namespace cfnet::json

#endif  // CFNET_JSON_JSON_H_
