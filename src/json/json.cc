#include "json/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <system_error>

#include "util/string_util.h"

namespace cfnet::json {

size_t Json::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  return 0;
}

const Json& Json::at(size_t i) const {
  static const Json null_json;
  if (!is_array() || i >= array_.size()) return null_json;
  return array_[i];
}

void Json::Append(Json v) {
  if (is_null()) type_ = Type::kArray;
  if (!is_array()) return;
  array_.push_back(std::move(v));
}

bool Json::Has(std::string_view key) const {
  if (!is_object()) return false;
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::Get(std::string_view key) const {
  static const Json null_json;
  if (!is_object()) return null_json;
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  return null_json;
}

void Json::Set(std::string_view key, Json v) {
  if (is_null()) type_ = Type::kObject;
  if (!is_object()) return;
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::string(key), std::move(v));
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) {
    // Cross-type numeric equality (1 == 1.0) keeps round-trip checks sane.
    if (a.is_number() && b.is_number()) return a.AsDouble() == b.AsDouble();
    return false;
  }
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kInt:
      return a.int_ == b.int_;
    case Json::Type::kDouble:
      return a.double_ == b.double_;
    case Json::Type::kString:
      return a.string_ == b.string_;
    case Json::Type::kArray:
      return a.array_ == b.array_;
    case Json::Type::kObject:
      return a.object_ == b.object_;
  }
  return false;
}

void AppendEscapedString(std::string& out, std::string_view s) {
  out.push_back('"');
  size_t plain = 0;  // start of the pending run of escape-free bytes
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    const char* esc = nullptr;
    switch (c) {
      case '"':
        esc = "\\\"";
        break;
      case '\\':
        esc = "\\\\";
        break;
      case '\n':
        esc = "\\n";
        break;
      case '\r':
        esc = "\\r";
        break;
      case '\t':
        esc = "\\t";
        break;
      case '\b':
        esc = "\\b";
        break;
      case '\f':
        esc = "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) continue;
    }
    out.append(s, plain, i - plain);
    if (esc != nullptr) {
      out.append(esc);
    } else {
      out += StrFormat("\\u%04x", c);
    }
    plain = i + 1;
  }
  out.append(s, plain, s.size() - plain);
  out.push_back('"');
}

std::string EscapeString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  AppendEscapedString(out, s);
  return out;
}

void Json::DumpTo(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent >= 0) {
      out.push_back('\n');
      out.append(static_cast<size_t>(indent) * d, ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt: {
      char buf[24];
      auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), int_);
      out.append(buf, p);
      break;
    }
    case Type::kDouble: {
      if (std::isfinite(double_)) {
        // Shortest round-trip form (to_chars), not %.17g: "0.1" instead of
        // "0.10000000000000001" — smaller output and an exact reparse.
        char buf[32];
        auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), double_);
        out.append(buf, p);
      } else {
        out += "null";  // JSON has no Inf/NaN
      }
      break;
    }
    case Type::kString:
      AppendEscapedString(out, string_);
      break;
    case Type::kArray: {
      out.push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline(depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline(depth + 1);
        AppendEscapedString(out, object_[i].first);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over a string_view with a depth limit.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Run() {
    SkipWhitespace();
    Json value;
    CFNET_RETURN_IF_ERROR(ParseValue(value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status Error(const std::string& what) const {
    return Status::Corruption("JSON parse error at offset " +
                              std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Status ParseValue(Json& out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        CFNET_RETURN_IF_ERROR(ParseString(s));
        out = Json(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeLiteral("true")) {
          out = Json(true);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          out = Json(false);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          out = Json();
          return Status::OK();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(Json& out, int depth) {
    Consume('{');
    out = Json::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      CFNET_RETURN_IF_ERROR(ParseString(key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      SkipWhitespace();
      Json value;
      CFNET_RETURN_IF_ERROR(ParseValue(value, depth + 1));
      out.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(Json& out, int depth) {
    Consume('[');
    out = Json::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      Json value;
      CFNET_RETURN_IF_ERROR(ParseValue(value, depth + 1));
      out.Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string& out) {
    Consume('"');
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Error("invalid hex digit in \\u escape");
            }
          }
          // Surrogate pair handling.
          if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 6 <= text_.size() &&
              text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
            uint32_t lo = 0;
            bool valid = true;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_ + 2 + i];
              lo <<= 4;
              if (h >= '0' && h <= '9') {
                lo |= static_cast<uint32_t>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                lo |= static_cast<uint32_t>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                lo |= static_cast<uint32_t>(h - 'A' + 10);
              } else {
                valid = false;
                break;
              }
            }
            if (valid && lo >= 0xDC00 && lo <= 0xDFFF) {
              pos_ += 6;
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            }
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  static void AppendUtf8(std::string& out, uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseNumber(Json& out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool has_digits = false;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      has_digits = true;
    }
    if (!has_digits) return Error("invalid number");
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      bool frac_digits = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        frac_digits = true;
      }
      if (!frac_digits) return Error("invalid number: missing fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      bool exp_digits = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) return Error("invalid number: missing exponent digits");
    }
    std::string token(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        out = Json(static_cast<int64_t>(v));
        return Status::OK();
      }
      // Fall through to double on int64 overflow.
    }
    out = Json(std::strtod(token.c_str(), nullptr));
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace cfnet::json
