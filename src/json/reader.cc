#include "json/reader.h"

#include <charconv>
#include <cstdlib>

namespace cfnet::json {

namespace {

/// Same encoder as the DOM parser's (lone surrogates encode as-is, so the
/// two paths stay byte-identical on pathological escapes).
void AppendUtf8(std::string& out, uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

bool HexNibble(char h, uint32_t& acc) {
  acc <<= 4;
  if (h >= '0' && h <= '9') {
    acc |= static_cast<uint32_t>(h - '0');
  } else if (h >= 'a' && h <= 'f') {
    acc |= static_cast<uint32_t>(h - 'a' + 10);
  } else if (h >= 'A' && h <= 'F') {
    acc |= static_cast<uint32_t>(h - 'A' + 10);
  } else {
    return false;
  }
  return true;
}

}  // namespace

Status JsonReader::Error(const std::string& what) const {
  return Status::Corruption("JSON parse error at offset " +
                            std::to_string(pos_) + ": " + what);
}

void JsonReader::SkipWs() {
  while (pos_ < text_.size()) {
    char c = text_[pos_];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++pos_;
    } else {
      break;
    }
  }
}

bool JsonReader::Consume(char c) {
  if (pos_ < text_.size() && text_[pos_] == c) {
    ++pos_;
    return true;
  }
  return false;
}

bool JsonReader::ConsumeLiteral(std::string_view lit) {
  if (text_.substr(pos_, lit.size()) == lit) {
    pos_ += lit.size();
    return true;
  }
  return false;
}

Status JsonReader::CheckValueDepth(size_t extra) const {
  if (stack_.size() + extra > kMaxDepth) return Error("nesting too deep");
  return Status::OK();
}

Status JsonReader::ParseStringToken(std::string& scratch,
                                    std::string_view& out) {
  ++pos_;  // opening quote, verified by the caller
  const size_t start = pos_;
  // Fast path: scan for the closing quote; any escape drops to the slow path.
  while (pos_ < text_.size()) {
    char c = text_[pos_];
    if (c == '"') {
      out = text_.substr(start, pos_ - start);
      ++pos_;
      return Status::OK();
    }
    if (c == '\\') break;
    ++pos_;
  }
  if (pos_ >= text_.size()) return Error("unterminated string");
  // Slow path: copy the escape-free prefix, then unescape the rest exactly
  // as the DOM parser does.
  scratch.assign(text_.data() + start, pos_ - start);
  while (pos_ < text_.size()) {
    char c = text_[pos_++];
    if (c == '"') {
      out = scratch;
      return Status::OK();
    }
    if (c != '\\') {
      scratch.push_back(c);
      continue;
    }
    if (pos_ >= text_.size()) return Error("unterminated escape");
    char e = text_[pos_++];
    switch (e) {
      case '"':
        scratch.push_back('"');
        break;
      case '\\':
        scratch.push_back('\\');
        break;
      case '/':
        scratch.push_back('/');
        break;
      case 'n':
        scratch.push_back('\n');
        break;
      case 'r':
        scratch.push_back('\r');
        break;
      case 't':
        scratch.push_back('\t');
        break;
      case 'b':
        scratch.push_back('\b');
        break;
      case 'f':
        scratch.push_back('\f');
        break;
      case 'u': {
        if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
        uint32_t cp = 0;
        for (int i = 0; i < 4; ++i) {
          if (!HexNibble(text_[pos_++], cp)) {
            return Error("invalid hex digit in \\u escape");
          }
        }
        if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 6 <= text_.size() &&
            text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
          uint32_t lo = 0;
          bool valid = true;
          for (int i = 0; i < 4; ++i) {
            if (!HexNibble(text_[pos_ + 2 + i], lo)) {
              valid = false;
              break;
            }
          }
          if (valid && lo >= 0xDC00 && lo <= 0xDFFF) {
            pos_ += 6;
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          }
        }
        AppendUtf8(scratch, cp);
        break;
      }
      default:
        return Error("invalid escape character");
    }
  }
  return Error("unterminated string");
}

Status JsonReader::ParseNumberToken(Scalar& out) {
  const size_t start = pos_;
  if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
  bool has_digits = false;
  while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
    ++pos_;
    has_digits = true;
  }
  if (!has_digits) return Error("invalid number");
  bool is_double = false;
  if (pos_ < text_.size() && text_[pos_] == '.') {
    is_double = true;
    ++pos_;
    bool frac_digits = false;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      frac_digits = true;
    }
    if (!frac_digits) return Error("invalid number: missing fraction digits");
  }
  if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
    is_double = true;
    ++pos_;
    if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    bool exp_digits = false;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      exp_digits = true;
    }
    if (!exp_digits) return Error("invalid number: missing exponent digits");
  }
  const char* b = text_.data() + start;
  const char* e = text_.data() + pos_;
  if (!is_double) {
    int64_t v = 0;
    auto [p, ec] = std::from_chars(b, e, v, 10);
    if (ec == std::errc() && p == e) {
      out.kind = Scalar::Kind::kInt;
      out.i = v;
      return Status::OK();
    }
    // int64 overflow falls through to double, as in the DOM parser.
  }
  double d = 0.0;
  auto [p, ec] = std::from_chars(b, e, d);
  if (ec != std::errc() || p != e) {
    // from_chars leaves the value unspecified on over/underflow; strtod's
    // saturating behavior is what the DOM parser exposes, so match it on
    // this (rare) path.
    std::string token(b, e);
    d = std::strtod(token.c_str(), nullptr);
  }
  out.kind = Scalar::Kind::kDouble;
  out.d = d;
  return Status::OK();
}

Result<bool> JsonReader::EnterObject() {
  SkipWs();
  // The DOM parser checks depth before end-of-input at every value; match
  // that order so truncated deep documents get the same verdict.
  CFNET_RETURN_IF_ERROR(CheckValueDepth(0));
  if (pos_ >= text_.size()) return Error("unexpected end of input");
  if (text_[pos_] != '{') return false;
  ++pos_;
  stack_.push_back(Frame::kObjectFirst);
  return true;
}

Result<bool> JsonReader::EnterArray() {
  SkipWs();
  CFNET_RETURN_IF_ERROR(CheckValueDepth(0));
  if (pos_ >= text_.size()) return Error("unexpected end of input");
  if (text_[pos_] != '[') return false;
  ++pos_;
  stack_.push_back(Frame::kArrayFirst);
  return true;
}

Result<bool> JsonReader::NextMember(std::string_view& key) {
  SkipWs();
  if (stack_.back() == Frame::kObjectFirst) {
    if (Consume('}')) {
      stack_.pop_back();
      return false;
    }
    stack_.back() = Frame::kObject;
  } else {
    if (Consume('}')) {
      stack_.pop_back();
      return false;
    }
    if (!Consume(',')) return Error("expected ',' or '}' in object");
    SkipWs();
  }
  if (pos_ >= text_.size() || text_[pos_] != '"') {
    return Error("expected object key string");
  }
  CFNET_RETURN_IF_ERROR(ParseStringToken(key_scratch_, key));
  SkipWs();
  if (!Consume(':')) return Error("expected ':' in object");
  SkipWs();
  return true;
}

Result<bool> JsonReader::NextElement() {
  SkipWs();
  if (stack_.back() == Frame::kArrayFirst) {
    if (Consume(']')) {
      stack_.pop_back();
      return false;
    }
    stack_.back() = Frame::kArray;
    return true;
  }
  if (Consume(']')) {
    stack_.pop_back();
    return false;
  }
  if (!Consume(',')) return Error("expected ',' or ']' in array");
  SkipWs();
  return true;
}

Result<JsonReader::Scalar> JsonReader::ReadScalar() {
  SkipWs();
  CFNET_RETURN_IF_ERROR(CheckValueDepth(0));
  if (pos_ >= text_.size()) return Error("unexpected end of input");
  Scalar out;
  switch (text_[pos_]) {
    case '{':
    case '[':
      CFNET_RETURN_IF_ERROR(SkipValue());
      out.kind = Scalar::Kind::kComposite;
      return out;
    case '"':
      CFNET_RETURN_IF_ERROR(ParseStringToken(str_scratch_, out.s));
      out.kind = Scalar::Kind::kString;
      return out;
    case 't':
      if (ConsumeLiteral("true")) {
        out.kind = Scalar::Kind::kBool;
        out.b = true;
        return out;
      }
      return Error("invalid literal");
    case 'f':
      if (ConsumeLiteral("false")) {
        out.kind = Scalar::Kind::kBool;
        out.b = false;
        return out;
      }
      return Error("invalid literal");
    case 'n':
      if (ConsumeLiteral("null")) {
        out.kind = Scalar::Kind::kNull;
        return out;
      }
      return Error("invalid literal");
    default:
      CFNET_RETURN_IF_ERROR(ParseNumberToken(out));
      return out;
  }
}

Status JsonReader::SkipValue() { return SkipValueAt(0); }

Status JsonReader::SkipValueAt(size_t extra) {
  SkipWs();
  CFNET_RETURN_IF_ERROR(CheckValueDepth(extra));
  if (pos_ >= text_.size()) return Error("unexpected end of input");
  switch (text_[pos_]) {
    case '{': {
      ++pos_;
      SkipWs();
      if (Consume('}')) return Status::OK();
      for (;;) {
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != '"') {
          return Error("expected object key string");
        }
        std::string_view ignored;
        CFNET_RETURN_IF_ERROR(ParseStringToken(key_scratch_, ignored));
        SkipWs();
        if (!Consume(':')) return Error("expected ':' in object");
        SkipWs();
        CFNET_RETURN_IF_ERROR(SkipValueAt(extra + 1));
        SkipWs();
        if (Consume(',')) continue;
        if (Consume('}')) return Status::OK();
        return Error("expected ',' or '}' in object");
      }
    }
    case '[': {
      ++pos_;
      SkipWs();
      if (Consume(']')) return Status::OK();
      for (;;) {
        SkipWs();
        CFNET_RETURN_IF_ERROR(SkipValueAt(extra + 1));
        SkipWs();
        if (Consume(',')) continue;
        if (Consume(']')) return Status::OK();
        return Error("expected ',' or ']' in array");
      }
    }
    case '"': {
      std::string_view ignored;
      return ParseStringToken(str_scratch_, ignored);
    }
    case 't':
      if (ConsumeLiteral("true")) return Status::OK();
      return Error("invalid literal");
    case 'f':
      if (ConsumeLiteral("false")) return Status::OK();
      return Error("invalid literal");
    case 'n':
      if (ConsumeLiteral("null")) return Status::OK();
      return Error("invalid literal");
    default: {
      Scalar ignored;
      return ParseNumberToken(ignored);
    }
  }
}

Status JsonReader::Finish() {
  SkipWs();
  if (pos_ != text_.size()) {
    return Error("trailing characters after JSON document");
  }
  return Status::OK();
}

}  // namespace cfnet::json
