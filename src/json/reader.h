#ifndef CFNET_JSON_READER_H_
#define CFNET_JSON_READER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace cfnet::json {

/// Single-pass, pull-style reader over one JSON document held in memory —
/// the streaming counterpart of `json::Parse` that never builds a DOM.
///
/// The reader yields values on demand: callers step through containers with
/// `ForEachMember` / `ForEachElement` and pull scalars with `ReadScalar`.
/// Strings are zero-copy `string_view`s into the input buffer whenever they
/// contain no escapes; escaped strings are lazily unescaped into a per-reader
/// scratch buffer (so a view is valid only until the next reader call).
/// Numbers are parsed in place with `std::from_chars`.
///
/// Grammar, depth limit, and error verdicts match `json::Parse` exactly
/// (pinned by the differential test in json_reader_test): a document is
/// accepted by one iff it is accepted by the other, and accepted documents
/// decode to identical values.
///
/// Typical record decode (no DOM, no per-field allocation):
///
///   JsonReader r(line);
///   Record rec;
///   CFNET_RETURN_IF_ERROR(r.ForEachMember([&](std::string_view key) {
///     if (key == "id") {
///       CFNET_ASSIGN_OR_RETURN(auto v, r.ReadScalar());
///       rec.id = v.AsInt();
///       return Status::OK();
///     }
///     return r.SkipValue();   // uninteresting member
///   }));
///   CFNET_RETURN_IF_ERROR(r.Finish());
class JsonReader {
 public:
  /// A scalar pulled from the stream. Coercion helpers mirror the DOM
  /// accessors (`Json::AsInt` etc.) so streaming decoders are drop-in
  /// equivalents of the `FromJson` paths: wrong types yield neutral
  /// defaults instead of errors.
  struct Scalar {
    enum class Kind { kNull, kBool, kInt, kDouble, kString, kComposite };

    Kind kind = Kind::kNull;
    bool b = false;
    int64_t i = 0;
    double d = 0.0;
    /// Valid until the next reader call (may alias the scratch buffer).
    std::string_view s;

    bool is_null() const { return kind == Kind::kNull; }
    bool AsBool(bool fallback = false) const {
      return kind == Kind::kBool ? b : fallback;
    }
    int64_t AsInt(int64_t fallback = 0) const {
      if (kind == Kind::kInt) return i;
      if (kind == Kind::kDouble) return static_cast<int64_t>(d);
      return fallback;
    }
    double AsDouble(double fallback = 0.0) const {
      if (kind == Kind::kDouble) return d;
      if (kind == Kind::kInt) return static_cast<double>(i);
      return fallback;
    }
    std::string_view AsString() const {
      return kind == Kind::kString ? s : std::string_view();
    }
  };

  /// The reader borrows `text`; it must outlive the reader.
  explicit JsonReader(std::string_view text) : text_(text) {}

  JsonReader(const JsonReader&) = delete;
  JsonReader& operator=(const JsonReader&) = delete;

  /// --- typed extraction -----------------------------------------------

  /// Reads the value at the cursor as a scalar, consuming it entirely.
  /// Arrays and objects are skipped (after validation) and yield
  /// `Kind::kComposite`, mirroring what the DOM accessors return for them.
  Result<Scalar> ReadScalar();

  /// Iterates the members of the object at the cursor: `fn(key)` runs once
  /// per member and must consume the member's value (ReadScalar /
  /// ForEach* / SkipValue). A non-object value is consumed with zero calls,
  /// mirroring `Json::Get` on a non-object.
  template <typename Fn>
  Status ForEachMember(Fn&& fn) {
    CFNET_ASSIGN_OR_RETURN(bool is_object, EnterObject());
    if (!is_object) return SkipValue();
    std::string_view key;
    for (;;) {
      CFNET_ASSIGN_OR_RETURN(bool more, NextMember(key));
      if (!more) return Status::OK();
      CFNET_RETURN_IF_ERROR(fn(key));
    }
  }

  /// Iterates the elements of the array at the cursor: `fn()` runs once per
  /// element and must consume it. A non-array value is consumed with zero
  /// calls, mirroring iteration over `Json::array()` of a non-array.
  template <typename Fn>
  Status ForEachElement(Fn&& fn) {
    CFNET_ASSIGN_OR_RETURN(bool is_array, EnterArray());
    if (!is_array) return SkipValue();
    for (;;) {
      CFNET_ASSIGN_OR_RETURN(bool more, NextElement());
      if (!more) return Status::OK();
      CFNET_RETURN_IF_ERROR(fn());
    }
  }

  /// Consumes and validates the value at the cursor without decoding it.
  Status SkipValue();

  /// Verifies nothing but whitespace remains — the streaming analogue of
  /// `Parse`'s trailing-characters check. Call after the top-level value.
  Status Finish();

  /// --- low-level stepping (used by the helpers and generic consumers) ---

  /// If the value at the cursor is an object, enters it and returns true;
  /// otherwise returns false without consuming anything.
  Result<bool> EnterObject();
  /// If the value at the cursor is an array, enters it and returns true;
  /// otherwise returns false without consuming anything.
  Result<bool> EnterArray();
  /// Inside an object: advances to the next member. On true, `key` holds
  /// the member key and the cursor sits on its value; on false the object's
  /// closing '}' was consumed. `key` is valid until the next reader call.
  Result<bool> NextMember(std::string_view& key);
  /// Inside an array: on true the cursor sits on the next element; on false
  /// the closing ']' was consumed.
  Result<bool> NextElement();

  /// Byte offset of the cursor (for error reporting / testing).
  size_t offset() const { return pos_; }

 private:
  /// Matches json::Parse's Parser::kMaxDepth.
  static constexpr size_t kMaxDepth = 256;

  enum class Frame : uint8_t { kObjectFirst, kObject, kArrayFirst, kArray };

  Status Error(const std::string& what) const;
  void SkipWs();
  bool Consume(char c);
  bool ConsumeLiteral(std::string_view lit);
  /// Errors when a value nested `extra` levels below the open containers
  /// would exceed the depth limit (same boundary as the DOM parser).
  Status CheckValueDepth(size_t extra) const;
  /// Parses the string literal at the cursor (opening quote included) into
  /// `out` — zero-copy when escape-free, else unescaped into `scratch`.
  Status ParseStringToken(std::string& scratch, std::string_view& out);
  Status ParseNumberToken(Scalar& out);
  Status SkipValueAt(size_t extra);

  std::string_view text_;
  size_t pos_ = 0;
  std::vector<Frame> stack_;
  std::string key_scratch_;
  std::string str_scratch_;
};

}  // namespace cfnet::json

#endif  // CFNET_JSON_READER_H_
