#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/backoff.h"
#include "util/crc32.h"
#include "util/flags.h"
#include "util/sim_clock.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace cfnet {
namespace {

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.Schedule([&count]() { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.Submit([]() { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, ParallelismActuallyParallel) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 8; ++i) {
    futs.push_back(pool.Submit([&]() {
      int now = concurrent.fetch_add(1) + 1;
      int old_peak = peak.load();
      while (now > old_peak && !peak.compare_exchange_weak(old_peak, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      concurrent.fetch_sub(1);
    }));
  }
  for (auto& f : futs) f.get();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, WaitIdlesWithEmptyQueue) {
  ThreadPool pool(2);
  pool.Wait();  // no tasks: must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto fut = pool.Submit([]() { return 1; });
  EXPECT_EQ(fut.get(), 1);
}

// --- string utilities -------------------------------------------------------

TEST(StringUtilTest, Split) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(StrTrim("  x  "), "x");
  EXPECT_EQ(StrTrim("\t\nhello world\r "), "hello world");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("https://x.com", "https://"));
  EXPECT_FALSE(StartsWith("http://x.com", "https://"));
  EXPECT_TRUE(EndsWith("file.jsonl", ".jsonl"));
  EXPECT_FALSE(EndsWith("file.json", ".jsonl"));
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("AbC-123"), "abc-123");
}

TEST(StringUtilTest, LastUrlSegmentExtractsHandle) {
  // The paper's Twitter-handle extraction: "the string after the last '/'".
  EXPECT_EQ(LastUrlSegment("https://twitter.com/startup42"), "startup42");
  EXPECT_EQ(LastUrlSegment("https://twitter.com/startup42/"), "startup42");
  EXPECT_EQ(LastUrlSegment("plain"), "plain");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f%%", 12.345), "12.35%");
}

TEST(StringUtilTest, ThousandsSeparators) {
  EXPECT_EQ(WithThousandsSeparators(0), "0");
  EXPECT_EQ(WithThousandsSeparators(999), "999");
  EXPECT_EQ(WithThousandsSeparators(1000), "1,000");
  EXPECT_EQ(WithThousandsSeparators(744036), "744,036");
  EXPECT_EQ(WithThousandsSeparators(-1234567), "-1,234,567");
}

// --- table -------------------------------------------------------------------

TEST(AsciiTableTest, RendersAlignedColumns) {
  AsciiTable t({"Name", "N"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  std::string out = t.Render();
  EXPECT_NE(out.find("| Name  | N  |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1  |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22 |"), std::string::npos);
}

TEST(AsciiTableTest, PadsShortRows) {
  AsciiTable t({"A", "B", "C"});
  t.AddRow({"x"});
  std::string out = t.Render();
  EXPECT_NE(out.find("| x |   |   |"), std::string::npos);
}

// --- flags --------------------------------------------------------------------

TEST(FlagParserTest, ParsesKeyValueAndBool) {
  const char* argv[] = {"prog", "--scale=0.5", "--workers=12", "--verbose",
                        "positional", "--name=abc"};
  FlagParser flags(6, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 0.5);
  EXPECT_EQ(flags.GetInt("workers", 1), 12);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetString("name", ""), "abc");
  EXPECT_EQ(flags.GetInt("missing", 99), 99);
  EXPECT_FALSE(flags.Has("positional"));
}

TEST(FlagParserTest, BoolSpellings) {
  const char* argv[] = {"prog", "--a=TRUE", "--b=0", "--c=on", "--d=no"};
  FlagParser flags(5, const_cast<char**>(argv));
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
}

// --- sim clock ------------------------------------------------------------------

TEST(SimClockTest, AdvanceMonotone) {
  SimClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  EXPECT_EQ(clock.Advance(100), 100);
  clock.AdvanceTo(50);  // no-op: behind current time
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.AdvanceTo(500);
  EXPECT_EQ(clock.NowMicros(), 500);
}

// --- exponential backoff --------------------------------------------------------

TEST(ExponentialBackoffTest, DefaultsReproduceShiftSchedule) {
  // The historical crawler schedule was `base << attempt`; the shared policy
  // must reproduce it bit-for-bit so virtual-time tests stay stable.
  BackoffPolicy policy;
  policy.base_micros = 500000;
  ExponentialBackoff backoff(policy);
  for (int attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(backoff.NextDelayMicros(), 500000ll << attempt) << attempt;
  }
  backoff.Reset();
  EXPECT_EQ(backoff.NextDelayMicros(), 500000);
}

TEST(ExponentialBackoffTest, CapBoundsEveryDelay) {
  BackoffPolicy policy;
  policy.base_micros = 1000;
  policy.max_micros = 5000;
  ExponentialBackoff backoff(policy);
  EXPECT_EQ(backoff.NextDelayMicros(), 1000);
  EXPECT_EQ(backoff.NextDelayMicros(), 2000);
  EXPECT_EQ(backoff.NextDelayMicros(), 4000);
  EXPECT_EQ(backoff.NextDelayMicros(), 5000);  // capped from 8000
  EXPECT_EQ(backoff.NextDelayMicros(), 5000);
}

TEST(ExponentialBackoffTest, JitterIsBoundedAndSeedDeterministic) {
  BackoffPolicy policy;
  policy.base_micros = 100000;
  policy.jitter = 0.25;
  ExponentialBackoff a(policy, /*seed=*/7);
  ExponentialBackoff b(policy, /*seed=*/7);
  ExponentialBackoff c(policy, /*seed=*/8);
  bool seeds_diverge = false;
  for (int attempt = 0; attempt < 10; ++attempt) {
    const int64_t exact = 100000ll << attempt;
    int64_t da = a.NextDelayMicros();
    EXPECT_EQ(da, b.NextDelayMicros()) << attempt;  // same seed: same delays
    EXPECT_GE(da, static_cast<int64_t>(static_cast<double>(exact) * 0.74));
    EXPECT_LE(da, static_cast<int64_t>(static_cast<double>(exact) * 1.26));
    seeds_diverge = seeds_diverge || da != c.NextDelayMicros();
  }
  EXPECT_TRUE(seeds_diverge);
}

// --- crc32 ----------------------------------------------------------------------

TEST(Crc32Test, MatchesKnownVectorAndComposes) {
  // The IEEE 802.3 check value every CRC-32 implementation must produce.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  uint32_t streamed = Crc32Update(Crc32Update(0, "1234"), "56789");
  EXPECT_EQ(streamed, 0xCBF43926u);
}

TEST(SimClockTest, ConcurrentAdvanceToTakesMax) {
  SimClock clock;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&clock, t]() {
      for (int i = 0; i < 1000; ++i) clock.AdvanceTo(t * 1000 + i);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(clock.NowMicros(), 7999);
}

}  // namespace
}  // namespace cfnet
