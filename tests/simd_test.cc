// Differential tests for the SIMD numeric-kernel layer: every dispatched
// kernel must be BYTE-identical to its scalar canonical form on every
// input — all lengths 0..257 (covering the 16-wide main loop, its tail,
// and sub-width sizes), misaligned base pointers, and NaN/inf payloads.
// Comparisons go through bit_cast so -0.0 vs 0.0 and NaN payload drift
// fail loudly where EXPECT_DOUBLE_EQ would shrug.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/simd.h"

namespace cfnet {
namespace {

uint64_t Bits(double x) { return std::bit_cast<uint64_t>(x); }

void ExpectSameBits(double a, double b, const char* what, size_t n,
                    size_t offset) {
  EXPECT_EQ(Bits(a), Bits(b)) << what << " diverges at n=" << n
                              << " offset=" << offset << " (" << a
                              << " vs " << b << ")";
}

void ExpectSameVector(const std::vector<double>& a,
                      const std::vector<double>& b, const char* what, size_t n,
                      size_t offset) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(Bits(a[i]), Bits(b[i]))
        << what << "[" << i << "] diverges at n=" << n << " offset=" << offset;
  }
}

constexpr size_t kMaxLen = 257;
constexpr size_t kMaxOffset = 3;

/// Deterministic input pool with NaN and +/-inf planted at fixed spots, so
/// every (length, offset) window eventually slides over a special value.
struct Pool {
  std::vector<double> a, b;

  explicit Pool(uint64_t seed) {
    Rng rng(seed);
    const size_t len = kMaxLen + kMaxOffset + 1;
    a.resize(len);
    b.resize(len);
    for (size_t i = 0; i < len; ++i) {
      a[i] = rng.Uniform(-3.0, 3.0);
      b[i] = rng.Uniform(-3.0, 3.0);
    }
    a[5] = std::numeric_limits<double>::quiet_NaN();
    a[77] = std::numeric_limits<double>::infinity();
    a[131] = -std::numeric_limits<double>::infinity();
    b[13] = std::numeric_limits<double>::infinity();
    b[200] = std::numeric_limits<double>::quiet_NaN();
  }
};

TEST(SimdTest, ReductionsMatchScalarOnFullGrid) {
  Pool pool(101);
  for (size_t n = 0; n <= kMaxLen; ++n) {
    for (size_t offset = 0; offset <= kMaxOffset; ++offset) {
      const double* a = pool.a.data() + offset;
      const double* b = pool.b.data() + offset;
      ExpectSameBits(simd::DotF64(a, b, n), simd::DotF64Scalar(a, b, n),
                     "DotF64", n, offset);
      ExpectSameBits(simd::SumF64(a, n), simd::SumF64Scalar(a, n), "SumF64", n,
                     offset);
      ExpectSameBits(simd::SumSqDiffF64(a, n, 0.37),
                     simd::SumSqDiffF64Scalar(a, n, 0.37), "SumSqDiffF64", n,
                     offset);
      double sxy_v, sxx_v, syy_v, sxy_s, sxx_s, syy_s;
      simd::PearsonAccumF64(a, b, n, 0.11, -0.7, &sxy_v, &sxx_v, &syy_v);
      simd::PearsonAccumF64Scalar(a, b, n, 0.11, -0.7, &sxy_s, &sxx_s, &syy_s);
      ExpectSameBits(sxy_v, sxy_s, "PearsonAccumF64 sxy", n, offset);
      ExpectSameBits(sxx_v, sxx_s, "PearsonAccumF64 sxx", n, offset);
      ExpectSameBits(syy_v, syy_s, "PearsonAccumF64 syy", n, offset);
    }
  }
}

TEST(SimdTest, ClampedStepDotMatchesScalarOnFullGrid) {
  Pool pool(102);
  for (size_t n = 0; n <= kMaxLen; ++n) {
    for (size_t offset = 0; offset <= kMaxOffset; ++offset) {
      const double* x = pool.a.data() + offset;
      const double* g = pool.b.data() + offset;
      std::vector<double> cand_v(n, -1), cand_s(n, -1);
      const double gdx_v =
          simd::ClampedStepDotF64(x, g, 0.25, 0.0, 2.0, cand_v.data(), n);
      const double gdx_s = simd::ClampedStepDotF64Scalar(x, g, 0.25, 0.0, 2.0,
                                                         cand_s.data(), n);
      ExpectSameBits(gdx_v, gdx_s, "ClampedStepDotF64 gdx", n, offset);
      ExpectSameVector(cand_v, cand_s, "ClampedStepDotF64 cand", n, offset);
    }
  }
}

TEST(SimdTest, ElementwiseKernelsMatchScalarOnFullGrid) {
  Pool pool(103);
  for (size_t n = 0; n <= kMaxLen; ++n) {
    for (size_t offset = 0; offset <= kMaxOffset; ++offset) {
      const double* x = pool.a.data() + offset;
      const double* b = pool.b.data() + offset;
      std::vector<double> y_v(x, x + n), y_s(x, x + n);

      simd::AxpyF64(1.75, b, y_v.data(), n);
      simd::AxpyF64Scalar(1.75, b, y_s.data(), n);
      ExpectSameVector(y_v, y_s, "AxpyF64", n, offset);

      simd::AddF64(y_v.data(), b, n);
      simd::AddF64Scalar(y_s.data(), b, n);
      ExpectSameVector(y_v, y_s, "AddF64", n, offset);

      simd::SubF64(y_v.data(), b, n);
      simd::SubF64Scalar(y_s.data(), b, n);
      ExpectSameVector(y_v, y_s, "SubF64", n, offset);

      std::vector<double> dst_v(n, -1), dst_s(n, -1);
      simd::CopyAddF64(dst_v.data(), y_v.data(), b, n);
      simd::CopyAddF64Scalar(dst_s.data(), y_s.data(), b, n);
      ExpectSameVector(dst_v, dst_s, "CopyAddF64 dst", n, offset);
      ExpectSameVector(y_v, y_s, "CopyAddF64 acc", n, offset);

      simd::ClampedSubF64(dst_v.data(), x, b, n);
      simd::ClampedSubF64Scalar(dst_s.data(), x, b, n);
      ExpectSameVector(dst_v, dst_s, "ClampedSubF64", n, offset);
    }
  }
}

TEST(SimdTest, AndPopcountMatchesScalarAndNaiveBitLoop) {
  Rng rng(104);
  const size_t max_words = 130;
  std::vector<uint64_t> a(max_words + kMaxOffset), b(max_words + kMaxOffset);
  for (auto& w : a) w = rng.Next();
  for (auto& w : b) w = rng.Next();
  a[3] = 0;
  b[7] = ~uint64_t{0};
  for (size_t n = 0; n <= max_words; ++n) {
    for (size_t offset = 0; offset <= kMaxOffset; ++offset) {
      const uint64_t* pa = a.data() + offset;
      const uint64_t* pb = b.data() + offset;
      uint64_t naive = 0;
      for (size_t i = 0; i < n; ++i) {
        for (uint64_t w = pa[i] & pb[i]; w != 0; w >>= 1) naive += w & 1;
      }
      EXPECT_EQ(simd::AndPopcountU64(pa, pb, n), naive)
          << "n=" << n << " offset=" << offset;
      EXPECT_EQ(simd::AndPopcountU64Scalar(pa, pb, n), naive);
    }
  }
}

// The scalar canonical form must itself honor the documented virtual-lane
// layout — an independent re-derivation, so a refactor cannot silently
// change the semantics both sides of the differential tests share.
TEST(SimdTest, ScalarFormFollowsVirtualLaneContract) {
  Rng rng(105);
  std::vector<double> a(45);
  for (auto& v : a) v = rng.Uniform(-1.0, 1.0);
  double lane[simd::kVirtualLanes] = {};
  for (size_t i = 0; i < a.size(); ++i) {
    lane[i % simd::kVirtualLanes] += a[i];
  }
  double quad[4];
  for (size_t q = 0; q < 4; ++q) {
    quad[q] = (lane[4 * q] + lane[4 * q + 1]) + (lane[4 * q + 2] + lane[4 * q + 3]);
  }
  const double expected = (quad[0] + quad[1]) + (quad[2] + quad[3]);
  EXPECT_EQ(Bits(simd::SumF64Scalar(a.data(), a.size())), Bits(expected));
}

TEST(SimdTest, FusedCodaHelpersBitIdenticalSimdOnOff) {
  Rng rng(106);
  const size_t c = 33;
  const size_t count = 9;
  std::vector<double> x(c), rows(count * c), grad_on(c, 0), grad_off(c, 0);
  for (auto& v : x) v = rng.Uniform(0.0, 0.5);
  for (auto& v : rows) v = rng.Uniform(0.0, 0.5);

  const double obj_on = simd::SumLogEdgeProbF64(x.data(), rows.data(), count,
                                                c, 1e-10);
  simd::AccumExpm1RowsF64(x.data(), rows.data(), count, c, 1e-10, 1e10,
                          grad_on.data());
  {
    simd::ScopedForceScalar force;
    const double obj_off = simd::SumLogEdgeProbF64(x.data(), rows.data(),
                                                   count, c, 1e-10);
    simd::AccumExpm1RowsF64(x.data(), rows.data(), count, c, 1e-10, 1e10,
                            grad_off.data());
    EXPECT_EQ(Bits(obj_on), Bits(obj_off));
  }
  ExpectSameVector(grad_on, grad_off, "AccumExpm1RowsF64 grad", count, 0);
}

TEST(SimdTest, ScopedForceScalarSwapsAndRestoresBackend) {
  const std::string before = simd::SimdBackendName();
  const bool was_enabled = simd::SimdEnabled();
  {
    simd::ScopedForceScalar outer;
    EXPECT_STREQ(simd::SimdBackendName(), "scalar");
    EXPECT_FALSE(simd::SimdEnabled());
    {
      simd::ScopedForceScalar inner;  // nestable
      EXPECT_STREQ(simd::SimdBackendName(), "scalar");
    }
    EXPECT_STREQ(simd::SimdBackendName(), "scalar");
  }
  EXPECT_EQ(simd::SimdBackendName(), before);
  EXPECT_EQ(simd::SimdEnabled(), was_enabled);
}

TEST(SimdTest, MeanVarHandlesEmptyAndMatchesComposition) {
  double mean = 42, ssd = 42;
  simd::MeanVarF64(nullptr, 0, &mean, &ssd);
  EXPECT_EQ(mean, 0.0);
  EXPECT_EQ(ssd, 0.0);

  Rng rng(107);
  std::vector<double> a(97);
  for (auto& v : a) v = rng.Uniform(-5.0, 5.0);
  simd::MeanVarF64(a.data(), a.size(), &mean, &ssd);
  const double m = simd::SumF64(a.data(), a.size()) /
                   static_cast<double>(a.size());
  EXPECT_EQ(Bits(mean), Bits(m));
  EXPECT_EQ(Bits(ssd), Bits(simd::SumSqDiffF64(a.data(), a.size(), m)));
}

}  // namespace
}  // namespace cfnet
