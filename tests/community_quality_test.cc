#include <gtest/gtest.h>

#include "community/compare.h"
#include "community/model_selection.h"
#include "community/quality.h"
#include "graph/bipartite_graph.h"
#include "graph/weighted_graph.h"
#include "util/rng.h"

namespace cfnet::community {
namespace {

/// Two 5-cliques bridged by one weak edge (same as community_test).
graph::WeightedGraph TwoCliques() {
  std::vector<std::tuple<uint32_t, uint32_t, double>> edges;
  for (uint32_t i = 0; i < 5; ++i) {
    for (uint32_t j = i + 1; j < 5; ++j) {
      edges.emplace_back(i, j, 1.0);
      edges.emplace_back(i + 5, j + 5, 1.0);
    }
  }
  edges.emplace_back(4, 5, 0.1);
  return graph::WeightedGraph::FromEdges(10, edges);
}

TEST(ConductanceTest, CliqueIsWellSeparated) {
  graph::WeightedGraph g = TwoCliques();
  // Clique volume: 5 nodes x degree 4 (node 4 has +0.1) = 20.1; cut 0.1.
  EXPECT_NEAR(Conductance(g, {0, 1, 2, 3, 4}), 0.1 / 20.1, 1e-12);
  // A split community leaks heavily.
  EXPECT_GT(Conductance(g, {0, 1, 7}), 0.5);
}

TEST(ConductanceTest, DegenerateSets) {
  graph::WeightedGraph g = TwoCliques();
  EXPECT_DOUBLE_EQ(Conductance(g, {}), 1.0);
  // The whole graph: complement volume 0 -> defined as 1.
  std::vector<uint32_t> all;
  for (uint32_t v = 0; v < 10; ++v) all.push_back(v);
  EXPECT_DOUBLE_EQ(Conductance(g, all), 1.0);
}

TEST(ConductanceTest, MeanOverSet) {
  graph::WeightedGraph g = TwoCliques();
  CommunitySet set;
  set.num_nodes = 10;
  set.communities = {{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}};
  EXPECT_LT(MeanConductance(g, set), 0.01);
  CommunitySet bad;
  bad.num_nodes = 10;
  bad.communities = {{0, 5}, {1, 6}};
  EXPECT_GT(MeanConductance(g, bad), 0.9);
}

TEST(CoverageTest, PerfectAndPartial) {
  graph::WeightedGraph g = TwoCliques();
  CommunitySet perfect;
  perfect.num_nodes = 10;
  perfect.communities = {{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}};
  // Only the 0.1 bridge is uncovered: coverage = 20/20.1.
  EXPECT_NEAR(Coverage(g, perfect), 20.0 / 20.1, 1e-9);

  CommunitySet half;
  half.num_nodes = 10;
  half.communities = {{0, 1, 2, 3, 4}};
  EXPECT_NEAR(Coverage(g, half), 10.0 / 20.1, 1e-9);

  CommunitySet none;
  none.num_nodes = 10;
  EXPECT_DOUBLE_EQ(Coverage(g, none), 0.0);
}

TEST(CoverageTest, OverlapCounts) {
  graph::WeightedGraph g =
      graph::WeightedGraph::FromEdges(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  CommunitySet overlapping;
  overlapping.num_nodes = 3;
  overlapping.communities = {{0, 1}, {1, 2}};
  EXPECT_DOUBLE_EQ(Coverage(g, overlapping), 1.0);
}

/// Planted bipartite blocks for the model-selection sweep.
graph::BipartiteGraph PlantedBlocks(int blocks, int investors_per_block,
                                    int companies_per_block, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  for (int b = 0; b < blocks; ++b) {
    for (int i = 0; i < investors_per_block; ++i) {
      uint64_t inv = static_cast<uint64_t>(b * investors_per_block + i + 1);
      for (int c = 0; c < companies_per_block; ++c) {
        if (rng.Bernoulli(0.75)) {
          edges.emplace_back(
              inv, 1000 + static_cast<uint64_t>(b * companies_per_block + c));
        }
      }
    }
  }
  return graph::BipartiteGraph::FromEdges(edges);
}

TEST(ModelSelectionTest, PrefersAdequateCapacity) {
  graph::BipartiteGraph g = PlantedBlocks(5, 14, 10, 31);
  ModelSelectionConfig config;
  config.coda.max_iterations = 30;
  config.seed = 5;
  ModelSelectionResult result =
      SelectCodaCommunities(g, {1, 5, 12}, config);
  ASSERT_EQ(result.scores.size(), 3u);
  // C=1 cannot represent 5 blocks: it must score worst.
  double score_c1 = result.scores[0].heldout_log_likelihood;
  EXPECT_GT(result.scores[1].heldout_log_likelihood, score_c1);
  EXPECT_NE(result.best_num_communities, 1);
}

TEST(ModelSelectionTest, ScoresAreFiniteAndOrdered) {
  graph::BipartiteGraph g = PlantedBlocks(3, 12, 8, 37);
  ModelSelectionConfig config;
  config.coda.max_iterations = 20;
  ModelSelectionResult result = SelectCodaCommunities(g, {2, 3, 6}, config);
  for (const auto& s : result.scores) {
    EXPECT_LT(s.heldout_log_likelihood, 0);
    EXPECT_GT(s.heldout_log_likelihood, -30);
  }
  // Best is the argmax of the reported scores.
  double best = -1e300;
  int best_c = 0;
  for (const auto& s : result.scores) {
    if (s.heldout_log_likelihood > best) {
      best = s.heldout_log_likelihood;
      best_c = s.num_communities;
    }
  }
  EXPECT_EQ(result.best_num_communities, best_c);
}

TEST(ModelSelectionTest, TinyGraphHandled) {
  graph::BipartiteGraph g =
      graph::BipartiteGraph::FromEdges({{1, 10}, {2, 10}});
  ModelSelectionResult result = SelectCodaCommunities(g, {2, 4});
  EXPECT_TRUE(result.scores.empty());  // too few edges to split
}

}  // namespace
}  // namespace cfnet::community

namespace cfnet::community {
namespace {

// --- cover comparison (planted-recovery scoring) -----------------------------

CommunitySet MakeCover(size_t n, std::vector<std::vector<uint32_t>> comms) {
  CommunitySet set;
  set.num_nodes = n;
  set.communities = std::move(comms);
  return set;
}

TEST(ComparePairwiseTest, IdenticalCoversScorePerfectly) {
  CommunitySet a = MakeCover(6, {{0, 1, 2}, {3, 4, 5}});
  PairwiseAgreement agreement = ComparePairwise(a, a);
  EXPECT_DOUBLE_EQ(agreement.precision, 1.0);
  EXPECT_DOUBLE_EQ(agreement.recall, 1.0);
  EXPECT_DOUBLE_EQ(agreement.f1, 1.0);
  EXPECT_EQ(agreement.truth_pairs, 6u);  // 2 * C(3,2)
}

TEST(ComparePairwiseTest, MergedCoverHasPerfectRecallLowPrecision) {
  CommunitySet truth = MakeCover(6, {{0, 1, 2}, {3, 4, 5}});
  CommunitySet merged = MakeCover(6, {{0, 1, 2, 3, 4, 5}});
  PairwiseAgreement agreement = ComparePairwise(merged, truth);
  EXPECT_DOUBLE_EQ(agreement.recall, 1.0);       // all truth pairs together
  EXPECT_NEAR(agreement.precision, 6.0 / 15, 1e-12);
  EXPECT_GT(agreement.f1, 0.5);
}

TEST(ComparePairwiseTest, SplitCoverHasPerfectPrecisionLowRecall) {
  CommunitySet truth = MakeCover(6, {{0, 1, 2, 3, 4, 5}});
  CommunitySet split = MakeCover(6, {{0, 1}, {2, 3}, {4, 5}});
  PairwiseAgreement agreement = ComparePairwise(split, truth);
  EXPECT_DOUBLE_EQ(agreement.precision, 1.0);
  EXPECT_NEAR(agreement.recall, 3.0 / 15, 1e-12);
}

TEST(ComparePairwiseTest, OverlappingPairsDeduplicated) {
  // Node 1 sits in both communities; pair (0,1) appears once.
  CommunitySet a = MakeCover(3, {{0, 1}, {1, 2}});
  PairwiseAgreement self = ComparePairwise(a, a);
  EXPECT_EQ(self.detected_pairs, 2u);
  EXPECT_DOUBLE_EQ(self.f1, 1.0);
}

TEST(ComparePairwiseTest, DisjointCoversScoreZero) {
  CommunitySet truth = MakeCover(8, {{0, 1}, {2, 3}});
  CommunitySet detected = MakeCover(8, {{4, 5}, {6, 7}});
  PairwiseAgreement agreement = ComparePairwise(detected, truth);
  EXPECT_DOUBLE_EQ(agreement.f1, 0.0);
}

TEST(ComparePairwiseTest, SampledModeApproximatesExact) {
  // Large identical covers: sampling must still report ~1.0 agreement.
  std::vector<uint32_t> big;
  for (uint32_t v = 0; v < 4000; ++v) big.push_back(v);
  CommunitySet a = MakeCover(4000, {big});
  PairwiseAgreement agreement =
      ComparePairwise(a, a, /*max_pairs_per_side=*/5000, /*seed=*/3);
  EXPECT_DOUBLE_EQ(agreement.precision, 1.0);
  EXPECT_DOUBLE_EQ(agreement.recall, 1.0);
}

TEST(NmiTest, IdenticalAndIndependent) {
  std::vector<int> a = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(NormalizedMutualInformation(a, a), 1.0, 1e-12);
  // Relabeling does not matter.
  std::vector<int> relabeled = {5, 5, 9, 9, 7, 7};
  EXPECT_NEAR(NormalizedMutualInformation(a, relabeled), 1.0, 1e-12);
  // A constant assignment carries no information.
  std::vector<int> constant(6, 0);
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(a, constant), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(constant, constant), 1.0);
}

TEST(NmiTest, PartialAgreementBetweenZeroAndOne) {
  std::vector<int> a = {0, 0, 0, 1, 1, 1};
  std::vector<int> b = {0, 0, 1, 1, 1, 1};
  double nmi = NormalizedMutualInformation(a, b);
  EXPECT_GT(nmi, 0.1);
  EXPECT_LT(nmi, 0.9);
}

TEST(NmiTest, UnassignedNodesExcluded) {
  std::vector<int> a = {0, 0, 1, 1, -1, -1};
  std::vector<int> b = {0, 0, 1, 1, 0, 1};
  EXPECT_NEAR(NormalizedMutualInformation(a, b), 1.0, 1e-12);
}

}  // namespace
}  // namespace cfnet::community
